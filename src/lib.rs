//! # hkrr — hierarchical-matrix kernel ridge regression
//!
//! Umbrella crate re-exporting the full public API of the workspace, which
//! reproduces *"A Study of Clustering Techniques and Hierarchical Matrix
//! Formats for Kernel Ridge Regression"* (Rebrova et al., 2018):
//!
//! * [`linalg`] — dense linear-algebra substrate (matrices, QR/SVD/LU/
//!   Cholesky, the partially matrix-free [`linalg::LinearOperator`] trait,
//!   and matrix-free PCG with the [`linalg::Preconditioner`] trait),
//! * [`kernel`] — Gaussian (and other) kernels, the implicit kernel-matrix
//!   operator, feature normalization,
//! * [`datasets`] — seeded synthetic stand-ins for the paper's UCI / MNIST
//!   datasets,
//! * [`clustering`] — the NP / KD / PCA / 2MN orderings and cluster trees,
//! * [`hss`] — randomized HSS compression and the ULV solver,
//! * [`hmatrix`] — strong-admissibility H-matrices with ACA, used as the
//!   fast sampler,
//! * [`krr`] — Algorithm 1 end to end (binary + one-vs-all classification),
//! * [`tuner`] — grid search and black-box tuning of `(h, λ)` — plus the
//!   solver and ensemble-shard-count dimensions,
//! * [`ensemble`] — cluster-sharded ensembles: shard the training set with
//!   the paper's cluster trees, train one model per shard in parallel,
//!   route queries to the nearest shard centroids,
//! * [`serve`] — model persistence (`hkrr-model/1`, single models and
//!   ensembles) and the micro-batching TCP prediction service.
//!
//! See `examples/quickstart.rs` for a five-minute tour and
//! `examples/serve_roundtrip.rs` for the save → load → serve path.

pub use hkrr_clustering as clustering;
pub use hkrr_core as krr;
pub use hkrr_datasets as datasets;
pub use hkrr_ensemble as ensemble;
pub use hkrr_hmatrix as hmatrix;
pub use hkrr_hss as hss;
pub use hkrr_kernel as kernel;
pub use hkrr_linalg as linalg;
pub use hkrr_serve as serve;
pub use hkrr_tuner as tuner;

/// Convenience prelude with the types most programs need.
pub mod prelude {
    pub use hkrr_clustering::{ClusteringMethod, DEFAULT_LEAF_SIZE};
    pub use hkrr_core::{
        accuracy, DecisionModel, FactorPrecision, KrrConfig, KrrModel, ModelHandle, MulticlassKrr,
        SolverKind,
    };
    pub use hkrr_datasets::{generate, generate_multiclass, spec_by_name, DatasetSpec};
    pub use hkrr_ensemble::{EnsembleConfig, EnsembleKrr, ShardPlan, ShardStrategy};
    pub use hkrr_kernel::{KernelFunction, KernelMatrix, Normalizer};
    pub use hkrr_linalg::{LinearOperator, Matrix};
    pub use hkrr_tuner::{
        black_box_search, ensemble_search, grid_search, solver_search, GridSpec, SearchOptions,
        SolverCandidate, ValidationObjective,
    };
}
