//! Clustering comparison: how the reordering of the training points (the
//! paper's Step 0) changes the memory and maximum rank of the compressed
//! kernel matrix, at identical classification accuracy.
//!
//! Run with:  cargo run --release --example clustering_comparison

use hkrr::prelude::*;

fn main() {
    let spec = spec_by_name("GAS").unwrap();
    let ds = generate(&spec, 1500, 300, 7);
    println!(
        "GAS-like dataset: {} train points, dimension {}\n",
        ds.num_train(),
        ds.dim()
    );
    println!(
        "{:<10} {:>12} {:>10} {:>10} {:>10}",
        "ordering", "memory (MB)", "max rank", "accuracy", "train (s)"
    );

    for method in [
        ClusteringMethod::Natural,
        ClusteringMethod::KdTree,
        ClusteringMethod::PcaTree,
        ClusteringMethod::TwoMeans { seed: 3 },
    ] {
        let config = KrrConfig {
            h: spec.default_h,
            lambda: spec.default_lambda,
            clustering: method,
            solver: SolverKind::Hss,
            ..KrrConfig::default()
        };
        let model = KrrModel::fit(&ds.train, &ds.train_labels, &config).unwrap();
        let acc = accuracy(&model.predict(&ds.test), &ds.test_labels);
        println!(
            "{:<10} {:>12.2} {:>10} {:>9.1}% {:>10.2}",
            method.label(),
            model.report().matrix_memory_mb(),
            model.report().max_rank,
            100.0 * acc,
            model.report().total_seconds()
        );
    }
    println!("\nExpected: memory and rank shrink from NP to KD/PCA to 2MN while accuracy stays flat (Table 2 / Figure 5 of the paper).");
}
