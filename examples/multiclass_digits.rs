//! One-vs-all multi-class classification on a PEN-digits-like dataset
//! (Section 2 of the paper: c binary classifiers, argmax of the decision
//! values).
//!
//! Run with:  cargo run --release --example multiclass_digits

use hkrr::prelude::*;

fn main() {
    let spec = spec_by_name("PEN").unwrap();
    let num_classes = 10;
    let ds = generate_multiclass(&spec, num_classes, 2000, 400, 99);
    println!(
        "PEN-like digits: {} classes, {} train / {} test points, dimension {}",
        num_classes,
        ds.num_train(),
        ds.num_test(),
        ds.dim()
    );

    let config = KrrConfig {
        h: spec.default_h,
        lambda: spec.default_lambda,
        clustering: ClusteringMethod::TwoMeans { seed: 5 },
        solver: SolverKind::Hss,
        ..KrrConfig::default()
    };

    // One binary HSS-compressed classifier per digit.
    let model = MulticlassKrr::fit(&ds.train, &ds.train_labels, num_classes, &config).unwrap();
    let acc = model.accuracy(&ds.test, &ds.test_labels);
    println!("\nmulti-class accuracy: {:.1}%", 100.0 * acc);

    // Per-class one-vs-all accuracy (the paper predicts a single digit,
    // e.g. "5", per binary problem).
    println!("\nper-class one-vs-all binary accuracy:");
    for (class, clf) in model.classifiers().iter().enumerate() {
        let binary_truth: Vec<f64> = ds
            .test_labels
            .iter()
            .map(|&l| if l == class { 1.0 } else { -1.0 })
            .collect();
        let binary_acc = accuracy(&clf.predict(&ds.test), &binary_truth);
        println!("  digit {class}: {:.1}%", 100.0 * binary_acc);
    }

    println!(
        "\ncompressed memory per classifier: {:.2} MB (max rank {})",
        model.classifiers()[0].report().matrix_memory_mb(),
        model.classifiers()[0].report().max_rank
    );
}
