//! SUSY classification with hyperparameter tuning and H-matrix accelerated
//! sampling — the paper's flagship workload (Tables 2-4) in miniature.
//!
//! Run with:  cargo run --release --example susy_classification

use hkrr::prelude::*;

fn main() {
    let spec = spec_by_name("SUSY").unwrap();
    // Train / validation / test splits.
    let ds = generate(&spec, 2400, 400, 123);
    let n_train = 2000;
    let train = ds.train.submatrix(0, n_train, 0, ds.train.ncols());
    let train_labels = ds.train_labels[..n_train].to_vec();
    let valid = ds
        .train
        .submatrix(n_train, ds.train.nrows(), 0, ds.train.ncols());
    let valid_labels = ds.train_labels[n_train..].to_vec();

    // 1. Tune (h, lambda) with the budgeted black-box search (the paper's
    //    OpenTuner stand-in), using the HSS solver inside the objective.
    let base = KrrConfig {
        solver: SolverKind::Hss,
        clustering: ClusteringMethod::TwoMeans { seed: 1 },
        ..KrrConfig::default()
    };
    let objective = ValidationObjective::new(&train, &train_labels, &valid, &valid_labels, base);
    let tuning = black_box_search(
        &objective,
        &SearchOptions {
            h_range: (0.1, 4.0),
            lambda_range: (0.5, 10.0),
            budget: 20,
            ..Default::default()
        },
    );
    println!(
        "tuned in {} evaluations: h = {:.3}, lambda = {:.3} (validation accuracy {:.1}%)",
        tuning.num_evaluations(),
        tuning.best.h,
        tuning.best.lambda,
        100.0 * tuning.best.accuracy
    );

    // 2. Retrain on the full training set with the tuned parameters and the
    //    H-matrix accelerated sampling path.
    let config = base
        .with_h(tuning.best.h)
        .with_lambda(tuning.best.lambda)
        .with_solver(SolverKind::HssWithHSampling);
    let model = KrrModel::fit(&ds.train, &ds.train_labels, &config).unwrap();
    let acc = accuracy(&model.predict(&ds.test), &ds.test_labels);

    println!("\ntest accuracy: {:.1}%", 100.0 * acc);
    println!("\ntraining report:\n{}", model.report());
}
