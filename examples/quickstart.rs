//! Quickstart: train a kernel ridge regression classifier with HSS
//! compression and compare it against the exact dense solve.
//!
//! Run with:  cargo run --release --example quickstart

use hkrr::prelude::*;

fn main() {
    // 1. A synthetic stand-in for the LETTER dataset (d = 16): 2,000
    //    training and 500 test points, reproducible from the seed.
    let spec = spec_by_name("LETTER").unwrap();
    let ds = generate(&spec, 2000, 500, 42);
    println!(
        "dataset: {} — {} train / {} test points, dimension {}",
        ds.name,
        ds.num_train(),
        ds.num_test(),
        ds.dim()
    );

    // 2. The compressed solver: recursive two-means reordering, randomized
    //    HSS compression, ULV factorization.
    let hss_config = KrrConfig {
        h: spec.default_h,
        lambda: spec.default_lambda,
        clustering: ClusteringMethod::TwoMeans { seed: 7 },
        solver: SolverKind::Hss,
        ..KrrConfig::default()
    };
    let hss_model = KrrModel::fit(&ds.train, &ds.train_labels, &hss_config).unwrap();
    let hss_acc = accuracy(&hss_model.predict(&ds.test), &ds.test_labels);

    // 3. The exact baseline: dense kernel matrix + Cholesky.
    let dense_config = hss_config.with_solver(SolverKind::DenseCholesky);
    let dense_model = KrrModel::fit(&ds.train, &ds.train_labels, &dense_config).unwrap();
    let dense_acc = accuracy(&dense_model.predict(&ds.test), &ds.test_labels);

    println!("\n--- accuracy ---");
    println!("HSS   (compressed): {:.2}%", 100.0 * hss_acc);
    println!("dense (exact)     : {:.2}%", 100.0 * dense_acc);

    println!("\n--- resources ---");
    println!(
        "HSS   : {:.2} MB, max rank {}, train {:.2}s",
        hss_model.report().matrix_memory_mb(),
        hss_model.report().max_rank,
        hss_model.report().total_seconds()
    );
    println!(
        "dense : {:.2} MB, train {:.2}s",
        dense_model.report().matrix_memory_mb(),
        dense_model.report().total_seconds()
    );
    println!("\nThe compressed solver should match the dense accuracy while using a fraction of the memory — the paper's central claim.");
}
