//! Serving walkthrough: train a model, persist it in the `hkrr-model/1`
//! format, reload it (no re-factorization), serve it over loopback TCP,
//! and query it both programmatically and through the line-mode protocol.
//!
//! Run with:  cargo run --release --example serve_roundtrip

use hkrr::prelude::*;
use hkrr::serve::engine::EngineConfig;
use hkrr::serve::server::{Client, Server, ServerConfig};
use hkrr::serve::{load_model, save_model};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;

fn main() {
    // 1. Train a compressed model, as in the quickstart.
    let spec = spec_by_name("LETTER").unwrap();
    let ds = generate(&spec, 800, 200, 42);
    let config = KrrConfig {
        h: spec.default_h,
        lambda: spec.default_lambda,
        solver: SolverKind::Hss,
        ..KrrConfig::default()
    };
    let model = KrrModel::fit(&ds.train, &ds.train_labels, &config).unwrap();
    println!(
        "trained: n={} d={} | accuracy {:.2}%",
        model.num_train(),
        model.dim(),
        100.0 * accuracy(&model.predict(&ds.test), &ds.test_labels)
    );

    // 2. Persist and reload. The file carries the HSS form and the ULV
    //    factors, so the reload performs no numerical work at all.
    let path = std::env::temp_dir().join("serve_roundtrip_example.hkrr");
    save_model(&model, &path).unwrap();
    let loaded = load_model(&path).unwrap();
    std::fs::remove_file(&path).ok();
    assert!(
        loaded.factors().is_some(),
        "ULV factors travel with the file"
    );
    assert_eq!(
        loaded.decision_values(&ds.test),
        model.decision_values(&ds.test),
        "reloaded predictions are bitwise identical"
    );
    println!("save → load: bitwise-identical predictions, factors intact");

    // 3. Serve the *reloaded* model on a loopback port.
    let server = Server::start(
        Arc::new(loaded),
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            engine: EngineConfig::default(),
        },
    )
    .unwrap();
    let addr = server.local_addr();
    println!("serving on {addr}");

    // 4a. Binary protocol client.
    let mut client = Client::connect(&addr.to_string()).unwrap();
    let reference = model.decision_values(&ds.test);
    for i in 0..5 {
        let p = client.predict(ds.test.row(i).to_vec()).unwrap();
        assert_eq!(p.score, reference[i]);
        println!(
            "  binary query {i}: label {:+} score {:+.4} (batch {}, {}µs server-side)",
            p.label as i64, p.score, p.batch_size, p.latency_micros
        );
    }

    // 4b. Line mode — what you would type into `nc`.
    let stream = TcpStream::connect(addr).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);
    let mut cmd = String::from("predict");
    for v in ds.test.row(0) {
        cmd.push_str(&format!(" {v}"));
    }
    cmd.push('\n');
    writer.write_all(cmd.as_bytes()).unwrap();
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    println!("  line-mode reply: {}", line.trim_end());

    server.shutdown();
    println!("server drained and stopped — done.");
}
