//! Cross-crate accuracy contract of the mixed-precision factor store: on
//! the perf harness's medium workload (SUSY, n = 2000, seed 43), demoting
//! the ULV factors to f32 must not cost accuracy — the outer f64 PCG
//! iteration runs on the exact operator, so the demotion error behaves
//! like extra preconditioner looseness (a few more iterations at most)
//! while the factor memory drops well below half the f64 figure.

use hkrr::prelude::*;

fn rmse(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b.iter())
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt()
        / (a.len() as f64).sqrt()
}

#[test]
fn f32_factors_hold_the_accuracy_contract_on_the_medium_workload() {
    // This test compares a genuine f64 baseline against the f32 store, so
    // the suite-wide HKRR_FACTOR_PRECISION override (the CI f32 leg) must
    // not reach it. The other tests in this binary pin F32 explicitly, so
    // removing the variable cannot change what they run.
    std::env::remove_var("HKRR_FACTOR_PRECISION");
    let spec = spec_by_name("SUSY").unwrap();
    let ds = generate(&spec, 2000, 300, 43);
    let base = KrrConfig {
        h: spec.default_h,
        lambda: spec.default_lambda,
        clustering: ClusteringMethod::TwoMeans { seed: 7 },
        solver: SolverKind::HssPcg,
        ..KrrConfig::default()
    };

    let m64 = KrrModel::fit(&ds.train, &ds.train_labels, &base).unwrap();
    let m32 = KrrModel::fit(
        &ds.train,
        &ds.train_labels,
        &base.with_factor_precision(FactorPrecision::F32),
    )
    .unwrap();

    // The effective precision is recorded in the trained model's config,
    // so persistence and re-solves see what actually ran.
    assert_eq!(m64.config().factor_precision, FactorPrecision::F64);
    assert_eq!(m32.config().factor_precision, FactorPrecision::F32);

    // Both runs converged.
    let r64 = m64.report();
    let r32 = m32.report();
    assert!(r64.pcg_iterations > 0 && r32.pcg_iterations > 0);

    // The headline memory win: the f32 store drops the factorization-only
    // blocks and halves the element width, so it must come in at least
    // 40% below the f64 store (in practice well under half).
    assert!(r64.factor_bytes > 0 && r32.factor_bytes > 0);
    assert!(
        (r32.factor_bytes as f64) <= 0.6 * r64.factor_bytes as f64,
        "f32 factor store {} should be >= 40% below the f64 store {}",
        r32.factor_bytes,
        r64.factor_bytes
    );

    // The accuracy contract: the outer iteration absorbs the demotion, so
    // the final decision values agree to solver precision…
    let dv64 = m64.decision_values(&ds.test);
    let dv32 = m32.decision_values(&ds.test);
    let err = rmse(&dv64, &dv32);
    assert!(err <= 1e-6, "f32 vs f64 decision-value RMSE {err}");

    // …and the looser preconditioner costs at most ~50% more iterations.
    assert!(
        r32.pcg_iterations <= r64.pcg_iterations + r64.pcg_iterations / 2 + 2,
        "f32 iterations {} vs f64 iterations {}",
        r32.pcg_iterations,
        r64.pcg_iterations
    );

    // Test accuracy is indistinguishable.
    let acc64 = accuracy(&m64.predict(&ds.test), &ds.test_labels);
    let acc32 = accuracy(&m32.predict(&ds.test), &ds.test_labels);
    assert!(
        (acc64 - acc32).abs() <= 0.005,
        "accuracy f64 {acc64} vs f32 {acc32}"
    );
}

#[test]
fn f32_factor_models_resolve_new_labels_like_their_own_weights() {
    // The retained f32 factor store is the one used for post-training
    // solves: feeding the training labels back through solve_new_labels
    // must reproduce the model's own weights bitwise.
    let spec = spec_by_name("LETTER").unwrap();
    let ds = generate(&spec, 500, 100, 17);
    let cfg = KrrConfig {
        h: spec.default_h,
        lambda: spec.default_lambda,
        clustering: ClusteringMethod::TwoMeans { seed: 3 },
        solver: SolverKind::HssPcg,
        ..KrrConfig::default()
    }
    .with_factor_precision(FactorPrecision::F32);
    let model = KrrModel::fit(&ds.train, &ds.train_labels, &cfg).unwrap();
    let resolved = model.solve_new_labels(&ds.train_labels).unwrap();
    assert_eq!(resolved, model.weights().to_vec());
}

#[test]
fn f32_factor_training_is_deterministic() {
    let spec = spec_by_name("SUSY").unwrap();
    let ds = generate(&spec, 400, 50, 29);
    let cfg = KrrConfig {
        h: spec.default_h,
        lambda: spec.default_lambda,
        solver: SolverKind::HssPcg,
        ..KrrConfig::default()
    }
    .with_factor_precision(FactorPrecision::F32);
    let a = KrrModel::fit(&ds.train, &ds.train_labels, &cfg).unwrap();
    let b = KrrModel::fit(&ds.train, &ds.train_labels, &cfg).unwrap();
    assert_eq!(a.weights(), b.weights());
    assert_eq!(a.report().factor_bytes, b.report().factor_bytes);
}
