//! Property-based tests (proptest) on the core compression invariants:
//! for randomly generated point clouds, bandwidths and tolerances, the
//! hierarchical representations must agree with the dense kernel matrix
//! and the ULV solve must satisfy its residual bound.

use hkrr::clustering::{cluster, ClusteringMethod};
use hkrr::hmatrix::{build_hmatrix, HOptions};
use hkrr::hss::{construct::compress_symmetric, HssOptions, UlvFactorization};
use hkrr::kernel::{KernelFunction, KernelMatrix};
use hkrr::linalg::{blas, Matrix, Pcg64};
use proptest::prelude::*;

/// Generates a clustered point cloud: `n` points in `d` dimensions drawn
/// around `blobs` random centres.
fn make_points(n: usize, d: usize, blobs: usize, seed: u64) -> Matrix {
    let mut rng = Pcg64::seed_from_u64(seed);
    let centres: Vec<Vec<f64>> = (0..blobs)
        .map(|_| (0..d).map(|_| 4.0 * rng.next_gaussian()).collect())
        .collect();
    Matrix::from_fn(n, d, |i, j| {
        centres[i % blobs][j] + 0.5 * rng.next_gaussian()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// HSS compression + matvec agrees with the dense kernel matrix to the
    /// requested tolerance, for arbitrary clustered geometry and bandwidth.
    #[test]
    fn hss_matvec_matches_dense(
        n in 64usize..200,
        d in 1usize..6,
        blobs in 1usize..5,
        h in 0.5f64..4.0,
        seed in 0u64..1000,
        method_sel in 0usize..3,
    ) {
        let points = make_points(n, d, blobs, seed);
        let method = match method_sel {
            0 => ClusteringMethod::Natural,
            1 => ClusteringMethod::KdTree,
            _ => ClusteringMethod::TwoMeans { seed },
        };
        let ordering = cluster(&points, method, 16);
        let permuted = points.select_rows(ordering.permutation());
        let km = KernelMatrix::new(permuted, KernelFunction::gaussian(h));
        let hss = compress_symmetric(
            &km,
            &km,
            ordering.tree().clone(),
            &HssOptions { tolerance: 1e-6, ..Default::default() },
        ).unwrap();

        let dense = km.assemble_dense();
        let mut rng = Pcg64::seed_from_u64(seed ^ 0xabc);
        let x: Vec<f64> = (0..n).map(|_| rng.next_gaussian()).collect();
        let mut y_hss = vec![0.0; n];
        let mut y_ref = vec![0.0; n];
        hss.matvec(&x, &mut y_hss);
        blas::gemv(&dense, &x, &mut y_ref);
        let err = y_hss.iter().zip(&y_ref).map(|(a, b)| (a - b) * (a - b)).sum::<f64>().sqrt()
            / blas::nrm2(&y_ref).max(1e-30);
        prop_assert!(err < 1e-3, "relative matvec error {err}");
        // Memory never exceeds a small multiple of dense.
        prop_assert!(hss.memory_bytes() <= 3 * dense.memory_bytes());
    }

    /// The ULV solve of the regularized kernel system has a tiny residual
    /// with respect to the compressed operator, for arbitrary lambda > 0.
    #[test]
    fn ulv_solve_residual_is_small(
        n in 64usize..180,
        d in 1usize..5,
        h in 0.5f64..3.0,
        lambda in 0.01f64..10.0,
        seed in 0u64..1000,
    ) {
        let points = make_points(n, d, 3, seed);
        let ordering = cluster(&points, ClusteringMethod::TwoMeans { seed }, 16);
        let permuted = points.select_rows(ordering.permutation());
        let km = KernelMatrix::new(permuted, KernelFunction::gaussian(h));
        let mut hss = compress_symmetric(
            &km,
            &km,
            ordering.tree().clone(),
            &HssOptions { tolerance: 1e-4, ..Default::default() },
        ).unwrap();
        hss.set_diagonal_shift(lambda);
        let factor = UlvFactorization::factor(&hss).unwrap();

        let mut rng = Pcg64::seed_from_u64(seed ^ 0x123);
        let b: Vec<f64> = (0..n).map(|_| rng.next_gaussian()).collect();
        let x = factor.solve(&b).unwrap();
        let mut ax = vec![0.0; n];
        hss.matvec(&x, &mut ax);
        let res = ax.iter().zip(&b).map(|(a, b)| (a - b) * (a - b)).sum::<f64>().sqrt()
            / blas::nrm2(&b);
        prop_assert!(res < 1e-8, "residual {res}");
    }

    /// The H-matrix approximation agrees with the dense kernel matrix and
    /// its block partition always covers each entry exactly once.
    #[test]
    fn hmatrix_agrees_with_dense(
        n in 64usize..200,
        d in 1usize..4,
        blobs in 2usize..6,
        h in 0.5f64..3.0,
        seed in 0u64..1000,
    ) {
        let points = make_points(n, d, blobs, seed);
        let ordering = cluster(&points, ClusteringMethod::TwoMeans { seed }, 16);
        let permuted = points.select_rows(ordering.permutation());
        let km = KernelMatrix::new(permuted.clone(), KernelFunction::gaussian(h));
        let hm = build_hmatrix(&km, &permuted, ordering.tree(), &HOptions {
            tolerance: 1e-6,
            ..Default::default()
        });
        let dense = km.assemble_dense();
        let err = blas::relative_error(&dense, &hm.to_dense());
        prop_assert!(err < 1e-3, "H reconstruction error {err}");

        let mut covered = vec![0u32; n * n];
        for b in hm.blocks() {
            for i in b.rows.clone() {
                for j in b.cols.clone() {
                    covered[i * n + j] += 1;
                }
            }
        }
        prop_assert!(covered.iter().all(|&c| c == 1));
    }

    /// Every clustering method returns a valid permutation and a tree whose
    /// leaves partition the index range, for arbitrary inputs.
    #[test]
    fn clustering_invariants(
        n in 1usize..400,
        d in 1usize..8,
        blobs in 1usize..6,
        seed in 0u64..1000,
        leaf in 4usize..40,
    ) {
        let points = make_points(n, d, blobs, seed);
        for method in [
            ClusteringMethod::Natural,
            ClusteringMethod::KdTree,
            ClusteringMethod::PcaTree,
            ClusteringMethod::TwoMeans { seed },
        ] {
            let ordering = cluster(&points, method, leaf);
            prop_assert!(hkrr::clustering::permutation_is_valid(ordering.permutation(), n));
            prop_assert!(ordering.tree().validate().is_ok());
            let total: usize = ordering.tree().leaves().iter()
                .map(|&l| ordering.tree().node(l).size).sum();
            prop_assert_eq!(total, n);
        }
    }
}
