//! Cross-crate integration tests: the full Algorithm-1 pipeline, solver
//! equivalence, and the clustering/memory claims of the paper, exercised
//! through the public `hkrr` API.

use hkrr::prelude::*;

fn letter_dataset(seed: u64, n_train: usize, n_test: usize) -> hkrr::datasets::Dataset {
    generate(&spec_by_name("LETTER").unwrap(), n_train, n_test, seed)
}

#[test]
fn hss_and_dense_solvers_agree_on_accuracy_and_weights() {
    let spec = spec_by_name("LETTER").unwrap();
    let ds = letter_dataset(1, 600, 150);
    let base = KrrConfig {
        h: spec.default_h,
        lambda: spec.default_lambda,
        clustering: ClusteringMethod::TwoMeans { seed: 3 },
        ..KrrConfig::default()
    };

    let dense = KrrModel::fit(
        &ds.train,
        &ds.train_labels,
        &base.with_solver(SolverKind::DenseCholesky),
    )
    .unwrap();
    let hss = KrrModel::fit(
        &ds.train,
        &ds.train_labels,
        &base.with_solver(SolverKind::Hss),
    )
    .unwrap();

    let acc_dense = accuracy(&dense.predict(&ds.test), &ds.test_labels);
    let acc_hss = accuracy(&hss.predict(&ds.test), &ds.test_labels);
    assert!(acc_dense > 0.9, "dense accuracy {acc_dense}");
    assert!(
        (acc_dense - acc_hss).abs() <= 0.03,
        "accuracy gap: dense {acc_dense}, hss {acc_hss}"
    );

    // The decision values (not just the signs) should be close: the paper's
    // observation that the sign computation only needs a few digits.
    let dv_dense = dense.decision_values(&ds.test);
    let dv_hss = hss.decision_values(&ds.test);
    let mut agree = 0;
    for (a, b) in dv_dense.iter().zip(dv_hss.iter()) {
        if a.signum() == b.signum() {
            agree += 1;
        }
    }
    assert!(agree as f64 / dv_dense.len() as f64 > 0.95);
}

#[test]
fn all_solvers_produce_models_on_every_dataset_family() {
    for name in ["SUSY", "LETTER", "COVTYPE"] {
        let spec = spec_by_name(name).unwrap();
        let ds = generate(&spec, 300, 60, 11);
        for solver in [
            SolverKind::DenseCholesky,
            SolverKind::Hss,
            SolverKind::HssWithHSampling,
            SolverKind::HssPcg,
        ] {
            let cfg = KrrConfig {
                h: spec.default_h,
                lambda: spec.default_lambda,
                solver,
                ..KrrConfig::default()
            };
            let model = KrrModel::fit(&ds.train, &ds.train_labels, &cfg)
                .unwrap_or_else(|e| panic!("{name}/{solver:?} failed: {e}"));
            let preds = model.predict(&ds.test);
            assert_eq!(preds.len(), 60);
            assert!(preds.iter().all(|&p| p == 1.0 || p == -1.0));
        }
    }
}

#[test]
fn hss_pcg_matches_direct_solvers_on_the_medium_bench_dataset() {
    // The perf harness's medium workload family (SUSY), at test scale:
    // the PCG path factors a 10× looser compression yet — because the
    // Krylov iteration runs on the exact operator — reproduces the exact
    // (dense) solve to solver precision and the direct HSS solve's test
    // accuracy.
    let spec = spec_by_name("SUSY").unwrap();
    let ds = generate(&spec, 1200, 200, 43);
    let base = KrrConfig {
        h: spec.default_h,
        lambda: spec.default_lambda,
        clustering: ClusteringMethod::TwoMeans { seed: 7 },
        ..KrrConfig::default()
    };

    let dense = KrrModel::fit(
        &ds.train,
        &ds.train_labels,
        &base.with_solver(SolverKind::DenseCholesky),
    )
    .unwrap();
    let hss = KrrModel::fit(
        &ds.train,
        &ds.train_labels,
        &base.with_solver(SolverKind::Hss),
    )
    .unwrap();
    let pcg = KrrModel::fit(
        &ds.train,
        &ds.train_labels,
        &base.with_solver(SolverKind::HssPcg),
    )
    .unwrap();

    // Factored at ≥ 10× looser HSS tolerance…
    assert!(pcg.config().pcg_loosening >= 10.0);
    assert!(
        pcg.report().matrix_memory_bytes <= hss.report().matrix_memory_bytes,
        "loose preconditioner {} vs direct compression {}",
        pcg.report().matrix_memory_bytes,
        hss.report().matrix_memory_bytes
    );

    // …yet the predictions solve the exact system: RMSE vs the exact
    // dense solve is at solver precision.
    let dv_dense = dense.decision_values(&ds.test);
    let dv_pcg = pcg.decision_values(&ds.test);
    let rmse = dv_dense
        .iter()
        .zip(dv_pcg.iter())
        .map(|(a, b)| (a - b) * (a - b))
        .sum::<f64>()
        .sqrt()
        / (dv_dense.len() as f64).sqrt();
    assert!(rmse < 1e-6, "hss-pcg vs exact dense solve RMSE {rmse}");

    // At least the direct HSS path's test accuracy — on this workload the
    // compressed direct solve actually loses accuracy to its tolerance,
    // while PCG tracks the exact solve.
    let acc_dense = accuracy(&dense.predict(&ds.test), &ds.test_labels);
    let acc_hss = accuracy(&hss.predict(&ds.test), &ds.test_labels);
    let acc_pcg = accuracy(&pcg.predict(&ds.test), &ds.test_labels);
    assert!(
        acc_pcg >= acc_hss - 0.01,
        "hss {acc_hss} vs hss-pcg {acc_pcg}"
    );
    assert!(
        (acc_pcg - acc_dense).abs() <= 0.005,
        "hss-pcg {acc_pcg} should track the exact solve {acc_dense}"
    );

    // The iteration metrics landed in the report.
    let r = pcg.report();
    assert!(r.pcg_iterations > 0);
    assert!(r.pcg_seconds > 0.0);
    assert!(!r.pcg_residual_history.is_empty());
}

#[test]
fn clustering_reduces_hss_memory_without_hurting_accuracy() {
    // The paper's Table 2 claim, at small scale: 2MN uses (much) less
    // memory than the natural ordering and the accuracy is unchanged.
    let spec = spec_by_name("GAS").unwrap();
    let ds = generate(&spec, 800, 150, 5);
    let base = KrrConfig {
        h: spec.default_h,
        lambda: spec.default_lambda,
        solver: SolverKind::Hss,
        ..KrrConfig::default()
    };

    let natural = KrrModel::fit(
        &ds.train,
        &ds.train_labels,
        &base.with_clustering(ClusteringMethod::Natural),
    )
    .unwrap();
    let two_means = KrrModel::fit(
        &ds.train,
        &ds.train_labels,
        &base.with_clustering(ClusteringMethod::TwoMeans { seed: 9 }),
    )
    .unwrap();

    let mem_np = natural.report().matrix_memory_bytes;
    let mem_2mn = two_means.report().matrix_memory_bytes;
    assert!(
        (mem_2mn as f64) < 0.9 * mem_np as f64,
        "2MN memory {mem_2mn} should be well below NP memory {mem_np}"
    );

    let acc_np = accuracy(&natural.predict(&ds.test), &ds.test_labels);
    let acc_2mn = accuracy(&two_means.predict(&ds.test), &ds.test_labels);
    assert!(
        (acc_np - acc_2mn).abs() <= 0.05,
        "NP {acc_np} vs 2MN {acc_2mn}"
    );
}

#[test]
fn lambda_is_a_cheap_update_through_the_public_api() {
    // Changing lambda (but not h) must not change the compressed memory —
    // only the diagonal is updated.
    let spec = spec_by_name("SUSY").unwrap();
    let ds = generate(&spec, 400, 50, 13);
    let cfg = KrrConfig {
        h: spec.default_h,
        solver: SolverKind::Hss,
        ..KrrConfig::default()
    };
    let a = KrrModel::fit(&ds.train, &ds.train_labels, &cfg.with_lambda(0.5)).unwrap();
    let b = KrrModel::fit(&ds.train, &ds.train_labels, &cfg.with_lambda(8.0)).unwrap();
    assert_eq!(
        a.report().matrix_memory_bytes,
        b.report().matrix_memory_bytes,
        "lambda must not affect the compressed-matrix memory"
    );
    assert_eq!(a.report().max_rank, b.report().max_rank);
}

#[test]
fn multiclass_one_vs_all_through_the_public_api() {
    let spec = spec_by_name("PEN").unwrap();
    let ds = generate_multiclass(&spec, 5, 500, 120, 21);
    let cfg = KrrConfig {
        h: spec.default_h,
        lambda: spec.default_lambda,
        solver: SolverKind::Hss,
        ..KrrConfig::default()
    };
    let model = MulticlassKrr::fit(&ds.train, &ds.train_labels, 5, &cfg).unwrap();
    let acc = model.accuracy(&ds.test, &ds.test_labels);
    assert!(acc > 0.75, "multi-class accuracy {acc}");
    let preds = model.predict(&ds.test);
    assert!(preds.iter().all(|&p| p < 5));
}

#[test]
fn tuner_improves_over_a_bad_starting_point() {
    let spec = spec_by_name("SUSY").unwrap();
    let ds = generate(&spec, 500, 150, 31);
    let n_train = 400;
    let train = ds.train.submatrix(0, n_train, 0, ds.train.ncols());
    let train_labels = ds.train_labels[..n_train].to_vec();
    let valid = ds.train.submatrix(n_train, 500, 0, ds.train.ncols());
    let valid_labels = ds.train_labels[n_train..].to_vec();

    let base = KrrConfig {
        solver: SolverKind::Hss,
        ..KrrConfig::default()
    };
    let objective = ValidationObjective::new(&train, &train_labels, &valid, &valid_labels, base);
    // A deliberately bad configuration.
    let bad = hkrr::tuner::Objective::evaluate(&objective, 1e-3, 10.0);
    let tuned = black_box_search(
        &objective,
        &SearchOptions {
            budget: 15,
            ..Default::default()
        },
    );
    assert!(
        tuned.best.accuracy >= bad,
        "tuning ({}) should not lose to a bad fixed point ({bad})",
        tuned.best.accuracy
    );
    assert_eq!(tuned.num_evaluations(), 15);
}

#[test]
fn reproducibility_fixed_seeds_give_identical_models() {
    let spec = spec_by_name("LETTER").unwrap();
    let ds = letter_dataset(77, 300, 50);
    let cfg = KrrConfig {
        h: spec.default_h,
        lambda: spec.default_lambda,
        solver: SolverKind::Hss,
        clustering: ClusteringMethod::TwoMeans { seed: 42 },
        ..KrrConfig::default()
    };
    let a = KrrModel::fit(&ds.train, &ds.train_labels, &cfg).unwrap();
    let b = KrrModel::fit(&ds.train, &ds.train_labels, &cfg).unwrap();
    assert_eq!(a.weights(), b.weights());
    assert_eq!(a.predict(&ds.test), b.predict(&ds.test));
}
