//! Tentpole acceptance of the sharded-ensemble subsystem, pinned on the
//! medium (SUSY-like) workload:
//!
//! 1. a 4-shard cluster-routed ensemble **trains strictly faster** than the
//!    monolithic HSS solve — the shard-sum of per-phase training time (and
//!    of the factorizations) recorded in `EnsembleReport` beats the single
//!    big solve,
//! 2. its prediction RMSE against the true labels **matches the monolithic
//!    model within 5%**,
//! 3. cluster sharding is **at least as accurate as random sharding** at
//!    equal `k`,
//! 4. ensemble save → load → **serve over TCP is bitwise identical** to
//!    in-process prediction.
//!
//! The workload is exactly the perf harness's "medium" instance (SUSY-like,
//! n = 2000, seed 43); the whole pipeline is bitwise deterministic for
//! fixed seeds, so the accuracy comparisons are exact, not statistical.

use hkrr::ensemble::{EnsembleConfig, EnsembleKrr, ShardStrategy};
use hkrr::krr::{accuracy, KrrConfig, KrrModel, SolverKind};
use hkrr::serve::codec::{decode_any, encode_ensemble};
use hkrr::serve::engine::EngineConfig;
use hkrr::serve::server::{Client, Server, ServerConfig};

use hkrr::datasets::registry::SUSY;

const N_TRAIN: usize = 2000;
const N_TEST: usize = 300;
const SEED: u64 = 43;

fn base_config() -> KrrConfig {
    KrrConfig {
        h: SUSY.default_h,
        lambda: SUSY.default_lambda,
        solver: SolverKind::Hss,
        ..KrrConfig::default()
    }
}

fn ensemble_config(strategy: ShardStrategy) -> EnsembleConfig {
    EnsembleConfig {
        shards: 4,
        route_nearest: 2,
        strategy,
        base: base_config(),
    }
}

/// RMSE of ±1 predictions against the true ±1 labels — the task-level
/// error metric (a per-shard model's decision-value *magnitudes* shrink
/// with its training-set size, so raw scores are not comparable across
/// model granularities; the predictions are).
fn label_rmse(predictions: &[f64], labels: &[f64]) -> f64 {
    let sum: f64 = predictions
        .iter()
        .zip(labels.iter())
        .map(|(p, l)| (p - l) * (p - l))
        .sum();
    (sum / predictions.len() as f64).sqrt()
}

#[test]
fn four_shard_cluster_ensemble_beats_the_monolithic_solve_on_the_medium_workload() {
    let ds = hkrr::datasets::generate(&SUSY, N_TRAIN, N_TEST, SEED);

    let mono = KrrModel::fit(&ds.train, &ds.train_labels, &base_config()).unwrap();
    let ens = EnsembleKrr::fit(
        &ds.train,
        &ds.train_labels,
        &ensemble_config(ShardStrategy::Cluster),
    )
    .unwrap();
    let random = EnsembleKrr::fit(
        &ds.train,
        &ds.train_labels,
        &ensemble_config(ShardStrategy::Random {
            seed: SEED ^ 0xbeef,
        }),
    )
    .unwrap();

    // --- 1. Training cost: shard-sum vs the single big solve, as recorded
    // in the reports.
    let mono_report = mono.report();
    let ens_report = ens.report();
    assert_eq!(ens_report.num_shards(), 4);
    assert_eq!(ens_report.num_train(), N_TRAIN);
    let mono_total = mono_report.total_seconds();
    let shard_sum_total = ens_report.sum_total_seconds();
    eprintln!(
        "train: monolithic {mono_total:.3}s vs shard-sum {shard_sum_total:.3}s \
         (fit wall {:.3}s)",
        ens_report.fit_wall_seconds
    );
    assert!(
        shard_sum_total < mono_total,
        "4-shard ensemble must train strictly faster: shard-sum {shard_sum_total:.3}s \
         vs monolithic {mono_total:.3}s"
    );
    let mono_factor = mono_report.factorization_seconds;
    let shard_sum_factor = ens_report.sum_factorization_seconds();
    eprintln!("factorization: monolithic {mono_factor:.4}s vs shard-sum {shard_sum_factor:.4}s");
    assert!(
        shard_sum_factor < mono_factor,
        "sum of shard factorizations {shard_sum_factor:.4}s must beat the single \
         factorization {mono_factor:.4}s"
    );

    // --- 2. Accuracy: prediction RMSE within 5% of the monolith.
    let ens_scores = ens.decision_values(&ds.test);
    let mono_rmse = label_rmse(&mono.predict(&ds.test), &ds.test_labels);
    let ens_rmse = label_rmse(&ens.predict(&ds.test), &ds.test_labels);
    eprintln!("rmse: monolithic {mono_rmse:.4} vs ensemble {ens_rmse:.4}");
    assert!(
        ens_rmse <= 1.05 * mono_rmse,
        "ensemble RMSE {ens_rmse:.4} exceeds monolithic {mono_rmse:.4} by more than 5%"
    );

    // --- 3. Cluster sharding ≥ random sharding at equal k.
    let cluster_acc = accuracy(&ens.predict(&ds.test), &ds.test_labels);
    let random_acc = accuracy(&random.predict(&ds.test), &ds.test_labels);
    let mono_acc = accuracy(&mono.predict(&ds.test), &ds.test_labels);
    eprintln!("accuracy: mono {mono_acc:.4}, cluster {cluster_acc:.4}, random {random_acc:.4}");
    assert!(
        cluster_acc >= random_acc,
        "cluster sharding ({cluster_acc:.4}) must not lose to random sharding ({random_acc:.4})"
    );

    // --- 4. Save → load → serve over TCP, bitwise.
    let loaded = decode_any(&encode_ensemble(&ens)).unwrap();
    assert!(loaded.is_ensemble());
    let server = Server::start(
        loaded.into_handle(),
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            engine: EngineConfig {
                workers: 2,
                ..EngineConfig::default()
            },
        },
    )
    .unwrap();
    let mut client = Client::connect(&server.local_addr().to_string()).unwrap();
    for i in 0..ds.test.nrows() {
        let p = client.predict(ds.test.row(i).to_vec()).unwrap();
        assert_eq!(
            p.score, ens_scores[i],
            "query {i}: served ensemble prediction is not bitwise identical"
        );
    }
    let stats = server.stats();
    assert_eq!(stats.requests, N_TEST as u64);
    assert_eq!(stats.num_models, 4);
    assert_eq!(
        stats.model_requests.iter().sum::<u64>(),
        2 * N_TEST as u64,
        "route_nearest=2 sends every query to exactly two shards"
    );
    server.shutdown();
}
