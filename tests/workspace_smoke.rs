//! Workspace smoke test: drives the quickstart path — synthetic dataset →
//! clustering → HSS compression → ULV solve → prediction — entirely through
//! the umbrella crate's re-export surface (`hkrr::…` and `hkrr::prelude`),
//! so a broken re-export or a leaf-crate API drift fails here even when the
//! leaf crates' own tests still pass.

use hkrr::prelude::*;

/// The end-to-end quickstart path at test scale, through the prelude only.
#[test]
fn quickstart_path_through_prelude() {
    let spec = spec_by_name("LETTER").expect("LETTER spec registered");
    let ds = generate(&spec, 400, 100, 42);
    assert_eq!(ds.num_train(), 400);
    assert_eq!(ds.num_test(), 100);
    assert_eq!(ds.dim(), spec.dim);

    let hss_config = KrrConfig {
        h: spec.default_h,
        lambda: spec.default_lambda,
        clustering: ClusteringMethod::TwoMeans { seed: 7 },
        solver: SolverKind::Hss,
        ..KrrConfig::default()
    };
    let hss_model = KrrModel::fit(&ds.train, &ds.train_labels, &hss_config).unwrap();
    let hss_acc = accuracy(&hss_model.predict(&ds.test), &ds.test_labels);

    let dense_config = hss_config.with_solver(SolverKind::DenseCholesky);
    let dense_model = KrrModel::fit(&ds.train, &ds.train_labels, &dense_config).unwrap();
    let dense_acc = accuracy(&dense_model.predict(&ds.test), &ds.test_labels);

    // The paper's central claim at toy scale: the compressed solver tracks
    // the exact one. Both should clear chance by a wide margin, and agree.
    assert!(dense_acc > 0.6, "dense accuracy {dense_acc}");
    assert!(
        (hss_acc - dense_acc).abs() < 0.1,
        "HSS accuracy {hss_acc} diverges from dense {dense_acc}"
    );

    // The training report carries the paper's resource metrics.
    let report = hss_model.report();
    assert!(report.matrix_memory_mb() > 0.0);
    assert!(report.max_rank > 0);
    assert!(report.total_seconds() >= 0.0);
}

/// The same pipeline assembled from the individual re-exported crates
/// (cluster → compress → shift → factor → solve), checking the pieces line
/// up across `hkrr::clustering` / `hkrr::kernel` / `hkrr::hss`.
#[test]
fn manual_pipeline_through_reexports() {
    use hkrr::hss::{construct::compress_symmetric, HssOptions, UlvFactorization};
    use hkrr::kernel::{KernelFunction, KernelMatrix};
    use hkrr::linalg::{blas, Pcg64};

    let mut rng = Pcg64::seed_from_u64(3);
    let n = 256;
    let points = hkrr::linalg::Matrix::from_fn(
        n,
        4,
        |i, _| if i % 2 == 0 { 3.0 } else { -3.0 } + rng.next_gaussian(),
    );

    let ordering = hkrr::clustering::cluster(&points, ClusteringMethod::KdTree, DEFAULT_LEAF_SIZE);
    assert!(hkrr::clustering::permutation_is_valid(
        ordering.permutation(),
        n
    ));

    let permuted = points.select_rows(ordering.permutation());
    let km = KernelMatrix::new(permuted, KernelFunction::gaussian(1.5));
    let mut hss = compress_symmetric(
        &km,
        &km,
        ordering.tree().clone(),
        &HssOptions {
            tolerance: 1e-6,
            ..Default::default()
        },
    )
    .unwrap();

    hss.set_diagonal_shift(0.5);
    let factor = UlvFactorization::factor(&hss).unwrap();
    let b: Vec<f64> = (0..n).map(|_| rng.next_gaussian()).collect();
    let x = factor.solve(&b).unwrap();

    let mut ax = vec![0.0; n];
    hss.matvec(&x, &mut ax);
    let res_num: f64 = ax
        .iter()
        .zip(&b)
        .map(|(a, b)| (a - b) * (a - b))
        .sum::<f64>()
        .sqrt();
    let res = res_num / blas::nrm2(&b);
    assert!(res < 1e-8, "ULV residual {res}");
}

/// The tuner's re-export surface: a tiny grid search over (h, lambda) runs
/// every grid point and reports the best one.
#[test]
fn tuner_grid_search_through_prelude() {
    let spec = spec_by_name("PEN").expect("PEN spec registered");
    let ds = generate(&spec, 200, 60, 11);
    let objective = ValidationObjective::new(
        &ds.train,
        &ds.train_labels,
        &ds.test,
        &ds.test_labels,
        KrrConfig::default(),
    );
    let grid = GridSpec {
        h_min: spec.default_h * 0.5,
        h_max: spec.default_h,
        h_steps: 2,
        lambda_min: spec.default_lambda,
        lambda_max: spec.default_lambda,
        lambda_steps: 1,
    };
    let result = grid_search(&objective, &grid);
    assert_eq!(result.num_evaluations(), 2);
    let best_seen = result
        .history
        .iter()
        .map(|e| e.accuracy)
        .fold(0.0, f64::max);
    assert!(result.best.accuracy >= best_seen - 1e-12);
}
