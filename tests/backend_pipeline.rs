//! Pipeline-level cross-backend contract: the full train/predict pipeline
//! must produce models of equivalent quality under every dense backend.
//!
//! This lives in its own integration binary because it switches the
//! process-global dense backend; keeping the sweep inside a single `#[test]`
//! serializes the switches away from every other test binary.

use hkrr::linalg::backend::{self, BackendKind};
use hkrr::prelude::*;

/// Trains the medium workload under each available backend in turn and
/// bounds the drift of the decision values and the accuracy against the
/// scalar reference run.
///
/// The backends are only accuracy-equivalent, not bitwise-equivalent: the
/// blocked/AVX2 substrates reassociate reductions, and the drift is then
/// filtered through rank decisions inside the HSS compression. The bounds
/// below are therefore set at the compression tolerance scale, far above
/// ulp noise but far below anything that would move a prediction.
#[test]
fn pipeline_quality_is_backend_independent() {
    let spec = spec_by_name("SUSY").unwrap();
    let ds = generate(&spec, 800, 200, 17);
    let cfg = KrrConfig {
        h: spec.default_h,
        lambda: spec.default_lambda,
        clustering: ClusteringMethod::TwoMeans { seed: 5 },
        solver: SolverKind::Hss,
        ..KrrConfig::default()
    };

    let initial = backend::active_kind();
    let mut reference: Option<(f64, Vec<f64>)> = None;
    for kind in backend::available_backends() {
        backend::set_active(kind).unwrap();
        let model = KrrModel::fit(&ds.train, &ds.train_labels, &cfg)
            .unwrap_or_else(|e| panic!("{kind} backend: training failed: {e}"));
        let acc = accuracy(&model.predict(&ds.test), &ds.test_labels);
        let dv = model.decision_values(&ds.test);
        match &reference {
            None => {
                // Scalar heads the availability list: it is the reference.
                assert_eq!(kind, BackendKind::Scalar);
                assert!(acc > 0.7, "scalar accuracy {acc}");
                reference = Some((acc, dv));
            }
            Some((scalar_acc, scalar_dv)) => {
                assert!(
                    (acc - scalar_acc).abs() <= 0.02,
                    "{kind}: accuracy drifted {acc} vs scalar {scalar_acc}"
                );
                let rmse = (dv
                    .iter()
                    .zip(scalar_dv.iter())
                    .map(|(a, b)| (a - b) * (a - b))
                    .sum::<f64>()
                    / dv.len() as f64)
                    .sqrt();
                let scale = (scalar_dv.iter().map(|v| v * v).sum::<f64>() / scalar_dv.len() as f64)
                    .sqrt()
                    .max(1e-300);
                assert!(
                    rmse / scale <= 1e-2,
                    "{kind}: decision-value RMSE {rmse:e} exceeds 1% of scale {scale:e}"
                );
            }
        }
    }
    backend::set_active(initial).unwrap();
}

/// Re-training under the *same* backend is bitwise deterministic — the
/// cross-backend tolerance above is not an excuse for run-to-run noise.
#[test]
fn retraining_is_bitwise_deterministic_per_backend() {
    let spec = spec_by_name("LETTER").unwrap();
    let ds = generate(&spec, 300, 60, 23);
    let cfg = KrrConfig {
        h: spec.default_h,
        lambda: spec.default_lambda,
        clustering: ClusteringMethod::TwoMeans { seed: 9 },
        solver: SolverKind::Hss,
        ..KrrConfig::default()
    };
    let a = KrrModel::fit(&ds.train, &ds.train_labels, &cfg).unwrap();
    let b = KrrModel::fit(&ds.train, &ds.train_labels, &cfg).unwrap();
    assert_eq!(
        a.decision_values(&ds.test),
        b.decision_values(&ds.test),
        "same backend, same seed: decision values must be bitwise identical"
    );
}
