//! ULV factorization and solve for symmetric HSS matrices.
//!
//! This is the solver STRUMPACK pairs with its HSS compression
//! (Chandrasekaran, Gu & Pals 2006): at every node an orthogonal transform
//! zeroes the rows of the basis `U_i`, which decouples `size − rank` local
//! unknowns from the rest of the system; those unknowns are eliminated with
//! a small LU, and the surviving `rank` unknowns are merged at the parent.
//! The root solves a single dense system of size `rank(c1) + rank(c2)`.
//! Both factorization and solve cost `O(r² n)` / `O(r n)`, which is what
//! makes the kernel ridge regression training step scale.
//!
//! The factorization is **level-parallel**: independent sibling subtrees
//! factor concurrently (each node only needs its children's factors), and
//! the top levels — where fewer nodes than workers remain — degrade to the
//! sequential schedule naturally. Per-node arithmetic is identical to the
//! sequential order, so factors are bitwise reproducible across thread
//! counts.
//!
//! # Mixed-precision factor store
//!
//! Factorization always runs in f64, but the *stored* factors are a
//! [`FactorPrecision`]-parametric store: [`UlvFactorization::to_f32`]
//! demotes every per-node solve-path block (transforms, coupling blocks,
//! eliminated LUs) to f32 and drops the factorization-only blocks
//! (`dtilde`, `uhat`) entirely — the solve sweeps never read them. Only
//! the tiny, globally coupled root LU stays f64. That more than halves
//! factor memory and memory bandwidth in the preconditioner-apply loop,
//! which the paper's tolerance-vs-accuracy study licenses when the
//! factorization is used only as a PCG preconditioner on the exact
//! operator (see [`crate::precond`]).
//!
//! The demoted sweep reads f32 storage but computes in f64 through the
//! widened kernels of the seam
//! ([`hkrr_linalg::DenseBackendF32::gemv_f64`] and friends), so the apply
//! stays an exact *linear* operator — the property CG's recurrences rest
//! on; only the factors' one-time storage rounding separates it from the
//! f64 preconditioner.

use crate::HssMatrix;
use hkrr_clustering::ClusterTree;
use hkrr_linalg::lu::{lu, Lu};
use hkrr_linalg::qr::full_qr;
use hkrr_linalg::{
    active_f32, blas, dense_backend, LinalgError, LinalgResult, LuF32, Matrix, MatrixF32,
};
use rayon::prelude::*;

/// Storage precision of a ULV factor store.
///
/// `F64` is the precision factors are *computed* in and the default the
/// whole pipeline is bitwise-pinned on; `F32` is the demoted store produced
/// by [`UlvFactorization::to_f32`], intended for the preconditioner role
/// where the outer f64 iteration absorbs the demotion error.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FactorPrecision {
    /// Double-precision factors (the default; bitwise-pinned behavior).
    F64,
    /// Single-precision factors: half the memory and bandwidth per apply.
    F32,
}

impl FactorPrecision {
    /// Stable lowercase name (`"f64"` / `"f32"`), used by config parsing,
    /// the codec info output and metric labels.
    pub fn as_str(self) -> &'static str {
        match self {
            FactorPrecision::F64 => "f64",
            FactorPrecision::F32 => "f32",
        }
    }

    /// Parses a precision name (case-insensitive).
    pub fn parse(name: &str) -> Option<FactorPrecision> {
        match name.to_ascii_lowercase().as_str() {
            "f64" => Some(FactorPrecision::F64),
            "f32" => Some(FactorPrecision::F32),
            _ => None,
        }
    }
}

impl std::fmt::Display for FactorPrecision {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Off-diagonal coupling block `(U₁ · B) · U₂ᵀ` through the dense backend,
/// without materializing `U₂ᵀ`.
fn coupling_block(u1: &Matrix, b: &Matrix, u2: &Matrix) -> Matrix {
    let be = dense_backend();
    let mut tmp = Matrix::zeros(u1.nrows(), b.ncols());
    be.gemm_into(u1, b, &mut tmp);
    let mut off = Matrix::zeros(tmp.nrows(), u2.nrows());
    be.gemm_nt_into(&tmp, u2, &mut off);
    off
}

/// Per-node data stored by the factorization. The fields are public so a
/// factorization can be serialized and rebuilt (via
/// [`UlvFactorization::from_parts`]) without re-eliminating anything.
#[derive(Debug, Clone)]
pub struct UlvNodeFactor {
    /// Orthogonal transform `W` (size `m x m`): local unknowns are
    /// `x_local = W w`.
    pub w: Matrix,
    /// Number of eliminated unknowns (`m - rank`).
    pub elim: usize,
    /// HSS rank of the node (number of unknowns passed to the parent).
    pub rank: usize,
    /// LU factorization of the leading `elim x elim` block.
    pub d11_lu: Option<Lu>,
    /// Top-right coupling block of the transformed diagonal block.
    pub d12: Matrix,
    /// Bottom-left coupling block of the transformed diagonal block.
    pub d21: Matrix,
    /// Schur complement passed to the parent (`rank x rank`).
    pub dtilde: Matrix,
    /// Reduced basis `Û` (`rank x rank`, upper triangular).
    pub uhat: Matrix,
}

/// Per-node data of a demoted (f32) factor store.
///
/// Deliberately narrower than [`UlvNodeFactor`]: `dtilde` and `uhat` exist
/// only to build the *parent* during factorization, which always runs in
/// f64 — a demoted store is solve-only, so they are dropped rather than
/// demoted.
#[derive(Debug, Clone)]
pub struct UlvNodeFactorF32 {
    /// Orthogonal transform `W` demoted to f32.
    pub w: MatrixF32,
    /// Number of eliminated unknowns (`m - rank`).
    pub elim: usize,
    /// HSS rank of the node.
    pub rank: usize,
    /// Demoted LU of the leading `elim x elim` block.
    pub d11_lu: Option<LuF32>,
    /// Top-right coupling block, demoted.
    pub d12: MatrixF32,
    /// Bottom-left coupling block, demoted.
    pub d21: MatrixF32,
}

impl UlvNodeFactorF32 {
    /// Demotes one node factor entrywise, dropping the
    /// factorization-only blocks.
    pub fn from_f64(f: &UlvNodeFactor) -> Self {
        UlvNodeFactorF32 {
            w: MatrixF32::from_f64(&f.w),
            elim: f.elim,
            rank: f.rank,
            d11_lu: f.d11_lu.as_ref().map(LuF32::from_lu),
            d12: MatrixF32::from_f64(&f.d12),
            d21: MatrixF32::from_f64(&f.d21),
        }
    }
}

/// The precision-parametric factor storage behind [`UlvFactorization`].
#[derive(Debug, Clone)]
enum FactorStore {
    F64 {
        factors: Vec<Option<UlvNodeFactor>>,
        root_lu: Lu,
    },
    /// Demoted per-node factors with the root LU kept in f64: the root
    /// system carries the factorization's *global* coupling (and hence its
    /// worst conditioning), but is only `rank(c1)+rank(c2)` square —
    /// negligible memory next to the per-node blocks. Rounding it to f32
    /// measurably degrades the preconditioner; keeping it costs nothing.
    F32 {
        factors: Vec<Option<UlvNodeFactorF32>>,
        root_lu: Lu,
    },
}

/// A ULV factorization of an [`HssMatrix`]; reusable for many right-hand
/// sides.
///
/// Always *computed* in f64; optionally *stored* in f32 via
/// [`UlvFactorization::to_f32`] (see the module docs). Every solve entry
/// point dispatches on [`UlvFactorization::precision`] internally, so
/// callers — including the [`crate::precond`] adapter — never branch.
#[derive(Debug, Clone)]
pub struct UlvFactorization {
    tree: ClusterTree,
    store: FactorStore,
    n: usize,
}

/// Shape summary of one stored node factor, shared by the f64 and f32
/// deserialization validators.
struct PartShape {
    elim: usize,
    rank: usize,
    w: (usize, usize),
    d11_dim: Option<usize>,
    d12: (usize, usize),
    d21: (usize, usize),
    /// Whether precision-specific extra blocks (`dtilde`/`uhat` in f64)
    /// also carry their expected shapes.
    extra_ok: bool,
}

/// Validates the structural consistency of deserialized factor parts
/// against the tree, so a corrupted file cannot produce an out-of-bounds
/// solve. Returns the system dimension.
fn validate_parts(
    tree: &ClusterTree,
    shapes: &[Option<PartShape>],
    root_lu_dim: usize,
) -> Result<usize, crate::construct::HssError> {
    use crate::construct::HssError;
    tree.validate().map_err(HssError::DimensionMismatch)?;
    if shapes.len() != tree.num_nodes() {
        return Err(HssError::DimensionMismatch(format!(
            "{} node factors for a {}-node tree",
            shapes.len(),
            tree.num_nodes()
        )));
    }
    let n = tree.root_size();
    let root = tree.root();
    if tree.num_nodes() == 1 {
        if root_lu_dim != n {
            return Err(HssError::DimensionMismatch(format!(
                "single-node root LU is {root_lu_dim}x{root_lu_dim}, matrix is {n}x{n}"
            )));
        }
        return Ok(n);
    }
    for (id, s) in shapes.iter().enumerate() {
        if id == root {
            continue;
        }
        let s = s.as_ref().ok_or_else(|| {
            HssError::DimensionMismatch(format!("non-root node {id} is missing its factor"))
        })?;
        let m = s.elim + s.rank;
        if s.w != (m, m) {
            return Err(HssError::DimensionMismatch(format!(
                "node {id}: transform is {}x{}, expected {m}x{m}",
                s.w.0, s.w.1
            )));
        }
        // The block size must also agree with what the solve sweeps feed
        // this node: the owned index range at a leaf, the children's
        // surviving unknowns at an internal node.
        let node = tree.node(id);
        let expected_m = if node.is_leaf() {
            node.size
        } else {
            let c1 = node.left.unwrap();
            let c2 = node.right.unwrap();
            shapes[c1].as_ref().map_or(0, |s| s.rank) + shapes[c2].as_ref().map_or(0, |s| s.rank)
        };
        if m != expected_m {
            return Err(HssError::DimensionMismatch(format!(
                "node {id}: factor covers {m} unknowns, the tree supplies {expected_m}"
            )));
        }
        if s.elim > 0 && s.d11_dim != Some(s.elim) {
            return Err(HssError::DimensionMismatch(format!(
                "node {id}: eliminated block LU missing or not {0}x{0}",
                s.elim
            )));
        }
        // Every stored block must carry the shapes the solve sweeps
        // assume, or a crafted file could panic deep inside a GEMV.
        let shapes_ok = s.d12 == (s.elim, s.rank) && s.d21 == (s.rank, s.elim) && s.extra_ok;
        if !shapes_ok {
            return Err(HssError::DimensionMismatch(format!(
                "node {id}: factor blocks disagree with elim {} / rank {}",
                s.elim, s.rank
            )));
        }
    }
    let root_node = tree.node(root);
    let (c1, c2) = (root_node.left.unwrap(), root_node.right.unwrap());
    let expected_root =
        shapes[c1].as_ref().map_or(0, |s| s.rank) + shapes[c2].as_ref().map_or(0, |s| s.rank);
    if root_lu_dim != expected_root {
        return Err(HssError::DimensionMismatch(format!(
            "root LU is {root_lu_dim}x{root_lu_dim}, children pass up {expected_root} unknowns"
        )));
    }
    Ok(n)
}

impl UlvFactorization {
    /// Factors the HSS matrix (always in f64 — see
    /// [`UlvFactorization::to_f32`] for the demoted store).
    ///
    /// # Errors
    /// Returns an error when an eliminated block is numerically singular
    /// (e.g. the matrix itself is singular).
    pub fn factor(hss: &HssMatrix) -> LinalgResult<Self> {
        let tree = hss.tree().clone();
        let root = tree.root();
        let n = hss.dim();
        let mut factors: Vec<Option<UlvNodeFactor>> = (0..tree.num_nodes()).map(|_| None).collect();

        // Degenerate single-block case: dense LU of the only block.
        if tree.num_nodes() == 1 {
            let d = hss
                .node_data(root)
                .d
                .as_ref()
                .expect("single-node HSS stores a dense block");
            let root_lu = lu(d)?;
            return Ok(UlvFactorization {
                tree,
                store: FactorStore::F64 { factors, root_lu },
                n,
            });
        }

        // Bottom-up, level-parallel: each node needs only its children's
        // factors, which the previous (deeper) level produced. Independent
        // sibling subtrees therefore factor concurrently; near the root the
        // level population drops below the worker count and the schedule
        // serializes on its own.
        for level in tree.levels().iter().rev() {
            let ids: Vec<usize> = level.iter().copied().filter(|&id| id != root).collect();
            if ids.is_empty() {
                continue;
            }
            let results: Vec<LinalgResult<(usize, UlvNodeFactor)>> = ids
                .par_iter()
                .with_min_len(1)
                .map(|&id| {
                    let node = tree.node(id);
                    let nd = hss.node_data(id);
                    // Assemble the block to eliminate and the basis coupling
                    // it to the rest of the system.
                    let (d_full, u_full) = if node.is_leaf() {
                        let d = nd.d.as_ref().expect("leaf stores D").clone();
                        let u = nd.u.as_ref().expect("leaf stores U").clone();
                        (d, u)
                    } else {
                        let c1 = node.left.unwrap();
                        let c2 = node.right.unwrap();
                        let f1 = factors[c1].as_ref().expect("child factored first");
                        let f2 = factors[c2].as_ref().expect("child factored first");
                        let b12 = nd.b12.as_ref().expect("internal node stores B12");
                        let b21 = nd.b21.as_ref().expect("internal node stores B21");
                        let off12 = coupling_block(&f1.uhat, b12, &f2.uhat);
                        let off21 = coupling_block(&f2.uhat, b21, &f1.uhat);
                        let top = f1.dtilde.hstack(&off12);
                        let bottom = off21.hstack(&f2.dtilde);
                        let d_full = top.vstack(&bottom);

                        let u = nd.u.as_ref().expect("non-root internal node stores Ũ");
                        let k1 = f1.rank;
                        let u_top = blas::matmul(&f1.uhat, &u.submatrix(0, k1, 0, u.ncols()));
                        let u_bottom =
                            blas::matmul(&f2.uhat, &u.submatrix(k1, u.nrows(), 0, u.ncols()));
                        (d_full, u_top.vstack(&u_bottom))
                    };
                    factor_node(&d_full, &u_full).map(|f| (id, f))
                })
                .collect();
            for result in results {
                let (id, f) = result?;
                factors[id] = Some(f);
            }
        }

        // Root: dense solve over the children's surviving unknowns.
        let root_node = tree.node(root);
        let c1 = root_node.left.expect("root has children here");
        let c2 = root_node.right.expect("root has children here");
        let f1 = factors[c1].as_ref().unwrap();
        let f2 = factors[c2].as_ref().unwrap();
        let nd = hss.node_data(root);
        let b12 = nd.b12.as_ref().expect("root stores B12");
        let b21 = nd.b21.as_ref().expect("root stores B21");
        let off12 = coupling_block(&f1.uhat, b12, &f2.uhat);
        let off21 = coupling_block(&f2.uhat, b21, &f1.uhat);
        let top = f1.dtilde.hstack(&off12);
        let bottom = off21.hstack(&f2.dtilde);
        let d_root = top.vstack(&bottom);
        let root_lu = lu(&d_root)?;

        Ok(UlvFactorization {
            tree,
            store: FactorStore::F64 { factors, root_lu },
            n,
        })
    }

    /// Rebuilds an f64 factorization from its stored parts — the inverse of
    /// the [`UlvFactorization::tree`] / [`UlvFactorization::node_factors`] /
    /// [`UlvFactorization::root_lu`] accessors — so a persisted model skips
    /// re-factorization entirely on reload. Structural consistency with the
    /// tree is validated; the numerical content is trusted as-is.
    pub fn from_parts(
        tree: ClusterTree,
        factors: Vec<Option<UlvNodeFactor>>,
        root_lu: Lu,
    ) -> Result<Self, crate::construct::HssError> {
        let shapes: Vec<Option<PartShape>> = factors
            .iter()
            .map(|f| {
                f.as_ref().map(|f| PartShape {
                    elim: f.elim,
                    rank: f.rank,
                    w: (f.w.nrows(), f.w.ncols()),
                    d11_dim: f.d11_lu.as_ref().map(Lu::dim),
                    d12: (f.d12.nrows(), f.d12.ncols()),
                    d21: (f.d21.nrows(), f.d21.ncols()),
                    extra_ok: f.dtilde.nrows() == f.rank
                        && f.dtilde.ncols() == f.rank
                        && f.uhat.nrows() == f.rank
                        && f.uhat.ncols() == f.rank,
                })
            })
            .collect();
        let n = validate_parts(&tree, &shapes, root_lu.dim())?;
        Ok(UlvFactorization {
            tree,
            store: FactorStore::F64 { factors, root_lu },
            n,
        })
    }

    /// Rebuilds a demoted (f32) factorization from stored parts, with the
    /// same structural validation as [`UlvFactorization::from_parts`]. The
    /// root LU stays f64 in a demoted store (see
    /// [`UlvFactorization::root_lu`]).
    pub fn from_parts_f32(
        tree: ClusterTree,
        factors: Vec<Option<UlvNodeFactorF32>>,
        root_lu: Lu,
    ) -> Result<Self, crate::construct::HssError> {
        let shapes: Vec<Option<PartShape>> = factors
            .iter()
            .map(|f| {
                f.as_ref().map(|f| PartShape {
                    elim: f.elim,
                    rank: f.rank,
                    w: (f.w.nrows(), f.w.ncols()),
                    d11_dim: f.d11_lu.as_ref().map(LuF32::dim),
                    d12: (f.d12.nrows(), f.d12.ncols()),
                    d21: (f.d21.nrows(), f.d21.ncols()),
                    extra_ok: true,
                })
            })
            .collect();
        let n = validate_parts(&tree, &shapes, root_lu.dim())?;
        Ok(UlvFactorization {
            tree,
            store: FactorStore::F32 { factors, root_lu },
            n,
        })
    }

    /// Demotes the factor store to f32 (idempotent).
    ///
    /// Every per-node solve-path block is rounded entrywise; the
    /// factorization-only `dtilde`/`uhat` blocks are dropped (see
    /// [`UlvNodeFactorF32`]), so the demoted store is solve-only. The tiny
    /// root LU is kept in f64 — it holds the globally coupled (worst
    /// conditioned) part of the system and rounding it costs Krylov
    /// iterations for no measurable memory (see
    /// [`UlvFactorization::root_lu`]). The tree and all structural
    /// metadata are unchanged.
    pub fn to_f32(self) -> Self {
        let store = match self.store {
            FactorStore::F32 { .. } => self.store,
            FactorStore::F64 { factors, root_lu } => FactorStore::F32 {
                factors: factors
                    .iter()
                    .map(|f| f.as_ref().map(UlvNodeFactorF32::from_f64))
                    .collect(),
                root_lu,
            },
        };
        UlvFactorization {
            tree: self.tree,
            store,
            n: self.n,
        }
    }

    /// Storage precision of the factor store.
    pub fn precision(&self) -> FactorPrecision {
        match self.store {
            FactorStore::F64 { .. } => FactorPrecision::F64,
            FactorStore::F32 { .. } => FactorPrecision::F32,
        }
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// The cluster tree the factorization follows.
    pub fn tree(&self) -> &ClusterTree {
        &self.tree
    }

    /// Per-node f64 factors, indexed by cluster-tree node id (`None` at the
    /// root, whose block lives in [`UlvFactorization::root_lu`], and for a
    /// single-node tree).
    ///
    /// # Panics
    /// Panics on a demoted store — branch on
    /// [`UlvFactorization::precision`] and use
    /// [`UlvFactorization::node_factors_f32`] there.
    pub fn node_factors(&self) -> &[Option<UlvNodeFactor>] {
        match &self.store {
            FactorStore::F64 { factors, .. } => factors,
            FactorStore::F32 { .. } => panic!("node_factors() on an f32 factor store"),
        }
    }

    /// The dense f64 LU factor of the root system — present at *both*
    /// precisions: a demoted store keeps its root in f64 because the root
    /// carries the factorization's global coupling (its worst
    /// conditioning) yet is only `rank(c1)+rank(c2)` square, so demoting
    /// it would cost Krylov iterations for no measurable memory.
    pub fn root_lu(&self) -> &Lu {
        match &self.store {
            FactorStore::F64 { root_lu, .. } => root_lu,
            FactorStore::F32 { root_lu, .. } => root_lu,
        }
    }

    /// Per-node f32 factors of a demoted store.
    ///
    /// # Panics
    /// Panics on an f64 store — branch on [`UlvFactorization::precision`].
    pub fn node_factors_f32(&self) -> &[Option<UlvNodeFactorF32>] {
        match &self.store {
            FactorStore::F32 { factors, .. } => factors,
            FactorStore::F64 { .. } => panic!("node_factors_f32() on an f64 factor store"),
        }
    }

    /// Solves `A x = b`, dispatching on the store precision.
    pub fn solve(&self, b: &[f64]) -> LinalgResult<Vec<f64>> {
        assert_eq!(b.len(), self.n, "UlvFactorization::solve: rhs length");
        match &self.store {
            FactorStore::F64 { factors, root_lu } => self.solve_f64(b, factors, root_lu),
            FactorStore::F32 { factors, root_lu } => self.solve_f32(b, factors, root_lu),
        }
    }

    /// The historical f64 sweep — bitwise identical to the pre-seam solve.
    fn solve_f64(
        &self,
        b: &[f64],
        factors: &[Option<UlvNodeFactor>],
        root_lu: &Lu,
    ) -> LinalgResult<Vec<f64>> {
        let tree = &self.tree;
        let root = tree.root();

        if tree.num_nodes() == 1 {
            return root_lu.solve(b);
        }

        let post = tree.postorder();

        // Upward sweep: transform and partially eliminate the rhs.
        let mut b1_store: Vec<Vec<f64>> = vec![Vec::new(); tree.num_nodes()];
        let mut btilde: Vec<Vec<f64>> = vec![Vec::new(); tree.num_nodes()];
        for &id in &post {
            if id == root {
                continue;
            }
            let node = tree.node(id);
            let f = factors[id].as_ref().unwrap();
            let b_local: Vec<f64> = if node.is_leaf() {
                b[node.range()].to_vec()
            } else {
                let c1 = node.left.unwrap();
                let c2 = node.right.unwrap();
                btilde[c1]
                    .iter()
                    .chain(btilde[c2].iter())
                    .copied()
                    .collect()
            };
            let mut bprime = vec![0.0; b_local.len()];
            blas::gemv_t(&f.w, &b_local, &mut bprime);
            let b1 = bprime[..f.elim].to_vec();
            let b2 = bprime[f.elim..].to_vec();
            let reduced = if f.elim > 0 {
                let y1 = f.d11_lu.as_ref().unwrap().solve(&b1)?;
                let mut corr = vec![0.0; f.rank];
                blas::gemv(&f.d21, &y1, &mut corr);
                b2.iter().zip(corr.iter()).map(|(a, c)| a - c).collect()
            } else {
                b2
            };
            b1_store[id] = b1;
            btilde[id] = reduced;
        }

        // Root solve.
        let root_node = tree.node(root);
        let c1 = root_node.left.unwrap();
        let c2 = root_node.right.unwrap();
        let b_root: Vec<f64> = btilde[c1]
            .iter()
            .chain(btilde[c2].iter())
            .copied()
            .collect();
        let w_root = root_lu.solve(&b_root)?;

        // Downward sweep: recover the eliminated unknowns.
        let mut w2: Vec<Vec<f64>> = vec![Vec::new(); tree.num_nodes()];
        let k1 = factors[c1].as_ref().unwrap().rank;
        w2[c1] = w_root[..k1].to_vec();
        w2[c2] = w_root[k1..].to_vec();

        let mut x = vec![0.0; self.n];
        for &id in post.iter().rev() {
            if id == root {
                continue;
            }
            let node = tree.node(id);
            let f = factors[id].as_ref().unwrap();
            let w2_i = &w2[id];
            debug_assert_eq!(w2_i.len(), f.rank, "missing skeleton solution");
            let w1 = if f.elim > 0 {
                let mut rhs = b1_store[id].clone();
                let mut corr = vec![0.0; f.elim];
                blas::gemv(&f.d12, w2_i, &mut corr);
                for (r, c) in rhs.iter_mut().zip(corr.iter()) {
                    *r -= c;
                }
                f.d11_lu.as_ref().unwrap().solve(&rhs)?
            } else {
                Vec::new()
            };
            let w_full: Vec<f64> = w1.iter().chain(w2_i.iter()).copied().collect();
            let mut v = vec![0.0; w_full.len()];
            blas::gemv(&f.w, &w_full, &mut v);
            if node.is_leaf() {
                x[node.range()].copy_from_slice(&v);
            } else {
                let cl = node.left.unwrap();
                let cr = node.right.unwrap();
                let kl = factors[cl].as_ref().unwrap().rank;
                w2[cl] = v[..kl].to_vec();
                w2[cr] = v[kl..].to_vec();
            }
        }
        Ok(x)
    }

    /// The demoted sweep: the same operation sequence as [`Self::solve_f64`]
    /// with every per-node block read from f32 storage but **all
    /// arithmetic in f64** through the widened kernels of the
    /// [`active_f32`] seam (`gemv_f64` / `gemv_t_f64` /
    /// [`LuF32::solve_f64`]); the root system solves through its retained
    /// f64 LU.
    ///
    /// Computing this way matters for the PCG on top: the apply is then the
    /// exact f64 ULV solve of the f32-*rounded* factorization — a fixed
    /// linear operator whose distance from the f64 preconditioner is the
    /// factors' one-time storage rounding, which behaves like a slightly
    /// looser compression (a few extra iterations). Carrying the sweep
    /// vectors in f32 instead makes every apply nonlinear at the 1e-7
    /// level, which breaks CG's recurrences and costs several times more
    /// iterations on ill-conditioned systems.
    fn solve_f32(
        &self,
        b: &[f64],
        factors: &[Option<UlvNodeFactorF32>],
        root_lu: &Lu,
    ) -> LinalgResult<Vec<f64>> {
        let tree = &self.tree;
        let root = tree.root();
        let be = active_f32();

        if tree.num_nodes() == 1 {
            return root_lu.solve(b);
        }

        let post = tree.postorder();

        // Upward sweep.
        let mut b1_store: Vec<Vec<f64>> = vec![Vec::new(); tree.num_nodes()];
        let mut btilde: Vec<Vec<f64>> = vec![Vec::new(); tree.num_nodes()];
        for &id in &post {
            if id == root {
                continue;
            }
            let node = tree.node(id);
            let f = factors[id].as_ref().unwrap();
            let b_local: Vec<f64> = if node.is_leaf() {
                b[node.range()].to_vec()
            } else {
                let c1 = node.left.unwrap();
                let c2 = node.right.unwrap();
                btilde[c1]
                    .iter()
                    .chain(btilde[c2].iter())
                    .copied()
                    .collect()
            };
            let mut bprime = vec![0.0f64; b_local.len()];
            be.gemv_t_f64(&f.w, &b_local, &mut bprime);
            let b1 = bprime[..f.elim].to_vec();
            let b2 = bprime[f.elim..].to_vec();
            let reduced = if f.elim > 0 {
                let y1 = f.d11_lu.as_ref().unwrap().solve_f64(&b1)?;
                let mut corr = vec![0.0f64; f.rank];
                be.gemv_f64(&f.d21, &y1, &mut corr);
                b2.iter().zip(corr.iter()).map(|(a, c)| a - c).collect()
            } else {
                b2
            };
            b1_store[id] = b1;
            btilde[id] = reduced;
        }

        // Root solve.
        let root_node = tree.node(root);
        let c1 = root_node.left.unwrap();
        let c2 = root_node.right.unwrap();
        let b_root: Vec<f64> = btilde[c1]
            .iter()
            .chain(btilde[c2].iter())
            .copied()
            .collect();
        let w_root = root_lu.solve(&b_root)?;

        // Downward sweep.
        let mut w2: Vec<Vec<f64>> = vec![Vec::new(); tree.num_nodes()];
        let k1 = factors[c1].as_ref().unwrap().rank;
        w2[c1] = w_root[..k1].to_vec();
        w2[c2] = w_root[k1..].to_vec();

        let mut x = vec![0.0f64; self.n];
        for &id in post.iter().rev() {
            if id == root {
                continue;
            }
            let node = tree.node(id);
            let f = factors[id].as_ref().unwrap();
            let w2_i = &w2[id];
            debug_assert_eq!(w2_i.len(), f.rank, "missing skeleton solution");
            let w1 = if f.elim > 0 {
                let mut rhs = b1_store[id].clone();
                let mut corr = vec![0.0f64; f.elim];
                be.gemv_f64(&f.d12, w2_i, &mut corr);
                for (r, c) in rhs.iter_mut().zip(corr.iter()) {
                    *r -= c;
                }
                f.d11_lu.as_ref().unwrap().solve_f64(&rhs)?
            } else {
                Vec::new()
            };
            let w_full: Vec<f64> = w1.iter().chain(w2_i.iter()).copied().collect();
            if node.is_leaf() {
                be.gemv_f64(&f.w, &w_full, &mut x[node.range()]);
            } else {
                let mut v = vec![0.0f64; w_full.len()];
                be.gemv_f64(&f.w, &w_full, &mut v);
                let cl = node.left.unwrap();
                let cr = node.right.unwrap();
                let kl = factors[cl].as_ref().unwrap().rank;
                w2[cl] = v[..kl].to_vec();
                w2[cr] = v[kl..].to_vec();
            }
        }
        Ok(x)
    }

    /// Solves `A X = B` for a matrix of right-hand sides; the columns are
    /// independent and solved in parallel.
    pub fn solve_multi(&self, b: &Matrix) -> LinalgResult<Matrix> {
        assert_eq!(b.nrows(), self.n, "UlvFactorization::solve_multi: dims");
        let cols: Vec<LinalgResult<Vec<f64>>> = (0..b.ncols())
            .into_par_iter()
            .with_min_len(1)
            .map(|j| self.solve(&b.col(j)))
            .collect();
        let mut x = Matrix::zeros(self.n, b.ncols());
        for (j, col) in cols.into_iter().enumerate() {
            x.set_col(j, &col?);
        }
        Ok(x)
    }

    /// Memory used by the stored factors, in bytes.
    ///
    /// An f32 store reports less than half the f64 figure: every block is
    /// half-width *and* the factorization-only `dtilde`/`uhat` blocks are
    /// gone.
    pub fn memory_bytes(&self) -> usize {
        match &self.store {
            FactorStore::F64 { factors, root_lu } => {
                let node_mem: usize = factors
                    .iter()
                    .flatten()
                    .map(|f| {
                        f.w.memory_bytes()
                            + f.d12.memory_bytes()
                            + f.d21.memory_bytes()
                            + f.dtilde.memory_bytes()
                            + f.uhat.memory_bytes()
                            + f.elim * f.elim * std::mem::size_of::<f64>()
                    })
                    .sum();
                node_mem + root_lu.dim() * root_lu.dim() * std::mem::size_of::<f64>()
            }
            FactorStore::F32 { factors, root_lu } => {
                let node_mem: usize = factors
                    .iter()
                    .flatten()
                    .map(|f| {
                        f.w.memory_bytes()
                            + f.d12.memory_bytes()
                            + f.d21.memory_bytes()
                            + f.elim * f.elim * std::mem::size_of::<f32>()
                    })
                    .sum();
                // The root LU stays f64 in a demoted store.
                node_mem + root_lu.dim() * root_lu.dim() * std::mem::size_of::<f64>()
            }
        }
    }
}

/// Factors one node: orthogonal elimination of the rows not coupled to the
/// rest of the system, followed by LU on the decoupled block.
fn factor_node(d_full: &Matrix, u_full: &Matrix) -> LinalgResult<UlvNodeFactor> {
    let m = d_full.nrows();
    let k = u_full.ncols();
    debug_assert_eq!(d_full.ncols(), m);
    debug_assert_eq!(u_full.nrows(), m);
    debug_assert!(k <= m, "node rank exceeds block size");

    // W^T U = [0; Û]: take the full QR U = Q [R1; 0] and move the zero rows
    // to the top by a column rotation of Q.
    let (q, r) = full_qr(u_full);
    let elim = m - k;
    let mut w = Matrix::zeros(m, m);
    for col in 0..elim {
        w.set_col(col, &q.col(k + col));
    }
    for col in 0..k {
        w.set_col(elim + col, &q.col(col));
    }
    let uhat = r.submatrix(0, k, 0, k);

    // Transform the diagonal block: D' = W^T D W, reusing one intermediate
    // buffer through the backend seam.
    let be = dense_backend();
    let mut dw = Matrix::zeros(m, m);
    be.gemm_into(d_full, &w, &mut dw);
    let mut dprime = Matrix::zeros(m, m);
    be.gemm_tn_into(&w, &dw, &mut dprime);
    let d11 = dprime.submatrix(0, elim, 0, elim);
    let d12 = dprime.submatrix(0, elim, elim, m);
    let d21 = dprime.submatrix(elim, m, 0, elim);
    let d22 = dprime.submatrix(elim, m, elim, m);

    let (d11_lu, dtilde) = if elim > 0 {
        let f = lu(&d11).map_err(|e| match e {
            LinalgError::Singular { pivot } => LinalgError::Singular { pivot },
            other => other,
        })?;
        let x = f.solve_multi(&d12)?;
        let schur = d22.sub(&blas::matmul(&d21, &x));
        (Some(f), schur)
    } else {
        (None, d22)
    };

    Ok(UlvNodeFactor {
        w,
        elim,
        rank: k,
        d11_lu,
        d12,
        d21,
        dtilde,
        uhat,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::construct::{compress_symmetric, HssOptions};
    use hkrr_clustering::{cluster, ClusteringMethod};
    use hkrr_linalg::random::Pcg64;
    use hkrr_linalg::{blas, cholesky};

    fn kernel_1d(n: usize, h: f64) -> Matrix {
        Matrix::from_fn(n, n, |i, j| {
            let d = (i as f64 - j as f64) / n as f64;
            (-d * d / (2.0 * h * h)).exp()
        })
    }

    fn build_shifted(n: usize, h: f64, lambda: f64, tol: f64) -> (Matrix, crate::HssMatrix) {
        let a = kernel_1d(n, h);
        let points = Matrix::from_fn(n, 1, |i, _| i as f64);
        let tree = cluster(&points, ClusteringMethod::Natural, 16)
            .tree()
            .clone();
        let opts = HssOptions {
            tolerance: tol,
            ..Default::default()
        };
        let mut hss = compress_symmetric(&a, &a, tree, &opts).unwrap();
        hss.set_diagonal_shift(lambda);
        let mut shifted = a;
        shifted.shift_diagonal(lambda);
        (shifted, hss)
    }

    #[test]
    fn ulv_solve_matches_dense_cholesky() {
        let (a, hss) = build_shifted(192, 0.08, 2.0, 1e-9);
        let f = UlvFactorization::factor(&hss).unwrap();
        let mut rng = Pcg64::seed_from_u64(1);
        let b: Vec<f64> = (0..192).map(|_| rng.next_gaussian()).collect();
        let x_hss = f.solve(&b).unwrap();
        let x_ref = cholesky::solve_spd(&a, &b).unwrap();
        let num: f64 = x_hss
            .iter()
            .zip(x_ref.iter())
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt();
        let den = blas::nrm2(&x_ref);
        assert!(num / den < 1e-6, "relative solution error {}", num / den);
    }

    #[test]
    fn residual_is_small_for_loose_tolerance() {
        // With the paper's classification tolerance the solution is inexact,
        // but the residual w.r.t. the *compressed* operator must still be at
        // machine precision — the factorization is exact for the compressed
        // matrix.
        let (_, hss) = build_shifted(160, 0.05, 1.0, 1e-2);
        let f = UlvFactorization::factor(&hss).unwrap();
        let mut rng = Pcg64::seed_from_u64(2);
        let b: Vec<f64> = (0..160).map(|_| rng.next_gaussian()).collect();
        let x = f.solve(&b).unwrap();
        let mut ax = vec![0.0; 160];
        hss.matvec(&x, &mut ax);
        let res: f64 = ax
            .iter()
            .zip(b.iter())
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt()
            / blas::nrm2(&b);
        assert!(res < 1e-10, "residual {res}");
    }

    #[test]
    fn solve_multi_matches_column_solves() {
        let (_, hss) = build_shifted(96, 0.1, 0.5, 1e-8);
        let f = UlvFactorization::factor(&hss).unwrap();
        let mut rng = Pcg64::seed_from_u64(3);
        let b = hkrr_linalg::random::gaussian_matrix(&mut rng, 96, 3);
        let x = f.solve_multi(&b).unwrap();
        for j in 0..3 {
            let xj = f.solve(&b.col(j)).unwrap();
            for i in 0..96 {
                assert!((x[(i, j)] - xj[i]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn single_block_matrix_falls_back_to_dense_lu() {
        let (a, hss) = build_shifted(12, 0.3, 1.0, 1e-8);
        assert_eq!(hss.tree().num_nodes(), 1);
        let f = UlvFactorization::factor(&hss).unwrap();
        let b: Vec<f64> = (0..12).map(|i| i as f64).collect();
        let x = f.solve(&b).unwrap();
        let x_ref = cholesky::solve_spd(&a, &b).unwrap();
        for (a, b) in x.iter().zip(x_ref.iter()) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn identity_plus_shift_solves_exactly() {
        let n = 64;
        let a = Matrix::identity(n);
        let points = Matrix::from_fn(n, 1, |i, _| i as f64);
        let tree = cluster(&points, ClusteringMethod::Natural, 16)
            .tree()
            .clone();
        let mut hss = compress_symmetric(&a, &a, tree, &HssOptions::default()).unwrap();
        hss.set_diagonal_shift(3.0);
        let f = UlvFactorization::factor(&hss).unwrap();
        let b = vec![2.0; n];
        let x = f.solve(&b).unwrap();
        for xi in x {
            assert!((xi - 0.5).abs() < 1e-12);
        }
    }

    #[test]
    fn lambda_update_requires_only_refactorization() {
        // Compress once, solve for two different λ by only updating the
        // diagonal — the workflow the paper uses during hyperparameter
        // tuning.
        let n = 128;
        let a = kernel_1d(n, 0.08);
        let points = Matrix::from_fn(n, 1, |i, _| i as f64);
        let tree = cluster(&points, ClusteringMethod::Natural, 16)
            .tree()
            .clone();
        let mut hss = compress_symmetric(
            &a,
            &a,
            tree,
            &HssOptions {
                tolerance: 1e-9,
                ..Default::default()
            },
        )
        .unwrap();
        let mut rng = Pcg64::seed_from_u64(7);
        let b: Vec<f64> = (0..n).map(|_| rng.next_gaussian()).collect();
        for &lambda in &[0.5, 4.0] {
            hss.set_diagonal_shift(lambda);
            let f = UlvFactorization::factor(&hss).unwrap();
            let x = f.solve(&b).unwrap();
            let mut shifted = a.clone();
            shifted.shift_diagonal(lambda);
            let x_ref = cholesky::solve_spd(&shifted, &b).unwrap();
            let err: f64 = x
                .iter()
                .zip(x_ref.iter())
                .map(|(a, b)| (a - b).abs())
                .fold(0.0, f64::max);
            assert!(err < 1e-6, "lambda {lambda}: max error {err}");
        }
    }

    #[test]
    fn from_parts_roundtrips_solve_bitwise() {
        let (_, hss) = build_shifted(160, 0.08, 1.5, 1e-8);
        let f = UlvFactorization::factor(&hss).unwrap();
        let rebuilt = UlvFactorization::from_parts(
            f.tree().clone(),
            f.node_factors().to_vec(),
            f.root_lu().clone(),
        )
        .unwrap();
        let mut rng = Pcg64::seed_from_u64(21);
        let b: Vec<f64> = (0..160).map(|_| rng.next_gaussian()).collect();
        // Same stored factors ⇒ bitwise-identical solves: reload skips
        // re-factorization without changing a single bit of the output.
        assert_eq!(f.solve(&b).unwrap(), rebuilt.solve(&b).unwrap());
        assert_eq!(rebuilt.dim(), 160);
        assert_eq!(rebuilt.memory_bytes(), f.memory_bytes());
    }

    #[test]
    fn from_parts_rejects_inconsistent_factors() {
        let (_, hss) = build_shifted(96, 0.1, 1.0, 1e-6);
        let f = UlvFactorization::factor(&hss).unwrap();
        // Wrong factor count.
        let mut short = f.node_factors().to_vec();
        short.pop();
        assert!(
            UlvFactorization::from_parts(f.tree().clone(), short, f.root_lu().clone()).is_err()
        );
        // Missing non-root factor.
        let mut missing = f.node_factors().to_vec();
        let non_root = (0..missing.len()).find(|&i| i != f.tree().root()).unwrap();
        missing[non_root] = None;
        assert!(
            UlvFactorization::from_parts(f.tree().clone(), missing, f.root_lu().clone()).is_err()
        );
        // Root LU of the wrong size.
        let bad_root = lu(&Matrix::identity(1)).unwrap();
        assert!(UlvFactorization::from_parts(
            f.tree().clone(),
            f.node_factors().to_vec(),
            bad_root
        )
        .is_err());
    }

    #[test]
    fn factor_memory_is_reported() {
        let (_, hss) = build_shifted(96, 0.1, 1.0, 1e-6);
        let f = UlvFactorization::factor(&hss).unwrap();
        assert!(f.memory_bytes() > 0);
        assert_eq!(f.dim(), 96);
    }

    #[test]
    fn precision_parsing_roundtrips() {
        for p in [FactorPrecision::F64, FactorPrecision::F32] {
            assert_eq!(FactorPrecision::parse(p.as_str()), Some(p));
            assert_eq!(
                FactorPrecision::parse(&p.to_string().to_uppercase()),
                Some(p)
            );
        }
        assert_eq!(FactorPrecision::parse("f16"), None);
    }

    #[test]
    fn demoted_store_halves_memory_and_solves_close_to_f64() {
        let (_, hss) = build_shifted(192, 0.08, 2.0, 1e-6);
        let f = UlvFactorization::factor(&hss).unwrap();
        assert_eq!(f.precision(), FactorPrecision::F64);
        let bytes_f64 = f.memory_bytes();
        let mut rng = Pcg64::seed_from_u64(31);
        let b: Vec<f64> = (0..192).map(|_| rng.next_gaussian()).collect();
        let x64 = f.solve(&b).unwrap();
        let f32f = f.to_f32();
        assert_eq!(f32f.precision(), FactorPrecision::F32);
        assert_eq!(f32f.dim(), 192);
        // Half-width blocks plus dropped dtilde/uhat: well under 50%.
        assert!(
            f32f.memory_bytes() * 2 <= bytes_f64,
            "f32 store {} vs f64 store {bytes_f64}",
            f32f.memory_bytes()
        );
        let x32 = f32f.solve(&b).unwrap();
        let num: f64 = x64
            .iter()
            .zip(x32.iter())
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt();
        let den = blas::nrm2(&x64);
        assert!(num / den < 1e-4, "relative demotion error {}", num / den);
    }

    #[test]
    fn to_f32_is_idempotent() {
        let (_, hss) = build_shifted(96, 0.1, 1.0, 1e-6);
        let f32f = UlvFactorization::factor(&hss).unwrap().to_f32();
        let b: Vec<f64> = (0..96).map(|i| (i as f64 * 0.3).sin()).collect();
        let once = f32f.solve(&b).unwrap();
        let twice = f32f.clone().to_f32().solve(&b).unwrap();
        assert_eq!(once, twice);
    }

    #[test]
    fn f32_single_block_matrix_solves() {
        let (a, hss) = build_shifted(12, 0.3, 1.0, 1e-8);
        assert_eq!(hss.tree().num_nodes(), 1);
        let f = UlvFactorization::factor(&hss).unwrap().to_f32();
        let b: Vec<f64> = (0..12).map(|i| i as f64).collect();
        let x = f.solve(&b).unwrap();
        let x_ref = cholesky::solve_spd(&a, &b).unwrap();
        for (a, b) in x.iter().zip(x_ref.iter()) {
            assert!((a - b).abs() < 1e-3);
        }
    }

    #[test]
    fn from_parts_f32_roundtrips_solve_bitwise() {
        let (_, hss) = build_shifted(160, 0.08, 1.5, 1e-6);
        let f = UlvFactorization::factor(&hss).unwrap().to_f32();
        let rebuilt = UlvFactorization::from_parts_f32(
            f.tree().clone(),
            f.node_factors_f32().to_vec(),
            f.root_lu().clone(),
        )
        .unwrap();
        let mut rng = Pcg64::seed_from_u64(23);
        let b: Vec<f64> = (0..160).map(|_| rng.next_gaussian()).collect();
        assert_eq!(f.solve(&b).unwrap(), rebuilt.solve(&b).unwrap());
        assert_eq!(rebuilt.precision(), FactorPrecision::F32);
        assert_eq!(rebuilt.memory_bytes(), f.memory_bytes());
    }

    #[test]
    fn from_parts_f32_rejects_inconsistent_factors() {
        let (_, hss) = build_shifted(96, 0.1, 1.0, 1e-6);
        let f = UlvFactorization::factor(&hss).unwrap().to_f32();
        let mut short = f.node_factors_f32().to_vec();
        short.pop();
        assert!(
            UlvFactorization::from_parts_f32(f.tree().clone(), short, f.root_lu().clone()).is_err()
        );
        let bad_root = lu(&Matrix::identity(1)).unwrap();
        assert!(UlvFactorization::from_parts_f32(
            f.tree().clone(),
            f.node_factors_f32().to_vec(),
            bad_root
        )
        .is_err());
    }
}
