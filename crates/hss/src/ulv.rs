//! ULV factorization and solve for symmetric HSS matrices.
//!
//! This is the solver STRUMPACK pairs with its HSS compression
//! (Chandrasekaran, Gu & Pals 2006): at every node an orthogonal transform
//! zeroes the rows of the basis `U_i`, which decouples `size − rank` local
//! unknowns from the rest of the system; those unknowns are eliminated with
//! a small LU, and the surviving `rank` unknowns are merged at the parent.
//! The root solves a single dense system of size `rank(c1) + rank(c2)`.
//! Both factorization and solve cost `O(r² n)` / `O(r n)`, which is what
//! makes the kernel ridge regression training step scale.
//!
//! The factorization is **level-parallel**: independent sibling subtrees
//! factor concurrently (each node only needs its children's factors), and
//! the top levels — where fewer nodes than workers remain — degrade to the
//! sequential schedule naturally. Per-node arithmetic is identical to the
//! sequential order, so factors are bitwise reproducible across thread
//! counts.

use crate::HssMatrix;
use hkrr_clustering::ClusterTree;
use hkrr_linalg::lu::{lu, Lu};
use hkrr_linalg::qr::full_qr;
use hkrr_linalg::{blas, dense_backend, LinalgError, LinalgResult, Matrix};
use rayon::prelude::*;

/// Off-diagonal coupling block `(U₁ · B) · U₂ᵀ` through the dense backend,
/// without materializing `U₂ᵀ`.
fn coupling_block(u1: &Matrix, b: &Matrix, u2: &Matrix) -> Matrix {
    let be = dense_backend();
    let mut tmp = Matrix::zeros(u1.nrows(), b.ncols());
    be.gemm_into(u1, b, &mut tmp);
    let mut off = Matrix::zeros(tmp.nrows(), u2.nrows());
    be.gemm_nt_into(&tmp, u2, &mut off);
    off
}

/// Per-node data stored by the factorization. The fields are public so a
/// factorization can be serialized and rebuilt (via
/// [`UlvFactorization::from_parts`]) without re-eliminating anything.
#[derive(Debug, Clone)]
pub struct UlvNodeFactor {
    /// Orthogonal transform `W` (size `m x m`): local unknowns are
    /// `x_local = W w`.
    pub w: Matrix,
    /// Number of eliminated unknowns (`m - rank`).
    pub elim: usize,
    /// HSS rank of the node (number of unknowns passed to the parent).
    pub rank: usize,
    /// LU factorization of the leading `elim x elim` block.
    pub d11_lu: Option<Lu>,
    /// Top-right coupling block of the transformed diagonal block.
    pub d12: Matrix,
    /// Bottom-left coupling block of the transformed diagonal block.
    pub d21: Matrix,
    /// Schur complement passed to the parent (`rank x rank`).
    pub dtilde: Matrix,
    /// Reduced basis `Û` (`rank x rank`, upper triangular).
    pub uhat: Matrix,
}

/// A ULV factorization of an [`HssMatrix`]; reusable for many right-hand
/// sides.
#[derive(Debug, Clone)]
pub struct UlvFactorization {
    tree: ClusterTree,
    factors: Vec<Option<UlvNodeFactor>>,
    root_lu: Lu,
    n: usize,
}

impl UlvFactorization {
    /// Factors the HSS matrix.
    ///
    /// # Errors
    /// Returns an error when an eliminated block is numerically singular
    /// (e.g. the matrix itself is singular).
    pub fn factor(hss: &HssMatrix) -> LinalgResult<Self> {
        let tree = hss.tree().clone();
        let root = tree.root();
        let n = hss.dim();
        let mut factors: Vec<Option<UlvNodeFactor>> = (0..tree.num_nodes()).map(|_| None).collect();

        // Degenerate single-block case: dense LU of the only block.
        if tree.num_nodes() == 1 {
            let d = hss
                .node_data(root)
                .d
                .as_ref()
                .expect("single-node HSS stores a dense block");
            let root_lu = lu(d)?;
            return Ok(UlvFactorization {
                tree,
                factors,
                root_lu,
                n,
            });
        }

        // Bottom-up, level-parallel: each node needs only its children's
        // factors, which the previous (deeper) level produced. Independent
        // sibling subtrees therefore factor concurrently; near the root the
        // level population drops below the worker count and the schedule
        // serializes on its own.
        for level in tree.levels().iter().rev() {
            let ids: Vec<usize> = level.iter().copied().filter(|&id| id != root).collect();
            if ids.is_empty() {
                continue;
            }
            let results: Vec<LinalgResult<(usize, UlvNodeFactor)>> = ids
                .par_iter()
                .with_min_len(1)
                .map(|&id| {
                    let node = tree.node(id);
                    let nd = hss.node_data(id);
                    // Assemble the block to eliminate and the basis coupling
                    // it to the rest of the system.
                    let (d_full, u_full) = if node.is_leaf() {
                        let d = nd.d.as_ref().expect("leaf stores D").clone();
                        let u = nd.u.as_ref().expect("leaf stores U").clone();
                        (d, u)
                    } else {
                        let c1 = node.left.unwrap();
                        let c2 = node.right.unwrap();
                        let f1 = factors[c1].as_ref().expect("child factored first");
                        let f2 = factors[c2].as_ref().expect("child factored first");
                        let b12 = nd.b12.as_ref().expect("internal node stores B12");
                        let b21 = nd.b21.as_ref().expect("internal node stores B21");
                        let off12 = coupling_block(&f1.uhat, b12, &f2.uhat);
                        let off21 = coupling_block(&f2.uhat, b21, &f1.uhat);
                        let top = f1.dtilde.hstack(&off12);
                        let bottom = off21.hstack(&f2.dtilde);
                        let d_full = top.vstack(&bottom);

                        let u = nd.u.as_ref().expect("non-root internal node stores Ũ");
                        let k1 = f1.rank;
                        let u_top = blas::matmul(&f1.uhat, &u.submatrix(0, k1, 0, u.ncols()));
                        let u_bottom =
                            blas::matmul(&f2.uhat, &u.submatrix(k1, u.nrows(), 0, u.ncols()));
                        (d_full, u_top.vstack(&u_bottom))
                    };
                    factor_node(&d_full, &u_full).map(|f| (id, f))
                })
                .collect();
            for result in results {
                let (id, f) = result?;
                factors[id] = Some(f);
            }
        }

        // Root: dense solve over the children's surviving unknowns.
        let root_node = tree.node(root);
        let c1 = root_node.left.expect("root has children here");
        let c2 = root_node.right.expect("root has children here");
        let f1 = factors[c1].as_ref().unwrap();
        let f2 = factors[c2].as_ref().unwrap();
        let nd = hss.node_data(root);
        let b12 = nd.b12.as_ref().expect("root stores B12");
        let b21 = nd.b21.as_ref().expect("root stores B21");
        let off12 = coupling_block(&f1.uhat, b12, &f2.uhat);
        let off21 = coupling_block(&f2.uhat, b21, &f1.uhat);
        let top = f1.dtilde.hstack(&off12);
        let bottom = off21.hstack(&f2.dtilde);
        let d_root = top.vstack(&bottom);
        let root_lu = lu(&d_root)?;

        Ok(UlvFactorization {
            tree,
            factors,
            root_lu,
            n,
        })
    }

    /// Rebuilds a factorization from its stored parts — the inverse of the
    /// [`UlvFactorization::tree`] / [`UlvFactorization::node_factors`] /
    /// [`UlvFactorization::root_lu`] accessors — so a persisted model skips
    /// re-factorization entirely on reload. Structural consistency with the
    /// tree is validated; the numerical content is trusted as-is.
    pub fn from_parts(
        tree: ClusterTree,
        factors: Vec<Option<UlvNodeFactor>>,
        root_lu: Lu,
    ) -> Result<Self, crate::construct::HssError> {
        use crate::construct::HssError;
        tree.validate().map_err(HssError::DimensionMismatch)?;
        if factors.len() != tree.num_nodes() {
            return Err(HssError::DimensionMismatch(format!(
                "{} node factors for a {}-node tree",
                factors.len(),
                tree.num_nodes()
            )));
        }
        let n = tree.root_size();
        let root = tree.root();
        if tree.num_nodes() == 1 {
            if root_lu.dim() != n {
                return Err(HssError::DimensionMismatch(format!(
                    "single-node root LU is {}x{0}, matrix is {n}x{n}",
                    root_lu.dim()
                )));
            }
            return Ok(UlvFactorization {
                tree,
                factors,
                root_lu,
                n,
            });
        }
        for (id, f) in factors.iter().enumerate() {
            if id == root {
                continue;
            }
            let f = f.as_ref().ok_or_else(|| {
                HssError::DimensionMismatch(format!("non-root node {id} is missing its factor"))
            })?;
            let m = f.elim + f.rank;
            if f.w.nrows() != m || f.w.ncols() != m {
                return Err(HssError::DimensionMismatch(format!(
                    "node {id}: transform is {}x{}, expected {m}x{m}",
                    f.w.nrows(),
                    f.w.ncols()
                )));
            }
            // The block size must also agree with what the solve sweeps
            // feed this node: the owned index range at a leaf, the
            // children's surviving unknowns at an internal node.
            let node = tree.node(id);
            let expected_m = if node.is_leaf() {
                node.size
            } else {
                let c1 = node.left.unwrap();
                let c2 = node.right.unwrap();
                factors[c1].as_ref().map_or(0, |f| f.rank)
                    + factors[c2].as_ref().map_or(0, |f| f.rank)
            };
            if m != expected_m {
                return Err(HssError::DimensionMismatch(format!(
                    "node {id}: factor covers {m} unknowns, the tree supplies {expected_m}"
                )));
            }
            if f.elim > 0 && f.d11_lu.as_ref().map(Lu::dim) != Some(f.elim) {
                return Err(HssError::DimensionMismatch(format!(
                    "node {id}: eliminated block LU missing or not {0}x{0}",
                    f.elim
                )));
            }
            // Every stored block must carry the shapes the solve sweeps
            // assume, or a crafted file could panic deep inside a GEMV.
            let shapes_ok = f.d12.nrows() == f.elim
                && f.d12.ncols() == f.rank
                && f.d21.nrows() == f.rank
                && f.d21.ncols() == f.elim
                && f.dtilde.nrows() == f.rank
                && f.dtilde.ncols() == f.rank
                && f.uhat.nrows() == f.rank
                && f.uhat.ncols() == f.rank;
            if !shapes_ok {
                return Err(HssError::DimensionMismatch(format!(
                    "node {id}: factor blocks disagree with elim {} / rank {}",
                    f.elim, f.rank
                )));
            }
        }
        let root_node = tree.node(root);
        let (c1, c2) = (root_node.left.unwrap(), root_node.right.unwrap());
        let expected_root =
            factors[c1].as_ref().map_or(0, |f| f.rank) + factors[c2].as_ref().map_or(0, |f| f.rank);
        if root_lu.dim() != expected_root {
            return Err(HssError::DimensionMismatch(format!(
                "root LU is {}x{0}, children pass up {expected_root} unknowns",
                root_lu.dim()
            )));
        }
        Ok(UlvFactorization {
            tree,
            factors,
            root_lu,
            n,
        })
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// The cluster tree the factorization follows.
    pub fn tree(&self) -> &ClusterTree {
        &self.tree
    }

    /// Per-node factors, indexed by cluster-tree node id (`None` at the
    /// root, whose block lives in [`UlvFactorization::root_lu`], and for a
    /// single-node tree).
    pub fn node_factors(&self) -> &[Option<UlvNodeFactor>] {
        &self.factors
    }

    /// The dense LU factor of the root system.
    pub fn root_lu(&self) -> &Lu {
        &self.root_lu
    }

    /// Solves `A x = b`.
    pub fn solve(&self, b: &[f64]) -> LinalgResult<Vec<f64>> {
        assert_eq!(b.len(), self.n, "UlvFactorization::solve: rhs length");
        let tree = &self.tree;
        let root = tree.root();

        if tree.num_nodes() == 1 {
            return self.root_lu.solve(b);
        }

        let post = tree.postorder();

        // Upward sweep: transform and partially eliminate the rhs.
        let mut b1_store: Vec<Vec<f64>> = vec![Vec::new(); tree.num_nodes()];
        let mut btilde: Vec<Vec<f64>> = vec![Vec::new(); tree.num_nodes()];
        for &id in &post {
            if id == root {
                continue;
            }
            let node = tree.node(id);
            let f = self.factors[id].as_ref().unwrap();
            let b_local: Vec<f64> = if node.is_leaf() {
                b[node.range()].to_vec()
            } else {
                let c1 = node.left.unwrap();
                let c2 = node.right.unwrap();
                btilde[c1]
                    .iter()
                    .chain(btilde[c2].iter())
                    .copied()
                    .collect()
            };
            let mut bprime = vec![0.0; b_local.len()];
            blas::gemv_t(&f.w, &b_local, &mut bprime);
            let b1 = bprime[..f.elim].to_vec();
            let b2 = bprime[f.elim..].to_vec();
            let reduced = if f.elim > 0 {
                let y1 = f.d11_lu.as_ref().unwrap().solve(&b1)?;
                let mut corr = vec![0.0; f.rank];
                blas::gemv(&f.d21, &y1, &mut corr);
                b2.iter().zip(corr.iter()).map(|(a, c)| a - c).collect()
            } else {
                b2
            };
            b1_store[id] = b1;
            btilde[id] = reduced;
        }

        // Root solve.
        let root_node = tree.node(root);
        let c1 = root_node.left.unwrap();
        let c2 = root_node.right.unwrap();
        let b_root: Vec<f64> = btilde[c1]
            .iter()
            .chain(btilde[c2].iter())
            .copied()
            .collect();
        let w_root = self.root_lu.solve(&b_root)?;

        // Downward sweep: recover the eliminated unknowns.
        let mut w2: Vec<Vec<f64>> = vec![Vec::new(); tree.num_nodes()];
        let k1 = self.factors[c1].as_ref().unwrap().rank;
        w2[c1] = w_root[..k1].to_vec();
        w2[c2] = w_root[k1..].to_vec();

        let mut x = vec![0.0; self.n];
        for &id in post.iter().rev() {
            if id == root {
                continue;
            }
            let node = tree.node(id);
            let f = self.factors[id].as_ref().unwrap();
            let w2_i = &w2[id];
            debug_assert_eq!(w2_i.len(), f.rank, "missing skeleton solution");
            let w1 = if f.elim > 0 {
                let mut rhs = b1_store[id].clone();
                let mut corr = vec![0.0; f.elim];
                blas::gemv(&f.d12, w2_i, &mut corr);
                for (r, c) in rhs.iter_mut().zip(corr.iter()) {
                    *r -= c;
                }
                f.d11_lu.as_ref().unwrap().solve(&rhs)?
            } else {
                Vec::new()
            };
            let w_full: Vec<f64> = w1.iter().chain(w2_i.iter()).copied().collect();
            let mut v = vec![0.0; w_full.len()];
            blas::gemv(&f.w, &w_full, &mut v);
            if node.is_leaf() {
                x[node.range()].copy_from_slice(&v);
            } else {
                let cl = node.left.unwrap();
                let cr = node.right.unwrap();
                let kl = self.factors[cl].as_ref().unwrap().rank;
                w2[cl] = v[..kl].to_vec();
                w2[cr] = v[kl..].to_vec();
            }
        }
        Ok(x)
    }

    /// Solves `A X = B` for a matrix of right-hand sides; the columns are
    /// independent and solved in parallel.
    pub fn solve_multi(&self, b: &Matrix) -> LinalgResult<Matrix> {
        assert_eq!(b.nrows(), self.n, "UlvFactorization::solve_multi: dims");
        let cols: Vec<LinalgResult<Vec<f64>>> = (0..b.ncols())
            .into_par_iter()
            .with_min_len(1)
            .map(|j| self.solve(&b.col(j)))
            .collect();
        let mut x = Matrix::zeros(self.n, b.ncols());
        for (j, col) in cols.into_iter().enumerate() {
            x.set_col(j, &col?);
        }
        Ok(x)
    }

    /// Memory used by the stored factors, in bytes.
    pub fn memory_bytes(&self) -> usize {
        let node_mem: usize = self
            .factors
            .iter()
            .flatten()
            .map(|f| {
                f.w.memory_bytes()
                    + f.d12.memory_bytes()
                    + f.d21.memory_bytes()
                    + f.dtilde.memory_bytes()
                    + f.uhat.memory_bytes()
                    + f.elim * f.elim * std::mem::size_of::<f64>()
            })
            .sum();
        node_mem + self.root_lu.dim() * self.root_lu.dim() * std::mem::size_of::<f64>()
    }
}

/// Factors one node: orthogonal elimination of the rows not coupled to the
/// rest of the system, followed by LU on the decoupled block.
fn factor_node(d_full: &Matrix, u_full: &Matrix) -> LinalgResult<UlvNodeFactor> {
    let m = d_full.nrows();
    let k = u_full.ncols();
    debug_assert_eq!(d_full.ncols(), m);
    debug_assert_eq!(u_full.nrows(), m);
    debug_assert!(k <= m, "node rank exceeds block size");

    // W^T U = [0; Û]: take the full QR U = Q [R1; 0] and move the zero rows
    // to the top by a column rotation of Q.
    let (q, r) = full_qr(u_full);
    let elim = m - k;
    let mut w = Matrix::zeros(m, m);
    for col in 0..elim {
        w.set_col(col, &q.col(k + col));
    }
    for col in 0..k {
        w.set_col(elim + col, &q.col(col));
    }
    let uhat = r.submatrix(0, k, 0, k);

    // Transform the diagonal block: D' = W^T D W, reusing one intermediate
    // buffer through the backend seam.
    let be = dense_backend();
    let mut dw = Matrix::zeros(m, m);
    be.gemm_into(d_full, &w, &mut dw);
    let mut dprime = Matrix::zeros(m, m);
    be.gemm_tn_into(&w, &dw, &mut dprime);
    let d11 = dprime.submatrix(0, elim, 0, elim);
    let d12 = dprime.submatrix(0, elim, elim, m);
    let d21 = dprime.submatrix(elim, m, 0, elim);
    let d22 = dprime.submatrix(elim, m, elim, m);

    let (d11_lu, dtilde) = if elim > 0 {
        let f = lu(&d11).map_err(|e| match e {
            LinalgError::Singular { pivot } => LinalgError::Singular { pivot },
            other => other,
        })?;
        let x = f.solve_multi(&d12)?;
        let schur = d22.sub(&blas::matmul(&d21, &x));
        (Some(f), schur)
    } else {
        (None, d22)
    };

    Ok(UlvNodeFactor {
        w,
        elim,
        rank: k,
        d11_lu,
        d12,
        d21,
        dtilde,
        uhat,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::construct::{compress_symmetric, HssOptions};
    use hkrr_clustering::{cluster, ClusteringMethod};
    use hkrr_linalg::random::Pcg64;
    use hkrr_linalg::{blas, cholesky};

    fn kernel_1d(n: usize, h: f64) -> Matrix {
        Matrix::from_fn(n, n, |i, j| {
            let d = (i as f64 - j as f64) / n as f64;
            (-d * d / (2.0 * h * h)).exp()
        })
    }

    fn build_shifted(n: usize, h: f64, lambda: f64, tol: f64) -> (Matrix, crate::HssMatrix) {
        let a = kernel_1d(n, h);
        let points = Matrix::from_fn(n, 1, |i, _| i as f64);
        let tree = cluster(&points, ClusteringMethod::Natural, 16)
            .tree()
            .clone();
        let opts = HssOptions {
            tolerance: tol,
            ..Default::default()
        };
        let mut hss = compress_symmetric(&a, &a, tree, &opts).unwrap();
        hss.set_diagonal_shift(lambda);
        let mut shifted = a;
        shifted.shift_diagonal(lambda);
        (shifted, hss)
    }

    #[test]
    fn ulv_solve_matches_dense_cholesky() {
        let (a, hss) = build_shifted(192, 0.08, 2.0, 1e-9);
        let f = UlvFactorization::factor(&hss).unwrap();
        let mut rng = Pcg64::seed_from_u64(1);
        let b: Vec<f64> = (0..192).map(|_| rng.next_gaussian()).collect();
        let x_hss = f.solve(&b).unwrap();
        let x_ref = cholesky::solve_spd(&a, &b).unwrap();
        let num: f64 = x_hss
            .iter()
            .zip(x_ref.iter())
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt();
        let den = blas::nrm2(&x_ref);
        assert!(num / den < 1e-6, "relative solution error {}", num / den);
    }

    #[test]
    fn residual_is_small_for_loose_tolerance() {
        // With the paper's classification tolerance the solution is inexact,
        // but the residual w.r.t. the *compressed* operator must still be at
        // machine precision — the factorization is exact for the compressed
        // matrix.
        let (_, hss) = build_shifted(160, 0.05, 1.0, 1e-2);
        let f = UlvFactorization::factor(&hss).unwrap();
        let mut rng = Pcg64::seed_from_u64(2);
        let b: Vec<f64> = (0..160).map(|_| rng.next_gaussian()).collect();
        let x = f.solve(&b).unwrap();
        let mut ax = vec![0.0; 160];
        hss.matvec(&x, &mut ax);
        let res: f64 = ax
            .iter()
            .zip(b.iter())
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt()
            / blas::nrm2(&b);
        assert!(res < 1e-10, "residual {res}");
    }

    #[test]
    fn solve_multi_matches_column_solves() {
        let (_, hss) = build_shifted(96, 0.1, 0.5, 1e-8);
        let f = UlvFactorization::factor(&hss).unwrap();
        let mut rng = Pcg64::seed_from_u64(3);
        let b = hkrr_linalg::random::gaussian_matrix(&mut rng, 96, 3);
        let x = f.solve_multi(&b).unwrap();
        for j in 0..3 {
            let xj = f.solve(&b.col(j)).unwrap();
            for i in 0..96 {
                assert!((x[(i, j)] - xj[i]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn single_block_matrix_falls_back_to_dense_lu() {
        let (a, hss) = build_shifted(12, 0.3, 1.0, 1e-8);
        assert_eq!(hss.tree().num_nodes(), 1);
        let f = UlvFactorization::factor(&hss).unwrap();
        let b: Vec<f64> = (0..12).map(|i| i as f64).collect();
        let x = f.solve(&b).unwrap();
        let x_ref = cholesky::solve_spd(&a, &b).unwrap();
        for (a, b) in x.iter().zip(x_ref.iter()) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn identity_plus_shift_solves_exactly() {
        let n = 64;
        let a = Matrix::identity(n);
        let points = Matrix::from_fn(n, 1, |i, _| i as f64);
        let tree = cluster(&points, ClusteringMethod::Natural, 16)
            .tree()
            .clone();
        let mut hss = compress_symmetric(&a, &a, tree, &HssOptions::default()).unwrap();
        hss.set_diagonal_shift(3.0);
        let f = UlvFactorization::factor(&hss).unwrap();
        let b = vec![2.0; n];
        let x = f.solve(&b).unwrap();
        for xi in x {
            assert!((xi - 0.5).abs() < 1e-12);
        }
    }

    #[test]
    fn lambda_update_requires_only_refactorization() {
        // Compress once, solve for two different λ by only updating the
        // diagonal — the workflow the paper uses during hyperparameter
        // tuning.
        let n = 128;
        let a = kernel_1d(n, 0.08);
        let points = Matrix::from_fn(n, 1, |i, _| i as f64);
        let tree = cluster(&points, ClusteringMethod::Natural, 16)
            .tree()
            .clone();
        let mut hss = compress_symmetric(
            &a,
            &a,
            tree,
            &HssOptions {
                tolerance: 1e-9,
                ..Default::default()
            },
        )
        .unwrap();
        let mut rng = Pcg64::seed_from_u64(7);
        let b: Vec<f64> = (0..n).map(|_| rng.next_gaussian()).collect();
        for &lambda in &[0.5, 4.0] {
            hss.set_diagonal_shift(lambda);
            let f = UlvFactorization::factor(&hss).unwrap();
            let x = f.solve(&b).unwrap();
            let mut shifted = a.clone();
            shifted.shift_diagonal(lambda);
            let x_ref = cholesky::solve_spd(&shifted, &b).unwrap();
            let err: f64 = x
                .iter()
                .zip(x_ref.iter())
                .map(|(a, b)| (a - b).abs())
                .fold(0.0, f64::max);
            assert!(err < 1e-6, "lambda {lambda}: max error {err}");
        }
    }

    #[test]
    fn from_parts_roundtrips_solve_bitwise() {
        let (_, hss) = build_shifted(160, 0.08, 1.5, 1e-8);
        let f = UlvFactorization::factor(&hss).unwrap();
        let rebuilt = UlvFactorization::from_parts(
            f.tree().clone(),
            f.node_factors().to_vec(),
            f.root_lu().clone(),
        )
        .unwrap();
        let mut rng = Pcg64::seed_from_u64(21);
        let b: Vec<f64> = (0..160).map(|_| rng.next_gaussian()).collect();
        // Same stored factors ⇒ bitwise-identical solves: reload skips
        // re-factorization without changing a single bit of the output.
        assert_eq!(f.solve(&b).unwrap(), rebuilt.solve(&b).unwrap());
        assert_eq!(rebuilt.dim(), 160);
        assert_eq!(rebuilt.memory_bytes(), f.memory_bytes());
    }

    #[test]
    fn from_parts_rejects_inconsistent_factors() {
        let (_, hss) = build_shifted(96, 0.1, 1.0, 1e-6);
        let f = UlvFactorization::factor(&hss).unwrap();
        // Wrong factor count.
        let mut short = f.node_factors().to_vec();
        short.pop();
        assert!(
            UlvFactorization::from_parts(f.tree().clone(), short, f.root_lu().clone()).is_err()
        );
        // Missing non-root factor.
        let mut missing = f.node_factors().to_vec();
        let non_root = (0..missing.len()).find(|&i| i != f.tree().root()).unwrap();
        missing[non_root] = None;
        assert!(
            UlvFactorization::from_parts(f.tree().clone(), missing, f.root_lu().clone()).is_err()
        );
        // Root LU of the wrong size.
        let bad_root = lu(&Matrix::identity(1)).unwrap();
        assert!(UlvFactorization::from_parts(
            f.tree().clone(),
            f.node_factors().to_vec(),
            bad_root
        )
        .is_err());
    }

    #[test]
    fn factor_memory_is_reported() {
        let (_, hss) = build_shifted(96, 0.1, 1.0, 1e-6);
        let f = UlvFactorization::factor(&hss).unwrap();
        assert!(f.memory_bytes() > 0);
        assert_eq!(f.dim(), 96);
    }
}
