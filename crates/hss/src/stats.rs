//! Summary statistics of an HSS representation (the metrics of Section 4.2
//! of the paper: memory, maximum rank, structure).

use crate::HssMatrix;

/// Aggregate statistics of a compressed HSS matrix.
#[derive(Debug, Clone)]
pub struct HssStats {
    /// Matrix dimension.
    pub dim: usize,
    /// Total memory of all stored factors, in bytes.
    pub memory_bytes: usize,
    /// Total memory in MB (the unit of Table 2 / Figure 5).
    pub memory_mb: f64,
    /// Memory a dense matrix of the same size would need, in bytes.
    pub dense_bytes: usize,
    /// Compression ratio `dense / compressed` (> 1 means compression).
    pub compression_ratio: f64,
    /// Largest HSS rank over all nodes ("Maximum rank" in the paper).
    pub max_rank: usize,
    /// Ranks of every non-root node, in postorder.
    pub ranks: Vec<usize>,
    /// Number of tree nodes.
    pub num_nodes: usize,
    /// Number of leaves.
    pub num_leaves: usize,
}

impl HssStats {
    /// Gathers the statistics of a compressed matrix.
    pub fn from_matrix(hss: &HssMatrix) -> Self {
        let dim = hss.dim();
        let memory_bytes = hss.memory_bytes();
        let dense_bytes = dim * dim * std::mem::size_of::<f64>();
        let tree = hss.tree();
        let root = tree.root();
        let ranks: Vec<usize> = tree
            .postorder()
            .into_iter()
            .filter(|&id| id != root)
            .map(|id| hss.node_data(id).rank)
            .collect();
        HssStats {
            dim,
            memory_bytes,
            memory_mb: memory_bytes as f64 / (1024.0 * 1024.0),
            dense_bytes,
            compression_ratio: if memory_bytes > 0 {
                dense_bytes as f64 / memory_bytes as f64
            } else {
                f64::INFINITY
            },
            max_rank: hss.max_rank(),
            ranks,
            num_nodes: tree.num_nodes(),
            num_leaves: tree.leaves().len(),
        }
    }
}

impl std::fmt::Display for HssStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "HSS n={} mem={:.2}MB ({:.1}x vs dense) max-rank={} leaves={}",
            self.dim, self.memory_mb, self.compression_ratio, self.max_rank, self.num_leaves
        )
    }
}

#[cfg(test)]
mod tests {
    use crate::construct::{compress_symmetric, HssOptions};
    use hkrr_clustering::{cluster, ClusteringMethod};
    use hkrr_linalg::Matrix;

    fn build(n: usize) -> crate::HssMatrix {
        let a = Matrix::from_fn(n, n, |i, j| {
            let d = (i as f64 - j as f64) / n as f64;
            (-d * d / 0.02).exp()
        });
        let points = Matrix::from_fn(n, 1, |i, _| i as f64);
        let tree = cluster(&points, ClusteringMethod::Natural, 16)
            .tree()
            .clone();
        compress_symmetric(&a, &a, tree, &HssOptions::default()).unwrap()
    }

    #[test]
    fn stats_are_consistent_with_matrix() {
        let hss = build(256);
        let s = hss.stats();
        assert_eq!(s.dim, 256);
        assert_eq!(s.memory_bytes, hss.memory_bytes());
        assert_eq!(s.max_rank, hss.max_rank());
        assert_eq!(s.dense_bytes, 256 * 256 * 8);
        assert!(
            s.compression_ratio > 1.0,
            "expected compression, got {}",
            s.compression_ratio
        );
        assert_eq!(s.num_nodes, hss.tree().num_nodes());
        assert_eq!(s.num_leaves, hss.tree().leaves().len());
        assert_eq!(s.ranks.len(), s.num_nodes - 1);
        assert_eq!(s.ranks.iter().copied().max().unwrap(), s.max_rank);
    }

    #[test]
    fn display_mentions_key_numbers() {
        let hss = build(128);
        let text = hss.stats().to_string();
        assert!(text.contains("n=128"));
        assert!(text.contains("max-rank"));
    }
}
