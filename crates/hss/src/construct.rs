//! Randomized HSS construction (Martinsson 2011), the algorithm STRUMPACK
//! uses for its partially matrix-free interface.
//!
//! The construction needs two things from the input matrix:
//!
//! 1. products `S = A R` with a block of random vectors — provided by the
//!    `sampler` operator, which may be the exact kernel operator (`O(n²)`
//!    per sample block) or a cheaper surrogate such as the H-matrix
//!    approximation (the paper's accelerated sampling), and
//! 2. access to selected entries `A(I, J)` — provided by the `entries`
//!    operator (for kernel matrices these are closed-form evaluations).
//!
//! The HSS rank is detected adaptively: if the interpolative decompositions
//! saturate the available sample columns, the construction restarts with
//! twice as many random vectors (up to a cap).
//!
//! The bottom-up pass is **level-parallel**: all nodes of one tree level
//! only read results their children produced on deeper levels, so each
//! level is compressed concurrently (one scoped worker per node, scratch
//! kept per-node). Per-node arithmetic is unchanged from the sequential
//! schedule, so the result is bitwise identical for every thread count.

use crate::{HssMatrix, HssNodeData};
use hkrr_clustering::ClusterTree;
use hkrr_linalg::low_rank::interpolative_decomposition;
use hkrr_linalg::random::{gaussian_matrix, Pcg64};
use hkrr_linalg::{LinearOperator, Matrix};
use rayon::prelude::*;
use std::time::Instant;

/// Options controlling the randomized HSS construction.
#[derive(Debug, Clone, Copy)]
pub struct HssOptions {
    /// Relative compression tolerance for the interpolative decompositions
    /// (the paper's classification experiments use `0.1`; the library
    /// default is tighter).
    pub tolerance: f64,
    /// Number of random sample vectors to start with.
    pub initial_samples: usize,
    /// Extra sample vectors beyond the detected rank (oversampling).
    pub oversampling: usize,
    /// Upper bound on the number of random vectors before giving up on
    /// adaptation (the representation is still returned, with saturated
    /// ranks).
    pub max_samples: usize,
    /// Hard cap on the rank of any node (0 = unlimited).
    pub max_rank: usize,
    /// Seed for the random sample block.
    pub seed: u64,
}

impl Default for HssOptions {
    fn default() -> Self {
        HssOptions {
            tolerance: 1e-6,
            initial_samples: 32,
            oversampling: 10,
            max_samples: 1024,
            max_rank: 0,
            seed: 0x5eed,
        }
    }
}

impl HssOptions {
    /// The looser tolerance the paper uses for classification runs
    /// ("STRUMPACK tolerance set to be at most 0.1").
    pub fn classification() -> Self {
        HssOptions {
            tolerance: 1e-2,
            ..HssOptions::default()
        }
    }
}

/// Statistics recorded while building an [`HssMatrix`].
#[derive(Debug, Clone, Copy, Default)]
pub struct ConstructionStats {
    /// Seconds spent in the sampling products `S = A R` (the part the
    /// H-matrix accelerates — the "Sampling" row of Table 4).
    pub sampling_seconds: f64,
    /// Seconds spent in everything else (IDs, entry extraction, assembly —
    /// the "Other" row of Table 4).
    pub other_seconds: f64,
    /// Number of random vectors in the final (successful) pass.
    pub samples_used: usize,
    /// Number of times the construction restarted with more samples.
    pub restarts: usize,
}

/// Errors from HSS construction.
#[derive(Debug, Clone, PartialEq)]
pub enum HssError {
    /// The operator is not square or does not match the cluster tree.
    DimensionMismatch(String),
    /// A linear-algebra kernel failed (should not happen for finite input).
    Numerical(String),
}

impl std::fmt::Display for HssError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HssError::DimensionMismatch(s) => write!(f, "HSS dimension mismatch: {s}"),
            HssError::Numerical(s) => write!(f, "HSS numerical failure: {s}"),
        }
    }
}

impl std::error::Error for HssError {}

/// Per-node scratch state threaded through the bottom-up pass.
struct NodeScratch {
    /// Reduced random block `X^T R(I, :)` restricted to this node.
    reduced_r: Matrix,
    /// Off-diagonal sample rows restricted to the skeleton.
    reduced_s: Matrix,
}

/// Builds the symmetric HSS representation of `entries` over `tree`.
///
/// `entries` supplies matrix elements, `sampler` supplies the random
/// products; pass the same operator twice when no accelerated sampler is
/// available.
pub fn compress_symmetric(
    entries: &dyn LinearOperator,
    sampler: &dyn LinearOperator,
    tree: ClusterTree,
    opts: &HssOptions,
) -> Result<HssMatrix, HssError> {
    let n = entries.nrows();
    if entries.ncols() != n {
        return Err(HssError::DimensionMismatch(format!(
            "entries operator is {}x{}, expected square",
            entries.nrows(),
            entries.ncols()
        )));
    }
    if sampler.nrows() != n || sampler.ncols() != n {
        return Err(HssError::DimensionMismatch(format!(
            "sampler is {}x{}, expected {n}x{n}",
            sampler.nrows(),
            sampler.ncols()
        )));
    }
    if tree.root_size() != n {
        return Err(HssError::DimensionMismatch(format!(
            "cluster tree covers {} indices, operator has {n}",
            tree.root_size()
        )));
    }

    let mut stats = ConstructionStats::default();
    let mut num_samples = (opts.initial_samples + opts.oversampling).min(n.max(1));

    loop {
        let mut rng = Pcg64::seed_from_u64(opts.seed ^ (num_samples as u64).wrapping_mul(0x9e37));
        let r = gaussian_matrix(&mut rng, n, num_samples);

        let t_sample = Instant::now();
        let s = sampler.matmat(&r);
        stats.sampling_seconds += t_sample.elapsed().as_secs_f64();

        let t_other = Instant::now();
        let result = build_pass(entries, &tree, &r, &s, opts, num_samples);
        stats.other_seconds += t_other.elapsed().as_secs_f64();

        match result {
            PassResult::Done(nodes) => {
                stats.samples_used = num_samples;
                return Ok(HssMatrix {
                    tree,
                    nodes,
                    n,
                    diagonal_shift: 0.0,
                    construction: stats,
                });
            }
            PassResult::Saturated(nodes) => {
                let cap = opts.max_samples.min(n);
                if num_samples >= cap {
                    // Cannot add more samples; accept the (possibly
                    // rank-truncated) representation.
                    stats.samples_used = num_samples;
                    return Ok(HssMatrix {
                        tree,
                        nodes,
                        n,
                        diagonal_shift: 0.0,
                        construction: stats,
                    });
                }
                stats.restarts += 1;
                num_samples = (num_samples * 2).min(cap);
            }
        }
    }
}

enum PassResult {
    Done(Vec<HssNodeData>),
    Saturated(Vec<HssNodeData>),
}

fn build_pass(
    entries: &dyn LinearOperator,
    tree: &ClusterTree,
    r: &Matrix,
    s: &Matrix,
    opts: &HssOptions,
    num_samples: usize,
) -> PassResult {
    let num_nodes = tree.num_nodes();
    let mut nodes: Vec<HssNodeData> = (0..num_nodes).map(|_| HssNodeData::empty()).collect();
    let mut scratch: Vec<Option<NodeScratch>> = (0..num_nodes).map(|_| None).collect();
    let mut saturated = false;
    let root = tree.root();

    // A single-node tree stores the whole matrix as one dense block.
    if tree.num_nodes() == 1 {
        let idx: Vec<usize> = (0..tree.root_size()).collect();
        nodes[root].d = Some(entries.sub_block(&idx, &idx));
        return PassResult::Done(nodes);
    }

    // Bottom-up, one level at a time. Every node of a level depends only on
    // its children (compressed on a deeper level), so the whole level is
    // compressed concurrently; results are scattered sequentially, then the
    // consumed child scratch is released.
    for (depth, level) in tree.levels().iter().enumerate().rev() {
        let mut level_span = hkrr_telemetry::span!("hss.compress_level");
        level_span.annotate("depth", depth);
        level_span.annotate("nodes", level.len());
        let results: Vec<(usize, HssNodeData, Option<NodeScratch>, bool)> = level
            .par_iter()
            .with_min_len(1)
            .map(|&id| {
                let (data, scr, sat) = compress_node(
                    entries,
                    tree,
                    id,
                    id == root,
                    r,
                    s,
                    opts,
                    num_samples,
                    &nodes,
                    &scratch,
                );
                (id, data, scr, sat)
            })
            .collect();
        for (id, data, scr, sat) in results {
            saturated |= sat;
            nodes[id] = data;
            scratch[id] = scr;
        }
        for &id in level {
            let node = tree.node(id);
            if let (Some(c1), Some(c2)) = (node.left, node.right) {
                scratch[c1] = None;
                scratch[c2] = None;
            }
        }
    }

    if saturated {
        PassResult::Saturated(nodes)
    } else {
        PassResult::Done(nodes)
    }
}

/// Compresses one node from its children's results (already in `nodes` /
/// `scratch`). Pure with respect to the shared state, so all nodes of a
/// level can run concurrently. Returns the node payload, the scratch its
/// parent will consume, and whether the ID saturated the sample budget.
fn compress_node(
    entries: &dyn LinearOperator,
    tree: &ClusterTree,
    id: usize,
    is_root: bool,
    r: &Matrix,
    s: &Matrix,
    opts: &HssOptions,
    num_samples: usize,
    nodes: &[HssNodeData],
    scratch: &[Option<NodeScratch>],
) -> (HssNodeData, Option<NodeScratch>, bool) {
    let node = tree.node(id);
    let mut out = HssNodeData::empty();
    let mut saturated = false;

    if node.is_leaf() {
        let idx: Vec<usize> = node.range().collect();
        let d = entries.sub_block(&idx, &idx);
        let r_loc = r.select_rows(&idx);
        let s_rows = s.select_rows(&idx);
        // Off-diagonal sample: subtract the diagonal block's contribution.
        let s_loc = s_rows.sub(&hkrr_linalg::blas::matmul(&d, &r_loc));

        let (sel, x) = row_id(&s_loc, opts.tolerance, opts.max_rank);
        let k = sel.len();
        if k + 2 >= num_samples && k < idx.len() {
            saturated = true;
        }
        let skeleton: Vec<usize> = sel.iter().map(|&p| idx[p]).collect();
        let reduced_r = hkrr_linalg::blas::matmul_tn(&x, &r_loc);
        let reduced_s = s_loc.select_rows(&sel);

        out.d = Some(d);
        out.u = Some(x);
        out.rank = k;
        out.skeleton = skeleton;
        (
            out,
            Some(NodeScratch {
                reduced_r,
                reduced_s,
            }),
            saturated,
        )
    } else {
        let c1 = node.left.expect("internal node has two children");
        let c2 = node.right.expect("internal node has two children");
        let skel1 = &nodes[c1].skeleton;
        let skel2 = &nodes[c2].skeleton;
        let b12 = entries.sub_block(skel1, skel2);
        let b21 = b12.transpose();

        if is_root {
            out.b12 = Some(b12);
            out.b21 = Some(b21);
            return (out, None, false);
        }

        let s1 = scratch[c1].as_ref().expect("child scratch missing");
        let s2 = scratch[c2].as_ref().expect("child scratch missing");
        // Remove the sibling coupling from the children's samples so the
        // local sample only sees the exterior of this node.
        let top = s1
            .reduced_s
            .sub(&hkrr_linalg::blas::matmul(&b12, &s2.reduced_r));
        let bottom = s2
            .reduced_s
            .sub(&hkrr_linalg::blas::matmul(&b21, &s1.reduced_r));
        let s_loc = top.vstack(&bottom);

        let (sel, x) = row_id(&s_loc, opts.tolerance, opts.max_rank);
        let k = sel.len();
        if k + 2 >= num_samples && k < s_loc.nrows() {
            saturated = true;
        }
        let k1 = nodes[c1].rank;
        let skeleton: Vec<usize> = sel
            .iter()
            .map(|&p| if p < k1 { skel1[p] } else { skel2[p - k1] })
            .collect();
        let merged_r = s1.reduced_r.vstack(&s2.reduced_r);
        let reduced_r = hkrr_linalg::blas::matmul_tn(&x, &merged_r);
        let reduced_s = s_loc.select_rows(&sel);

        out.b12 = Some(b12);
        out.b21 = Some(b21);
        out.u = Some(x);
        out.rank = k;
        out.skeleton = skeleton;
        (
            out,
            Some(NodeScratch {
                reduced_r,
                reduced_s,
            }),
            saturated,
        )
    }
}

/// Row interpolative decomposition: `M ≈ X · M(rows, :)` with
/// `X(rows, :) = I`.
fn row_id(m: &Matrix, tol: f64, max_rank: usize) -> (Vec<usize>, Matrix) {
    let (rows, t) = interpolative_decomposition(&m.transpose(), tol, max_rank);
    (rows, t.transpose())
}

#[cfg(test)]
mod tests {
    use super::*;
    use hkrr_clustering::{cluster, ClusteringMethod};
    use hkrr_linalg::blas;
    use hkrr_linalg::random::Pcg64;

    fn kernel_1d(n: usize, h: f64) -> Matrix {
        Matrix::from_fn(n, n, |i, j| {
            let d = (i as f64 - j as f64) / n as f64;
            (-d * d / (2.0 * h * h)).exp()
        })
    }

    fn ordering(n: usize, leaf: usize) -> ClusterTree {
        let points = Matrix::from_fn(n, 1, |i, _| i as f64);
        cluster(&points, ClusteringMethod::Natural, leaf)
            .tree()
            .clone()
    }

    #[test]
    fn construction_reproduces_matrix_at_tolerance() {
        let n = 160;
        let a = kernel_1d(n, 0.08);
        let hss = compress_symmetric(&a, &a, ordering(n, 16), &HssOptions::default()).unwrap();
        let err = blas::relative_error(&a, &hss.to_dense());
        assert!(err < 1e-5, "reconstruction error {err}");
    }

    #[test]
    fn tighter_tolerance_gives_larger_rank_and_smaller_error() {
        let n = 200;
        let a = kernel_1d(n, 0.05);
        let loose = compress_symmetric(
            &a,
            &a,
            ordering(n, 16),
            &HssOptions {
                tolerance: 1e-2,
                ..Default::default()
            },
        )
        .unwrap();
        let tight = compress_symmetric(
            &a,
            &a,
            ordering(n, 16),
            &HssOptions {
                tolerance: 1e-9,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(tight.max_rank() >= loose.max_rank());
        let err_loose = blas::relative_error(&a, &loose.to_dense());
        let err_tight = blas::relative_error(&a, &tight.to_dense());
        assert!(err_tight <= err_loose);
        assert!(loose.memory_bytes() <= tight.memory_bytes());
    }

    #[test]
    fn adaptive_sampling_restarts_when_undersampled() {
        // Start with very few samples on a matrix whose HSS rank exceeds
        // them; the construction must restart and still come out accurate.
        let n = 128;
        let a = kernel_1d(n, 0.02);
        let opts = HssOptions {
            tolerance: 1e-8,
            initial_samples: 4,
            oversampling: 2,
            max_samples: 256,
            ..Default::default()
        };
        let hss = compress_symmetric(&a, &a, ordering(n, 16), &opts).unwrap();
        assert!(hss.construction_stats().restarts >= 1);
        let err = blas::relative_error(&a, &hss.to_dense());
        assert!(err < 1e-5, "reconstruction error {err}");
    }

    #[test]
    fn separate_sampler_operator_is_used_for_products() {
        // Use a slightly perturbed sampler: the construction should still
        // produce an accurate representation of `entries` because the
        // skeleton blocks come from `entries`, and the sampler only guides
        // the basis selection (this is exactly the H-matrix trick).
        let n = 96;
        let a = kernel_1d(n, 0.1);
        let mut rng = Pcg64::seed_from_u64(3);
        let noise = Matrix::from_fn(n, n, |_, _| 1e-9 * rng.next_gaussian());
        let sampler = a.add(&noise.add(&noise.transpose()));
        let hss =
            compress_symmetric(&a, &sampler, ordering(n, 16), &HssOptions::default()).unwrap();
        let err = blas::relative_error(&a, &hss.to_dense());
        assert!(err < 1e-5, "reconstruction error {err}");
    }

    #[test]
    fn single_leaf_tree_stores_dense_block() {
        let n = 12;
        let a = kernel_1d(n, 0.5);
        let tree = ordering(n, 16);
        assert_eq!(tree.num_nodes(), 1);
        let hss = compress_symmetric(&a, &a, tree, &HssOptions::default()).unwrap();
        assert_eq!(hss.max_rank(), 0);
        assert!(blas::relative_error(&a, &hss.to_dense()) < 1e-12);
    }

    #[test]
    fn dimension_mismatches_are_rejected() {
        let a = Matrix::identity(10);
        let b = Matrix::identity(12);
        let tree = ordering(10, 4);
        assert!(matches!(
            compress_symmetric(&a, &b, tree.clone(), &HssOptions::default()),
            Err(HssError::DimensionMismatch(_))
        ));
        let rect = Matrix::zeros(10, 8);
        assert!(matches!(
            compress_symmetric(&rect, &rect, tree.clone(), &HssOptions::default()),
            Err(HssError::DimensionMismatch(_))
        ));
        let wrong_tree = ordering(20, 4);
        assert!(matches!(
            compress_symmetric(&a, &a, wrong_tree, &HssOptions::default()),
            Err(HssError::DimensionMismatch(_))
        ));
    }

    #[test]
    fn construction_stats_are_populated() {
        let n = 64;
        let a = kernel_1d(n, 0.2);
        let hss = compress_symmetric(&a, &a, ordering(n, 8), &HssOptions::default()).unwrap();
        let st = hss.construction_stats();
        assert!(st.samples_used >= 32);
        assert!(st.sampling_seconds >= 0.0);
        assert!(st.other_seconds >= 0.0);
    }

    #[test]
    fn identity_matrix_has_rank_zero_offdiagonals() {
        let n = 64;
        let a = Matrix::identity(n);
        let hss = compress_symmetric(&a, &a, ordering(n, 16), &HssOptions::default()).unwrap();
        assert_eq!(hss.max_rank(), 0);
        assert!(blas::relative_error(&a, &hss.to_dense()) < 1e-12);
    }

    #[test]
    fn classification_options_use_loose_tolerance() {
        let o = HssOptions::classification();
        assert!(o.tolerance >= 1e-2);
    }
}
