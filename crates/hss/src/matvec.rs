//! HSS matrix-vector products.
//!
//! The product `y = A x` is evaluated in two sweeps over the HSS tree: an
//! upward sweep that compresses the input vector onto the nested column
//! bases (`z_i = V_i^T x_{I_i}`, computed hierarchically through the
//! transfer matrices), and a downward sweep that accumulates the coupling
//! contributions through the `B` blocks and expands them back through the
//! row bases.  The cost is `O(r n)` with `r` the maximum HSS rank.
//!
//! The leaf stages — compressing `x` onto the leaf bases and expanding the
//! final `D_i x_i + U_i f_i` outputs — dominate that cost and run in
//! parallel over the (disjoint) leaves; the internal-node sweeps operate on
//! rank-sized vectors and stay sequential. `matmat` additionally
//! parallelizes over the independent columns of `X`.

use crate::HssMatrix;
use hkrr_linalg::{blas, LinearOperator, Matrix};
use rayon::prelude::*;

/// Leaves-per-worker floor for the parallel leaf stages: one leaf costs a
/// `leaf_size²` GEMV, so a handful per worker amortizes thread spawn.
const LEAVES_PER_THREAD: usize = 8;

impl HssMatrix {
    /// `y = (A + λI) x`, where `λ` is the current diagonal shift (already
    /// folded into the leaf blocks).
    pub fn matvec(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.n, "HssMatrix::matvec: x length mismatch");
        assert_eq!(y.len(), self.n, "HssMatrix::matvec: y length mismatch");
        let tree = &self.tree;
        let root = tree.root();

        // Degenerate single-block representation.
        if tree.num_nodes() == 1 {
            let d = self.nodes[root].d.as_ref().expect("single node stores D");
            blas::gemv(d, x, y);
            return;
        }

        let post = tree.postorder();
        let leaves = tree.leaves();

        // Upward sweep: z_i = (nested V_i)^T x restricted to node i. The
        // leaf compressions touch disjoint slices of `x` and run in
        // parallel; the internal merges are rank-sized and stay sequential.
        let mut z: Vec<Vec<f64>> = vec![Vec::new(); tree.num_nodes()];
        let leaf_z: Vec<(usize, Vec<f64>)> = leaves
            .par_iter()
            .with_min_len(LEAVES_PER_THREAD)
            .map(|&id| {
                let u = self.nodes[id].u.as_ref().expect("leaf has a basis");
                let xi = &x[tree.node(id).range()];
                let mut zi = vec![0.0; u.ncols()];
                blas::gemv_t(u, xi, &mut zi);
                (id, zi)
            })
            .collect();
        for (id, zi) in leaf_z {
            z[id] = zi;
        }
        for &id in &post {
            let node = tree.node(id);
            if id == root || node.is_leaf() {
                continue;
            }
            let u = self.nodes[id]
                .u
                .as_ref()
                .expect("non-root node has a basis");
            let c1 = node.left.unwrap();
            let c2 = node.right.unwrap();
            let merged: Vec<f64> = z[c1].iter().chain(z[c2].iter()).copied().collect();
            let mut zi = vec![0.0; u.ncols()];
            blas::gemv_t(u, &merged, &mut zi);
            z[id] = zi;
        }

        // Downward sweep: f_i collects the contribution of everything
        // outside node i, expressed in the node's row basis.
        let mut f: Vec<Vec<f64>> = vec![Vec::new(); tree.num_nodes()];
        for &id in post.iter().rev() {
            let node = tree.node(id);
            if node.is_leaf() {
                continue;
            }
            let c1 = node.left.unwrap();
            let c2 = node.right.unwrap();
            let b12 = self.nodes[id].b12.as_ref().expect("internal node has B12");
            let b21 = self.nodes[id].b21.as_ref().expect("internal node has B21");
            let k1 = self.nodes[c1].rank;
            let k2 = self.nodes[c2].rank;

            let mut f1 = vec![0.0; k1];
            let mut f2 = vec![0.0; k2];
            if id != root {
                // Pass the parent's contribution through the transfer matrix.
                let u = self.nodes[id].u.as_ref().unwrap();
                let fi = &f[id];
                let mut g = vec![0.0; u.nrows()];
                blas::gemv(u, fi, &mut g);
                f1.copy_from_slice(&g[..k1]);
                f2.copy_from_slice(&g[k1..]);
            }
            // Sibling coupling through the B blocks.
            let mut tmp1 = vec![0.0; k1];
            blas::gemv(b12, &z[c2], &mut tmp1);
            blas::axpy(1.0, &tmp1, &mut f1);
            let mut tmp2 = vec![0.0; k2];
            blas::gemv(b21, &z[c1], &mut tmp2);
            blas::axpy(1.0, &tmp2, &mut f2);

            f[c1] = f1;
            f[c2] = f2;
        }

        // Leaves: y(I_i) = D_i x(I_i) + U_i f_i, in parallel over the
        // disjoint leaf ranges.
        let leaf_y: Vec<(usize, Vec<f64>)> = leaves
            .par_iter()
            .with_min_len(LEAVES_PER_THREAD)
            .map(|&id| {
                let node = tree.node(id);
                let d = self.nodes[id].d.as_ref().expect("leaf stores D");
                let u = self.nodes[id].u.as_ref().unwrap();
                let xi = &x[node.range()];
                let mut yi = vec![0.0; node.size];
                blas::gemv(d, xi, &mut yi);
                if u.ncols() > 0 && !f[id].is_empty() {
                    let mut corr = vec![0.0; node.size];
                    blas::gemv(u, &f[id], &mut corr);
                    blas::axpy(1.0, &corr, &mut yi);
                }
                (id, yi)
            })
            .collect();
        for (id, yi) in leaf_y {
            y[tree.node(id).range()].copy_from_slice(&yi);
        }
    }

    /// Multi-vector product `Y = A X`; the columns are independent and
    /// evaluated in parallel (nested per-column parallelism degrades to the
    /// sequential leaf sweep inside the workers).
    pub fn matmat(&self, x: &Matrix) -> Matrix {
        assert_eq!(x.nrows(), self.n, "HssMatrix::matmat: dimension mismatch");
        let cols: Vec<Vec<f64>> = (0..x.ncols())
            .into_par_iter()
            .with_min_len(1)
            .map(|j| {
                let mut y = vec![0.0; self.n];
                self.matvec(&x.col(j), &mut y);
                y
            })
            .collect();
        let mut out = Matrix::zeros(self.n, x.ncols());
        for (j, col) in cols.iter().enumerate() {
            out.set_col(j, col);
        }
        out
    }
}

impl LinearOperator for HssMatrix {
    fn nrows(&self) -> usize {
        self.n
    }

    fn ncols(&self) -> usize {
        self.n
    }

    /// Entry access reconstructs a full column through a matvec, so it is
    /// `O(r n)` per entry — fine for spot checks, not for assembling blocks.
    fn entry(&self, i: usize, j: usize) -> f64 {
        let mut x = vec![0.0; self.n];
        x[j] = 1.0;
        let mut y = vec![0.0; self.n];
        self.matvec(&x, &mut y);
        y[i]
    }

    fn matvec(&self, x: &[f64], y: &mut [f64]) {
        HssMatrix::matvec(self, x, y);
    }

    fn rmatvec(&self, x: &[f64], y: &mut [f64]) {
        // Symmetric representation.
        HssMatrix::matvec(self, x, y);
    }

    fn matmat(&self, x: &Matrix) -> Matrix {
        HssMatrix::matmat(self, x)
    }

    fn rmatmat(&self, x: &Matrix) -> Matrix {
        HssMatrix::matmat(self, x)
    }
}

#[cfg(test)]
mod tests {
    use crate::construct::{compress_symmetric, HssOptions};
    use hkrr_clustering::{cluster, ClusteringMethod};
    use hkrr_linalg::random::Pcg64;
    use hkrr_linalg::{blas, LinearOperator, Matrix};

    fn kernel_1d(n: usize, h: f64) -> Matrix {
        Matrix::from_fn(n, n, |i, j| {
            let d = (i as f64 - j as f64) / n as f64;
            (-d * d / (2.0 * h * h)).exp()
        })
    }

    fn build(n: usize, leaf: usize, tol: f64) -> (Matrix, crate::HssMatrix) {
        let a = kernel_1d(n, 0.07);
        let points = Matrix::from_fn(n, 1, |i, _| i as f64);
        let tree = cluster(&points, ClusteringMethod::Natural, leaf)
            .tree()
            .clone();
        let opts = HssOptions {
            tolerance: tol,
            ..Default::default()
        };
        let hss = compress_symmetric(&a, &a, tree, &opts).unwrap();
        (a, hss)
    }

    #[test]
    fn matvec_matches_dense_gemv() {
        let (a, hss) = build(200, 16, 1e-8);
        let mut rng = Pcg64::seed_from_u64(1);
        let x: Vec<f64> = (0..200).map(|_| rng.next_gaussian()).collect();
        let mut y_hss = vec![0.0; 200];
        let mut y_ref = vec![0.0; 200];
        hss.matvec(&x, &mut y_hss);
        blas::gemv(&a, &x, &mut y_ref);
        let scale = blas::nrm2(&y_ref);
        let err = y_hss
            .iter()
            .zip(y_ref.iter())
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt()
            / scale;
        assert!(err < 1e-6, "relative matvec error {err}");
    }

    #[test]
    fn matmat_matches_dense_matmul() {
        let (a, hss) = build(128, 16, 1e-8);
        let mut rng = Pcg64::seed_from_u64(2);
        let x = hkrr_linalg::random::gaussian_matrix(&mut rng, 128, 5);
        let y_hss = hss.matmat(&x);
        let y_ref = blas::matmul(&a, &x);
        assert!(blas::relative_error(&y_ref, &y_hss) < 1e-6);
    }

    #[test]
    fn operator_entry_matches_dense() {
        let (a, hss) = build(96, 16, 1e-9);
        for &(i, j) in &[(0, 0), (5, 80), (50, 3), (95, 95)] {
            assert!((LinearOperator::entry(&hss, i, j) - a[(i, j)]).abs() < 1e-6);
        }
    }

    #[test]
    fn matvec_on_unit_vectors_reconstructs_columns() {
        let (a, hss) = build(80, 8, 1e-9);
        let dense = hss.to_dense();
        assert!(blas::relative_error(&a, &dense) < 1e-6);
    }

    #[test]
    fn rmatvec_equals_matvec_for_symmetric_matrix() {
        let (_, hss) = build(64, 8, 1e-8);
        let mut rng = Pcg64::seed_from_u64(3);
        let x: Vec<f64> = (0..64).map(|_| rng.next_gaussian()).collect();
        let mut y1 = vec![0.0; 64];
        let mut y2 = vec![0.0; 64];
        hss.matvec(&x, &mut y1);
        LinearOperator::rmatvec(&hss, &x, &mut y2);
        assert_eq!(y1, y2);
    }

    #[test]
    #[should_panic]
    fn matvec_rejects_wrong_length() {
        let (_, hss) = build(32, 8, 1e-6);
        let x = vec![0.0; 31];
        let mut y = vec![0.0; 32];
        hss.matvec(&x, &mut y);
    }
}
