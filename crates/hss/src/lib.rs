//! # hkrr-hss
//!
//! Hierarchically Semi-Separable (HSS) matrices: randomized construction,
//! matrix-vector products and ULV factorization/solve.
//!
//! This is the Rust counterpart of the STRUMPACK-HSS kernels the paper uses:
//!
//! * the HSS structure follows a binary [`hkrr_clustering::ClusterTree`]
//!   (diagonal blocks at the leaves, nested `U`/`V` bases and `B` coupling
//!   blocks at the internal nodes — Figures 2 and 3 of the paper),
//! * construction uses the **randomized sampling** algorithm of Martinsson
//!   (2011): it only needs products of the matrix with a block of random
//!   vectors plus access to selected entries — the *partially matrix-free*
//!   interface ([`hkrr_linalg::LinearOperator`]).  The sampling operator may
//!   be a different (cheaper) approximation of the same matrix, which is how
//!   the H-matrix accelerated sampling of the paper plugs in,
//! * the solve uses a **ULV factorization** (orthogonal elimination of the
//!   non-coupled rows, LU on the leftover blocks), not Sherman-Morrison-
//!   Woodbury, matching the paper's design choice,
//! * the `K + λI` diagonal shift of kernel ridge regression can be applied
//!   to an existing compressed matrix without recompression.
//!
//! Kernel matrices are symmetric, so the construction builds the symmetric
//! form (`V = U`, `B_{ji} = B_{ij}^T`); the public API asserts symmetry of
//! the input operator through a debug check on sampled entries.
//!
//! The ULV factor store is precision-parametric ([`FactorPrecision`]):
//! factorization always runs in f64, and [`UlvFactorization::to_f32`]
//! demotes the stored factors for the preconditioner role — see
//! [`ulv`] and [`precond`] for the contract.

#![warn(missing_docs)]

pub mod construct;
pub mod matvec;
pub mod precond;
pub mod stats;
pub mod ulv;

pub use construct::{ConstructionStats, HssOptions};
pub use stats::HssStats;
pub use ulv::{FactorPrecision, UlvFactorization, UlvNodeFactor, UlvNodeFactorF32};

use hkrr_clustering::ClusterTree;
use hkrr_linalg::Matrix;

/// Per-node payload of the HSS representation.
///
/// For a leaf: `d` is the dense diagonal block and `u` the `|I_i| x k_i`
/// row/column basis.  For an internal non-root node: `u` is the transfer
/// matrix `Ũ_i` of size `(k_{c1} + k_{c2}) x k_i`.  Internal nodes
/// (including the root) store the coupling blocks `b12 = B_{c1,c2}` and
/// `b21 = B_{c2,c1}` between their children.
#[derive(Debug, Clone)]
pub struct HssNodeData {
    /// Dense diagonal block (leaves only).
    pub d: Option<Matrix>,
    /// Leaf basis `U_i` or internal transfer matrix `Ũ_i` (absent at root).
    pub u: Option<Matrix>,
    /// Coupling block between the node's first and second child.
    pub b12: Option<Matrix>,
    /// Coupling block between the node's second and first child.
    pub b21: Option<Matrix>,
    /// Global (permuted) indices of the skeleton rows/columns selected by
    /// the interpolative decomposition at this node.
    pub skeleton: Vec<usize>,
    /// HSS rank of this node (`skeleton.len()`).
    pub rank: usize,
}

impl HssNodeData {
    fn empty() -> Self {
        HssNodeData {
            d: None,
            u: None,
            b12: None,
            b21: None,
            skeleton: Vec::new(),
            rank: 0,
        }
    }
}

/// A symmetric HSS matrix.
#[derive(Debug, Clone)]
pub struct HssMatrix {
    tree: ClusterTree,
    nodes: Vec<HssNodeData>,
    n: usize,
    diagonal_shift: f64,
    construction: ConstructionStats,
}

impl HssMatrix {
    /// Rebuilds a compressed matrix from its stored parts — the inverse of
    /// the [`HssMatrix::tree`] / [`HssMatrix::nodes`] /
    /// [`HssMatrix::diagonal_shift`] / [`HssMatrix::construction_stats`]
    /// accessors — validating the structure against the tree so a corrupted
    /// serialization cannot produce an inconsistent representation.
    pub fn from_parts(
        tree: ClusterTree,
        nodes: Vec<HssNodeData>,
        diagonal_shift: f64,
        construction: ConstructionStats,
    ) -> Result<Self, construct::HssError> {
        use construct::HssError;
        tree.validate().map_err(HssError::DimensionMismatch)?;
        if nodes.len() != tree.num_nodes() {
            return Err(HssError::DimensionMismatch(format!(
                "{} node payloads for a {}-node tree",
                nodes.len(),
                tree.num_nodes()
            )));
        }
        let n = tree.root_size();
        for (id, nd) in nodes.iter().enumerate() {
            let node = tree.node(id);
            if node.is_leaf() {
                match nd.d.as_ref() {
                    Some(d) if d.nrows() == node.size && d.ncols() == node.size => {}
                    Some(d) => {
                        return Err(HssError::DimensionMismatch(format!(
                            "leaf {id} diagonal block is {}x{}, node owns {} indices",
                            d.nrows(),
                            d.ncols(),
                            node.size
                        )))
                    }
                    None => {
                        return Err(HssError::DimensionMismatch(format!(
                            "leaf {id} is missing its diagonal block"
                        )))
                    }
                }
            }
            // Basis blocks: every non-root node needs one, sized so the
            // matvec sweeps cannot index out of bounds. (Single-node trees
            // have no basis at all.)
            if id != tree.root() {
                let expected_rows = if node.is_leaf() {
                    node.size
                } else {
                    let c1 = node.left.unwrap();
                    let c2 = node.right.unwrap();
                    nodes[c1].rank + nodes[c2].rank
                };
                match nd.u.as_ref() {
                    Some(u) if u.nrows() == expected_rows && u.ncols() == nd.rank => {}
                    Some(u) => {
                        return Err(HssError::DimensionMismatch(format!(
                            "node {id}: basis is {}x{}, expected {expected_rows}x{}",
                            u.nrows(),
                            u.ncols(),
                            nd.rank
                        )))
                    }
                    None => {
                        return Err(HssError::DimensionMismatch(format!(
                            "non-root node {id} is missing its basis"
                        )))
                    }
                }
            }
            if !node.is_leaf() {
                let c1 = node.left.unwrap();
                let c2 = node.right.unwrap();
                let (k1, k2) = (nodes[c1].rank, nodes[c2].rank);
                let b12_ok = nd
                    .b12
                    .as_ref()
                    .is_some_and(|b| b.nrows() == k1 && b.ncols() == k2);
                let b21_ok = nd
                    .b21
                    .as_ref()
                    .is_some_and(|b| b.nrows() == k2 && b.ncols() == k1);
                if !b12_ok || !b21_ok {
                    return Err(HssError::DimensionMismatch(format!(
                        "internal node {id}: coupling blocks missing or not {k1}x{k2} / {k2}x{k1}"
                    )));
                }
            }
            if nd.rank != nd.skeleton.len() {
                return Err(HssError::DimensionMismatch(format!(
                    "node {id}: rank {} disagrees with {} skeleton indices",
                    nd.rank,
                    nd.skeleton.len()
                )));
            }
            if nd.skeleton.iter().any(|&s| s >= n) {
                return Err(HssError::DimensionMismatch(format!(
                    "node {id}: skeleton index out of range 0..{n}"
                )));
            }
        }
        Ok(HssMatrix {
            tree,
            nodes,
            n,
            diagonal_shift,
            construction,
        })
    }

    /// Matrix dimension `n`.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Every node payload, indexed by cluster-tree node id.
    pub fn nodes(&self) -> &[HssNodeData] {
        &self.nodes
    }

    /// The cluster tree the representation is built on.
    pub fn tree(&self) -> &ClusterTree {
        &self.tree
    }

    /// Per-node data, indexed by cluster-tree node id.
    pub fn node_data(&self, id: usize) -> &HssNodeData {
        &self.nodes[id]
    }

    /// Statistics recorded during construction (sampling time, restarts,
    /// number of random vectors used).
    pub fn construction_stats(&self) -> &ConstructionStats {
        &self.construction
    }

    /// The diagonal shift `λ` currently applied (see
    /// [`HssMatrix::set_diagonal_shift`]).
    pub fn diagonal_shift(&self) -> f64 {
        self.diagonal_shift
    }

    /// Sets the diagonal shift `λ` so the matrix represents `K + λI`.
    ///
    /// Only the diagonal entries of the leaf blocks change; no
    /// recompression is performed — this is the cheap `λ` update the paper
    /// highlights for hyperparameter tuning.
    pub fn set_diagonal_shift(&mut self, lambda: f64) {
        let delta = lambda - self.diagonal_shift;
        if delta == 0.0 {
            return;
        }
        for id in 0..self.nodes.len() {
            if let Some(d) = self.nodes[id].d.as_mut() {
                d.shift_diagonal(delta);
            }
        }
        self.diagonal_shift = lambda;
    }

    /// Largest HSS rank over all nodes.
    pub fn max_rank(&self) -> usize {
        self.nodes.iter().map(|nd| nd.rank).max().unwrap_or(0)
    }

    /// Memory footprint (bytes) of all stored factors
    /// (`D_i`, `U_i`/`Ũ_i`, `B_{ij}`), the metric reported in Table 2 and
    /// Figures 5 and 7a of the paper.
    pub fn memory_bytes(&self) -> usize {
        self.nodes
            .iter()
            .map(|nd| {
                nd.d.as_ref().map_or(0, Matrix::memory_bytes)
                    + nd.u.as_ref().map_or(0, Matrix::memory_bytes)
                    + nd.b12.as_ref().map_or(0, Matrix::memory_bytes)
                    + nd.b21.as_ref().map_or(0, Matrix::memory_bytes)
            })
            .sum()
    }

    /// Memory footprint in megabytes.
    pub fn memory_mb(&self) -> f64 {
        self.memory_bytes() as f64 / (1024.0 * 1024.0)
    }

    /// Summary statistics (memory, ranks, per-level breakdown).
    pub fn stats(&self) -> HssStats {
        HssStats::from_matrix(self)
    }

    /// Expands the representation into a dense matrix (tests / small `n`).
    pub fn to_dense(&self) -> Matrix {
        let mut out = Matrix::zeros(self.n, self.n);
        let mut x = vec![0.0; self.n];
        let mut y = vec![0.0; self.n];
        for j in 0..self.n {
            x[j] = 1.0;
            self.matvec(&x, &mut y);
            out.set_col(j, &y);
            x[j] = 0.0;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hkrr_clustering::{cluster, ClusteringMethod};
    use hkrr_linalg::random::{gaussian_matrix, Pcg64};
    use hkrr_linalg::{blas, LinearOperator};

    /// Builds a symmetric test matrix with decaying off-diagonal blocks
    /// (a 1-D exponential kernel), which is exactly the structure HSS
    /// compresses well.
    fn test_kernel(n: usize, h: f64) -> Matrix {
        Matrix::from_fn(n, n, |i, j| {
            let d = (i as f64 - j as f64) / n as f64;
            (-d * d / (2.0 * h * h)).exp()
        })
    }

    fn build(n: usize, tol: f64) -> (Matrix, HssMatrix) {
        let a = test_kernel(n, 0.1);
        let points = Matrix::from_fn(n, 1, |i, _| i as f64 / n as f64);
        let ordering = cluster(&points, ClusteringMethod::Natural, 16);
        let opts = HssOptions {
            tolerance: tol,
            ..HssOptions::default()
        };
        let hss = construct::compress_symmetric(&a, &a, ordering.tree().clone(), &opts).unwrap();
        (a, hss)
    }

    #[test]
    fn diagonal_shift_updates_leaf_blocks_only() {
        let (a, mut hss) = build(128, 1e-8);
        let base_mem = hss.memory_bytes();
        hss.set_diagonal_shift(3.0);
        assert_eq!(hss.diagonal_shift(), 3.0);
        assert_eq!(hss.memory_bytes(), base_mem, "shift must not change memory");
        let mut shifted = a.clone();
        shifted.shift_diagonal(3.0);
        let mut rng = Pcg64::seed_from_u64(1);
        let x: Vec<f64> = (0..128).map(|_| rng.next_gaussian()).collect();
        let mut y_hss = vec![0.0; 128];
        let mut y_ref = vec![0.0; 128];
        hss.matvec(&x, &mut y_hss);
        blas::gemv(&shifted, &x, &mut y_ref);
        let err: f64 = y_hss
            .iter()
            .zip(y_ref.iter())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max);
        assert!(err < 1e-5, "shifted matvec error {err}");
        // Shifting back restores the original matrix.
        hss.set_diagonal_shift(0.0);
        let mut y_back = vec![0.0; 128];
        hss.matvec(&x, &mut y_back);
        let mut y_orig = vec![0.0; 128];
        blas::gemv(&a, &x, &mut y_orig);
        let err: f64 = y_back
            .iter()
            .zip(y_orig.iter())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max);
        assert!(err < 1e-5);
    }

    #[test]
    fn memory_is_far_below_dense_for_compressible_matrix() {
        let (a, hss) = build(512, 1e-6);
        assert!(hss.memory_bytes() < a.memory_bytes() / 2);
        assert!(hss.max_rank() > 0);
        assert!(hss.max_rank() < 64);
    }

    #[test]
    fn to_dense_matches_original_within_tolerance() {
        let (a, hss) = build(96, 1e-8);
        let dense = hss.to_dense();
        assert!(blas::relative_error(&a, &dense) < 1e-6);
    }

    #[test]
    fn random_dense_matrix_compresses_to_full_rank() {
        // A random symmetric matrix has no low-rank structure: HSS should
        // still reproduce it (ranks saturate at the block sizes).
        let n = 64;
        let mut rng = Pcg64::seed_from_u64(5);
        let g = gaussian_matrix(&mut rng, n, n);
        let a = g.add(&g.transpose()).scaled(0.5);
        let points = Matrix::from_fn(n, 1, |i, _| i as f64);
        let ordering = cluster(&points, ClusteringMethod::Natural, 16);
        let opts = HssOptions {
            tolerance: 1e-12,
            ..HssOptions::default()
        };
        let hss = construct::compress_symmetric(&a, &a, ordering.tree().clone(), &opts).unwrap();
        assert!(blas::relative_error(&a, &hss.to_dense()) < 1e-8);
        assert!(hss.max_rank() >= 16);
    }

    #[test]
    fn from_parts_roundtrips_matvec_bitwise() {
        let (_, hss) = build(128, 1e-8);
        let rebuilt = HssMatrix::from_parts(
            hss.tree().clone(),
            hss.nodes().to_vec(),
            hss.diagonal_shift(),
            *hss.construction_stats(),
        )
        .unwrap();
        assert_eq!(rebuilt.dim(), hss.dim());
        assert_eq!(rebuilt.max_rank(), hss.max_rank());
        assert_eq!(rebuilt.memory_bytes(), hss.memory_bytes());
        let mut rng = Pcg64::seed_from_u64(11);
        let x: Vec<f64> = (0..128).map(|_| rng.next_gaussian()).collect();
        let mut y1 = vec![0.0; 128];
        let mut y2 = vec![0.0; 128];
        hss.matvec(&x, &mut y1);
        rebuilt.matvec(&x, &mut y2);
        assert_eq!(y1, y2, "rebuilt representation must be the same data");
    }

    #[test]
    fn from_parts_rejects_inconsistent_structure() {
        let (_, hss) = build(96, 1e-6);
        // Wrong node count.
        let mut short = hss.nodes().to_vec();
        short.pop();
        assert!(HssMatrix::from_parts(hss.tree().clone(), short, 0.0, Default::default()).is_err());
        // Leaf missing its diagonal block.
        let mut no_d = hss.nodes().to_vec();
        let leaf = hss.tree().leaves()[0];
        no_d[leaf].d = None;
        assert!(HssMatrix::from_parts(hss.tree().clone(), no_d, 0.0, Default::default()).is_err());
        // Rank / skeleton disagreement.
        let mut bad_rank = hss.nodes().to_vec();
        bad_rank[leaf].rank += 1;
        assert!(
            HssMatrix::from_parts(hss.tree().clone(), bad_rank, 0.0, Default::default()).is_err()
        );
    }

    #[test]
    fn operator_dimensions_and_accessors() {
        let (_, hss) = build(100, 1e-6);
        assert_eq!(hss.dim(), 100);
        assert_eq!(LinearOperator::nrows(&hss), 100);
        assert_eq!(LinearOperator::ncols(&hss), 100);
        assert!(hss.construction_stats().samples_used > 0);
        assert_eq!(hss.tree().root_size(), 100);
        let root = hss.tree().root();
        assert!(hss.node_data(root).b12.is_some());
    }
}
