//! The HSS ULV factorization as a PCG preconditioner.
//!
//! A ULV factorization of a *loosely* compressed `K + λI` is an excellent
//! preconditioner for the exact system: applying it costs one `O(r n)`
//! ULV solve, and the compression error it carries — too large to accept
//! in a direct solve — is exactly what the outer Krylov iteration removes.
//! This is the classic accuracy/speed trade for HSS methods: compress an
//! order of magnitude looser (cheaper sampling, lower ranks, less memory),
//! then spend a handful of PCG iterations on the exact matrix-free
//! operator to recover the solution of the uncompressed system.
//!
//! The adapter is simply `impl Preconditioner for UlvFactorization`: one
//! application is one [`UlvFactorization::solve`].
//!
//! The same trade licenses the mixed-precision store: a factorization
//! demoted with [`UlvFactorization::to_f32`] applies the preconditioner
//! entirely in f32 (the f64 residual is rounded once on entry and the
//! result accumulates back to f64 at the leaf boundary), halving the
//! memory traffic of the hot apply loop, while PCG keeps iterating in f64
//! on the exact operator. The demotion error behaves like extra
//! compression looseness: a few more iterations, the same final accuracy.

use crate::UlvFactorization;
use hkrr_linalg::iterative::Preconditioner;
use hkrr_linalg::{LinalgError, LinalgResult};

impl Preconditioner for UlvFactorization {
    fn dim(&self) -> usize {
        UlvFactorization::dim(self)
    }

    fn apply(&self, r: &[f64], z: &mut [f64]) -> LinalgResult<()> {
        if z.len() != r.len() {
            return Err(LinalgError::DimensionMismatch {
                context: format!("ULV preconditioner: r[{}] into z[{}]", r.len(), z.len()),
            });
        }
        let solved = self.solve(r)?;
        z.copy_from_slice(&solved);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::construct::{compress_symmetric, HssOptions};
    use hkrr_clustering::{cluster, ClusteringMethod, DEFAULT_LEAF_SIZE};
    use hkrr_kernel::{KernelFunction, KernelMatrix};
    use hkrr_linalg::iterative::{pcg, IdentityPreconditioner, PcgOptions};
    use hkrr_linalg::operator::ShiftedOperator;
    use hkrr_linalg::random::{gaussian_matrix, Pcg64};
    use hkrr_linalg::LinearOperator;

    /// Compresses `K + λI` of a Gaussian kernel at the given tolerance and
    /// returns the ULV factorization together with the exact shifted
    /// operator's point set.
    fn setup(n: usize, tolerance: f64) -> (KernelMatrix, f64, UlvFactorization) {
        let mut rng = Pcg64::seed_from_u64(17);
        let points = gaussian_matrix(&mut rng, n, 4);
        let ordering = cluster(
            &points,
            ClusteringMethod::TwoMeans { seed: 3 },
            DEFAULT_LEAF_SIZE,
        );
        let permuted = points.select_rows(ordering.permutation());
        let km = KernelMatrix::new(permuted, KernelFunction::gaussian(1.0));
        let lambda = 0.5;
        let opts = HssOptions {
            tolerance,
            seed: 11,
            ..HssOptions::default()
        };
        let mut hss = compress_symmetric(&km, &km, ordering.tree().clone(), &opts).unwrap();
        hss.set_diagonal_shift(lambda);
        let ulv = UlvFactorization::factor(&hss).unwrap();
        (km, lambda, ulv)
    }

    #[test]
    fn loose_ulv_preconditioner_beats_plain_cg() {
        let (km, lambda, ulv) = setup(300, 1e-1);
        let shifted = ShiftedOperator::new(&km, lambda);
        let mut rng = Pcg64::seed_from_u64(5);
        let b: Vec<f64> = (0..300).map(|_| rng.next_gaussian()).collect();
        let opts = PcgOptions {
            tolerance: 1e-10,
            max_iterations: 600,
        };
        let plain = pcg(&shifted, &b, &IdentityPreconditioner::new(300), &opts).unwrap();
        let pre = pcg(&shifted, &b, &ulv, &opts).unwrap();
        assert!(pre.converged, "history {:?}", pre.residual_history);
        assert!(
            pre.iterations < plain.iterations,
            "ULV-preconditioned {} vs plain {}",
            pre.iterations,
            plain.iterations
        );
        // The answer solves the *exact* regularized system.
        let mut ax = vec![0.0; 300];
        shifted.matvec(&pre.x, &mut ax);
        let err = ax
            .iter()
            .zip(b.iter())
            .map(|(a, bb)| (a - bb).powi(2))
            .sum::<f64>()
            .sqrt();
        let bnorm = b.iter().map(|v| v * v).sum::<f64>().sqrt();
        assert!(err / bnorm <= 1e-9, "residual {}", err / bnorm);
    }

    #[test]
    fn f32_preconditioner_converges_to_the_same_answer() {
        let (km, lambda, ulv) = setup(300, 1e-1);
        let shifted = ShiftedOperator::new(&km, lambda);
        let mut rng = Pcg64::seed_from_u64(5);
        let b: Vec<f64> = (0..300).map(|_| rng.next_gaussian()).collect();
        let opts = PcgOptions {
            tolerance: 1e-10,
            max_iterations: 600,
        };
        let f64_run = pcg(&shifted, &b, &ulv, &opts).unwrap();
        let demoted = ulv.to_f32();
        let f32_run = pcg(&shifted, &b, &demoted, &opts).unwrap();
        assert!(f32_run.converged, "history {:?}", f32_run.residual_history);
        // Demotion error acts like extra looseness: bounded iteration
        // growth, identical final accuracy (both hit the same tolerance on
        // the same exact operator).
        assert!(
            f32_run.iterations <= f64_run.iterations + f64_run.iterations / 2 + 2,
            "f32 factors {} vs f64 factors {} iterations",
            f32_run.iterations,
            f64_run.iterations
        );
        let max_diff = f64_run
            .x
            .iter()
            .zip(f32_run.x.iter())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max);
        assert!(max_diff < 1e-7, "solution drift {max_diff}");
    }

    #[test]
    fn apply_rejects_mismatched_buffers() {
        let (_, _, ulv) = setup(128, 1e-2);
        let r = vec![1.0; 128];
        let mut z = vec![0.0; 64];
        assert!(ulv.apply(&r, &mut z).is_err());
    }
}
