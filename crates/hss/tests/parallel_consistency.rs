//! Parallel-vs-sequential consistency of the HSS pipeline.
//!
//! The level-parallel construction, ULV factorization and matvec are
//! scheduled so that per-node arithmetic is identical to the sequential
//! order; these tests pin that property across thread counts (via the
//! shared `hkrr_bench::with_threads` pool helper) and across repeated runs
//! with a fixed seed.

use hkrr_bench::with_threads;
use hkrr_clustering::{cluster, ClusteringMethod};
use hkrr_hss::construct::{compress_symmetric, HssOptions};
use hkrr_hss::UlvFactorization;
use hkrr_linalg::Matrix;
use proptest::prelude::*;

fn kernel_1d(n: usize, h: f64) -> Matrix {
    Matrix::from_fn(n, n, |i, j| {
        let d = (i as f64 - j as f64) / n as f64;
        (-d * d / (2.0 * h * h)).exp()
    })
}

/// Output of one full pipeline run: matvec result, solve result, max rank.
struct PipelineRun {
    matvec: Vec<f64>,
    solve: Vec<f64>,
    max_rank: usize,
}

/// Compresses, factors, matvecs and solves under a pinned thread count.
fn run_pipeline(n: usize, h: f64, lambda: f64, seed: u64, threads: usize) -> PipelineRun {
    let a = kernel_1d(n, h);
    let points = Matrix::from_fn(n, 1, |i, _| i as f64);
    let tree = cluster(&points, ClusteringMethod::Natural, 16)
        .tree()
        .clone();
    let opts = HssOptions {
        tolerance: 1e-8,
        seed,
        ..HssOptions::default()
    };
    with_threads(threads, move || {
        let mut hss = compress_symmetric(&a, &a, tree, &opts).expect("compression failed");
        hss.set_diagonal_shift(lambda);
        let x: Vec<f64> = (0..n)
            .map(|i| ((i * 37 + 11) % 101) as f64 / 101.0 - 0.5)
            .collect();
        let mut y = vec![0.0; n];
        hss.matvec(&x, &mut y);
        let factor = UlvFactorization::factor(&hss).expect("factorization failed");
        let b: Vec<f64> = (0..n).map(|i| ((i * 53 + 29) % 97) as f64 / 97.0).collect();
        let solve = factor.solve(&b).expect("solve failed");
        PipelineRun {
            matvec: y,
            solve,
            max_rank: hss.max_rank(),
        }
    })
}

fn max_abs_diff(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b.iter())
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Construction, ULV factorization/solve and matvec agree with the
    /// sequential (1-thread) path for arbitrary problem sizes, bandwidths
    /// and thread counts.
    #[test]
    fn parallel_pipeline_matches_sequential(
        n in 96usize..200,
        h in 0.04f64..0.15,
        lambda in 0.2f64..3.0,
        threads in 2usize..5,
    ) {
        let sequential = run_pipeline(n, h, lambda, 0x5eed, 1);
        let parallel = run_pipeline(n, h, lambda, 0x5eed, threads);
        prop_assert_eq!(sequential.max_rank, parallel.max_rank);
        prop_assert_eq!(sequential.matvec.len(), parallel.matvec.len());
        let dm = max_abs_diff(&sequential.matvec, &parallel.matvec);
        prop_assert!(dm < 1e-10, "matvec diff {} at {} threads", dm, threads);
        let ds = max_abs_diff(&sequential.solve, &parallel.solve);
        prop_assert!(ds < 1e-10, "solve diff {} at {} threads", ds, threads);
    }
}

#[test]
fn repeated_parallel_runs_are_deterministic() {
    // Same seed, same thread count, twice: the level-parallel schedule must
    // be bitwise reproducible (no data races, no order-dependent sums).
    let first = run_pipeline(160, 0.07, 1.5, 77, 4);
    let second = run_pipeline(160, 0.07, 1.5, 77, 4);
    assert_eq!(first.max_rank, second.max_rank);
    assert_eq!(first.matvec, second.matvec, "matvec must be bitwise equal");
    assert_eq!(first.solve, second.solve, "solve must be bitwise equal");
}

#[test]
fn thread_count_sweep_is_bitwise_stable() {
    // Stronger than the 1e-10 property: on this schedule every per-node
    // computation is independent of the thread count, so the whole sweep
    // must agree bitwise with the sequential result.
    let baseline = run_pipeline(128, 0.09, 0.8, 5, 1);
    for threads in [2, 3, 8] {
        let run = run_pipeline(128, 0.09, 0.8, 5, threads);
        assert_eq!(baseline.matvec, run.matvec, "{threads} threads: matvec");
        assert_eq!(baseline.solve, run.solve, "{threads} threads: solve");
        assert_eq!(baseline.max_rank, run.max_rank, "{threads} threads: rank");
    }
}
