//! Cluster geometry and the strong admissibility condition.
//!
//! A pair of clusters `(s, t)` is *admissible* — i.e. their interaction
//! block can be low-rank compressed — when the clusters are well separated:
//! `min(diam(s), diam(t)) <= eta * dist(s, t)`.  Diameters and distances
//! are measured on axis-aligned bounding boxes of the cluster's points,
//! which is the standard (and cheap) choice.

use hkrr_clustering::ClusterTree;
use hkrr_linalg::Matrix;

/// Axis-aligned bounding box of a set of points.
#[derive(Debug, Clone)]
pub struct BoundingBox {
    /// Per-coordinate minima.
    pub min: Vec<f64>,
    /// Per-coordinate maxima.
    pub max: Vec<f64>,
}

impl BoundingBox {
    /// Bounding box of a contiguous row range of `points`.
    pub fn from_rows(points: &Matrix, range: std::ops::Range<usize>) -> Self {
        let d = points.ncols();
        let mut min = vec![f64::INFINITY; d];
        let mut max = vec![f64::NEG_INFINITY; d];
        for i in range {
            for (k, &x) in points.row(i).iter().enumerate() {
                if x < min[k] {
                    min[k] = x;
                }
                if x > max[k] {
                    max[k] = x;
                }
            }
        }
        if min.iter().any(|v| !v.is_finite()) {
            // Empty range: collapse to the origin.
            min = vec![0.0; d];
            max = vec![0.0; d];
        }
        BoundingBox { min, max }
    }

    /// Euclidean diameter of the box.
    pub fn diameter(&self) -> f64 {
        self.min
            .iter()
            .zip(self.max.iter())
            .map(|(lo, hi)| (hi - lo) * (hi - lo))
            .sum::<f64>()
            .sqrt()
    }

    /// Euclidean distance between two boxes (0 if they overlap).
    pub fn distance(&self, other: &BoundingBox) -> f64 {
        self.min
            .iter()
            .zip(self.max.iter())
            .zip(other.min.iter().zip(other.max.iter()))
            .map(|((alo, ahi), (blo, bhi))| {
                let gap = if ahi < blo {
                    blo - ahi
                } else if bhi < alo {
                    alo - bhi
                } else {
                    0.0
                };
                gap * gap
            })
            .sum::<f64>()
            .sqrt()
    }
}

/// Precomputed bounding boxes for every node of a cluster tree.
#[derive(Debug, Clone)]
pub struct ClusterGeometry {
    boxes: Vec<BoundingBox>,
}

impl ClusterGeometry {
    /// Computes the bounding box of every tree node from the *permuted*
    /// point matrix (row `i` of `points` is the point at permuted index
    /// `i`).
    pub fn new(points: &Matrix, tree: &ClusterTree) -> Self {
        let boxes = (0..tree.num_nodes())
            .map(|id| BoundingBox::from_rows(points, tree.node(id).range()))
            .collect();
        ClusterGeometry { boxes }
    }

    /// Bounding box of tree node `id`.
    pub fn bounding_box(&self, id: usize) -> &BoundingBox {
        &self.boxes[id]
    }

    /// Strong admissibility test for the cluster pair `(s, t)`.
    pub fn is_admissible(&self, s: usize, t: usize, eta: f64) -> bool {
        let bs = &self.boxes[s];
        let bt = &self.boxes[t];
        let dist = bs.distance(bt);
        if dist <= 0.0 {
            return false;
        }
        bs.diameter().min(bt.diameter()) <= eta * dist
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hkrr_clustering::{cluster, ClusteringMethod};

    #[test]
    fn bounding_box_of_points() {
        let p = Matrix::from_rows(&[vec![0.0, 1.0], vec![2.0, -1.0], vec![1.0, 0.5]]);
        let b = BoundingBox::from_rows(&p, 0..3);
        assert_eq!(b.min, vec![0.0, -1.0]);
        assert_eq!(b.max, vec![2.0, 1.0]);
        assert!((b.diameter() - (4.0_f64 + 4.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn distance_between_separated_and_overlapping_boxes() {
        let a = BoundingBox {
            min: vec![0.0, 0.0],
            max: vec![1.0, 1.0],
        };
        let b = BoundingBox {
            min: vec![4.0, 0.0],
            max: vec![5.0, 1.0],
        };
        assert!((a.distance(&b) - 3.0).abs() < 1e-12);
        let c = BoundingBox {
            min: vec![0.5, 0.5],
            max: vec![2.0, 2.0],
        };
        assert_eq!(a.distance(&c), 0.0);
    }

    #[test]
    fn empty_range_collapses_to_origin() {
        let p = Matrix::zeros(5, 2);
        let b = BoundingBox::from_rows(&p, 3..3);
        assert_eq!(b.diameter(), 0.0);
    }

    #[test]
    fn admissibility_separates_far_clusters() {
        // Two tight blobs far apart: the sibling pair at the root must be
        // admissible; a cluster against itself (distance 0) never is.
        let n = 64;
        let points = Matrix::from_fn(n, 2, |i, j| {
            let c = if i < n / 2 { 0.0 } else { 100.0 };
            c + 0.01 * ((i * 7 + j) % 13) as f64
        });
        let ordering = cluster(&points, ClusteringMethod::KdTree, 8);
        let permuted = points.select_rows(ordering.permutation());
        let geom = ClusterGeometry::new(&permuted, ordering.tree());
        let root = ordering.tree().root();
        let c1 = ordering.tree().node(root).left.unwrap();
        let c2 = ordering.tree().node(root).right.unwrap();
        assert!(geom.is_admissible(c1, c2, 1.0));
        assert!(!geom.is_admissible(c1, c1, 1.0));
    }

    #[test]
    fn small_eta_is_stricter() {
        let points = Matrix::from_fn(40, 1, |i, _| i as f64);
        let ordering = cluster(&points, ClusteringMethod::Natural, 8);
        let geom = ClusterGeometry::new(&points, ordering.tree());
        let root = ordering.tree().root();
        let c1 = ordering.tree().node(root).left.unwrap();
        let c2 = ordering.tree().node(root).right.unwrap();
        // Adjacent half-lines: diam 19, dist 1 -> admissible only for
        // very large eta.
        assert!(!geom.is_admissible(c1, c2, 1.0));
        assert!(geom.is_admissible(c1, c2, 25.0));
    }
}
