//! Adaptive Cross Approximation (ACA) with partial pivoting.
//!
//! ACA builds a low-rank approximation `A(I, J) ≈ U V^T` of an admissible
//! block by sampling whole rows and columns of the block — it never forms
//! the block densely, which is what keeps the H-matrix construction
//! quasi-linear.  This is the low-rank scheme used for the admissible
//! blocks in Section 3.2 of the paper.

use hkrr_linalg::{blas, LinearOperator, LowRank, Matrix};

/// Options for the ACA compressor.
#[derive(Debug, Clone, Copy)]
pub struct AcaOptions {
    /// Relative stopping tolerance: iteration stops when the new rank-one
    /// term is smaller than `tolerance` times the running Frobenius-norm
    /// estimate of the block.
    pub tolerance: f64,
    /// Hard cap on the rank (0 = limited only by the block size).
    pub max_rank: usize,
}

impl Default for AcaOptions {
    fn default() -> Self {
        AcaOptions {
            tolerance: 1e-6,
            max_rank: 0,
        }
    }
}

/// Compresses the block `op(rows, cols)` with partially-pivoted ACA.
pub fn aca_compress(
    op: &dyn LinearOperator,
    rows: &[usize],
    cols: &[usize],
    opts: &AcaOptions,
) -> LowRank {
    let m = rows.len();
    let n = cols.len();
    if m == 0 || n == 0 {
        return LowRank::zero(m, n);
    }
    let max_rank = if opts.max_rank == 0 {
        m.min(n)
    } else {
        opts.max_rank.min(m.min(n))
    };

    let mut us: Vec<Vec<f64>> = Vec::new();
    let mut vs: Vec<Vec<f64>> = Vec::new();
    let mut used_rows = vec![false; m];
    let mut norm_est_sq = 0.0_f64;
    let mut next_row = 0usize;

    for _ in 0..max_rank {
        // Residual of the pivot row: A(i*, :) - Σ u_k[i*] v_k.
        let mut pivot_row = next_row;
        let mut v_new: Vec<f64> = Vec::new();
        let mut found = false;
        // If the chosen row has an (almost) zero residual, try the other
        // unused rows before giving up.
        for _attempt in 0..m {
            if used_rows[pivot_row] {
                pivot_row = (pivot_row + 1) % m;
                continue;
            }
            let mut r: Vec<f64> = (0..n).map(|j| op.entry(rows[pivot_row], cols[j])).collect();
            for (u, v) in us.iter().zip(vs.iter()) {
                let coeff = u[pivot_row];
                if coeff != 0.0 {
                    for (rj, vj) in r.iter_mut().zip(v.iter()) {
                        *rj -= coeff * vj;
                    }
                }
            }
            let max_abs = r.iter().fold(0.0_f64, |acc, x| acc.max(x.abs()));
            if max_abs > 1e-300 {
                v_new = r;
                found = true;
                break;
            }
            used_rows[pivot_row] = true;
            pivot_row = (pivot_row + 1) % m;
        }
        if !found {
            break;
        }
        used_rows[pivot_row] = true;

        // Column pivot: largest entry of the row residual.
        let (pivot_col, &pivot_val) = v_new
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.abs().partial_cmp(&b.1.abs()).unwrap())
            .unwrap();
        // Residual of the pivot column: A(:, j*) - Σ v_k[j*] u_k, scaled so
        // that u_new v_new^T reproduces the cross exactly.
        let mut u_new: Vec<f64> = (0..m).map(|i| op.entry(rows[i], cols[pivot_col])).collect();
        for (u, v) in us.iter().zip(vs.iter()) {
            let coeff = v[pivot_col];
            if coeff != 0.0 {
                for (ui, uo) in u_new.iter_mut().zip(u.iter()) {
                    *ui -= coeff * uo;
                }
            }
        }
        for vj in v_new.iter_mut() {
            *vj /= pivot_val;
        }

        // Convergence test on the running Frobenius-norm estimate.
        let u_norm = blas::nrm2(&u_new);
        let v_norm = blas::nrm2(&v_new);
        let term_norm = u_norm * v_norm;
        // Update ||A_k||_F^2 ≈ ||A_{k-1}||_F^2 + 2 Σ cross terms + ||term||².
        let mut cross = 0.0;
        for (u, v) in us.iter().zip(vs.iter()) {
            cross += blas::dot(u, &u_new) * blas::dot(v, &v_new);
        }
        norm_est_sq += 2.0 * cross + term_norm * term_norm;

        // Pick the next pivot row as the largest residual entry of u_new
        // among unused rows (before pushing, so the pivot row itself is
        // excluded).
        next_row = (0..m)
            .filter(|&i| !used_rows[i])
            .max_by(|&a, &b| u_new[a].abs().partial_cmp(&u_new[b].abs()).unwrap())
            .unwrap_or(0);

        us.push(u_new);
        vs.push(v_new);

        if term_norm <= opts.tolerance * norm_est_sq.max(0.0).sqrt() {
            break;
        }
    }

    let k = us.len();
    let mut u = Matrix::zeros(m, k);
    let mut v = Matrix::zeros(n, k);
    for (j, (uc, vc)) in us.iter().zip(vs.iter()).enumerate() {
        u.set_col(j, uc);
        v.set_col(j, vc);
    }
    LowRank::new(u, v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hkrr_kernel::{KernelFunction, KernelMatrix};
    use hkrr_linalg::random::{gaussian_matrix, Pcg64};

    #[test]
    fn aca_recovers_exact_low_rank_block() {
        let mut rng = Pcg64::seed_from_u64(1);
        let u = gaussian_matrix(&mut rng, 40, 3);
        let v = gaussian_matrix(&mut rng, 3, 30);
        let a = blas::matmul(&u, &v);
        let rows: Vec<usize> = (0..40).collect();
        let cols: Vec<usize> = (0..30).collect();
        let lr = aca_compress(&a, &rows, &cols, &AcaOptions::default());
        assert!(lr.rank() <= 5);
        assert!(blas::relative_error(&a, &lr.to_dense()) < 1e-10);
    }

    #[test]
    fn aca_on_well_separated_kernel_block_is_low_rank() {
        // Two clusters of points far apart: the interaction block decays
        // fast and ACA should need only a handful of terms.
        let mut rng = Pcg64::seed_from_u64(2);
        let n = 60;
        let points = Matrix::from_fn(2 * n, 3, |i, _| {
            let c = if i < n { 0.0 } else { 8.0 };
            c + 0.5 * rng.next_gaussian()
        });
        let km = KernelMatrix::new(points, KernelFunction::gaussian(1.0));
        let rows: Vec<usize> = (0..n).collect();
        let cols: Vec<usize> = (n..2 * n).collect();
        let lr = aca_compress(
            &km,
            &rows,
            &cols,
            &AcaOptions {
                tolerance: 1e-8,
                max_rank: 0,
            },
        );
        let exact = km.sub_block(&rows, &cols);
        assert!(lr.rank() < 20, "rank {} unexpectedly high", lr.rank());
        assert!(blas::relative_error(&exact, &lr.to_dense()) < 1e-5);
    }

    #[test]
    fn aca_respects_max_rank() {
        let mut rng = Pcg64::seed_from_u64(3);
        let a = gaussian_matrix(&mut rng, 25, 25);
        let rows: Vec<usize> = (0..25).collect();
        let lr = aca_compress(
            &a,
            &rows,
            &rows,
            &AcaOptions {
                tolerance: 0.0,
                max_rank: 4,
            },
        );
        assert_eq!(lr.rank(), 4);
    }

    #[test]
    fn aca_of_zero_block_has_rank_zero() {
        let a = Matrix::zeros(10, 12);
        let rows: Vec<usize> = (0..10).collect();
        let cols: Vec<usize> = (0..12).collect();
        let lr = aca_compress(&a, &rows, &cols, &AcaOptions::default());
        assert_eq!(lr.rank(), 0);
        assert!(lr.to_dense().approx_eq(&a, 0.0));
    }

    #[test]
    fn aca_of_empty_block() {
        let a = Matrix::zeros(5, 5);
        let lr = aca_compress(&a, &[], &[0, 1], &AcaOptions::default());
        assert_eq!(lr.nrows(), 0);
        assert_eq!(lr.ncols(), 2);
        assert_eq!(lr.rank(), 0);
    }

    #[test]
    fn aca_full_rank_block_reproduces_exactly() {
        let mut rng = Pcg64::seed_from_u64(4);
        let a = gaussian_matrix(&mut rng, 12, 12);
        let rows: Vec<usize> = (0..12).collect();
        let lr = aca_compress(
            &a,
            &rows,
            &rows,
            &AcaOptions {
                tolerance: 1e-14,
                max_rank: 0,
            },
        );
        assert!(blas::relative_error(&a, &lr.to_dense()) < 1e-10);
    }

    #[test]
    fn tighter_tolerance_gives_higher_rank() {
        // Kernel block with geometric singular-value decay.
        let n = 40;
        let a = Matrix::from_fn(n, n, |i, j| {
            (-((i as f64 - j as f64 - 20.0) / 8.0).powi(2)).exp()
        });
        let rows: Vec<usize> = (0..n).collect();
        let loose = aca_compress(
            &a,
            &rows,
            &rows,
            &AcaOptions {
                tolerance: 1e-2,
                max_rank: 0,
            },
        );
        let tight = aca_compress(
            &a,
            &rows,
            &rows,
            &AcaOptions {
                tolerance: 1e-10,
                max_rank: 0,
            },
        );
        assert!(tight.rank() >= loose.rank());
        assert!(
            blas::relative_error(&a, &tight.to_dense())
                <= blas::relative_error(&a, &loose.to_dense()) + 1e-12
        );
    }
}
