//! Block cluster tree traversal: assembling the H-matrix.
//!
//! Starting from the (root, root) cluster pair, each pair is classified as
//! admissible (→ ACA low-rank block), a pair of leaves (→ dense block), or
//! neither (→ recurse into the 2×2 children pairs).  Block compression is
//! parallelized over the discovered pairs with rayon.

use crate::aca::{aca_compress, AcaOptions};
use crate::admissibility::ClusterGeometry;
use crate::{HBlock, HBlockKind, HMatrix};
use hkrr_clustering::ClusterTree;
use hkrr_linalg::{LinearOperator, Matrix};
use rayon::prelude::*;

/// Options for H-matrix construction.
#[derive(Debug, Clone, Copy)]
pub struct HOptions {
    /// Relative ACA tolerance for admissible blocks.
    pub tolerance: f64,
    /// Admissibility parameter `eta`; larger values compress more block
    /// pairs (weaker separation requirement).
    pub eta: f64,
    /// Hard cap on the rank of a compressed block (0 = unlimited).
    pub max_rank: usize,
}

impl Default for HOptions {
    fn default() -> Self {
        HOptions {
            tolerance: 1e-6,
            eta: 2.0,
            max_rank: 0,
        }
    }
}

/// Builds the H-matrix approximation of `op` over the cluster tree `tree`.
///
/// `points` must be the *permuted* point matrix (row `i` holds the point at
/// permuted index `i`) so the cluster geometry matches the operator's index
/// space.
pub fn build_hmatrix(
    op: &dyn LinearOperator,
    points: &Matrix,
    tree: &ClusterTree,
    opts: &HOptions,
) -> HMatrix {
    let n = op.nrows();
    assert_eq!(op.ncols(), n, "build_hmatrix: operator must be square");
    assert_eq!(
        points.nrows(),
        n,
        "build_hmatrix: points and operator dimension mismatch"
    );
    assert_eq!(
        tree.root_size(),
        n,
        "build_hmatrix: cluster tree does not cover the operator"
    );

    let geometry = ClusterGeometry::new(points, tree);

    // Discover the block partition first (cheap), then compress the blocks
    // in parallel (expensive).
    #[derive(Clone, Copy)]
    enum Plan {
        Dense,
        LowRank,
    }
    let mut plan: Vec<(usize, usize, Plan)> = Vec::new();
    let mut stack = vec![(tree.root(), tree.root())];
    while let Some((s, t)) = stack.pop() {
        let ns = tree.node(s);
        let nt = tree.node(t);
        if s != t && geometry.is_admissible(s, t, opts.eta) {
            plan.push((s, t, Plan::LowRank));
            continue;
        }
        match ((ns.left, ns.right), (nt.left, nt.right)) {
            ((Some(sl), Some(sr)), (Some(tl), Some(tr))) => {
                stack.push((sl, tl));
                stack.push((sl, tr));
                stack.push((sr, tl));
                stack.push((sr, tr));
            }
            ((Some(sl), Some(sr)), (None, None)) => {
                stack.push((sl, t));
                stack.push((sr, t));
            }
            ((None, None), (Some(tl), Some(tr))) => {
                stack.push((s, tl));
                stack.push((s, tr));
            }
            _ => {
                plan.push((s, t, Plan::Dense));
            }
        }
    }

    let aca_opts = AcaOptions {
        tolerance: opts.tolerance,
        max_rank: opts.max_rank,
    };
    let blocks: Vec<HBlock> = plan
        .par_iter()
        .map(|&(s, t, kind)| {
            let rows_range = tree.node(s).range();
            let cols_range = tree.node(t).range();
            let rows: Vec<usize> = rows_range.clone().collect();
            let cols: Vec<usize> = cols_range.clone().collect();
            let kind = match kind {
                Plan::Dense => HBlockKind::Dense(op.sub_block(&rows, &cols)),
                Plan::LowRank => HBlockKind::LowRank(aca_compress(op, &rows, &cols, &aca_opts)),
            };
            HBlock {
                rows: rows_range,
                cols: cols_range,
                kind,
            }
        })
        .collect();

    HMatrix::from_blocks(n, blocks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HBlockKind;
    use hkrr_clustering::{cluster, ClusteringMethod};
    use hkrr_kernel::{KernelFunction, KernelMatrix};
    use hkrr_linalg::blas;
    use hkrr_linalg::random::Pcg64;

    fn clustered_points(n: usize, d: usize, seed: u64) -> Matrix {
        let mut rng = Pcg64::seed_from_u64(seed);
        Matrix::from_fn(n, d, |i, _| {
            let c = ((i % 4) as f64) * 6.0;
            c + rng.next_gaussian()
        })
    }

    #[test]
    fn partition_covers_matrix_and_compresses_far_blocks() {
        let points = clustered_points(240, 2, 1);
        let ordering = cluster(&points, ClusteringMethod::TwoMeans { seed: 3 }, 16);
        let permuted = points.select_rows(ordering.permutation());
        let km = KernelMatrix::new(permuted.clone(), KernelFunction::gaussian(1.0));
        let h = build_hmatrix(&km, &permuted, ordering.tree(), &HOptions::default());
        let stats = h.stats();
        assert!(stats.num_lowrank_blocks > 0, "no admissible blocks found");
        assert!(stats.num_dense_blocks > 0);
        let dense = km.assemble_dense();
        assert!(blas::relative_error(&dense, &h.to_dense()) < 1e-4);
    }

    #[test]
    fn eta_zero_disables_compression() {
        let points = clustered_points(100, 2, 2);
        let ordering = cluster(&points, ClusteringMethod::KdTree, 16);
        let permuted = points.select_rows(ordering.permutation());
        let km = KernelMatrix::new(permuted.clone(), KernelFunction::gaussian(1.0));
        let h = build_hmatrix(
            &km,
            &permuted,
            ordering.tree(),
            &HOptions {
                eta: 0.0,
                ..Default::default()
            },
        );
        assert_eq!(h.stats().num_lowrank_blocks, 0);
        // With every block dense the representation is exact.
        let dense = km.assemble_dense();
        assert!(blas::relative_error(&dense, &h.to_dense()) < 1e-14);
    }

    #[test]
    fn larger_eta_compresses_more_blocks() {
        let points = clustered_points(200, 3, 3);
        let ordering = cluster(&points, ClusteringMethod::TwoMeans { seed: 9 }, 16);
        let permuted = points.select_rows(ordering.permutation());
        let km = KernelMatrix::new(permuted.clone(), KernelFunction::gaussian(1.0));
        let strict = build_hmatrix(
            &km,
            &permuted,
            ordering.tree(),
            &HOptions {
                eta: 0.5,
                ..Default::default()
            },
        );
        let loose = build_hmatrix(
            &km,
            &permuted,
            ordering.tree(),
            &HOptions {
                eta: 4.0,
                ..Default::default()
            },
        );
        // Looser admissibility compresses larger blocks: the matrix area
        // covered by low-rank blocks can only grow (the block *count* may
        // shrink because admissibility then triggers higher in the tree).
        let lowrank_area = |h: &HMatrix| -> usize {
            h.blocks()
                .iter()
                .filter(|b| matches!(b.kind, HBlockKind::LowRank(_)))
                .map(|b| b.rows.len() * b.cols.len())
                .sum()
        };
        assert!(lowrank_area(&loose) >= lowrank_area(&strict));
    }

    #[test]
    fn single_leaf_tree_gives_one_dense_block() {
        let points = clustered_points(12, 2, 4);
        let ordering = cluster(&points, ClusteringMethod::Natural, 16);
        let km = KernelMatrix::new(points.clone(), KernelFunction::gaussian(1.0));
        let h = build_hmatrix(&km, &points, ordering.tree(), &HOptions::default());
        assert_eq!(h.blocks().len(), 1);
        assert!(matches!(h.blocks()[0].kind, HBlockKind::Dense(_)));
    }

    #[test]
    fn hmatrix_as_sampler_for_hss_construction() {
        // The paper's synergy: compress with H, then use its fast matvec to
        // build the HSS form.  Verify the resulting HSS is still an accurate
        // representation of the original kernel matrix.
        let points = clustered_points(256, 3, 5);
        let ordering = cluster(&points, ClusteringMethod::TwoMeans { seed: 11 }, 16);
        let permuted = points.select_rows(ordering.permutation());
        let km = KernelMatrix::new(permuted.clone(), KernelFunction::gaussian(1.5));
        let h = build_hmatrix(
            &km,
            &permuted,
            ordering.tree(),
            &HOptions {
                tolerance: 1e-8,
                ..Default::default()
            },
        );
        let hss = hkrr_hss::construct::compress_symmetric(
            &km,
            &h,
            ordering.tree().clone(),
            &hkrr_hss::HssOptions {
                tolerance: 1e-7,
                ..Default::default()
            },
        )
        .unwrap();
        let dense = km.assemble_dense();
        let err = blas::relative_error(&dense, &hss.to_dense());
        assert!(err < 1e-4, "HSS-from-H-sampling error {err}");
    }
}
