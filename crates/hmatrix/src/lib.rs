//! # hkrr-hmatrix
//!
//! H-matrices with strong admissibility and ACA compression.
//!
//! Contrary to HSS (which compresses *every* off-diagonal block — weak
//! admissibility), the H format only compresses blocks whose clusters are
//! geometrically well separated (strong admissibility, Figure 4 of the
//! paper).  Construction and matrix-vector products are cheap
//! (quasi-linear), but inversion is expensive — which is why the paper uses
//! the H matrix **only as a fast sampler** to accelerate the randomized HSS
//! construction, never as the solver.
//!
//! The pieces:
//!
//! * [`admissibility`] — cluster bounding boxes, diameters and distances,
//!   and the strong admissibility condition,
//! * [`aca`] — adaptive cross approximation with partial pivoting, the
//!   low-rank compressor for admissible blocks (the "hybrid-ACA scheme" of
//!   Section 3.2),
//! * [`build`](build::build_hmatrix) — the block cluster tree traversal that
//!   assembles the format,
//! * [`HMatrix`] — the assembled structure with parallel matvec, memory and
//!   rank statistics, usable as a [`hkrr_linalg::LinearOperator`] sampler.

pub mod aca;
pub mod admissibility;
pub mod build;

pub use aca::{aca_compress, AcaOptions};
pub use admissibility::{BoundingBox, ClusterGeometry};
pub use build::{build_hmatrix, HOptions};

use hkrr_linalg::{blas, LinearOperator, LowRank, Matrix};
use rayon::prelude::*;

/// One block of the H-matrix partition.
#[derive(Debug, Clone)]
pub enum HBlockKind {
    /// A dense (inadmissible, leaf-level) block.
    Dense(Matrix),
    /// A low-rank (admissible) block stored as `U V^T`.
    LowRank(LowRank),
}

/// A block of the H-matrix, owning the half-open row and column ranges it
/// covers (in the permuted index space).
#[derive(Debug, Clone)]
pub struct HBlock {
    /// Row range covered by this block.
    pub rows: std::ops::Range<usize>,
    /// Column range covered by this block.
    pub cols: std::ops::Range<usize>,
    /// Block payload.
    pub kind: HBlockKind,
}

impl HBlock {
    /// Memory footprint of the block payload in bytes.
    pub fn memory_bytes(&self) -> usize {
        match &self.kind {
            HBlockKind::Dense(m) => m.memory_bytes(),
            HBlockKind::LowRank(lr) => lr.memory_bytes(),
        }
    }

    /// Rank of the block (full for dense blocks).
    pub fn rank(&self) -> usize {
        match &self.kind {
            HBlockKind::Dense(m) => m.nrows().min(m.ncols()),
            HBlockKind::LowRank(lr) => lr.rank(),
        }
    }
}

/// Summary statistics of an assembled H-matrix.
#[derive(Debug, Clone)]
pub struct HStats {
    /// Matrix dimension.
    pub dim: usize,
    /// Total memory of all blocks in bytes.
    pub memory_bytes: usize,
    /// Total memory in MB.
    pub memory_mb: f64,
    /// Number of dense (inadmissible) blocks.
    pub num_dense_blocks: usize,
    /// Number of low-rank (admissible) blocks.
    pub num_lowrank_blocks: usize,
    /// Largest rank among the low-rank blocks.
    pub max_block_rank: usize,
}

/// An assembled H-matrix.
#[derive(Debug, Clone)]
pub struct HMatrix {
    n: usize,
    blocks: Vec<HBlock>,
}

impl HMatrix {
    /// Creates an H-matrix from its blocks (used by the builder).
    pub(crate) fn from_blocks(n: usize, blocks: Vec<HBlock>) -> Self {
        HMatrix { n, blocks }
    }

    /// Matrix dimension.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// The blocks of the partition.
    pub fn blocks(&self) -> &[HBlock] {
        &self.blocks
    }

    /// Total memory of the representation in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.blocks.iter().map(HBlock::memory_bytes).sum()
    }

    /// Total memory in megabytes.
    pub fn memory_mb(&self) -> f64 {
        self.memory_bytes() as f64 / (1024.0 * 1024.0)
    }

    /// Summary statistics.
    pub fn stats(&self) -> HStats {
        let mut dense = 0;
        let mut lowrank = 0;
        let mut max_rank = 0;
        for b in &self.blocks {
            match &b.kind {
                HBlockKind::Dense(_) => dense += 1,
                HBlockKind::LowRank(lr) => {
                    lowrank += 1;
                    max_rank = max_rank.max(lr.rank());
                }
            }
        }
        HStats {
            dim: self.n,
            memory_bytes: self.memory_bytes(),
            memory_mb: self.memory_mb(),
            num_dense_blocks: dense,
            num_lowrank_blocks: lowrank,
            max_block_rank: max_rank,
        }
    }

    /// `y = A x`, parallel over blocks.
    pub fn matvec(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.n, "HMatrix::matvec: x length");
        assert_eq!(y.len(), self.n, "HMatrix::matvec: y length");
        // Each block produces a partial contribution on its own row range;
        // contributions are merged afterwards to keep the parallel part
        // write-disjoint.
        let partials: Vec<(usize, Vec<f64>)> = self
            .blocks
            .par_iter()
            .map(|b| {
                let xb = &x[b.cols.clone()];
                let mut yb = vec![0.0; b.rows.len()];
                match &b.kind {
                    HBlockKind::Dense(m) => blas::gemv(m, xb, &mut yb),
                    HBlockKind::LowRank(lr) => lr.matvec(xb, &mut yb),
                }
                (b.rows.start, yb)
            })
            .collect();
        for yi in y.iter_mut() {
            *yi = 0.0;
        }
        for (start, yb) in partials {
            for (off, v) in yb.iter().enumerate() {
                y[start + off] += v;
            }
        }
    }

    /// Expands the H-matrix into a dense matrix (tests / small `n`).
    pub fn to_dense(&self) -> Matrix {
        let mut out = Matrix::zeros(self.n, self.n);
        for b in &self.blocks {
            let dense = match &b.kind {
                HBlockKind::Dense(m) => m.clone(),
                HBlockKind::LowRank(lr) => lr.to_dense(),
            };
            out.set_block(b.rows.start, b.cols.start, &dense);
        }
        out
    }
}

impl LinearOperator for HMatrix {
    fn nrows(&self) -> usize {
        self.n
    }

    fn ncols(&self) -> usize {
        self.n
    }

    fn entry(&self, i: usize, j: usize) -> f64 {
        for b in &self.blocks {
            if b.rows.contains(&i) && b.cols.contains(&j) {
                let li = i - b.rows.start;
                let lj = j - b.cols.start;
                return match &b.kind {
                    HBlockKind::Dense(m) => m[(li, lj)],
                    HBlockKind::LowRank(lr) => {
                        let mut x = vec![0.0; lr.ncols()];
                        x[lj] = 1.0;
                        let mut y = vec![0.0; lr.nrows()];
                        lr.matvec(&x, &mut y);
                        y[li]
                    }
                };
            }
        }
        0.0
    }

    fn matvec(&self, x: &[f64], y: &mut [f64]) {
        HMatrix::matvec(self, x, y);
    }

    fn rmatvec(&self, x: &[f64], y: &mut [f64]) {
        // The kernel matrices compressed here are symmetric and the block
        // partition is symmetric too, so A^T x = A x.
        HMatrix::matvec(self, x, y);
    }

    fn matmat(&self, x: &Matrix) -> Matrix {
        let cols: Vec<Vec<f64>> = (0..x.ncols())
            .into_par_iter()
            .map(|j| {
                let xj = x.col(j);
                let mut yj = vec![0.0; self.n];
                HMatrix::matvec(self, &xj, &mut yj);
                yj
            })
            .collect();
        let mut y = Matrix::zeros(self.n, x.ncols());
        for (j, col) in cols.iter().enumerate() {
            y.set_col(j, col);
        }
        y
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::{build_hmatrix, HOptions};
    use hkrr_clustering::{cluster, ClusteringMethod};
    use hkrr_kernel::{KernelFunction, KernelMatrix};
    use hkrr_linalg::random::Pcg64;

    fn gaussian_cloud(n: usize, d: usize, seed: u64) -> Matrix {
        // Four well-separated blobs so that the block cluster tree contains
        // admissible (compressible) pairs.
        let mut rng = Pcg64::seed_from_u64(seed);
        Matrix::from_fn(n, d, |i, _| ((i % 4) as f64) * 8.0 + rng.next_gaussian())
    }

    fn build_test(n: usize, tol: f64) -> (KernelMatrix, HMatrix) {
        let points = gaussian_cloud(n, 3, 1);
        let ordering = cluster(&points, ClusteringMethod::TwoMeans { seed: 5 }, 16);
        let permuted = points.select_rows(ordering.permutation());
        let km = KernelMatrix::new(permuted.clone(), KernelFunction::gaussian(1.0));
        let h = build_hmatrix(
            &km,
            &permuted,
            ordering.tree(),
            &HOptions {
                tolerance: tol,
                ..Default::default()
            },
        );
        (km, h)
    }

    #[test]
    fn hmatrix_reproduces_kernel_matrix() {
        let (km, h) = build_test(300, 1e-7);
        let dense = km.assemble_dense();
        let err = blas::relative_error(&dense, &h.to_dense());
        assert!(err < 1e-5, "H reconstruction error {err}");
    }

    #[test]
    fn matvec_matches_dense() {
        let (km, h) = build_test(256, 1e-7);
        let dense = km.assemble_dense();
        let mut rng = Pcg64::seed_from_u64(2);
        let x: Vec<f64> = (0..256).map(|_| rng.next_gaussian()).collect();
        let mut y_h = vec![0.0; 256];
        let mut y_ref = vec![0.0; 256];
        h.matvec(&x, &mut y_h);
        blas::gemv(&dense, &x, &mut y_ref);
        let err = y_h
            .iter()
            .zip(y_ref.iter())
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt()
            / blas::nrm2(&y_ref);
        assert!(err < 1e-5, "matvec error {err}");
    }

    #[test]
    fn blocks_partition_the_matrix_exactly() {
        let (_, h) = build_test(200, 1e-4);
        // Every (i, j) must be covered by exactly one block.
        let mut coverage = vec![0u8; 200 * 200];
        for b in h.blocks() {
            for i in b.rows.clone() {
                for j in b.cols.clone() {
                    coverage[i * 200 + j] += 1;
                }
            }
        }
        assert!(coverage.iter().all(|&c| c == 1));
    }

    #[test]
    fn stats_count_blocks_and_memory() {
        let (km, h) = build_test(300, 1e-4);
        let s = h.stats();
        assert_eq!(s.dim, 300);
        assert!(s.num_dense_blocks > 0);
        assert!(s.num_lowrank_blocks > 0, "expected admissible blocks");
        assert_eq!(s.memory_bytes, h.memory_bytes());
        assert!(s.memory_bytes < km.assemble_dense().memory_bytes());
    }

    #[test]
    fn operator_interface_entry_and_matmat() {
        let (km, h) = build_test(150, 1e-7);
        let dense = km.assemble_dense();
        for &(i, j) in &[(0, 0), (10, 140), (75, 20)] {
            assert!((LinearOperator::entry(&h, i, j) - dense[(i, j)]).abs() < 1e-4);
        }
        let mut rng = Pcg64::seed_from_u64(3);
        let x = hkrr_linalg::random::gaussian_matrix(&mut rng, 150, 4);
        let y = LinearOperator::matmat(&h, &x);
        let y_ref = blas::matmul(&dense, &x);
        assert!(blas::relative_error(&y_ref, &y) < 1e-5);
    }

    #[test]
    fn looser_tolerance_uses_less_memory() {
        let (_, h_tight) = build_test(300, 1e-9);
        let (_, h_loose) = build_test(300, 1e-2);
        assert!(h_loose.memory_bytes() <= h_tight.memory_bytes());
    }
}
