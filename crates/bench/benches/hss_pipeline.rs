//! Criterion benchmarks for the HSS pipeline: compression, ULV
//! factorization and solve (the three phases of Fig. 7b / Table 4), plus
//! an ablation of the compression tolerance.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hkrr_clustering::{cluster, ClusteringMethod};
use hkrr_datasets::generate;
use hkrr_datasets::registry::SUSY;
use hkrr_hss::{construct::compress_symmetric, HssOptions, UlvFactorization};
use hkrr_kernel::{KernelFunction, KernelMatrix, NormalizationStats, Normalizer};
use std::hint::black_box;

fn setup(n: usize) -> (KernelMatrix, hkrr_clustering::ClusterTree) {
    let ds = generate(&SUSY, n, 16, 5);
    let stats = NormalizationStats::fit(&ds.train, Normalizer::ZScore);
    let normalized = stats.transform(&ds.train);
    let ordering = cluster(&normalized, ClusteringMethod::TwoMeans { seed: 11 }, 16);
    let permuted = normalized.select_rows(ordering.permutation());
    (
        KernelMatrix::new(permuted, KernelFunction::gaussian(SUSY.default_h)),
        ordering.tree().clone(),
    )
}

fn bench_hss_phases(c: &mut Criterion) {
    let mut group = c.benchmark_group("hss");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    let n = 800;
    let (km, tree) = setup(n);
    let opts = HssOptions {
        tolerance: 1e-2,
        ..Default::default()
    };

    group.bench_function(BenchmarkId::new("compress", n), |b| {
        b.iter(|| black_box(compress_symmetric(&km, &km, tree.clone(), &opts).unwrap()));
    });

    let mut hss = compress_symmetric(&km, &km, tree.clone(), &opts).unwrap();
    hss.set_diagonal_shift(SUSY.default_lambda);
    group.bench_function(BenchmarkId::new("ulv_factor", n), |b| {
        b.iter(|| black_box(UlvFactorization::factor(&hss).unwrap()));
    });

    let factor = UlvFactorization::factor(&hss).unwrap();
    let rhs: Vec<f64> = (0..n)
        .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
        .collect();
    group.bench_function(BenchmarkId::new("ulv_solve", n), |b| {
        b.iter(|| black_box(factor.solve(&rhs).unwrap()));
    });

    group.bench_function(BenchmarkId::new("matvec", n), |b| {
        let x = vec![1.0; n];
        let mut y = vec![0.0; n];
        b.iter(|| {
            hss.matvec(&x, &mut y);
            black_box(&y);
        });
    });
    group.finish();
}

fn bench_tolerance_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("hss_tolerance_ablation");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    let (km, tree) = setup(800);
    for &tol in &[1e-1, 1e-2, 1e-4] {
        group.bench_with_input(BenchmarkId::from_parameter(tol), &tol, |b, &tol| {
            let opts = HssOptions {
                tolerance: tol,
                ..Default::default()
            };
            b.iter(|| black_box(compress_symmetric(&km, &km, tree.clone(), &opts).unwrap()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_hss_phases, bench_tolerance_ablation);
criterion_main!(benches);
