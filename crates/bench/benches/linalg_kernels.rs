//! Criterion micro-benchmarks for the dense linear-algebra substrate:
//! GEMM, QR, column-pivoted QR, SVD and Cholesky at the block sizes that
//! occur inside the hierarchical formats.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hkrr_linalg::random::{gaussian_matrix, Pcg64};
use hkrr_linalg::{blas, cholesky, qr, svd};
use std::hint::black_box;

fn bench_gemm(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for &n in &[64usize, 128, 256] {
        let mut rng = Pcg64::seed_from_u64(1);
        let a = gaussian_matrix(&mut rng, n, n);
        let b = gaussian_matrix(&mut rng, n, n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| black_box(blas::matmul(&a, &b)));
        });
    }
    group.finish();
}

/// A/B rows per dense backend: the same GEMM and bulk pairwise-distance
/// pass through each backend instance directly (no global switching).
fn bench_dense_backends(c: &mut Criterion) {
    use hkrr_linalg::backend::available_backends;
    use hkrr_linalg::Matrix;

    let mut group = c.benchmark_group("gemm_backend");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for &n in &[256usize, 512] {
        let mut rng = Pcg64::seed_from_u64(3);
        let a = gaussian_matrix(&mut rng, n, n);
        let b = gaussian_matrix(&mut rng, n, n);
        let mut out = Matrix::zeros(n, n);
        for kind in available_backends() {
            let be = kind.instance();
            group.bench_with_input(BenchmarkId::new(kind.as_str(), n), &n, |bench, _| {
                bench.iter(|| {
                    be.gemm_into(&a, &b, &mut out);
                    black_box(out.data()[0])
                });
            });
        }
    }
    group.finish();

    let mut group = c.benchmark_group("pairwise_dist_backend");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    let (rows, dim) = (1000usize, 18usize);
    let mut rng = Pcg64::seed_from_u64(4);
    let x = gaussian_matrix(&mut rng, rows, dim);
    let y = gaussian_matrix(&mut rng, rows, dim);
    let mut d = Matrix::zeros(rows, rows);
    for kind in available_backends() {
        let be = kind.instance();
        group.bench_function(kind.as_str(), |bench| {
            bench.iter(|| {
                be.sq_dists_into(&x, &y, &mut d);
                black_box(d.data()[0])
            });
        });
    }
    group.finish();
}

fn bench_factorizations(c: &mut Criterion) {
    let mut group = c.benchmark_group("factorizations");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    let n = 96;
    let mut rng = Pcg64::seed_from_u64(2);
    let a = gaussian_matrix(&mut rng, n, n);
    let spd = {
        let mut m = blas::matmul(&a, &a.transpose());
        m.shift_diagonal(n as f64 * 0.1);
        m
    };
    group.bench_function("householder_qr_96", |b| {
        b.iter(|| black_box(qr::householder_qr(&a)))
    });
    group.bench_function("cpqr_96", |b| {
        b.iter(|| black_box(qr::column_pivoted_qr(&a, 1e-10, 0)))
    });
    group.bench_function("jacobi_svd_96", |b| {
        b.iter(|| black_box(svd::svd(&a).unwrap()))
    });
    group.bench_function("cholesky_96", |b| {
        b.iter(|| black_box(cholesky::cholesky(&spd).unwrap()))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_gemm,
    bench_dense_backends,
    bench_factorizations
);
criterion_main!(benches);
