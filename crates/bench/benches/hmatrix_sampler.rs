//! Criterion benchmarks for the H-matrix sampler: construction, matvec,
//! and the ablation the paper motivates — HSS construction with dense
//! sampling versus H-matrix accelerated sampling (Table 4's headline).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hkrr_clustering::{cluster, ClusteringMethod};
use hkrr_datasets::generate;
use hkrr_datasets::registry::SUSY;
use hkrr_hmatrix::{build_hmatrix, HOptions};
use hkrr_hss::{construct::compress_symmetric, HssOptions};
use hkrr_kernel::{KernelFunction, KernelMatrix, NormalizationStats, Normalizer};
use hkrr_linalg::Matrix;
use std::hint::black_box;

fn setup(n: usize) -> (KernelMatrix, Matrix, hkrr_clustering::ClusterTree) {
    let ds = generate(&SUSY, n, 16, 7);
    let stats = NormalizationStats::fit(&ds.train, Normalizer::ZScore);
    let normalized = stats.transform(&ds.train);
    let ordering = cluster(&normalized, ClusteringMethod::TwoMeans { seed: 17 }, 16);
    let permuted = normalized.select_rows(ordering.permutation());
    (
        KernelMatrix::new(permuted.clone(), KernelFunction::gaussian(SUSY.default_h)),
        permuted,
        ordering.tree().clone(),
    )
}

fn bench_hmatrix(c: &mut Criterion) {
    let mut group = c.benchmark_group("hmatrix");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    let n = 800;
    let (km, permuted, tree) = setup(n);
    let hopts = HOptions {
        tolerance: 1e-2,
        ..Default::default()
    };

    group.bench_function(BenchmarkId::new("construct", n), |b| {
        b.iter(|| black_box(build_hmatrix(&km, &permuted, &tree, &hopts)));
    });

    let h = build_hmatrix(&km, &permuted, &tree, &hopts);
    group.bench_function(BenchmarkId::new("matvec_h", n), |b| {
        let x = vec![1.0; n];
        let mut y = vec![0.0; n];
        b.iter(|| {
            h.matvec(&x, &mut y);
            black_box(&y);
        });
    });
    group.bench_function(BenchmarkId::new("matvec_dense_kernel", n), |b| {
        let x = vec![1.0; n];
        let mut y = vec![0.0; n];
        b.iter(|| {
            hkrr_linalg::LinearOperator::matvec(&km, &x, &mut y);
            black_box(&y);
        });
    });

    // The paper's ablation: HSS construction sampled through the dense
    // kernel operator versus through the H-matrix.
    let hss_opts = HssOptions {
        tolerance: 1e-2,
        ..Default::default()
    };
    group.bench_function(BenchmarkId::new("hss_dense_sampling", n), |b| {
        b.iter(|| black_box(compress_symmetric(&km, &km, tree.clone(), &hss_opts).unwrap()));
    });
    group.bench_function(BenchmarkId::new("hss_h_sampling", n), |b| {
        b.iter(|| black_box(compress_symmetric(&km, &h, tree.clone(), &hss_opts).unwrap()));
    });
    group.finish();
}

criterion_group!(benches, bench_hmatrix);
criterion_main!(benches);
