//! Criterion benchmarks for the end-to-end kernel-ridge-regression
//! pipeline (Algorithm 1), comparing the dense baseline against the HSS
//! solvers and the clustering orderings.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hkrr_clustering::ClusteringMethod;
use hkrr_core::{KrrConfig, KrrModel, SolverKind};
use hkrr_datasets::generate;
use hkrr_datasets::registry::SUSY;
use std::hint::black_box;

fn bench_solvers(c: &mut Criterion) {
    let mut group = c.benchmark_group("krr_train");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    let n = 600;
    let ds = generate(&SUSY, n, 64, 9);
    for solver in [
        SolverKind::DenseCholesky,
        SolverKind::Hss,
        SolverKind::HssWithHSampling,
    ] {
        let cfg = KrrConfig {
            h: SUSY.default_h,
            lambda: SUSY.default_lambda,
            solver,
            ..KrrConfig::default()
        };
        group.bench_with_input(
            BenchmarkId::new("solver", solver.label()),
            &cfg,
            |b, cfg| {
                b.iter(|| black_box(KrrModel::fit(&ds.train, &ds.train_labels, cfg).unwrap()));
            },
        );
    }
    group.finish();
}

fn bench_orderings_end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("krr_ordering_ablation");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    let ds = generate(&SUSY, 1000, 64, 10);
    for method in [
        ClusteringMethod::Natural,
        ClusteringMethod::KdTree,
        ClusteringMethod::TwoMeans { seed: 3 },
    ] {
        let cfg = KrrConfig {
            h: SUSY.default_h,
            lambda: SUSY.default_lambda,
            clustering: method,
            solver: SolverKind::Hss,
            ..KrrConfig::default()
        };
        group.bench_with_input(
            BenchmarkId::new("ordering", method.label()),
            &cfg,
            |b, cfg| {
                b.iter(|| black_box(KrrModel::fit(&ds.train, &ds.train_labels, cfg).unwrap()));
            },
        );
    }
    group.finish();
}

fn bench_prediction(c: &mut Criterion) {
    let mut group = c.benchmark_group("krr_predict");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    let ds = generate(&SUSY, 600, 300, 11);
    let cfg = KrrConfig {
        h: SUSY.default_h,
        lambda: SUSY.default_lambda,
        solver: SolverKind::Hss,
        ..KrrConfig::default()
    };
    let model = KrrModel::fit(&ds.train, &ds.train_labels, &cfg).unwrap();
    group.bench_function("predict_300", |b| {
        b.iter(|| black_box(model.predict(&ds.test)));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_solvers,
    bench_orderings_end_to_end,
    bench_prediction
);
criterion_main!(benches);
