//! Criterion benchmarks for the clustering / reordering methods (Step 0 of
//! Algorithm 1): the per-ordering preprocessing cost behind Table 2.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hkrr_clustering::{cluster, ClusteringMethod};
use hkrr_datasets::generate;
use hkrr_datasets::registry::{COVTYPE, SUSY};
use std::hint::black_box;

fn bench_orderings(c: &mut Criterion) {
    let mut group = c.benchmark_group("clustering");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    let n = 1200;
    for spec in [&SUSY, &COVTYPE] {
        let ds = generate(spec, n, 16, 3);
        for method in [
            ClusteringMethod::Natural,
            ClusteringMethod::KdTree,
            ClusteringMethod::PcaTree,
            ClusteringMethod::TwoMeans { seed: 7 },
        ] {
            let id = BenchmarkId::new(spec.name, method.label());
            group.bench_with_input(id, &method, |b, &m| {
                b.iter(|| black_box(cluster(&ds.train, m, 16)));
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_orderings);
criterion_main!(benches);
