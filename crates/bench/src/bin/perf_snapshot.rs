//! Pipeline perf snapshot: runs the fixed workload matrix (dense vs HSS vs
//! H-matrix-accelerated HSS vs HSS-preconditioned CG at 1 / 2 / all
//! threads, plus cluster-sharded ensembles at k = 2 / 4) and writes the
//! machine-readable trajectory to `BENCH_pipeline.json`.
//!
//! Environment:
//! * `HKRR_BENCH_SCALE` — global problem-size multiplier (default 1.0; CI
//!   uses 0.1 for a fast smoke snapshot).
//! * `HKRR_BENCH_OUT` — output path (default `BENCH_pipeline.json`).
//! * `HKRR_PERF_SUMMARY` — when set, a markdown summary is appended to this
//!   file (CI points it at `$GITHUB_STEP_SUMMARY`).
//! * `HKRR_REQUIRE_GEMM_SPEEDUP` — when set to a threshold (e.g. `2.0`),
//!   the run fails unless some non-scalar dense backend beats the scalar
//!   GEMM by at least that factor. CI sets it on SIMD-capable runners;
//!   leave it unset locally for a report-only snapshot.

use hkrr_bench::json;
use hkrr_bench::perf::{self, PerfOptions};

fn main() {
    let opts = PerfOptions::standard();
    eprintln!(
        "perf_snapshot: scale {}, thread sweep {:?}, {} workloads",
        hkrr_bench::bench_scale(),
        opts.thread_counts,
        opts.workloads.len()
    );
    let report = perf::run(&opts);

    // Dense-substrate A/B table: every available backend vs scalar.
    let ds_rows: Vec<Vec<String>> = report
        .dense_substrate
        .rows
        .iter()
        .flat_map(|row| {
            row.gemm.iter().map(move |g| {
                vec![
                    row.backend.clone(),
                    g.n.to_string(),
                    format!("{:.2}", g.gflops),
                    format!("{:.2}", g.speedup_vs_scalar),
                    format!("{:.4}", row.pairwise_dist_seconds),
                    format!("{:.2}", row.pairwise_dist_speedup),
                ]
            })
        })
        .collect();
    hkrr_bench::print_table(
        &format!(
            "Dense substrate (active backend: {})",
            report.dense_substrate.active_backend
        ),
        &[
            "backend",
            "gemm n",
            "GFLOP/s",
            "gemm× vs scalar",
            "dist(s)",
            "dist× vs scalar",
        ],
        &ds_rows,
    );

    // SIMD regression gate: CI requires the substrate to actually beat the
    // scalar reference on hosts that advertise vector units.
    if let Ok(raw) = std::env::var("HKRR_REQUIRE_GEMM_SPEEDUP") {
        if !raw.is_empty() {
            let threshold: f64 = raw.parse().unwrap_or_else(|_| {
                panic!("HKRR_REQUIRE_GEMM_SPEEDUP={raw:?}: expected a number like 2.0")
            });
            let best = report.dense_substrate.best_gemm_speedup();
            assert!(
                best >= threshold,
                "dense-substrate gate failed: best gemm speedup {best:.2}x < required {threshold:.2}x"
            );
            println!(
                "dense-substrate gate passed: best gemm speedup {best:.2}x >= {threshold:.2}x"
            );
        }
    }

    let json = report.to_json();
    json::validate(&json).expect("generated BENCH_pipeline.json must be well-formed JSON");
    let out_path =
        std::env::var("HKRR_BENCH_OUT").unwrap_or_else(|_| "BENCH_pipeline.json".to_string());
    std::fs::write(&out_path, &json).unwrap_or_else(|e| panic!("failed to write {out_path}: {e}"));
    println!("wrote {out_path} ({} bytes)", json.len());

    // Human-readable summary (also the markdown that lands in CI's step
    // summary).
    let rows: Vec<Vec<String>> = report
        .cases
        .iter()
        .map(|c| {
            vec![
                c.workload.clone(),
                c.solver.clone(),
                c.threads.to_string(),
                if c.shards > 0 {
                    c.shards.to_string()
                } else {
                    "—".to_string()
                },
                format!("{:.3}", c.construction_seconds),
                format!("{:.3}", c.factorization_seconds),
                format!("{:.3}", c.total_seconds),
                format!("{:.4}", c.accuracy),
                format!("{:.1}", c.compression_ratio),
                c.max_rank.to_string(),
            ]
        })
        .collect();
    hkrr_bench::print_table(
        "Pipeline perf snapshot",
        &[
            "workload",
            "solver",
            "threads",
            "shards",
            "constr(s)",
            "factor(s)",
            "total(s)",
            "accuracy",
            "compr×",
            "rank",
        ],
        &rows,
    );
    let speedup_rows: Vec<Vec<String>> = report
        .speedups
        .iter()
        .map(|s| {
            vec![
                s.workload.clone(),
                s.solver.to_string(),
                s.threads.to_string(),
                format!("{:.2}", s.construction),
                format!("{:.2}", s.factorization),
                format!("{:.2}", s.construct_plus_factor),
                format!("{:.2}", s.total),
                format!("{:+.4}", s.accuracy_delta),
            ]
        })
        .collect();
    if speedup_rows.is_empty() {
        println!("\n(single-threaded host: no speedup rows)");
    } else {
        hkrr_bench::print_table(
            "Speedups: all threads vs 1 thread",
            &[
                "workload",
                "solver",
                "threads",
                "constr×",
                "factor×",
                "constr+factor×",
                "total×",
                "Δacc",
            ],
            &speedup_rows,
        );
    }

    if let Ok(summary_path) = std::env::var("HKRR_PERF_SUMMARY") {
        if !summary_path.is_empty() {
            use std::io::Write as _;
            let md = report.to_markdown_summary();
            match std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(&summary_path)
            {
                Ok(mut f) => {
                    let _ = f.write_all(md.as_bytes());
                    println!("appended markdown summary to {summary_path}");
                }
                Err(e) => eprintln!("could not append summary to {summary_path}: {e}"),
            }
        }
    }
}
