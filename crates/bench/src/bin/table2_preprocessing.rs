//! Table 2: HSS memory (MB) under the four orderings (N/P, KD, PCA, 2MN)
//! plus classification accuracy, for the seven datasets of the paper.
//!
//! The paper uses 10k training / 1k test points; the default here is a
//! laptop-scale fraction of that (scale with HKRR_BENCH_SCALE).

use hkrr_bench::{config_for, dataset, print_table, scaled, test_accuracy, train_timed};
use hkrr_clustering::ClusteringMethod;
use hkrr_core::SolverKind;
use hkrr_datasets::all_table2_specs;

fn main() {
    let n_train = scaled(1500);
    let n_test = scaled(300);
    let methods = ClusteringMethod::table2_methods(11);

    let mut rows = Vec::new();
    for spec in all_table2_specs() {
        // MNIST's 784 dimensions make dense kernel evaluation the bottleneck;
        // keep its stand-in smaller so the whole table stays quick.
        let (nt, ns) = if spec.dim >= 512 {
            (n_train / 3, n_test / 3)
        } else {
            (n_train, n_test)
        };
        let ds = dataset(&spec, nt, ns, 17);
        let mut row = vec![
            format!("{} ({})", spec.name, spec.dim),
            format!("h={} l={}", spec.default_h, spec.default_lambda),
        ];
        let mut last_accuracy = 0.0;
        for &method in &methods {
            let cfg = config_for(&spec, method, SolverKind::Hss);
            let (model, _) = train_timed(&ds, &cfg);
            row.push(format!("{:.1}", model.report().matrix_memory_mb()));
            last_accuracy = test_accuracy(&model, &ds);
        }
        row.push(format!("{:.1}%", 100.0 * last_accuracy));
        row.push(format!("{:.1}%", 100.0 * spec.paper_accuracy));
        rows.push(row);
    }

    print_table(
        &format!(
            "Table 2: HSS memory (MB) per ordering + accuracy ({n_train} train / {n_test} test)"
        ),
        &[
            "Dataset (dim)",
            "params",
            "N/P",
            "KD",
            "PCA",
            "2MN",
            "Acc",
            "Acc (paper)",
        ],
        &rows,
    );
    println!("\nExpected shape (paper): memory decreases from N/P to KD to PCA to 2MN (up to ~10x), while accuracy is insensitive to the ordering.");
}
