//! Validates Prometheus text-exposition artifacts (`.prom` files scraped
//! off live servers) with the strict checker in [`hkrr_bench::prom`] — the
//! CI gate that keeps the `metrics` command's output well-formed.
//!
//! Usage: `prom_check FILE...` — exits non-zero on the first file that
//! fails to parse or violates the counter/histogram invariants, and prints
//! a one-line family/sample census per valid file.
//!
//! Beyond well-formedness, every file must identify the process that
//! produced it: an `hkrr_build_info` gauge whose labels carry the version,
//! build stamp, active dense backend, and factor-storage precision — the
//! four facts a fleet operator needs to correlate a scrape with a binary.

use std::process::ExitCode;

/// The labels every `hkrr_build_info` sample must carry, non-empty.
const BUILD_INFO_LABELS: [&str; 4] = ["version", "stamp", "dense_backend", "factor_precision"];

fn check_build_info(scrape: &hkrr_bench::prom::Scrape) -> Result<(), String> {
    let family = scrape
        .families
        .get("hkrr_build_info")
        .ok_or("no hkrr_build_info gauge (process identity missing)")?;
    for sample in &family.samples {
        for label in BUILD_INFO_LABELS {
            if sample.labels.get(label).map_or(true, |v| v.is_empty()) {
                return Err(format!(
                    "hkrr_build_info sample lacks the {label:?} label: {:?}",
                    sample.labels
                ));
            }
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    let files: Vec<String> = std::env::args().skip(1).collect();
    if files.is_empty() {
        eprintln!("usage: prom_check FILE...");
        return ExitCode::FAILURE;
    }
    let mut failed = false;
    for path in &files {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("{path}: cannot read: {e}");
                failed = true;
                continue;
            }
        };
        match hkrr_bench::prom::validate(&text) {
            Ok(scrape) => {
                if let Err(e) = check_build_info(&scrape) {
                    eprintln!("{path}: INVALID — {e}");
                    failed = true;
                    continue;
                }
                let samples: usize = scrape.families.values().map(|f| f.samples.len()).sum();
                println!(
                    "{path}: OK — {} families, {samples} samples",
                    scrape.families.len()
                );
            }
            Err(e) => {
                eprintln!("{path}: INVALID — {e}");
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
