//! Validates Prometheus text-exposition artifacts (`.prom` files scraped
//! off live servers) with the strict checker in [`hkrr_bench::prom`] — the
//! CI gate that keeps the `metrics` command's output well-formed.
//!
//! Usage: `prom_check FILE...` — exits non-zero on the first file that
//! fails to parse or violates the counter/histogram invariants, and prints
//! a one-line family/sample census per valid file.

use std::process::ExitCode;

fn main() -> ExitCode {
    let files: Vec<String> = std::env::args().skip(1).collect();
    if files.is_empty() {
        eprintln!("usage: prom_check FILE...");
        return ExitCode::FAILURE;
    }
    let mut failed = false;
    for path in &files {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("{path}: cannot read: {e}");
                failed = true;
                continue;
            }
        };
        match hkrr_bench::prom::validate(&text) {
            Ok(scrape) => {
                let samples: usize = scrape.families.values().map(|f| f.samples.len()).sum();
                println!(
                    "{path}: OK — {} families, {samples} samples",
                    scrape.families.len()
                );
            }
            Err(e) => {
                eprintln!("{path}: INVALID — {e}");
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
