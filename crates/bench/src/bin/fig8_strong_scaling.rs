//! Figure 8: strong scaling of the factorization phase.
//!
//! The paper scales from 32 to 1,024 Cori cores; here "cores" are rayon
//! threads on a single node, swept from 1 to the machine's parallelism.
//! The factorization time per dataset is reported for each thread count.

use hkrr_bench::{dataset, print_series, scaled, with_threads};
use hkrr_clustering::{cluster, ClusteringMethod};
use hkrr_datasets::spec_by_name;
use hkrr_hss::{construct::compress_symmetric, HssOptions, UlvFactorization};
use hkrr_kernel::{KernelFunction, KernelMatrix, NormalizationStats, Normalizer};
use std::time::Instant;

fn main() {
    let max_threads = std::thread::available_parallelism()
        .map(|v| v.get())
        .unwrap_or(4);
    let mut threads = vec![1usize];
    while threads.last().copied().unwrap() * 2 <= max_threads {
        threads.push(threads.last().unwrap() * 2);
    }

    let datasets = [
        ("MNIST", scaled(800)),
        ("COVTYPE", scaled(2000)),
        ("HEPMASS", scaled(2000)),
        ("SUSY", scaled(3000)),
    ];

    let mut columns: Vec<(String, Vec<f64>)> = Vec::new();
    for (name, n_train) in datasets {
        let spec = spec_by_name(name).unwrap();
        let ds = dataset(&spec, n_train, 16, 91);
        let stats = NormalizationStats::fit(&ds.train, Normalizer::ZScore);
        let normalized = stats.transform(&ds.train);
        let ordering = cluster(&normalized, ClusteringMethod::TwoMeans { seed: 29 }, 16);
        let permuted = normalized.select_rows(ordering.permutation());
        let km = KernelMatrix::new(permuted.clone(), KernelFunction::gaussian(spec.default_h));
        let mut hss = compress_symmetric(
            &km,
            &km,
            ordering.tree().clone(),
            &HssOptions {
                tolerance: 1e-2,
                ..Default::default()
            },
        )
        .expect("HSS compression failed");
        hss.set_diagonal_shift(spec.default_lambda);

        let mut times = Vec::new();
        for &t in &threads {
            let secs = with_threads(t, || {
                let start = Instant::now();
                let _f = UlvFactorization::factor(&hss).expect("factorization failed");
                start.elapsed().as_secs_f64()
            });
            times.push(secs);
        }
        columns.push((format!("{name} (d={}, N={n_train})", spec.dim), times));
    }

    let xs: Vec<f64> = threads.iter().map(|&t| t as f64).collect();
    let cols: Vec<(&str, &[f64])> = columns
        .iter()
        .map(|(name, vals)| (name.as_str(), vals.as_slice()))
        .collect();
    print_series(
        "Figure 8: factorization time (s) vs threads (strong scaling)",
        "threads",
        &cols,
        &xs,
    );
    println!("\nExpected shape (paper): time drops with core count and flattens at high counts; higher-dimensional datasets (MNIST) take longer than lower-dimensional ones at the same N because their HSS ranks are larger.");
}
