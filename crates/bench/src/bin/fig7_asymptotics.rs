//! Figure 7: asymptotic complexity on the SUSY dataset.
//!
//! (a) memory of the compressed matrices (H and HSS) versus N, with an
//!     O(N) guide line;
//! (b) time of the HSS factorization and solve stages versus N.

use hkrr_bench::{dataset, print_series, scaled};
use hkrr_clustering::{cluster, ClusteringMethod};
use hkrr_datasets::registry::SUSY;
use hkrr_hmatrix::{build_hmatrix, HOptions};
use hkrr_hss::{construct::compress_symmetric, HssOptions, UlvFactorization};
use hkrr_kernel::{KernelMatrix, NormalizationStats, Normalizer};
use std::time::Instant;

fn main() {
    let sizes: Vec<usize> = [500, 1000, 2000, 4000, 8000]
        .iter()
        .map(|&n| scaled(n))
        .collect();
    let mut hss_mem = Vec::new();
    let mut h_mem = Vec::new();
    let mut linear_guide = Vec::new();
    let mut factor_time = Vec::new();
    let mut solve_time = Vec::new();

    for &n in &sizes {
        let ds = dataset(&SUSY, n, 16, 57);
        let stats = NormalizationStats::fit(&ds.train, Normalizer::ZScore);
        let normalized = stats.transform(&ds.train);
        let ordering = cluster(&normalized, ClusteringMethod::TwoMeans { seed: 9 }, 16);
        let permuted = normalized.select_rows(ordering.permutation());
        let km = KernelMatrix::new(
            permuted.clone(),
            hkrr_kernel::KernelFunction::gaussian(SUSY.default_h),
        );

        let h = build_hmatrix(
            &km,
            &permuted,
            ordering.tree(),
            &HOptions {
                tolerance: 1e-2,
                ..Default::default()
            },
        );
        let mut hss = compress_symmetric(
            &km,
            &h,
            ordering.tree().clone(),
            &HssOptions {
                tolerance: 1e-2,
                ..Default::default()
            },
        )
        .expect("HSS compression failed");
        hss.set_diagonal_shift(SUSY.default_lambda);

        let t = Instant::now();
        let factor = UlvFactorization::factor(&hss).expect("ULV factorization failed");
        factor_time.push(t.elapsed().as_secs_f64());

        let b: Vec<f64> = (0..n)
            .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        let t = Instant::now();
        let _x = factor.solve(&b).expect("solve failed");
        solve_time.push(t.elapsed().as_secs_f64());

        hss_mem.push(hss.memory_mb());
        h_mem.push(h.memory_mb());
        // O(N) reference anchored at the first HSS measurement.
        linear_guide.push(hss_mem[0] * n as f64 / sizes[0] as f64);
    }

    let xs: Vec<f64> = sizes.iter().map(|&n| n as f64).collect();
    print_series(
        "Figure 7a: memory (MB) of the compressed matrices vs N (SUSY-like)",
        "N",
        &[
            ("H", h_mem.as_slice()),
            ("HSS", hss_mem.as_slice()),
            ("O(N)", linear_guide.as_slice()),
        ],
        &xs,
    );
    print_series(
        "Figure 7b: HSS factorization and solve time (s) vs N (SUSY-like)",
        "N",
        &[
            ("Factorization", factor_time.as_slice()),
            ("Solve", solve_time.as_slice()),
        ],
        &xs,
    );
    println!("\nExpected shape (paper): both memory curves and the factorization/solve times grow near-linearly in N (the paper stores a 1M-point HSS kernel in ~1.3 GB vs 8,000 GB dense).");
}
