//! Table 4: timing breakdown of the main algorithmic steps (H construction,
//! HSS construction split into sampling and other, ULV factorization,
//! solve) on SUSY-like and COVTYPE-like data, at a low and a high thread
//! count ("cores" in the paper).

use hkrr_bench::{config_for, dataset, print_table, scaled, train_timed, with_threads};
use hkrr_clustering::ClusteringMethod;
use hkrr_core::SolverKind;
use hkrr_datasets::spec_by_name;

fn main() {
    let max_threads = std::thread::available_parallelism()
        .map(|v| v.get())
        .unwrap_or(4);
    let thread_counts = [2usize.min(max_threads), max_threads];
    let n_train = scaled(2500);

    let mut rows: Vec<Vec<String>> = vec![
        vec!["H construction".to_string()],
        vec!["HSS construction".to_string()],
        vec!["  -> Sampling".to_string()],
        vec!["  -> Other".to_string()],
        vec!["Factorization".to_string()],
        vec!["Solve".to_string()],
    ];
    let mut header = vec!["step".to_string()];

    for name in ["SUSY", "COVTYPE"] {
        let spec = spec_by_name(name).unwrap();
        let ds = dataset(&spec, n_train, 64, 77);
        for &threads in &thread_counts {
            header.push(format!("{name}/{threads}t"));
            let cfg = config_for(
                &spec,
                ClusteringMethod::TwoMeans { seed: 13 },
                SolverKind::HssWithHSampling,
            );
            let report = with_threads(threads, || {
                let (model, _) = train_timed(&ds, &cfg);
                model.report().clone()
            });
            rows[0].push(format!("{:.3}", report.h_construction_seconds));
            rows[1].push(format!("{:.3}", report.hss_construction_seconds()));
            rows[2].push(format!("{:.3}", report.hss_sampling_seconds));
            rows[3].push(format!("{:.3}", report.hss_other_seconds));
            rows[4].push(format!("{:.3}", report.factorization_seconds));
            rows[5].push(format!("{:.3}", report.solve_seconds));
        }
    }

    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    print_table(
        &format!("Table 4: timing breakdown in seconds (n={n_train}, threads = simulated cores)"),
        &header_refs,
        &rows,
    );
    println!("\nExpected shape (paper): HSS construction dominates and is itself dominated by sampling; factorization and solve are comparatively tiny; more threads shrink the sampling-dominated steps.");
}
