//! Figure 1 (a, b): singular values of the GAS1K kernel matrix with and
//! without two-means (2MN) preprocessing, for h in {0.1, 1, 10}.
//!
//! Prints two CSV blocks: the off-diagonal `n/2 x n/2` block (Fig. 1a) and
//! the full kernel matrix (Fig. 1b).  Each column is one (h, ordering)
//! combination, matching the legend of the paper's figure.

use hkrr_bench::{print_series, scaled};
use hkrr_clustering::{cluster, ClusteringMethod};
use hkrr_datasets::generator::gas1k;
use hkrr_kernel::{KernelFunction, KernelMatrix, NormalizationStats, Normalizer};
use hkrr_linalg::svd::singular_values;

fn main() {
    let n = scaled(512).min(1000);
    let ds = gas1k(42);
    let stats = NormalizationStats::fit(&ds.train, Normalizer::ZScore);
    let points = stats
        .transform(&ds.train)
        .submatrix(0, n, 0, ds.train.ncols());

    let orderings = [
        ("NP", ClusteringMethod::Natural),
        ("2MN", ClusteringMethod::TwoMeans { seed: 7 }),
    ];
    let bandwidths = [0.1, 1.0, 10.0];

    let mut block_series: Vec<(String, Vec<f64>)> = Vec::new();
    let mut full_series: Vec<(String, Vec<f64>)> = Vec::new();

    for (label, method) in orderings {
        let ordering = cluster(&points, method, 16);
        let permuted = points.select_rows(ordering.permutation());
        for &h in &bandwidths {
            let km = KernelMatrix::new(permuted.clone(), KernelFunction::gaussian(h));
            let k = km.assemble_dense();
            let half = n / 2;
            let block = k.submatrix(0, half, half, n);
            block_series.push((format!("h={h} {label}"), singular_values(&block)));
            full_series.push((format!("h={h} {label}"), singular_values(&k)));
        }
    }

    let half = n / 2;
    let xs_block: Vec<f64> = (1..=half).map(|i| i as f64).collect();
    let cols_block: Vec<(&str, &[f64])> = block_series
        .iter()
        .map(|(name, vals)| (name.as_str(), vals.as_slice()))
        .collect();
    print_series(
        &format!("Figure 1a: singular values of the off-diagonal {half}x{half} block (GAS1K-like, n={n})"),
        "k",
        &cols_block,
        &xs_block,
    );

    let xs_full: Vec<f64> = (1..=n).map(|i| i as f64).collect();
    let cols_full: Vec<(&str, &[f64])> = full_series
        .iter()
        .map(|(name, vals)| (name.as_str(), vals.as_slice()))
        .collect();
    print_series(
        &format!("Figure 1b: singular values of the full kernel matrix (GAS1K-like, n={n})"),
        "k",
        &cols_full,
        &xs_full,
    );

    // Headline check reproduced from the paper: at h = 1 the 2MN ordering
    // should show much faster off-diagonal singular-value decay than NP.
    let np_h1 = &block_series[1].1;
    let mn_h1 = &block_series[4].1;
    let np_rank = np_h1.iter().filter(|&&s| s > 0.01).count();
    let mn_rank = mn_h1.iter().filter(|&&s| s > 0.01).count();
    println!("\nh=1 effective rank (sigma > 0.01): NP={np_rank}  2MN={mn_rank}");
}
