//! Table 1: effective rank (number of singular values > 0.01) of the
//! off-diagonal block of the GAS1K kernel matrix, with and without 2MN
//! clustering, for h in {0.01, 0.1, 1, 10, 100}.

use hkrr_bench::{print_table, scaled};
use hkrr_clustering::{cluster, ClusteringMethod};
use hkrr_datasets::generator::gas1k;
use hkrr_kernel::{KernelFunction, KernelMatrix, NormalizationStats, Normalizer};
use hkrr_linalg::svd::effective_rank;

fn main() {
    let n = scaled(512).min(1000);
    let ds = gas1k(42);
    let stats = NormalizationStats::fit(&ds.train, Normalizer::ZScore);
    let points = stats
        .transform(&ds.train)
        .submatrix(0, n, 0, ds.train.ncols());
    let bandwidths = [0.01, 0.1, 1.0, 10.0, 100.0];
    let half = n / 2;

    let mut rows = Vec::new();
    for (label, method) in [
        ("effective rank N/P", ClusteringMethod::Natural),
        ("effective rank 2MN", ClusteringMethod::TwoMeans { seed: 7 }),
    ] {
        let ordering = cluster(&points, method, 16);
        let permuted = points.select_rows(ordering.permutation());
        let mut row = vec![label.to_string()];
        for &h in &bandwidths {
            let km = KernelMatrix::new(permuted.clone(), KernelFunction::gaussian(h));
            let block = km.assemble_dense().submatrix(0, half, half, n);
            row.push(effective_rank(&block, 0.01).to_string());
        }
        rows.push(row);
    }

    let header: Vec<String> = std::iter::once("h".to_string())
        .chain(bandwidths.iter().map(|h| h.to_string()))
        .collect();
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    print_table(
        &format!("Table 1: effective rank of the off-diagonal {half}x{half} GAS1K block (n={n})"),
        &header_refs,
        &rows,
    );
    println!("\nExpected shape (paper): rank is small for h->0 and h->inf, peaks near h~1, and 2MN is much smaller than N/P at the peak.");
}
