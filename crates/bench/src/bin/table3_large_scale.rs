//! Table 3: large-scale prediction accuracy using the paper's (h, λ) on the
//! four largest datasets (SUSY, MNIST, COVTYPE, HEPMASS).  The paper trains
//! on 0.5M-4.5M points; the stand-ins default to laptop-scale sizes that
//! preserve the relative ordering (scale up with HKRR_BENCH_SCALE).

use hkrr_bench::{dataset, print_table, scaled, test_accuracy, train_timed};
use hkrr_clustering::ClusteringMethod;
use hkrr_core::{KrrConfig, SolverKind};
use hkrr_datasets::spec_by_name;

fn main() {
    // (name, paper N, paper h, paper lambda, paper accuracy, local N)
    let runs = [
        ("SUSY", "4.5M", 0.08, 10.0, 0.73, scaled(4000)),
        ("MNIST", "1.6M", 1.1, 10.0, 0.99, scaled(1200)),
        ("COVTYPE", "0.5M", 0.07, 0.3, 0.99, scaled(3000)),
        ("HEPMASS", "1.0M", 0.7, 0.5, 0.90, scaled(3000)),
    ];

    let mut rows = Vec::new();
    for (name, paper_n, h, lambda, paper_acc, n_train) in runs {
        let spec = spec_by_name(name).expect("dataset spec");
        let ds = dataset(&spec, n_train, scaled(500), 41);
        let cfg = KrrConfig {
            h,
            lambda,
            clustering: ClusteringMethod::TwoMeans { seed: 3 },
            solver: SolverKind::HssWithHSampling,
            ..KrrConfig::default()
        };
        let (model, timings) = train_timed(&ds, &cfg);
        let secs = timings.total_seconds;
        let acc = test_accuracy(&model, &ds);
        rows.push(vec![
            name.to_string(),
            paper_n.to_string(),
            n_train.to_string(),
            spec.dim.to_string(),
            format!("{h}"),
            format!("{lambda}"),
            format!("{:.0}%", 100.0 * acc),
            format!("{:.0}%", 100.0 * paper_acc),
            format!("{:.1}s", secs),
            format!("{:.1}", model.report().matrix_memory_mb()),
        ]);
    }

    print_table(
        "Table 3: large-scale prediction with the paper's hyperparameters",
        &[
            "Dataset",
            "N (paper)",
            "N (here)",
            "d",
            "h",
            "lambda",
            "Acc",
            "Acc (paper)",
            "train time",
            "HSS MB",
        ],
        &rows,
    );
    println!(
        "\nExpected shape (paper): MNIST/COVTYPE reach ~99%, HEPMASS ~90%, SUSY is hardest (~73%)."
    );
}
