//! Figure 6: hyperparameter tuning of (h, λ) on the SUSY dataset —
//! exhaustive grid search (6a) versus budgeted black-box optimization (6b,
//! the OpenTuner substitute).

use hkrr_bench::{dataset, print_table, scaled};
use hkrr_core::{KrrConfig, SolverKind};
use hkrr_datasets::registry::SUSY;
use hkrr_tuner::{black_box_search, grid_search, GridSpec, SearchOptions, ValidationObjective};

fn main() {
    let n_train = scaled(800);
    let n_valid = scaled(200);
    let ds = dataset(&SUSY, n_train + n_valid, 64, 31);
    // Split off a validation set from the tail of the generated training data.
    let train = ds.train.submatrix(0, n_train, 0, ds.train.ncols());
    let train_labels = ds.train_labels[..n_train].to_vec();
    let valid = ds
        .train
        .submatrix(n_train, n_train + n_valid, 0, ds.train.ncols());
    let valid_labels = ds.train_labels[n_train..].to_vec();

    let base = KrrConfig {
        solver: SolverKind::Hss,
        ..KrrConfig::default()
    };
    let objective = ValidationObjective::new(&train, &train_labels, &valid, &valid_labels, base);

    // Figure 6a: grid search (the paper's 128x128 grid scaled down to 8x8).
    let grid_spec = GridSpec {
        h_min: 0.25,
        h_max: 2.0,
        h_steps: 8,
        lambda_min: 1.0,
        lambda_max: 10.0,
        lambda_steps: 8,
    };
    let grid = grid_search(&objective, &grid_spec);

    // Figure 6b: black-box search with a much smaller budget.
    let search = black_box_search(
        &objective,
        &SearchOptions {
            h_range: (0.1, 4.0),
            lambda_range: (0.5, 10.0),
            budget: 25,
            ..Default::default()
        },
    );

    print_table(
        "Figure 6: grid search vs black-box tuning on SUSY-like data",
        [
            "method",
            "evaluations",
            "best h",
            "best lambda",
            "best accuracy",
        ]
        .as_slice(),
        &[
            vec![
                "grid search".to_string(),
                grid.num_evaluations().to_string(),
                format!("{:.3}", grid.best.h),
                format!("{:.3}", grid.best.lambda),
                format!("{:.1}%", 100.0 * grid.best.accuracy),
            ],
            vec![
                "black-box (OpenTuner stand-in)".to_string(),
                search.num_evaluations().to_string(),
                format!("{:.3}", search.best.h),
                format!("{:.3}", search.best.lambda),
                format!("{:.1}%", 100.0 * search.best.accuracy),
            ],
        ],
    );

    println!("\nFull black-box trajectory (evaluation index, h, lambda, accuracy):");
    for (i, e) in search.history.iter().enumerate() {
        println!("{i},{:.4},{:.4},{:.4}", e.h, e.lambda, e.accuracy);
    }
    println!("\nExpected shape (paper): the black-box search reaches at least the grid-search accuracy with an order of magnitude fewer runs.");
}
