//! Figure 5: HSS memory versus the Gaussian bandwidth h on the GAS10K
//! dataset (here a GAS-like synthetic of configurable size), for the four
//! orderings Natural / Kd / PCA / 2 Means, at λ = 4.

use hkrr_bench::{config_for, dataset, print_series, scaled, train_timed};
use hkrr_clustering::ClusteringMethod;
use hkrr_core::SolverKind;
use hkrr_datasets::registry::GAS;

fn main() {
    let n_train = scaled(2000);
    let ds = dataset(&GAS, n_train, 64, 23);
    let bandwidths = [0.5, 1.0, 2.0, 4.0, 8.0, 16.0];
    let methods = [
        ("Natural", ClusteringMethod::Natural),
        ("Kd", ClusteringMethod::KdTree),
        ("PCA", ClusteringMethod::PcaTree),
        ("2 Means", ClusteringMethod::TwoMeans { seed: 5 }),
    ];

    let mut columns: Vec<(String, Vec<f64>)> = Vec::new();
    for (label, method) in methods {
        let mut mems = Vec::new();
        for &h in &bandwidths {
            let cfg = config_for(&GAS, method, SolverKind::Hss)
                .with_h(h)
                .with_lambda(4.0);
            let (model, _) = train_timed(&ds, &cfg);
            mems.push(model.report().matrix_memory_mb());
        }
        columns.push((label.to_string(), mems));
    }

    let xs: Vec<f64> = bandwidths.to_vec();
    let cols: Vec<(&str, &[f64])> = columns
        .iter()
        .map(|(name, vals)| (name.as_str(), vals.as_slice()))
        .collect();
    print_series(
        &format!("Figure 5: GAS-like dataset, n={n_train}, lambda=4 — HSS memory (MB) vs h"),
        "h",
        &cols,
        &xs,
    );
    println!("\nExpected shape (paper): memory peaks at intermediate h; 2 Means uses the least memory for every h, Natural the most.");
}
