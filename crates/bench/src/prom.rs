//! A small parser/validator for the Prometheus text exposition format —
//! the consumer side of the `hkrr_telemetry` registry's `metrics` scrape.
//!
//! Used three ways:
//!
//! * `loadgen` scrapes a live server before and after a run and folds the
//!   counter/histogram **deltas** into `BENCH_serve.json`, so the report
//!   carries server-side truth next to the client-observed numbers;
//! * the `prom_check` binary validates `.prom` artifacts in CI;
//! * integration tests pin that the exposition parses and that engine
//!   counters agree exactly with loadgen-observed request counts.
//!
//! The grammar accepted is the subset the registry emits: `# HELP` /
//! `# TYPE` comment lines, optional `# EOF`, and sample lines of the form
//! `name{label="value",...} number`.

use std::collections::BTreeMap;

/// One sample line: a (possibly suffixed) sample name, its label set, and
/// the value.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Full sample name as written (`hkrr_x_total`, `hkrr_y_bucket`, …).
    pub name: String,
    /// Label pairs in exposition order (the registry emits them sorted).
    pub labels: BTreeMap<String, String>,
    /// Parsed value (`+Inf`/`-Inf`/`NaN` accepted).
    pub value: f64,
}

/// One metric family: the `# TYPE` kind, the `# HELP` text, and every
/// sample whose name belongs to the family (including `_bucket`, `_sum`,
/// `_count` suffixes for histograms).
#[derive(Debug, Clone, Default)]
pub struct Family {
    /// `counter`, `gauge`, `histogram`, or `untyped`.
    pub kind: String,
    /// The `# HELP` text (may be empty).
    pub help: String,
    /// All samples of this family, in exposition order.
    pub samples: Vec<Sample>,
}

/// A parsed scrape: families keyed by base metric name.
#[derive(Debug, Clone, Default)]
pub struct Scrape {
    /// Families keyed by base name (without `_bucket`/`_sum`/`_count`).
    pub families: BTreeMap<String, Family>,
}

/// An aggregated histogram (possibly summed over several label sets):
/// cumulative bucket counts plus sum and count.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramScrape {
    /// `(upper_bound, cumulative_count)` per bucket, `le` ascending with
    /// the `+Inf` bucket last.
    pub buckets: Vec<(f64, u64)>,
    /// Sum of observed values.
    pub sum: f64,
    /// Total observations (= the `+Inf` cumulative count).
    pub count: u64,
}

impl HistogramScrape {
    /// Subtracts an earlier scrape of the same histogram, yielding the
    /// activity between the two scrapes. Buckets must line up.
    pub fn delta(&self, earlier: &HistogramScrape) -> Result<HistogramScrape, String> {
        if self.buckets.len() != earlier.buckets.len() {
            return Err(format!(
                "bucket layouts differ: {} vs {} buckets",
                self.buckets.len(),
                earlier.buckets.len()
            ));
        }
        let mut buckets = Vec::with_capacity(self.buckets.len());
        for (&(le, now), &(le2, before)) in self.buckets.iter().zip(&earlier.buckets) {
            if le != le2 && !(le.is_nan() && le2.is_nan()) {
                return Err(format!("bucket bounds differ: {le} vs {le2}"));
            }
            let d = now
                .checked_sub(before)
                .ok_or_else(|| format!("bucket le={le} went backwards ({before} -> {now})"))?;
            buckets.push((le, d));
        }
        let count = self
            .count
            .checked_sub(earlier.count)
            .ok_or_else(|| "histogram count went backwards".to_string())?;
        Ok(HistogramScrape {
            buckets,
            sum: self.sum - earlier.sum,
            count,
        })
    }

    /// Quantile estimate from the cumulative buckets: the upper bound of
    /// the first bucket whose cumulative count reaches `q * count` (the
    /// `+Inf` bucket answers with the previous finite bound). Returns 0
    /// for an empty histogram.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut last_finite = 0.0;
        for &(le, cum) in &self.buckets {
            if cum >= target {
                return if le.is_finite() { le } else { last_finite };
            }
            if le.is_finite() {
                last_finite = le;
            }
        }
        last_finite
    }

    /// Mean of the observed values (0 for an empty histogram).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

impl Scrape {
    /// Sums every sample named exactly `name` whose labels include all of
    /// `labels` (an empty filter sums over every label set). `None` when
    /// no sample matches.
    pub fn value_sum(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        let family = self.families.get(base_name(name))?;
        let mut total = 0.0;
        let mut matched = false;
        for s in &family.samples {
            if s.name == name && labels_match(&s.labels, labels) {
                total += s.value;
                matched = true;
            }
        }
        matched.then_some(total)
    }

    /// Counter convenience: [`Scrape::value_sum`] rounded to u64 (counters
    /// render as integers), 0 when the series does not exist yet — a
    /// counter that never fired and a counter at zero are the same thing.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> u64 {
        self.value_sum(name, labels).unwrap_or(0.0).round() as u64
    }

    /// Aggregates the histogram family `name` over every label set that
    /// includes `labels`, summing per-bucket counts. `None` when nothing
    /// matches.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Option<HistogramScrape> {
        let family = self.families.get(name)?;
        if family.kind != "histogram" {
            return None;
        }
        let bucket_name = format!("{name}_bucket");
        let sum_name = format!("{name}_sum");
        let count_name = format!("{name}_count");
        // Aggregate cumulative counts per `le` across matching label sets.
        let mut by_le: BTreeMap<OrderedLe, u64> = BTreeMap::new();
        let mut sum = 0.0;
        let mut count = 0u64;
        let mut matched = false;
        for s in &family.samples {
            if !labels_match(&s.labels, labels) {
                continue;
            }
            if s.name == bucket_name {
                let le = s.labels.get("le")?;
                let le = parse_le(le)?;
                *by_le.entry(OrderedLe(le)).or_insert(0) += s.value.round() as u64;
                matched = true;
            } else if s.name == sum_name {
                sum += s.value;
            } else if s.name == count_name {
                count += s.value.round() as u64;
            }
        }
        matched.then(|| HistogramScrape {
            buckets: by_le.into_iter().map(|(le, c)| (le.0, c)).collect(),
            sum,
            count,
        })
    }
}

/// `le` values sorted numerically with `+Inf` last.
#[derive(Debug, Clone, Copy, PartialEq)]
struct OrderedLe(f64);

impl Eq for OrderedLe {}
impl PartialOrd for OrderedLe {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for OrderedLe {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0
            .partial_cmp(&other.0)
            .unwrap_or(std::cmp::Ordering::Equal)
    }
}

fn parse_le(s: &str) -> Option<f64> {
    match s {
        "+Inf" => Some(f64::INFINITY),
        other => other.parse().ok(),
    }
}

fn labels_match(have: &BTreeMap<String, String>, want: &[(&str, &str)]) -> bool {
    want.iter()
        .all(|(k, v)| have.get(*k).map(String::as_str) == Some(*v))
}

/// Strips the histogram sample suffixes to the family's base name.
fn base_name(sample_name: &str) -> &str {
    for suffix in ["_bucket", "_sum", "_count"] {
        if let Some(base) = sample_name.strip_suffix(suffix) {
            return base;
        }
    }
    sample_name
}

fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && name
            .chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == ':')
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// Parses one `label="value"` list (without braces), undoing the `\\`,
/// `\"`, `\n` escapes the exposition format defines.
fn parse_labels(s: &str) -> Result<BTreeMap<String, String>, String> {
    let mut labels = BTreeMap::new();
    let mut rest = s.trim();
    while !rest.is_empty() {
        let eq = rest
            .find('=')
            .ok_or_else(|| format!("label pair without '=': {rest:?}"))?;
        let key = rest[..eq].trim();
        if !valid_name(key) {
            return Err(format!("invalid label name {key:?}"));
        }
        let after = rest[eq + 1..].trim_start();
        let mut chars = after.char_indices();
        if chars.next().map(|(_, c)| c) != Some('"') {
            return Err(format!("label value must be quoted: {after:?}"));
        }
        let mut value = String::new();
        let mut end = None;
        let mut escaped = false;
        for (i, c) in chars {
            if escaped {
                match c {
                    '\\' => value.push('\\'),
                    '"' => value.push('"'),
                    'n' => value.push('\n'),
                    other => return Err(format!("unknown escape \\{other}")),
                }
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                end = Some(i);
                break;
            } else {
                value.push(c);
            }
        }
        let end = end.ok_or_else(|| format!("unterminated label value in {after:?}"))?;
        if labels.insert(key.to_string(), value).is_some() {
            return Err(format!("duplicate label {key:?}"));
        }
        rest = after[end + 1..].trim_start();
        if let Some(stripped) = rest.strip_prefix(',') {
            rest = stripped.trim_start();
        } else if !rest.is_empty() {
            return Err(format!("expected ',' between labels, got {rest:?}"));
        }
    }
    Ok(labels)
}

fn parse_value(s: &str) -> Result<f64, String> {
    match s {
        "+Inf" => Ok(f64::INFINITY),
        "-Inf" => Ok(f64::NEG_INFINITY),
        "NaN" => Ok(f64::NAN),
        other => other
            .parse()
            .map_err(|_| format!("invalid sample value {other:?}")),
    }
}

/// Parses a text-exposition document into a [`Scrape`]. Errors carry the
/// 1-based line number of the offending line.
pub fn parse(text: &str) -> Result<Scrape, String> {
    let mut scrape = Scrape::default();
    for (lineno, raw) in text.lines().enumerate() {
        let lineno = lineno + 1;
        let line = raw.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            let comment = comment.trim_start();
            if let Some(rest) = comment.strip_prefix("HELP ") {
                let (name, help) = rest.split_once(' ').unwrap_or((rest, ""));
                if !valid_name(name) {
                    return Err(format!("line {lineno}: invalid metric name {name:?}"));
                }
                scrape.families.entry(name.to_string()).or_default().help = help.to_string();
            } else if let Some(rest) = comment.strip_prefix("TYPE ") {
                let (name, kind) = rest
                    .split_once(' ')
                    .ok_or_else(|| format!("line {lineno}: TYPE without a kind"))?;
                if !valid_name(name) {
                    return Err(format!("line {lineno}: invalid metric name {name:?}"));
                }
                if !matches!(
                    kind,
                    "counter" | "gauge" | "histogram" | "summary" | "untyped"
                ) {
                    return Err(format!("line {lineno}: unknown TYPE {kind:?}"));
                }
                let family = scrape.families.entry(name.to_string()).or_default();
                if !family.kind.is_empty() {
                    return Err(format!("line {lineno}: duplicate TYPE for {name}"));
                }
                family.kind = kind.to_string();
            }
            // Other comments (including `# EOF`) are ignored.
            continue;
        }
        // Sample line: name[{labels}] value
        let (name_part, rest) = match line.find('{') {
            Some(brace) => {
                let close = line
                    .rfind('}')
                    .ok_or_else(|| format!("line {lineno}: unclosed label braces"))?;
                if close < brace {
                    return Err(format!("line {lineno}: mismatched label braces"));
                }
                (&line[..brace], &line[close + 1..])
            }
            None => match line.split_once(char::is_whitespace) {
                Some((n, v)) => (n, v),
                None => return Err(format!("line {lineno}: sample without a value")),
            },
        };
        let name = name_part.trim();
        if !valid_name(name) {
            return Err(format!("line {lineno}: invalid sample name {name:?}"));
        }
        let labels = match line.find('{') {
            Some(brace) => {
                let close = line.rfind('}').expect("checked above");
                parse_labels(&line[brace + 1..close]).map_err(|e| format!("line {lineno}: {e}"))?
            }
            None => BTreeMap::new(),
        };
        let value = parse_value(rest.trim()).map_err(|e| format!("line {lineno}: {e}"))?;
        let family = scrape
            .families
            .entry(base_name(name).to_string())
            .or_default();
        family.samples.push(Sample {
            name: name.to_string(),
            labels,
            value,
        });
    }
    Ok(scrape)
}

/// Parses **and** cross-checks a scrape — the strict mode `prom_check` and
/// CI run against `.prom` artifacts:
///
/// * every family with samples has a `# TYPE`;
/// * counter samples end in `_total` and are non-negative finite integers;
/// * histogram cumulative bucket counts are non-decreasing in `le`, every
///   label set has a `+Inf` bucket, and `_count` equals it;
/// * gauges are finite.
pub fn validate(text: &str) -> Result<Scrape, String> {
    let scrape = parse(text)?;
    for (name, family) in &scrape.families {
        if family.samples.is_empty() {
            continue;
        }
        if family.kind.is_empty() {
            return Err(format!("family {name} has samples but no # TYPE"));
        }
        match family.kind.as_str() {
            "counter" => {
                for s in &family.samples {
                    if !s.name.ends_with("_total") {
                        return Err(format!("counter sample {} must end in _total", s.name));
                    }
                    if !s.value.is_finite() || s.value < 0.0 || s.value.fract() != 0.0 {
                        return Err(format!(
                            "counter {} has non-integer value {}",
                            s.name, s.value
                        ));
                    }
                }
            }
            "gauge" => {
                for s in &family.samples {
                    if !s.value.is_finite() {
                        return Err(format!("gauge {} has non-finite value", s.name));
                    }
                }
            }
            "histogram" => validate_histogram(name, family)?,
            _ => {}
        }
    }
    Ok(scrape)
}

fn validate_histogram(name: &str, family: &Family) -> Result<(), String> {
    // Group buckets/sum/count per label set (minus `le`).
    type Key = Vec<(String, String)>;
    type SeriesAcc = (Vec<(f64, u64)>, Option<u64>);
    let mut series: BTreeMap<Key, SeriesAcc> = BTreeMap::new();
    let bucket_name = format!("{name}_bucket");
    let count_name = format!("{name}_count");
    for s in &family.samples {
        let key: Key = s
            .labels
            .iter()
            .filter(|(k, _)| k.as_str() != "le")
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect();
        let entry = series.entry(key).or_default();
        if s.name == bucket_name {
            let le = s
                .labels
                .get("le")
                .and_then(|v| parse_le(v))
                .ok_or_else(|| format!("{bucket_name} sample without a valid le label"))?;
            entry.0.push((le, s.value.round() as u64));
        } else if s.name == count_name {
            entry.1 = Some(s.value.round() as u64);
        }
    }
    for (key, (mut buckets, count)) in series {
        buckets.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
        if buckets.is_empty() {
            return Err(format!("histogram {name}{key:?} has no buckets"));
        }
        let mut prev = 0u64;
        for &(le, cum) in &buckets {
            if cum < prev {
                return Err(format!(
                    "histogram {name}{key:?}: bucket le={le} cumulative count decreases"
                ));
            }
            prev = cum;
        }
        let (last_le, last_cum) = *buckets.last().expect("non-empty");
        if last_le.is_finite() {
            return Err(format!(
                "histogram {name}{key:?} is missing the +Inf bucket"
            ));
        }
        if let Some(c) = count {
            if c != last_cum {
                return Err(format!(
                    "histogram {name}{key:?}: _count {c} != +Inf bucket {last_cum}"
                ));
            }
        } else {
            return Err(format!("histogram {name}{key:?} is missing _count"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
# HELP hkrr_engine_requests_total Predict requests answered\n\
# TYPE hkrr_engine_requests_total counter\n\
hkrr_engine_requests_total{engine=\"e1\"} 42\n\
hkrr_engine_requests_total{engine=\"e2\"} 8\n\
# HELP hkrr_uptime_seconds Seconds since start\n\
# TYPE hkrr_uptime_seconds gauge\n\
hkrr_uptime_seconds 1.5\n\
# HELP hkrr_lat Latency\n\
# TYPE hkrr_lat histogram\n\
hkrr_lat_bucket{engine=\"e1\",le=\"100\"} 3\n\
hkrr_lat_bucket{engine=\"e1\",le=\"200\"} 5\n\
hkrr_lat_bucket{engine=\"e1\",le=\"+Inf\"} 6\n\
hkrr_lat_sum{engine=\"e1\"} 700\n\
hkrr_lat_count{engine=\"e1\"} 6\n\
# EOF\n";

    #[test]
    fn parses_and_validates_the_registry_shape() {
        let scrape = validate(SAMPLE).unwrap();
        assert_eq!(scrape.counter("hkrr_engine_requests_total", &[]), 50);
        assert_eq!(
            scrape.counter("hkrr_engine_requests_total", &[("engine", "e1")]),
            42
        );
        assert_eq!(
            scrape.counter("hkrr_engine_requests_total", &[("engine", "nope")]),
            0
        );
        assert_eq!(scrape.value_sum("hkrr_uptime_seconds", &[]), Some(1.5));
        let h = scrape.histogram("hkrr_lat", &[("engine", "e1")]).unwrap();
        assert_eq!(h.count, 6);
        assert_eq!(h.sum, 700.0);
        assert_eq!(h.buckets.len(), 3);
        assert_eq!(h.quantile(0.5), 100.0);
        assert_eq!(h.quantile(0.99), 200.0); // +Inf answers with last finite
        assert!((h.mean() - 700.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_deltas_subtract_bucketwise() {
        let scrape = validate(SAMPLE).unwrap();
        let after = scrape.histogram("hkrr_lat", &[]).unwrap();
        let mut before = after.clone();
        before.buckets = vec![(100.0, 1), (200.0, 1), (f64::INFINITY, 1)];
        before.count = 1;
        before.sum = 50.0;
        let d = after.delta(&before).unwrap();
        assert_eq!(d.count, 5);
        assert_eq!(d.buckets, vec![(100.0, 2), (200.0, 4), (f64::INFINITY, 5)]);
        assert_eq!(d.sum, 650.0);
        // A shrinking counter is a validation error, not a wrap-around.
        assert!(before.delta(&after).is_err());
    }

    #[test]
    fn malformed_documents_are_rejected() {
        assert!(parse("hkrr_x{unterminated=\"v} 1\n").is_err());
        assert!(parse("hkrr_x 1 2 3\n").is_err());
        assert!(parse("hkrr_x{a=\"1\"\n").is_err());
        assert!(
            validate("hkrr_untyped_total 3\n").is_err(),
            "sample without TYPE"
        );
        let decreasing = "\
# TYPE h histogram\n\
h_bucket{le=\"1\"} 5\n\
h_bucket{le=\"+Inf\"} 3\n\
h_count 3\n";
        assert!(validate(decreasing).is_err());
        let no_inf = "\
# TYPE h histogram\n\
h_bucket{le=\"1\"} 5\n\
h_count 5\n";
        assert!(validate(no_inf).is_err());
        let bad_counter = "\
# TYPE c counter\nc_total 1.5\n";
        assert!(validate(bad_counter).is_err());
    }
}
