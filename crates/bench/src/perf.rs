//! JSON perf-tracking harness: the machine-readable pipeline trajectory.
//!
//! [`run`] executes a fixed workload matrix — solver (dense Cholesky vs HSS
//! vs HSS with H-matrix-accelerated sampling vs HSS-preconditioned CG)
//! crossed with thread counts (1 / 2 / all) over a small and a medium
//! problem, plus cluster-sharded ensembles at `k = 2` and `k = 4` — and
//! records wall times per phase (construction, factorization, solve, PCG),
//! achieved parallel speedups, compression ratios, PCG iteration counts,
//! per-shard factorization times, router overhead, and test accuracy.
//! [`PerfReport::to_json`] serializes the result as `BENCH_pipeline.json`
//! (schema `hkrr-perf/5`) so CI can archive one snapshot per commit and
//! future PRs are judged against recorded numbers instead of anecdotes.
//!
//! Schema `/4` adds a `dense_substrate` section: for every dense backend
//! available on the host (`scalar`, `blocked`, and `avx2` where supported)
//! it records GEMM GFLOP/s at n = 256 / 512 and a bulk pairwise-distance
//! timing, each with its speedup over the scalar reference. CI gates on
//! the GEMM speedup via `HKRR_REQUIRE_GEMM_SPEEDUP` (see `perf_snapshot`).
//!
//! Schema `/5` adds `hss-pcg-f32` rows — the HSS-preconditioned CG solver
//! with its ULV factors demoted to f32 storage — and a `factor_bytes`
//! field on every case, so the snapshot tracks the mixed-precision memory
//! win (f32 rows must come in well under half the f64 factor bytes)
//! alongside the iteration-count cost it pays for it.
//!
//! The dense baseline runs once per workload (at the full thread count):
//! its wall time anchors the dense-vs-hierarchical comparison, while the
//! speedup rows compare each HSS solver against its own single-thread run.
//! The `ensemble-k{2,4}` rows run at the full thread count; their
//! `accuracy_vs_hss` field records the accuracy delta against the
//! monolithic `hss` row of the same workload.
//!
//! JSON is emitted by the workspace's shared hand-rolled writer (the build
//! is offline, without serde) and checked by the shared syntax validator
//! before anything is written to disk; both live in [`crate::json`] and are
//! shared with the serving snapshot (`BENCH_serve.json`).

use crate::json::JsonWriter;
use crate::{dataset, test_accuracy, train_timed, with_threads};
use hkrr_clustering::ClusteringMethod;
use hkrr_core::{accuracy, FactorPrecision, KrrConfig, SolverKind};
use hkrr_datasets::registry::{LETTER, SUSY};
use hkrr_datasets::DatasetSpec;
use hkrr_ensemble::{EnsembleConfig, EnsembleKrr, ShardStrategy};
use std::fmt::Write as _;
use std::time::Instant;

/// One problem instance of the workload matrix.
#[derive(Debug, Clone)]
pub struct PerfWorkload {
    /// Stable name used in the JSON (`"small"` / `"medium"`).
    pub name: &'static str,
    /// Synthetic stand-in generated for this workload.
    pub spec: DatasetSpec,
    /// Number of training points (already scaled by `HKRR_BENCH_SCALE`).
    pub n_train: usize,
    /// Number of test points.
    pub n_test: usize,
    /// RNG seed for the dataset.
    pub seed: u64,
}

/// Options describing the full snapshot run.
#[derive(Debug, Clone)]
pub struct PerfOptions {
    /// Problems to measure.
    pub workloads: Vec<PerfWorkload>,
    /// Thread counts for the hierarchical solvers (ascending, deduplicated).
    pub thread_counts: Vec<usize>,
}

impl PerfOptions {
    /// The standard small/medium matrix with 1 / 2 / all-threads sweeps,
    /// scaled by `HKRR_BENCH_SCALE`.
    pub fn standard() -> Self {
        let max_threads = std::thread::available_parallelism().map_or(1, |n| n.get());
        let mut thread_counts = vec![1, 2, max_threads];
        thread_counts.sort_unstable();
        thread_counts.dedup();
        thread_counts.retain(|&t| t <= max_threads);
        PerfOptions {
            workloads: vec![
                PerfWorkload {
                    name: "small",
                    spec: LETTER,
                    n_train: crate::scaled(600),
                    n_test: crate::scaled(150).min(200),
                    seed: 42,
                },
                PerfWorkload {
                    name: "medium",
                    spec: SUSY,
                    n_train: crate::scaled(2000),
                    n_test: crate::scaled(300).min(400),
                    seed: 43,
                },
            ],
            thread_counts,
        }
    }
}

/// One measured (workload, solver, threads) cell.
#[derive(Debug, Clone)]
pub struct PerfCase {
    /// Workload name (`"small"` / `"medium"`).
    pub workload: String,
    /// Solver label (`"dense"`, `"hss"`, `"hss+h"`, `"hss-pcg"`,
    /// `"hss-pcg-f32"`, `"ensemble-k2"`, `"ensemble-k4"`).
    pub solver: String,
    /// Thread count the run was pinned to.
    pub threads: usize,
    /// Training-set size.
    pub n_train: usize,
    /// Test-set size.
    pub n_test: usize,
    /// Seconds in matrix construction (H sampler + HSS compression, or
    /// dense assembly).
    pub construction_seconds: f64,
    /// Seconds in the ULV factorization (or dense Cholesky).
    pub factorization_seconds: f64,
    /// Seconds in the weight solve.
    pub solve_seconds: f64,
    /// Seconds in the PCG iteration (`hss-pcg` rows only; 0 elsewhere).
    pub pcg_seconds: f64,
    /// PCG iterations performed (`hss-pcg` rows only; 0 elsewhere).
    pub pcg_iterations: usize,
    /// Total wall-clock training seconds.
    pub total_seconds: f64,
    /// Test-set accuracy of the trained model.
    pub accuracy: f64,
    /// Memory of the (compressed or dense) training matrix, in bytes.
    pub matrix_memory_bytes: usize,
    /// Memory of the retained ULV factor store, in bytes (0 for dense;
    /// the shard sum for ensembles). The `hss-pcg-f32` rows must come in
    /// well under half their `hss-pcg` siblings.
    pub factor_bytes: usize,
    /// Dense bytes divided by compressed bytes (1.0 for the dense solver).
    pub compression_ratio: f64,
    /// Maximum HSS rank (0 for dense).
    pub max_rank: usize,
    /// Shard count (0 for the monolithic solvers).
    pub shards: usize,
    /// Per-shard factorization seconds (`ensemble-k*` rows only; empty
    /// elsewhere). Their sum is the shard-sum-vs-monolithic headline.
    pub shard_factorization_seconds: Vec<f64>,
    /// Seconds spent routing every test query to its nearest shard
    /// centroids (`ensemble-k*` rows only; 0 elsewhere) — the router's
    /// serving-side overhead.
    pub router_overhead_seconds: f64,
    /// `accuracy − accuracy(monolithic hss at full threads)` for the same
    /// workload (`ensemble-k*` rows only; 0 elsewhere).
    pub accuracy_vs_hss: f64,
}

/// Parallel speedup of one (workload, solver) pair: all-threads vs 1.
#[derive(Debug, Clone)]
pub struct PerfSpeedup {
    /// Workload name.
    pub workload: String,
    /// Solver label.
    pub solver: String,
    /// The "all" thread count the speedup compares against 1 thread.
    pub threads: usize,
    /// Construction speedup (t₁ / t_all).
    pub construction: f64,
    /// Factorization speedup.
    pub factorization: f64,
    /// Combined construction + factorization speedup (the tentpole metric).
    pub construct_plus_factor: f64,
    /// Total wall-clock speedup.
    pub total: f64,
    /// `accuracy(all threads) − accuracy(1 thread)`; the parallel schedules
    /// are bitwise deterministic, so this must be exactly zero.
    pub accuracy_delta: f64,
}

/// One GEMM measurement of the dense-substrate microbenchmark.
#[derive(Debug, Clone)]
pub struct GemmCell {
    /// Square matrix dimension.
    pub n: usize,
    /// Best-of-reps wall time of one `gemm_into` call.
    pub seconds: f64,
    /// Achieved GFLOP/s (`2 n³ / seconds / 1e9`).
    pub gflops: f64,
    /// Speedup over the scalar backend at the same size (1.0 for scalar).
    pub speedup_vs_scalar: f64,
}

/// Dense-substrate numbers for one backend.
#[derive(Debug, Clone)]
pub struct DenseSubstrateRow {
    /// Backend name (`"scalar"` / `"blocked"` / `"avx2"`).
    pub backend: String,
    /// GEMM cells at n = 256 and n = 512.
    pub gemm: Vec<GemmCell>,
    /// Best-of-reps wall time of one bulk pairwise squared-distance pass
    /// (1000 × 1000 pairs in 18 dimensions — the SUSY feature width).
    pub pairwise_dist_seconds: f64,
    /// Pairwise-distance speedup over the scalar backend (1.0 for scalar).
    pub pairwise_dist_speedup: f64,
}

/// The `dense_substrate` section: every available backend A/B-tested
/// against the scalar reference on the same inputs.
#[derive(Debug, Clone)]
pub struct DenseSubstrateReport {
    /// Name of the backend the rest of the snapshot ran under.
    pub active_backend: String,
    /// One row per available backend, scalar first.
    pub rows: Vec<DenseSubstrateRow>,
}

impl DenseSubstrateReport {
    /// Best GEMM speedup over scalar achieved by any non-scalar backend
    /// (0.0 when only the scalar backend is available).
    pub fn best_gemm_speedup(&self) -> f64 {
        self.rows
            .iter()
            .filter(|r| r.backend != "scalar")
            .flat_map(|r| r.gemm.iter().map(|g| g.speedup_vs_scalar))
            .fold(0.0, f64::max)
    }
}

/// The full snapshot: every measured cell plus derived speedups.
#[derive(Debug, Clone)]
pub struct PerfReport {
    /// `HKRR_BENCH_SCALE` in effect for the run.
    pub scale: f64,
    /// Hardware concurrency of the host.
    pub host_threads: usize,
    /// Every measured cell.
    pub cases: Vec<PerfCase>,
    /// All-threads-vs-1 speedups per (workload, hierarchical solver).
    pub speedups: Vec<PerfSpeedup>,
    /// Dense-backend A/B microbenchmarks (GEMM + pairwise distances).
    pub dense_substrate: DenseSubstrateReport,
}

/// One solver cell of the workload matrix: a back end plus the ULV
/// factor-storage precision (the `hss-pcg-f32` row of the snapshot).
#[derive(Debug, Clone, Copy, PartialEq)]
struct SolverCell {
    solver: SolverKind,
    factor_precision: FactorPrecision,
}

impl SolverCell {
    fn new(solver: SolverKind) -> Self {
        SolverCell {
            solver,
            factor_precision: FactorPrecision::F64,
        }
    }

    fn label(&self) -> String {
        match self.factor_precision {
            FactorPrecision::F64 => self.solver.label().to_string(),
            FactorPrecision::F32 => format!("{}-f32", self.solver.label()),
        }
    }
}

fn config_for(spec: &DatasetSpec, solver: SolverKind) -> KrrConfig {
    KrrConfig {
        h: spec.default_h,
        lambda: spec.default_lambda,
        clustering: ClusteringMethod::TwoMeans { seed: 7 },
        solver,
        ..KrrConfig::default()
    }
}

fn measure(
    workload: &PerfWorkload,
    ds: &hkrr_datasets::Dataset,
    cell: SolverCell,
    threads: usize,
) -> PerfCase {
    let cfg = config_for(&workload.spec, cell.solver).with_factor_precision(cell.factor_precision);
    let (model, timings) = with_threads(threads, || train_timed(ds, &cfg));
    let accuracy = test_accuracy(&model, ds);
    let report = model.report();
    let dense_bytes = workload.n_train * workload.n_train * std::mem::size_of::<f64>();
    let compression_ratio = if report.matrix_memory_bytes > 0 {
        dense_bytes as f64 / report.matrix_memory_bytes as f64
    } else {
        1.0
    };
    PerfCase {
        workload: workload.name.to_string(),
        solver: cell.label(),
        threads,
        n_train: workload.n_train,
        n_test: workload.n_test,
        construction_seconds: timings.construction_seconds,
        factorization_seconds: timings.factorization_seconds,
        solve_seconds: timings.solve_seconds,
        pcg_seconds: timings.pcg_seconds,
        pcg_iterations: report.pcg_iterations,
        total_seconds: timings.total_seconds,
        accuracy,
        matrix_memory_bytes: report.matrix_memory_bytes,
        factor_bytes: report.factor_bytes,
        compression_ratio,
        max_rank: report.max_rank,
        shards: 0,
        shard_factorization_seconds: Vec::new(),
        router_overhead_seconds: 0.0,
        accuracy_vs_hss: 0.0,
    }
}

/// Measures one cluster-sharded ensemble cell at the given shard count.
fn measure_ensemble(
    workload: &PerfWorkload,
    ds: &hkrr_datasets::Dataset,
    k: usize,
    threads: usize,
    hss_accuracy: f64,
) -> PerfCase {
    let cfg = EnsembleConfig {
        shards: k,
        route_nearest: 2.min(k),
        strategy: ShardStrategy::Cluster,
        base: config_for(&workload.spec, SolverKind::Hss),
    };
    let ens = with_threads(threads, || {
        EnsembleKrr::fit(&ds.train, &ds.train_labels, &cfg).expect("ensemble training failed")
    });
    let report = ens.report();

    // Router overhead: the serving-side cost of picking shards, measured
    // as a pure routing pass over the full test set.
    let t = Instant::now();
    let mut picks = Vec::new();
    for i in 0..ds.test.nrows() {
        ens.router().route_into(ds.test.row(i), &mut picks);
    }
    let router_overhead_seconds = t.elapsed().as_secs_f64();

    let ens_accuracy = accuracy(&ens.predict(&ds.test), &ds.test_labels);
    let memory = report.total_matrix_memory_bytes();
    let dense_bytes = workload.n_train * workload.n_train * std::mem::size_of::<f64>();
    PerfCase {
        workload: workload.name.to_string(),
        solver: format!("ensemble-k{k}"),
        threads,
        n_train: workload.n_train,
        n_test: workload.n_test,
        construction_seconds: report
            .shard_reports
            .iter()
            .map(|r| r.hss_construction_seconds())
            .sum(),
        factorization_seconds: report.sum_factorization_seconds(),
        solve_seconds: report.shard_reports.iter().map(|r| r.solve_seconds).sum(),
        pcg_seconds: 0.0,
        pcg_iterations: 0,
        total_seconds: report.fit_wall_seconds,
        accuracy: ens_accuracy,
        matrix_memory_bytes: memory,
        factor_bytes: report.shard_reports.iter().map(|r| r.factor_bytes).sum(),
        compression_ratio: if memory > 0 {
            dense_bytes as f64 / memory as f64
        } else {
            1.0
        },
        max_rank: report.max_rank(),
        shards: k,
        shard_factorization_seconds: report
            .shard_reports
            .iter()
            .map(|r| r.factorization_seconds)
            .collect(),
        router_overhead_seconds,
        accuracy_vs_hss: ens_accuracy - hss_accuracy,
    }
}

fn ratio(baseline: f64, current: f64) -> f64 {
    if current > 0.0 {
        baseline / current
    } else {
        1.0
    }
}

/// Best-of-`reps` wall time of `f` in seconds.
fn best_of<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

/// A/B-tests every available dense backend against the scalar reference:
/// square GEMM at the given sizes plus one bulk pairwise-distance pass.
///
/// The measurements call the backend instances directly (no global backend
/// switching), so the snapshot's active backend is untouched.
pub fn measure_dense_substrate(gemm_sizes: &[usize]) -> DenseSubstrateReport {
    use hkrr_linalg::backend::{self, BackendKind};
    use hkrr_linalg::random::gaussian_matrix;
    use hkrr_linalg::{Matrix, Pcg64};

    let reps = 3;
    let (dist_rows, dist_dim) = (1000usize, 18usize);
    let mut rng = Pcg64::seed_from_u64(2024);
    let inputs: Vec<(Matrix, Matrix)> = gemm_sizes
        .iter()
        .map(|&n| {
            (
                gaussian_matrix(&mut rng, n, n),
                gaussian_matrix(&mut rng, n, n),
            )
        })
        .collect();
    let x = gaussian_matrix(&mut rng, dist_rows, dist_dim);
    let y = gaussian_matrix(&mut rng, dist_rows, dist_dim);

    let mut rows = Vec::new();
    let mut scalar_gemm_seconds: Vec<f64> = Vec::new();
    let mut scalar_dist_seconds = 0.0;
    for kind in backend::available_backends() {
        let be = kind.instance();
        let mut gemm = Vec::new();
        for (i, &n) in gemm_sizes.iter().enumerate() {
            let (a, b) = &inputs[i];
            let mut c = Matrix::zeros(n, n);
            let seconds = best_of(reps, || be.gemm_into(a, b, &mut c));
            let gflops = 2.0 * (n as f64).powi(3) / seconds / 1e9;
            if kind == BackendKind::Scalar {
                scalar_gemm_seconds.push(seconds);
            }
            gemm.push(GemmCell {
                n,
                seconds,
                gflops,
                speedup_vs_scalar: ratio(scalar_gemm_seconds[i], seconds),
            });
        }
        let mut d = Matrix::zeros(dist_rows, dist_rows);
        let pairwise_dist_seconds = best_of(reps, || be.sq_dists_into(&x, &y, &mut d));
        if kind == BackendKind::Scalar {
            scalar_dist_seconds = pairwise_dist_seconds;
        }
        rows.push(DenseSubstrateRow {
            backend: kind.as_str().to_string(),
            gemm,
            pairwise_dist_seconds,
            pairwise_dist_speedup: ratio(scalar_dist_seconds, pairwise_dist_seconds),
        });
    }
    DenseSubstrateReport {
        active_backend: backend::active_kind().as_str().to_string(),
        rows,
    }
}

/// Runs the workload matrix and assembles the report.
pub fn run(opts: &PerfOptions) -> PerfReport {
    let host_threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let max_threads = opts.thread_counts.iter().copied().max().unwrap_or(1);
    let mut cases = Vec::new();
    let mut speedups = Vec::new();

    for workload in &opts.workloads {
        // One dataset per workload, shared by every (solver, threads) cell.
        let ds = dataset(
            &workload.spec,
            workload.n_train,
            workload.n_test,
            workload.seed,
        );

        // Dense baseline: one run at full parallelism.
        cases.push(measure(
            workload,
            &ds,
            SolverCell::new(SolverKind::DenseCholesky),
            max_threads,
        ));

        let mut hss_accuracy = 0.0;
        for cell in [
            SolverCell::new(SolverKind::Hss),
            SolverCell::new(SolverKind::HssWithHSampling),
            SolverCell::new(SolverKind::HssPcg),
            SolverCell {
                solver: SolverKind::HssPcg,
                factor_precision: FactorPrecision::F32,
            },
        ] {
            let runs: Vec<PerfCase> = opts
                .thread_counts
                .iter()
                .map(|&t| measure(workload, &ds, cell, t))
                .collect();
            let base = runs.first().expect("at least one thread count").clone();
            let top = runs.last().expect("at least one thread count").clone();
            if cell == SolverCell::new(SolverKind::Hss) {
                // Anchor for the ensemble rows' accuracy_vs_hss delta.
                hss_accuracy = top.accuracy;
            }
            if top.threads > base.threads {
                speedups.push(PerfSpeedup {
                    workload: workload.name.to_string(),
                    solver: cell.label(),
                    threads: top.threads,
                    construction: ratio(base.construction_seconds, top.construction_seconds),
                    factorization: ratio(base.factorization_seconds, top.factorization_seconds),
                    construct_plus_factor: ratio(
                        base.construction_seconds + base.factorization_seconds,
                        top.construction_seconds + top.factorization_seconds,
                    ),
                    total: ratio(base.total_seconds, top.total_seconds),
                    accuracy_delta: top.accuracy - base.accuracy,
                });
            }
            cases.extend(runs);
        }

        // Cluster-sharded ensembles at k = 2 and 4, full thread count: the
        // shard-sum-vs-monolithic comparison rides in the same snapshot as
        // the solvers it is compared against.
        for k in [2usize, 4] {
            cases.push(measure_ensemble(
                workload,
                &ds,
                k,
                max_threads,
                hss_accuracy,
            ));
        }
    }

    PerfReport {
        scale: crate::bench_scale(),
        host_threads,
        cases,
        speedups,
        dense_substrate: measure_dense_substrate(&[256, 512]),
    }
}

impl PerfCase {
    fn write_json(&self, w: &mut JsonWriter) {
        w.begin_object();
        w.field_str("workload", &self.workload);
        w.field_str("solver", &self.solver);
        w.field_usize("threads", self.threads);
        w.field_usize("n_train", self.n_train);
        w.field_usize("n_test", self.n_test);
        w.field_f64("construction_seconds", self.construction_seconds);
        w.field_f64("factorization_seconds", self.factorization_seconds);
        w.field_f64("solve_seconds", self.solve_seconds);
        w.field_f64("pcg_seconds", self.pcg_seconds);
        w.field_usize("pcg_iterations", self.pcg_iterations);
        w.field_f64("total_seconds", self.total_seconds);
        w.field_f64("accuracy", self.accuracy);
        w.field_usize("matrix_memory_bytes", self.matrix_memory_bytes);
        w.field_usize("factor_bytes", self.factor_bytes);
        w.field_f64("compression_ratio", self.compression_ratio);
        w.field_usize("max_rank", self.max_rank);
        w.field_usize("shards", self.shards);
        w.key("shard_factorization_seconds");
        w.begin_array();
        for &s in &self.shard_factorization_seconds {
            w.value_f64(s);
        }
        w.end_array();
        w.field_f64("router_overhead_seconds", self.router_overhead_seconds);
        w.field_f64("accuracy_vs_hss", self.accuracy_vs_hss);
        w.end_object();
    }
}

impl PerfSpeedup {
    fn write_json(&self, w: &mut JsonWriter) {
        w.begin_object();
        w.field_str("workload", &self.workload);
        w.field_str("solver", &self.solver);
        w.field_usize("threads", self.threads);
        w.field_f64("construction", self.construction);
        w.field_f64("factorization", self.factorization);
        w.field_f64("construct_plus_factor", self.construct_plus_factor);
        w.field_f64("total", self.total);
        w.field_f64("accuracy_delta", self.accuracy_delta);
        w.end_object();
    }
}

impl DenseSubstrateReport {
    fn write_json(&self, w: &mut JsonWriter) {
        w.begin_object();
        w.field_str("active_backend", &self.active_backend);
        w.key("backends");
        w.begin_array();
        for row in &self.rows {
            w.begin_object();
            w.field_str("backend", &row.backend);
            w.key("gemm");
            w.begin_array();
            for g in &row.gemm {
                w.begin_object();
                w.field_usize("n", g.n);
                w.field_f64("seconds", g.seconds);
                w.field_f64("gflops", g.gflops);
                w.field_f64("speedup_vs_scalar", g.speedup_vs_scalar);
                w.end_object();
            }
            w.end_array();
            w.field_f64("pairwise_dist_seconds", row.pairwise_dist_seconds);
            w.field_f64("pairwise_dist_speedup", row.pairwise_dist_speedup);
            w.end_object();
        }
        w.end_array();
        w.end_object();
    }
}

impl PerfReport {
    /// Serializes the report (schema `hkrr-perf/5`).
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.field_str("schema", "hkrr-perf/5");
        w.field_f64("scale", self.scale);
        w.field_usize("host_threads", self.host_threads);
        w.key("dense_substrate");
        self.dense_substrate.write_json(&mut w);
        w.key("cases");
        w.begin_array();
        for case in &self.cases {
            case.write_json(&mut w);
        }
        w.end_array();
        w.key("speedups");
        w.begin_array();
        for speedup in &self.speedups {
            speedup.write_json(&mut w);
        }
        w.end_array();
        w.end_object();
        w.finish()
    }

    /// Markdown table of the speedups and accuracy, for `$GITHUB_STEP_SUMMARY`.
    pub fn to_markdown_summary(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "## Pipeline perf snapshot (scale {}, {} host threads)\n",
            self.scale, self.host_threads
        );
        let _ = writeln!(
            out,
            "### Dense substrate (active backend: `{}`)\n",
            self.dense_substrate.active_backend
        );
        let _ = writeln!(
            out,
            "| backend | gemm n | GFLOP/s | speedup vs scalar | pairwise dist (s) | dist speedup |"
        );
        let _ = writeln!(out, "|---|---|---|---|---|---|");
        for row in &self.dense_substrate.rows {
            for (i, g) in row.gemm.iter().enumerate() {
                let (dist_s, dist_x) = if i == 0 {
                    (
                        format!("{:.4}", row.pairwise_dist_seconds),
                        format!("{:.2}", row.pairwise_dist_speedup),
                    )
                } else {
                    ("".to_string(), "".to_string())
                };
                let _ = writeln!(
                    out,
                    "| {} | {} | {:.2} | {:.2} | {} | {} |",
                    row.backend, g.n, g.gflops, g.speedup_vs_scalar, dist_s, dist_x
                );
            }
        }
        let _ = writeln!(out);
        let _ = writeln!(
            out,
            "| workload | solver | threads | construct× | factor× | constr+factor× | total× | Δaccuracy |"
        );
        let _ = writeln!(out, "|---|---|---|---|---|---|---|---|");
        for s in &self.speedups {
            let _ = writeln!(
                out,
                "| {} | {} | {} | {:.2} | {:.2} | {:.2} | {:.2} | {:+.4} |",
                s.workload,
                s.solver,
                s.threads,
                s.construction,
                s.factorization,
                s.construct_plus_factor,
                s.total,
                s.accuracy_delta
            );
        }
        if self.speedups.is_empty() {
            let _ = writeln!(
                out,
                "\n_Single-threaded host: no parallel speedup rows recorded._"
            );
        }
        let _ = writeln!(
            out,
            "\n| workload | solver | threads | shards | total (s) | accuracy | Δacc vs hss | compression× | factors (MB) | max rank | pcg iters | router (s) |"
        );
        let _ = writeln!(out, "|---|---|---|---|---|---|---|---|---|---|---|---|");
        for c in &self.cases {
            let pcg_iters = if c.solver.starts_with(SolverKind::HssPcg.label()) {
                c.pcg_iterations.to_string()
            } else {
                "—".to_string()
            };
            let factor_mb = if c.factor_bytes > 0 {
                format!("{:.2}", c.factor_bytes as f64 / (1024.0 * 1024.0))
            } else {
                "—".to_string()
            };
            let (shards, delta, router) = if c.shards > 0 {
                (
                    c.shards.to_string(),
                    format!("{:+.4}", c.accuracy_vs_hss),
                    format!("{:.4}", c.router_overhead_seconds),
                )
            } else {
                ("—".to_string(), "—".to_string(), "—".to_string())
            };
            let _ = writeln!(
                out,
                "| {} | {} | {} | {} | {:.3} | {:.4} | {} | {:.1} | {} | {} | {} | {} |",
                c.workload,
                c.solver,
                c.threads,
                shards,
                c.total_seconds,
                c.accuracy,
                delta,
                c.compression_ratio,
                factor_mb,
                c.max_rank,
                pcg_iters,
                router
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    #[test]
    fn tiny_snapshot_emits_well_formed_json() {
        // A deliberately tiny matrix so the test stays fast: one workload,
        // thread counts {1, 2} to force a speedup row even on 1-core hosts.
        let opts = PerfOptions {
            workloads: vec![PerfWorkload {
                name: "small",
                spec: hkrr_datasets::registry::LETTER,
                n_train: 160,
                n_test: 40,
                seed: 9,
            }],
            thread_counts: vec![1, 2],
        };
        let report = run(&opts);
        assert_eq!(
            report.cases.len(),
            1 + 4 * 2 + 2,
            "dense + 4 hierarchical solver cells × 2 threads + 2 ensembles"
        );
        assert_eq!(report.speedups.len(), 4);
        for s in &report.speedups {
            // Bitwise-deterministic parallel schedule: identical accuracy.
            assert_eq!(s.accuracy_delta, 0.0, "{}/{}", s.workload, s.solver);
        }
        // The hss-pcg / hss-pcg-f32 rows carry their iteration metrics;
        // direct rows are zero.
        for c in &report.cases {
            if c.solver.starts_with(SolverKind::HssPcg.label()) {
                assert!(c.pcg_iterations > 0, "{c:?}");
                assert!(c.pcg_seconds > 0.0, "{c:?}");
            } else {
                assert_eq!(c.pcg_iterations, 0, "{c:?}");
                assert_eq!(c.pcg_seconds, 0.0, "{c:?}");
            }
        }
        // Every ULV-producing row records its factor store; the f32 rows
        // come in under half their f64 siblings at the same thread count.
        for t in [1usize, 2] {
            let f64_row = report
                .cases
                .iter()
                .find(|c| c.solver == "hss-pcg" && c.threads == t)
                .unwrap();
            let f32_row = report
                .cases
                .iter()
                .find(|c| c.solver == "hss-pcg-f32" && c.threads == t)
                .unwrap();
            assert!(f64_row.factor_bytes > 0 && f32_row.factor_bytes > 0);
            assert!(
                f32_row.factor_bytes * 2 <= f64_row.factor_bytes,
                "f32 {} vs f64 {}",
                f32_row.factor_bytes,
                f64_row.factor_bytes
            );
            // Same compressed matrix, same accuracy contract: the outer
            // f64 iteration absorbs the factor demotion.
            assert!((f32_row.accuracy - f64_row.accuracy).abs() <= 0.05);
        }
        let dense_row = report.cases.iter().find(|c| c.solver == "dense").unwrap();
        assert_eq!(dense_row.factor_bytes, 0, "dense retains no ULV factors");
        // The ensemble rows record per-shard factorization times, the
        // router overhead, and the accuracy delta against the hss anchor.
        let hss_top = report
            .cases
            .iter()
            .find(|c| c.solver == "hss" && c.threads == 2)
            .unwrap()
            .clone();
        for k in [2usize, 4] {
            let row = report
                .cases
                .iter()
                .find(|c| c.solver == format!("ensemble-k{k}"))
                .unwrap_or_else(|| panic!("missing ensemble-k{k} row"));
            assert_eq!(row.shards, k);
            assert_eq!(row.shard_factorization_seconds.len(), k);
            let sum: f64 = row.shard_factorization_seconds.iter().sum();
            assert!((sum - row.factorization_seconds).abs() < 1e-12);
            assert!(row.router_overhead_seconds >= 0.0);
            assert!(
                (row.accuracy_vs_hss - (row.accuracy - hss_top.accuracy)).abs() < 1e-12,
                "{row:?}"
            );
        }
        // The dense-substrate section covers every available backend,
        // scalar first, with scalar pinned to speedup 1.0.
        let ds = &report.dense_substrate;
        assert!(!ds.rows.is_empty());
        assert_eq!(ds.rows[0].backend, "scalar");
        assert_eq!(ds.rows[0].pairwise_dist_speedup, 1.0);
        for row in &ds.rows {
            assert_eq!(row.gemm.len(), 2, "{row:?}");
            for g in &row.gemm {
                assert!(g.seconds > 0.0 && g.gflops > 0.0, "{row:?}");
                if row.backend == "scalar" {
                    assert_eq!(g.speedup_vs_scalar, 1.0, "{row:?}");
                }
            }
        }
        assert!(
            hkrr_linalg::backend::available_backends().len() == 1 || ds.best_gemm_speedup() > 0.0
        );

        let json = report.to_json();
        json::validate(&json).unwrap();
        for key in [
            "\"schema\":\"hkrr-perf/5\"",
            "\"hss-pcg-f32\"",
            "factor_bytes",
            "dense_substrate",
            "active_backend",
            "speedup_vs_scalar",
            "pairwise_dist_seconds",
            "\"gflops\"",
            "construction_seconds",
            "factorization_seconds",
            "pcg_seconds",
            "pcg_iterations",
            "compression_ratio",
            "construct_plus_factor",
            "accuracy_delta",
            "\"hss-pcg\"",
            "\"ensemble-k2\"",
            "\"ensemble-k4\"",
            "shard_factorization_seconds",
            "router_overhead_seconds",
            "accuracy_vs_hss",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        let md = report.to_markdown_summary();
        assert!(md.contains("Dense substrate"));
        assert!(md.contains("speedup vs scalar"));
        assert!(md.contains("| workload | solver |"));
        assert!(md.contains("pcg iters"));
        assert!(md.contains("factors (MB)"));
        assert!(md.contains("hss-pcg-f32"));
        assert!(md.contains("ensemble-k4"));
        assert!(md.contains("Δacc vs hss"));
    }

    #[test]
    fn standard_options_cover_the_workload_matrix() {
        let opts = PerfOptions::standard();
        assert_eq!(opts.workloads.len(), 2);
        assert_eq!(opts.workloads[0].name, "small");
        assert_eq!(opts.workloads[1].name, "medium");
        assert!(!opts.thread_counts.is_empty());
        assert_eq!(opts.thread_counts[0], 1);
        let mut sorted = opts.thread_counts.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted, opts.thread_counts, "ascending and deduplicated");
    }
}
