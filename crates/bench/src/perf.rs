//! JSON perf-tracking harness: the machine-readable pipeline trajectory.
//!
//! [`run`] executes a fixed workload matrix — solver (dense Cholesky vs HSS
//! vs HSS with H-matrix-accelerated sampling vs HSS-preconditioned CG)
//! crossed with thread counts (1 / 2 / all) over a small and a medium
//! problem — and records wall times per phase (construction,
//! factorization, solve, PCG), achieved parallel speedups, compression
//! ratios, PCG iteration counts, and test accuracy.
//! [`PerfReport::to_json`] serializes the result as `BENCH_pipeline.json`
//! (schema `hkrr-perf/2`) so CI can archive one snapshot per commit and
//! future PRs are judged against recorded numbers instead of anecdotes.
//!
//! The dense baseline runs once per workload (at the full thread count):
//! its wall time anchors the dense-vs-hierarchical comparison, while the
//! speedup rows compare each HSS solver against its own single-thread run.
//!
//! JSON is emitted by the workspace's shared hand-rolled writer (the build
//! is offline, without serde) and checked by the shared syntax validator
//! before anything is written to disk; both live in [`crate::json`] and are
//! shared with the serving snapshot (`BENCH_serve.json`).

use crate::json::JsonWriter;
use crate::{dataset, test_accuracy, train_timed, with_threads};
use hkrr_clustering::ClusteringMethod;
use hkrr_core::{KrrConfig, SolverKind};
use hkrr_datasets::registry::{LETTER, SUSY};
use hkrr_datasets::DatasetSpec;
use std::fmt::Write as _;

/// One problem instance of the workload matrix.
#[derive(Debug, Clone)]
pub struct PerfWorkload {
    /// Stable name used in the JSON (`"small"` / `"medium"`).
    pub name: &'static str,
    /// Synthetic stand-in generated for this workload.
    pub spec: DatasetSpec,
    /// Number of training points (already scaled by `HKRR_BENCH_SCALE`).
    pub n_train: usize,
    /// Number of test points.
    pub n_test: usize,
    /// RNG seed for the dataset.
    pub seed: u64,
}

/// Options describing the full snapshot run.
#[derive(Debug, Clone)]
pub struct PerfOptions {
    /// Problems to measure.
    pub workloads: Vec<PerfWorkload>,
    /// Thread counts for the hierarchical solvers (ascending, deduplicated).
    pub thread_counts: Vec<usize>,
}

impl PerfOptions {
    /// The standard small/medium matrix with 1 / 2 / all-threads sweeps,
    /// scaled by `HKRR_BENCH_SCALE`.
    pub fn standard() -> Self {
        let max_threads = std::thread::available_parallelism().map_or(1, |n| n.get());
        let mut thread_counts = vec![1, 2, max_threads];
        thread_counts.sort_unstable();
        thread_counts.dedup();
        thread_counts.retain(|&t| t <= max_threads);
        PerfOptions {
            workloads: vec![
                PerfWorkload {
                    name: "small",
                    spec: LETTER,
                    n_train: crate::scaled(600),
                    n_test: crate::scaled(150).min(200),
                    seed: 42,
                },
                PerfWorkload {
                    name: "medium",
                    spec: SUSY,
                    n_train: crate::scaled(2000),
                    n_test: crate::scaled(300).min(400),
                    seed: 43,
                },
            ],
            thread_counts,
        }
    }
}

/// One measured (workload, solver, threads) cell.
#[derive(Debug, Clone)]
pub struct PerfCase {
    /// Workload name (`"small"` / `"medium"`).
    pub workload: String,
    /// Solver label (`"dense"`, `"hss"`, `"hss+h"`).
    pub solver: &'static str,
    /// Thread count the run was pinned to.
    pub threads: usize,
    /// Training-set size.
    pub n_train: usize,
    /// Test-set size.
    pub n_test: usize,
    /// Seconds in matrix construction (H sampler + HSS compression, or
    /// dense assembly).
    pub construction_seconds: f64,
    /// Seconds in the ULV factorization (or dense Cholesky).
    pub factorization_seconds: f64,
    /// Seconds in the weight solve.
    pub solve_seconds: f64,
    /// Seconds in the PCG iteration (`hss-pcg` rows only; 0 elsewhere).
    pub pcg_seconds: f64,
    /// PCG iterations performed (`hss-pcg` rows only; 0 elsewhere).
    pub pcg_iterations: usize,
    /// Total wall-clock training seconds.
    pub total_seconds: f64,
    /// Test-set accuracy of the trained model.
    pub accuracy: f64,
    /// Memory of the (compressed or dense) training matrix, in bytes.
    pub matrix_memory_bytes: usize,
    /// Dense bytes divided by compressed bytes (1.0 for the dense solver).
    pub compression_ratio: f64,
    /// Maximum HSS rank (0 for dense).
    pub max_rank: usize,
}

/// Parallel speedup of one (workload, solver) pair: all-threads vs 1.
#[derive(Debug, Clone)]
pub struct PerfSpeedup {
    /// Workload name.
    pub workload: String,
    /// Solver label.
    pub solver: &'static str,
    /// The "all" thread count the speedup compares against 1 thread.
    pub threads: usize,
    /// Construction speedup (t₁ / t_all).
    pub construction: f64,
    /// Factorization speedup.
    pub factorization: f64,
    /// Combined construction + factorization speedup (the tentpole metric).
    pub construct_plus_factor: f64,
    /// Total wall-clock speedup.
    pub total: f64,
    /// `accuracy(all threads) − accuracy(1 thread)`; the parallel schedules
    /// are bitwise deterministic, so this must be exactly zero.
    pub accuracy_delta: f64,
}

/// The full snapshot: every measured cell plus derived speedups.
#[derive(Debug, Clone)]
pub struct PerfReport {
    /// `HKRR_BENCH_SCALE` in effect for the run.
    pub scale: f64,
    /// Hardware concurrency of the host.
    pub host_threads: usize,
    /// Every measured cell.
    pub cases: Vec<PerfCase>,
    /// All-threads-vs-1 speedups per (workload, hierarchical solver).
    pub speedups: Vec<PerfSpeedup>,
}

fn config_for(spec: &DatasetSpec, solver: SolverKind) -> KrrConfig {
    KrrConfig {
        h: spec.default_h,
        lambda: spec.default_lambda,
        clustering: ClusteringMethod::TwoMeans { seed: 7 },
        solver,
        ..KrrConfig::default()
    }
}

fn measure(
    workload: &PerfWorkload,
    ds: &hkrr_datasets::Dataset,
    solver: SolverKind,
    threads: usize,
) -> PerfCase {
    let cfg = config_for(&workload.spec, solver);
    let (model, timings) = with_threads(threads, || train_timed(ds, &cfg));
    let accuracy = test_accuracy(&model, ds);
    let report = model.report();
    let dense_bytes = workload.n_train * workload.n_train * std::mem::size_of::<f64>();
    let compression_ratio = if report.matrix_memory_bytes > 0 {
        dense_bytes as f64 / report.matrix_memory_bytes as f64
    } else {
        1.0
    };
    PerfCase {
        workload: workload.name.to_string(),
        solver: solver.label(),
        threads,
        n_train: workload.n_train,
        n_test: workload.n_test,
        construction_seconds: timings.construction_seconds,
        factorization_seconds: timings.factorization_seconds,
        solve_seconds: timings.solve_seconds,
        pcg_seconds: timings.pcg_seconds,
        pcg_iterations: report.pcg_iterations,
        total_seconds: timings.total_seconds,
        accuracy,
        matrix_memory_bytes: report.matrix_memory_bytes,
        compression_ratio,
        max_rank: report.max_rank,
    }
}

fn ratio(baseline: f64, current: f64) -> f64 {
    if current > 0.0 {
        baseline / current
    } else {
        1.0
    }
}

/// Runs the workload matrix and assembles the report.
pub fn run(opts: &PerfOptions) -> PerfReport {
    let host_threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let max_threads = opts.thread_counts.iter().copied().max().unwrap_or(1);
    let mut cases = Vec::new();
    let mut speedups = Vec::new();

    for workload in &opts.workloads {
        // One dataset per workload, shared by every (solver, threads) cell.
        let ds = dataset(
            &workload.spec,
            workload.n_train,
            workload.n_test,
            workload.seed,
        );

        // Dense baseline: one run at full parallelism.
        cases.push(measure(
            workload,
            &ds,
            SolverKind::DenseCholesky,
            max_threads,
        ));

        for solver in [
            SolverKind::Hss,
            SolverKind::HssWithHSampling,
            SolverKind::HssPcg,
        ] {
            let runs: Vec<PerfCase> = opts
                .thread_counts
                .iter()
                .map(|&t| measure(workload, &ds, solver, t))
                .collect();
            let base = runs.first().expect("at least one thread count").clone();
            let top = runs.last().expect("at least one thread count").clone();
            if top.threads > base.threads {
                speedups.push(PerfSpeedup {
                    workload: workload.name.to_string(),
                    solver: solver.label(),
                    threads: top.threads,
                    construction: ratio(base.construction_seconds, top.construction_seconds),
                    factorization: ratio(base.factorization_seconds, top.factorization_seconds),
                    construct_plus_factor: ratio(
                        base.construction_seconds + base.factorization_seconds,
                        top.construction_seconds + top.factorization_seconds,
                    ),
                    total: ratio(base.total_seconds, top.total_seconds),
                    accuracy_delta: top.accuracy - base.accuracy,
                });
            }
            cases.extend(runs);
        }
    }

    PerfReport {
        scale: crate::bench_scale(),
        host_threads,
        cases,
        speedups,
    }
}

impl PerfCase {
    fn write_json(&self, w: &mut JsonWriter) {
        w.begin_object();
        w.field_str("workload", &self.workload);
        w.field_str("solver", self.solver);
        w.field_usize("threads", self.threads);
        w.field_usize("n_train", self.n_train);
        w.field_usize("n_test", self.n_test);
        w.field_f64("construction_seconds", self.construction_seconds);
        w.field_f64("factorization_seconds", self.factorization_seconds);
        w.field_f64("solve_seconds", self.solve_seconds);
        w.field_f64("pcg_seconds", self.pcg_seconds);
        w.field_usize("pcg_iterations", self.pcg_iterations);
        w.field_f64("total_seconds", self.total_seconds);
        w.field_f64("accuracy", self.accuracy);
        w.field_usize("matrix_memory_bytes", self.matrix_memory_bytes);
        w.field_f64("compression_ratio", self.compression_ratio);
        w.field_usize("max_rank", self.max_rank);
        w.end_object();
    }
}

impl PerfSpeedup {
    fn write_json(&self, w: &mut JsonWriter) {
        w.begin_object();
        w.field_str("workload", &self.workload);
        w.field_str("solver", self.solver);
        w.field_usize("threads", self.threads);
        w.field_f64("construction", self.construction);
        w.field_f64("factorization", self.factorization);
        w.field_f64("construct_plus_factor", self.construct_plus_factor);
        w.field_f64("total", self.total);
        w.field_f64("accuracy_delta", self.accuracy_delta);
        w.end_object();
    }
}

impl PerfReport {
    /// Serializes the report (schema `hkrr-perf/2`).
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.field_str("schema", "hkrr-perf/2");
        w.field_f64("scale", self.scale);
        w.field_usize("host_threads", self.host_threads);
        w.key("cases");
        w.begin_array();
        for case in &self.cases {
            case.write_json(&mut w);
        }
        w.end_array();
        w.key("speedups");
        w.begin_array();
        for speedup in &self.speedups {
            speedup.write_json(&mut w);
        }
        w.end_array();
        w.end_object();
        w.finish()
    }

    /// Markdown table of the speedups and accuracy, for `$GITHUB_STEP_SUMMARY`.
    pub fn to_markdown_summary(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "## Pipeline perf snapshot (scale {}, {} host threads)\n",
            self.scale, self.host_threads
        );
        let _ = writeln!(
            out,
            "| workload | solver | threads | construct× | factor× | constr+factor× | total× | Δaccuracy |"
        );
        let _ = writeln!(out, "|---|---|---|---|---|---|---|---|");
        for s in &self.speedups {
            let _ = writeln!(
                out,
                "| {} | {} | {} | {:.2} | {:.2} | {:.2} | {:.2} | {:+.4} |",
                s.workload,
                s.solver,
                s.threads,
                s.construction,
                s.factorization,
                s.construct_plus_factor,
                s.total,
                s.accuracy_delta
            );
        }
        if self.speedups.is_empty() {
            let _ = writeln!(
                out,
                "\n_Single-threaded host: no parallel speedup rows recorded._"
            );
        }
        let _ = writeln!(
            out,
            "\n| workload | solver | threads | total (s) | accuracy | compression× | max rank | pcg iters |"
        );
        let _ = writeln!(out, "|---|---|---|---|---|---|---|---|");
        for c in &self.cases {
            let pcg_iters = if c.solver == SolverKind::HssPcg.label() {
                c.pcg_iterations.to_string()
            } else {
                "—".to_string()
            };
            let _ = writeln!(
                out,
                "| {} | {} | {} | {:.3} | {:.4} | {:.1} | {} | {} |",
                c.workload,
                c.solver,
                c.threads,
                c.total_seconds,
                c.accuracy,
                c.compression_ratio,
                c.max_rank,
                pcg_iters
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    #[test]
    fn tiny_snapshot_emits_well_formed_json() {
        // A deliberately tiny matrix so the test stays fast: one workload,
        // thread counts {1, 2} to force a speedup row even on 1-core hosts.
        let opts = PerfOptions {
            workloads: vec![PerfWorkload {
                name: "small",
                spec: hkrr_datasets::registry::LETTER,
                n_train: 160,
                n_test: 40,
                seed: 9,
            }],
            thread_counts: vec![1, 2],
        };
        let report = run(&opts);
        assert_eq!(
            report.cases.len(),
            1 + 3 * 2,
            "dense + 3 hierarchical solvers × 2 threads"
        );
        assert_eq!(report.speedups.len(), 3);
        for s in &report.speedups {
            // Bitwise-deterministic parallel schedule: identical accuracy.
            assert_eq!(s.accuracy_delta, 0.0, "{}/{}", s.workload, s.solver);
        }
        // The hss-pcg rows carry their iteration metrics; direct rows are
        // zero.
        for c in &report.cases {
            if c.solver == SolverKind::HssPcg.label() {
                assert!(c.pcg_iterations > 0, "{c:?}");
                assert!(c.pcg_seconds > 0.0, "{c:?}");
            } else {
                assert_eq!(c.pcg_iterations, 0, "{c:?}");
                assert_eq!(c.pcg_seconds, 0.0, "{c:?}");
            }
        }
        let json = report.to_json();
        json::validate(&json).unwrap();
        for key in [
            "\"schema\":\"hkrr-perf/2\"",
            "construction_seconds",
            "factorization_seconds",
            "pcg_seconds",
            "pcg_iterations",
            "compression_ratio",
            "construct_plus_factor",
            "accuracy_delta",
            "\"hss-pcg\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        let md = report.to_markdown_summary();
        assert!(md.contains("| workload | solver |"));
        assert!(md.contains("pcg iters"));
    }

    #[test]
    fn standard_options_cover_the_workload_matrix() {
        let opts = PerfOptions::standard();
        assert_eq!(opts.workloads.len(), 2);
        assert_eq!(opts.workloads[0].name, "small");
        assert_eq!(opts.workloads[1].name, "medium");
        assert!(!opts.thread_counts.is_empty());
        assert_eq!(opts.thread_counts[0], 1);
        let mut sorted = opts.thread_counts.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted, opts.thread_counts, "ascending and deduplicated");
    }
}
