//! # hkrr-bench
//!
//! Shared helpers for the benchmark harness that regenerates every table
//! and figure of the paper's evaluation section.  Each table/figure has a
//! dedicated binary under `src/bin/` (see DESIGN.md §4 for the index); the
//! Criterion micro-benchmarks live under `benches/`.
//!
//! Problem sizes default to laptop-scale values so every binary finishes in
//! seconds; set the environment variable `HKRR_BENCH_SCALE` (a positive
//! float) to scale the training-set sizes up or down.

pub mod json;
pub mod perf;
pub mod prom;

use hkrr_clustering::ClusteringMethod;
use hkrr_core::{accuracy, KrrConfig, KrrModel, SolverKind};
use hkrr_datasets::{generate, Dataset, DatasetSpec};
use std::time::Instant;

/// Reads the global size multiplier from `HKRR_BENCH_SCALE` (default 1.0).
pub fn bench_scale() -> f64 {
    std::env::var("HKRR_BENCH_SCALE")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .filter(|v| *v > 0.0)
        .unwrap_or(1.0)
}

/// Applies the global scale to a nominal problem size (minimum 64 points).
pub fn scaled(n: usize) -> usize {
    ((n as f64 * bench_scale()).round() as usize).max(64)
}

/// Generates the synthetic stand-in for a paper dataset at the given sizes.
pub fn dataset(spec: &DatasetSpec, n_train: usize, n_test: usize, seed: u64) -> Dataset {
    generate(spec, n_train, n_test, seed)
}

/// The default configuration used by the table/figure binaries for a given
/// dataset spec and clustering method.
pub fn config_for(
    spec: &DatasetSpec,
    clustering: ClusteringMethod,
    solver: SolverKind,
) -> KrrConfig {
    KrrConfig {
        h: spec.default_h,
        lambda: spec.default_lambda,
        clustering,
        solver,
        ..KrrConfig::default()
    }
}

/// Wall-clock timing breakdown of one training run, split into the phases
/// the JSON perf harness tracks separately.
#[derive(Debug, Clone, Copy, Default)]
pub struct TrainTimings {
    /// Total wall-clock fit time (all phases, including clustering).
    pub total_seconds: f64,
    /// Matrix construction: H-matrix sampler (when used) plus HSS
    /// compression — or dense assembly for the Cholesky baseline.
    pub construction_seconds: f64,
    /// ULV factorization (or dense Cholesky).
    pub factorization_seconds: f64,
    /// Solve for the weight vector (the direct solvers' triangular solve).
    pub solve_seconds: f64,
    /// The PCG iteration (`hss-pcg` solver only; 0 elsewhere).
    pub pcg_seconds: f64,
}

/// Trains a model, returning it together with the measured training time
/// broken down by phase (construction and factorization are reported
/// separately — the perf harness tracks their speedups independently).
pub fn train_timed(ds: &Dataset, config: &KrrConfig) -> (KrrModel, TrainTimings) {
    let t = Instant::now();
    let model = KrrModel::fit(&ds.train, &ds.train_labels, config).expect("training failed");
    let total_seconds = t.elapsed().as_secs_f64();
    let report = model.report();
    let timings = TrainTimings {
        total_seconds,
        construction_seconds: report.assembly_seconds
            + report.h_construction_seconds
            + report.hss_construction_seconds(),
        factorization_seconds: report.factorization_seconds,
        solve_seconds: report.solve_seconds,
        pcg_seconds: report.pcg_seconds,
    };
    (model, timings)
}

/// Test-set accuracy of a trained model on a dataset.
pub fn test_accuracy(model: &KrrModel, ds: &Dataset) -> f64 {
    accuracy(&model.predict(&ds.test), &ds.test_labels)
}

/// Prints a simple aligned table to stdout.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let ncols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (j, cell) in row.iter().enumerate().take(ncols) {
            widths[j] = widths[j].max(cell.len());
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(j, c)| format!("{:>width$}", c, width = widths[j]))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let header_cells: Vec<String> = header.iter().map(|s| s.to_string()).collect();
    println!("{}", fmt_row(&header_cells));
    println!(
        "{}",
        "-".repeat(widths.iter().sum::<usize>() + 2 * (ncols.saturating_sub(1)))
    );
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// Prints a named data series (for the "figure" binaries) as CSV-like rows.
pub fn print_series(title: &str, x_label: &str, columns: &[(&str, &[f64])], xs: &[f64]) {
    println!("\n== {title} ==");
    let names: Vec<&str> = columns.iter().map(|(n, _)| *n).collect();
    println!("{x_label},{}", names.join(","));
    for (i, x) in xs.iter().enumerate() {
        let vals: Vec<String> = columns
            .iter()
            .map(|(_, ys)| format!("{:.6e}", ys.get(i).copied().unwrap_or(f64::NAN)))
            .collect();
        println!("{x:.6},{}", vals.join(","));
    }
}

/// Runs a closure inside a rayon pool with the given number of threads —
/// the stand-in for "cores" in the paper's scaling experiments.
pub fn with_threads<T: Send>(threads: usize, f: impl FnOnce() -> T + Send) -> T {
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(threads.max(1))
        .build()
        .expect("failed to build rayon pool");
    pool.install(f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hkrr_datasets::registry::LETTER;

    #[test]
    fn scale_defaults_to_one() {
        assert!(scaled(100) >= 64);
        assert_eq!(scaled(1000).max(64), scaled(1000));
    }

    #[test]
    fn train_and_score_helper() {
        let ds = dataset(&LETTER, 200, 50, 1);
        let cfg = config_for(
            &LETTER,
            ClusteringMethod::Natural,
            SolverKind::DenseCholesky,
        );
        let (model, timings) = train_timed(&ds, &cfg);
        assert!(timings.total_seconds > 0.0);
        assert!(timings.factorization_seconds >= 0.0);
        assert!(timings.construction_seconds >= 0.0);
        // The phases are timed separately and must fit inside the total.
        assert!(
            timings.construction_seconds + timings.factorization_seconds + timings.solve_seconds
                <= timings.total_seconds
        );
        assert!(test_accuracy(&model, &ds) > 0.8);
    }

    #[test]
    fn thread_pool_helper_runs_closure() {
        let result = with_threads(2, || (0..100).sum::<usize>());
        assert_eq!(result, 4950);
    }
}
