//! Minimal hand-rolled JSON support shared by every snapshot writer in the
//! workspace (`BENCH_pipeline.json` from the perf harness,
//! `BENCH_serve.json` from the serving load generator).
//!
//! The build container has no registry access, hence no serde; this module
//! provides the one encoder ([`JsonWriter`]) and the one syntax validator
//! ([`validate`]) so the two snapshot formats cannot drift apart in their
//! escaping or number formatting.

use std::fmt::Write as _;

/// An append-only JSON encoder producing compact (whitespace-free) output.
///
/// Comma placement is tracked internally: callers just alternate
/// `key`/value calls inside objects and value calls inside arrays. Non-
/// finite floats are clamped to `0.0` (JSON has no NaN/Infinity) and floats
/// are written with six decimal places, matching the historical
/// `BENCH_pipeline.json` format.
#[derive(Debug, Default)]
pub struct JsonWriter {
    buf: String,
    /// One frame per open container: `(is_array, has_items)`.
    stack: Vec<(bool, bool)>,
    /// A key was just written; the next value completes the pair.
    pending_key: bool,
}

impl JsonWriter {
    /// An empty writer.
    pub fn new() -> Self {
        JsonWriter::default()
    }

    /// Finishes encoding and returns the buffer.
    ///
    /// # Panics
    /// Panics if containers are still open (an encoder bug, not a data
    /// error).
    pub fn finish(self) -> String {
        assert!(
            self.stack.is_empty() && !self.pending_key,
            "JsonWriter::finish with unclosed containers"
        );
        self.buf
    }

    fn pre_value(&mut self) {
        if self.pending_key {
            self.pending_key = false;
            return;
        }
        if let Some((is_array, has_items)) = self.stack.last_mut() {
            debug_assert!(*is_array, "object members need a key first");
            if *has_items {
                self.buf.push(',');
            }
            *has_items = true;
        }
    }

    fn push_escaped(&mut self, s: &str) {
        self.buf.push('"');
        for c in s.chars() {
            match c {
                '"' => self.buf.push_str("\\\""),
                '\\' => self.buf.push_str("\\\\"),
                '\n' => self.buf.push_str("\\n"),
                '\r' => self.buf.push_str("\\r"),
                '\t' => self.buf.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    let _ = write!(self.buf, "\\u{:04x}", c as u32);
                }
                c => self.buf.push(c),
            }
        }
        self.buf.push('"');
    }

    /// Writes an object member key (inside an open object).
    pub fn key(&mut self, k: &str) {
        if let Some((is_array, has_items)) = self.stack.last_mut() {
            debug_assert!(!*is_array, "keys are only valid inside objects");
            if *has_items {
                self.buf.push(',');
            }
            *has_items = true;
        }
        self.push_escaped(k);
        self.buf.push(':');
        self.pending_key = true;
    }

    /// Opens an object (as a root value, array element, or member value).
    pub fn begin_object(&mut self) {
        self.pre_value();
        self.buf.push('{');
        self.stack.push((false, false));
    }

    /// Closes the innermost object.
    pub fn end_object(&mut self) {
        let frame = self.stack.pop();
        debug_assert_eq!(frame.map(|(a, _)| a), Some(false), "not inside an object");
        self.buf.push('}');
    }

    /// Opens an array.
    pub fn begin_array(&mut self) {
        self.pre_value();
        self.buf.push('[');
        self.stack.push((true, false));
    }

    /// Closes the innermost array.
    pub fn end_array(&mut self) {
        let frame = self.stack.pop();
        debug_assert_eq!(frame.map(|(a, _)| a), Some(true), "not inside an array");
        self.buf.push(']');
    }

    /// Writes a string value.
    pub fn value_str(&mut self, s: &str) {
        self.pre_value();
        self.push_escaped(s);
    }

    /// Writes a float value (`{:.6}`, non-finite clamped to `0.0`).
    pub fn value_f64(&mut self, v: f64) {
        self.pre_value();
        if v.is_finite() {
            let _ = write!(self.buf, "{v:.6}");
        } else {
            self.buf.push_str("0.0");
        }
    }

    /// Writes an unsigned integer value.
    pub fn value_u64(&mut self, v: u64) {
        self.pre_value();
        let _ = write!(self.buf, "{v}");
    }

    /// Writes a boolean value.
    pub fn value_bool(&mut self, v: bool) {
        self.pre_value();
        self.buf.push_str(if v { "true" } else { "false" });
    }

    /// Convenience: `key` + string value.
    pub fn field_str(&mut self, k: &str, v: &str) {
        self.key(k);
        self.value_str(v);
    }

    /// Convenience: `key` + float value.
    pub fn field_f64(&mut self, k: &str, v: f64) {
        self.key(k);
        self.value_f64(v);
    }

    /// Convenience: `key` + unsigned integer value.
    pub fn field_u64(&mut self, k: &str, v: u64) {
        self.key(k);
        self.value_u64(v);
    }

    /// Convenience: `key` + usize value.
    pub fn field_usize(&mut self, k: &str, v: usize) {
        self.field_u64(k, v as u64);
    }
}

/// Validates that `s` is exactly one well-formed JSON value — every
/// snapshot writer asserts its output through this before touching disk.
pub fn validate(s: &str) -> Result<(), String> {
    let bytes = s.as_bytes();
    let mut pos = 0usize;
    skip_ws(bytes, &mut pos);
    value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing bytes at offset {pos}"));
    }
    Ok(())
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn value(b: &[u8], pos: &mut usize) -> Result<(), String> {
    match b.get(*pos) {
        Some(b'{') => object(b, pos),
        Some(b'[') => array(b, pos),
        Some(b'"') => string(b, pos),
        Some(b't') => literal(b, pos, "true"),
        Some(b'f') => literal(b, pos, "false"),
        Some(b'n') => literal(b, pos, "null"),
        Some(c) if c.is_ascii_digit() || *c == b'-' => number(b, pos),
        other => Err(format!("unexpected {other:?} at offset {pos}")),
    }
}

fn object(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // '{'
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        string(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at offset {pos}"));
        }
        *pos += 1;
        skip_ws(b, pos);
        value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(());
            }
            other => return Err(format!("expected ',' or '}}', got {other:?} at {pos}")),
        }
    }
}

fn array(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // '['
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(());
            }
            other => return Err(format!("expected ',' or ']', got {other:?} at {pos}")),
        }
    }
}

fn string(b: &[u8], pos: &mut usize) -> Result<(), String> {
    if b.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at offset {pos}"));
    }
    *pos += 1;
    while let Some(&c) = b.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return Ok(());
            }
            b'\\' => *pos += 2,
            _ => *pos += 1,
        }
    }
    Err("unterminated string".to_string())
}

fn number(b: &[u8], pos: &mut usize) -> Result<(), String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while b
        .get(*pos)
        .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
    {
        *pos += 1;
    }
    if *pos == start {
        return Err(format!("empty number at offset {start}"));
    }
    Ok(())
}

fn literal(b: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("bad literal at offset {pos}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validator_accepts_and_rejects() {
        validate("{\"a\": [1, 2.5, -3e4], \"b\": {\"c\": null}}").unwrap();
        validate("[true, false, \"x\\\"y\"]").unwrap();
        assert!(validate("{\"a\": }").is_err());
        assert!(validate("[1, 2").is_err());
        assert!(validate("{} trailing").is_err());
        assert!(validate("{\"k\" 1}").is_err());
    }

    #[test]
    fn writer_produces_valid_compact_json() {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.field_str("schema", "test/1");
        w.field_f64("ratio", 1.23456789);
        w.field_u64("count", 42);
        w.key("flags");
        w.begin_array();
        w.value_bool(true);
        w.value_bool(false);
        w.end_array();
        w.key("nested");
        w.begin_array();
        for i in 0..2 {
            w.begin_object();
            w.field_usize("i", i);
            w.end_object();
        }
        w.end_array();
        w.end_object();
        let out = w.finish();
        validate(&out).unwrap();
        assert_eq!(
            out,
            "{\"schema\":\"test/1\",\"ratio\":1.234568,\"count\":42,\
             \"flags\":[true,false],\"nested\":[{\"i\":0},{\"i\":1}]}"
        );
    }

    #[test]
    fn writer_escapes_and_clamps() {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.field_str("quote\"back\\slash", "line\nbreak\tand\u{1}ctl");
        w.field_f64("nan", f64::NAN);
        w.field_f64("inf", f64::INFINITY);
        w.end_object();
        let out = w.finish();
        validate(&out).unwrap();
        assert!(out.contains("\\\"back\\\\slash"));
        assert!(out.contains("line\\nbreak\\tand\\u0001ctl"));
        assert!(out.contains("\"nan\":0.0"));
        assert!(out.contains("\"inf\":0.0"));
    }

    #[test]
    fn writer_handles_empty_containers_and_arrays_of_values() {
        let mut w = JsonWriter::new();
        w.begin_array();
        w.value_f64(1.0);
        w.value_str("two");
        w.begin_object();
        w.end_object();
        w.begin_array();
        w.end_array();
        w.end_array();
        let out = w.finish();
        validate(&out).unwrap();
        assert_eq!(out, "[1.000000,\"two\",{},[]]");
    }
}
