//! Agglomerative (average-linkage) clustering.
//!
//! The paper reports experimenting with agglomerative / hierarchical
//! clusterings and finding them good at reducing ranks but not competitive
//! overall because of O(n²) memory and limited parallelism.  The method is
//! included so that comparison can be reproduced on small inputs.
//!
//! The dendrogram produced by successive merges is binarized into a
//! [`ClusterTree`]: merges coarser than the leaf size become internal
//! nodes, finer structure is flattened into leaves.

use crate::tree::{ClusterNode, ClusterOrdering, ClusterTree};
use hkrr_linalg::Matrix;

/// A node of the intermediate dendrogram.
struct DendroNode {
    members: Vec<usize>,
    left: Option<usize>,
    right: Option<usize>,
}

/// Builds the agglomerative (average-linkage) ordering.
///
/// Complexity is O(n² d) memory-free distance evaluations with O(n²) merges
/// in the worst case — use only for modest `n` (the tests use a few
/// hundred points).
pub fn agglomerative_ordering(points: &Matrix, leaf_size: usize) -> ClusterOrdering {
    let n = points.nrows();
    if n == 0 {
        return ClusterOrdering::new(vec![], ClusterTree::single_node(0));
    }
    if n == 1 {
        return ClusterOrdering::new(vec![0], ClusterTree::single_node(1));
    }

    // Active clusters, each a dendrogram node id.
    let mut dendro: Vec<DendroNode> = (0..n)
        .map(|i| DendroNode {
            members: vec![i],
            left: None,
            right: None,
        })
        .collect();
    let mut active: Vec<usize> = (0..n).collect();
    // Centroids of the active clusters (average linkage approximated by
    // centroid linkage to keep merges O(active²) rather than O(n²) each).
    let d = points.ncols();
    let mut centroids: Vec<Vec<f64>> = (0..n).map(|i| points.row(i).to_vec()).collect();

    while active.len() > 1 {
        // Find the closest pair of active clusters.
        let mut best = (0usize, 1usize);
        let mut best_d = f64::INFINITY;
        for a in 0..active.len() {
            for b in (a + 1)..active.len() {
                let ca = &centroids[active[a]];
                let cb = &centroids[active[b]];
                let dist = hkrr_linalg::dense_backend().sq_distance(ca, cb);
                if dist < best_d {
                    best_d = dist;
                    best = (a, b);
                }
            }
        }
        let (ai, bi) = best;
        let a_id = active[ai];
        let b_id = active[bi];
        // Merge.
        let mut members = dendro[a_id].members.clone();
        members.extend_from_slice(&dendro[b_id].members);
        let wa = dendro[a_id].members.len() as f64;
        let wb = dendro[b_id].members.len() as f64;
        let mut c = vec![0.0; d];
        for k in 0..d {
            c[k] = (centroids[a_id][k] * wa + centroids[b_id][k] * wb) / (wa + wb);
        }
        dendro.push(DendroNode {
            members,
            left: Some(a_id),
            right: Some(b_id),
        });
        centroids.push(c);
        let new_id = dendro.len() - 1;
        // Remove the two merged clusters from the active set (remove the
        // larger index first so the smaller one stays valid).
        active.remove(bi);
        active.remove(ai);
        active.push(new_id);
    }

    // Binarize the dendrogram into a ClusterTree, flattening sub-trees whose
    // size is at most leaf_size into leaves.
    let root_dendro = active[0];
    let mut permutation: Vec<usize> = Vec::with_capacity(n);
    let mut nodes: Vec<ClusterNode> = Vec::new();
    let root = flatten(
        &dendro,
        root_dendro,
        leaf_size,
        &mut permutation,
        &mut nodes,
    );
    let tree = ClusterTree::from_parts(nodes, root);
    ClusterOrdering::new(permutation, tree)
}

fn flatten(
    dendro: &[DendroNode],
    id: usize,
    leaf_size: usize,
    permutation: &mut Vec<usize>,
    nodes: &mut Vec<ClusterNode>,
) -> usize {
    let node = &dendro[id];
    let start = permutation.len();
    let size = node.members.len();
    let is_small = size <= leaf_size;
    match (node.left, node.right) {
        (Some(l), Some(r)) if !is_small => {
            let left_id = flatten(dendro, l, leaf_size, permutation, nodes);
            let right_id = flatten(dendro, r, leaf_size, permutation, nodes);
            nodes.push(ClusterNode {
                start,
                size,
                left: Some(left_id),
                right: Some(right_id),
                parent: None,
            });
            let nid = nodes.len() - 1;
            nodes[left_id].parent = Some(nid);
            nodes[right_id].parent = Some(nid);
            nid
        }
        _ => {
            permutation.extend_from_slice(&node.members);
            nodes.push(ClusterNode {
                start,
                size,
                left: None,
                right: None,
                parent: None,
            });
            nodes.len() - 1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{permutation_is_valid, ClusteringQuality};
    use hkrr_linalg::random::Pcg64;

    #[test]
    fn two_blobs_are_separated_at_the_root() {
        let mut rng = Pcg64::seed_from_u64(1);
        let points = Matrix::from_fn(80, 2, |i, _| {
            let c = if i % 2 == 0 { -6.0 } else { 6.0 };
            c + rng.next_gaussian()
        });
        let ord = agglomerative_ordering(&points, 8);
        assert!(permutation_is_valid(ord.permutation(), 80));
        ord.tree().validate().unwrap();
        let q = ClusteringQuality::at_root_split(&points, &ord);
        assert!(q.inter_cluster_distance > 2.0 * q.intra_cluster_distance);
    }

    #[test]
    fn small_inputs() {
        let ord = agglomerative_ordering(&Matrix::zeros(0, 3), 4);
        assert_eq!(ord.len(), 0);
        let ord = agglomerative_ordering(&Matrix::zeros(1, 3), 4);
        assert_eq!(ord.permutation(), &[0]);
        let ord = agglomerative_ordering(&Matrix::zeros(3, 3), 4);
        assert_eq!(ord.len(), 3);
        ord.tree().validate().unwrap();
    }

    #[test]
    fn permutation_covers_all_points() {
        let mut rng = Pcg64::seed_from_u64(2);
        let points = Matrix::from_fn(60, 3, |_, _| rng.next_gaussian());
        let ord = agglomerative_ordering(&points, 10);
        assert!(permutation_is_valid(ord.permutation(), 60));
        // Leaves cover everything exactly once.
        let total: usize = ord
            .tree()
            .leaves()
            .iter()
            .map(|&l| ord.tree().node(l).size)
            .sum();
        assert_eq!(total, 60);
    }

    #[test]
    fn deterministic() {
        let mut rng = Pcg64::seed_from_u64(3);
        let points = Matrix::from_fn(50, 2, |_, _| rng.next_gaussian());
        let a = agglomerative_ordering(&points, 8);
        let b = agglomerative_ordering(&points, 8);
        assert_eq!(a.permutation(), b.permutation());
    }
}
