//! Generic divisive tree construction.
//!
//! All the divisive orderings (KD, PCA, 2MN) share the same recursion: split
//! the current index set into two groups, recurse, and record the resulting
//! binary tree.  Each method only has to provide the [`Splitter`] that
//! performs one binary split.

use crate::tree::{ClusterNode, ClusterOrdering, ClusterTree};
use hkrr_linalg::Matrix;

/// One binary split of a set of points.
pub trait Splitter {
    /// Splits the points whose *original* indices are listed in `idx` into
    /// two groups.  Implementations should aim for large inter-group and
    /// small intra-group distances; returning an empty group signals that
    /// the split failed and the caller should stop recursing.
    fn split(&mut self, points: &Matrix, idx: &[usize]) -> (Vec<usize>, Vec<usize>);
}

/// Builds a [`ClusterOrdering`] by recursively applying `splitter` until
/// clusters have at most `leaf_size` points.
pub fn build_ordering(
    points: &Matrix,
    leaf_size: usize,
    splitter: &mut dyn Splitter,
) -> ClusterOrdering {
    let n = points.nrows();
    let mut permutation: Vec<usize> = Vec::with_capacity(n);
    let mut nodes: Vec<ClusterNode> = Vec::new();
    let all: Vec<usize> = (0..n).collect();
    let root = build_rec(
        points,
        all,
        leaf_size,
        splitter,
        &mut permutation,
        &mut nodes,
    );
    let tree = ClusterTree::from_parts(nodes, root);
    ClusterOrdering::new(permutation, tree)
}

fn build_rec(
    points: &Matrix,
    idx: Vec<usize>,
    leaf_size: usize,
    splitter: &mut dyn Splitter,
    permutation: &mut Vec<usize>,
    nodes: &mut Vec<ClusterNode>,
) -> usize {
    let start = permutation.len();
    let size = idx.len();
    if size <= leaf_size {
        permutation.extend_from_slice(&idx);
        nodes.push(ClusterNode {
            start,
            size,
            left: None,
            right: None,
            parent: None,
        });
        return nodes.len() - 1;
    }
    let (left_idx, right_idx) = splitter.split(points, &idx);
    if left_idx.is_empty() || right_idx.is_empty() {
        // Degenerate split (e.g. all points identical): make this a leaf
        // even though it exceeds the target size — correctness over shape.
        permutation.extend_from_slice(&idx);
        nodes.push(ClusterNode {
            start,
            size,
            left: None,
            right: None,
            parent: None,
        });
        return nodes.len() - 1;
    }
    debug_assert_eq!(left_idx.len() + right_idx.len(), size);
    let left_id = build_rec(points, left_idx, leaf_size, splitter, permutation, nodes);
    let right_id = build_rec(points, right_idx, leaf_size, splitter, permutation, nodes);
    nodes.push(ClusterNode {
        start,
        size,
        left: Some(left_id),
        right: Some(right_id),
        parent: None,
    });
    let id = nodes.len() - 1;
    nodes[left_id].parent = Some(id);
    nodes[right_id].parent = Some(id);
    id
}

/// Splits an index set into two groups according to a per-point scalar
/// value and a threshold (points with `value < threshold` go left).
///
/// Falls back to a median split when one side would end up with fewer than
/// `1/100` of the points — the imbalance guard described in the paper's
/// k-d tree section.
pub fn threshold_split(idx: &[usize], values: &[f64], threshold: f64) -> (Vec<usize>, Vec<usize>) {
    let mut left = Vec::with_capacity(idx.len() / 2);
    let mut right = Vec::with_capacity(idx.len() / 2);
    for (&i, &v) in idx.iter().zip(values.iter()) {
        if v < threshold {
            left.push(i);
        } else {
            right.push(i);
        }
    }
    let too_unbalanced = 100 * left.len() < right.len() || 100 * right.len() < left.len();
    if too_unbalanced {
        return median_split(idx, values);
    }
    (left, right)
}

/// Splits an index set at the median of the per-point values, guaranteeing
/// a balanced (±1) split.
pub fn median_split(idx: &[usize], values: &[f64]) -> (Vec<usize>, Vec<usize>) {
    let mut order: Vec<usize> = (0..idx.len()).collect();
    order.sort_by(|&a, &b| values[a].partial_cmp(&values[b]).unwrap());
    let half = idx.len() / 2;
    let left = order[..half].iter().map(|&k| idx[k]).collect();
    let right = order[half..].iter().map(|&k| idx[k]).collect();
    (left, right)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::permutation_is_valid;

    /// Splitter that always halves the set (order-preserving).
    struct Halver;

    impl Splitter for Halver {
        fn split(&mut self, _points: &Matrix, idx: &[usize]) -> (Vec<usize>, Vec<usize>) {
            let half = idx.len() / 2;
            (idx[..half].to_vec(), idx[half..].to_vec())
        }
    }

    /// Splitter that always fails, to exercise the degenerate-leaf path.
    struct NeverSplit;

    impl Splitter for NeverSplit {
        fn split(&mut self, _points: &Matrix, idx: &[usize]) -> (Vec<usize>, Vec<usize>) {
            (idx.to_vec(), vec![])
        }
    }

    #[test]
    fn recursion_builds_valid_tree_and_permutation() {
        let points = Matrix::zeros(100, 2);
        let ord = build_ordering(&points, 8, &mut Halver);
        assert!(permutation_is_valid(ord.permutation(), 100));
        ord.tree().validate().unwrap();
        // Halving preserves the original order.
        assert_eq!(ord.permutation(), (0..100).collect::<Vec<_>>());
        // All leaves at most the leaf size.
        for &l in &ord.tree().leaves() {
            assert!(ord.tree().node(l).size <= 8);
        }
    }

    #[test]
    fn failed_split_becomes_oversized_leaf() {
        let points = Matrix::zeros(50, 2);
        let ord = build_ordering(&points, 8, &mut NeverSplit);
        ord.tree().validate().unwrap();
        assert_eq!(ord.tree().num_nodes(), 1);
        assert_eq!(ord.tree().node(ord.tree().root()).size, 50);
    }

    #[test]
    fn small_input_is_a_single_leaf() {
        let points = Matrix::zeros(5, 3);
        let ord = build_ordering(&points, 16, &mut Halver);
        assert_eq!(ord.tree().num_nodes(), 1);
        assert_eq!(ord.len(), 5);
    }

    #[test]
    fn threshold_split_partitions_by_value() {
        let idx = vec![10, 11, 12, 13];
        let values = vec![0.1, 0.9, 0.2, 0.8];
        let (l, r) = threshold_split(&idx, &values, 0.5);
        assert_eq!(l, vec![10, 12]);
        assert_eq!(r, vec![11, 13]);
    }

    #[test]
    fn threshold_split_falls_back_to_median_when_unbalanced() {
        // 200 points, threshold puts only 1 on the left -> median fallback.
        let idx: Vec<usize> = (0..200).collect();
        let mut values = vec![1.0; 200];
        values[0] = -1.0;
        let (l, r) = threshold_split(&idx, &values, 0.0);
        assert_eq!(l.len(), 100);
        assert_eq!(r.len(), 100);
    }

    #[test]
    fn median_split_is_balanced() {
        let idx: Vec<usize> = (0..11).collect();
        let values: Vec<f64> = (0..11).map(|i| (10 - i) as f64).collect();
        let (l, r) = median_split(&idx, &values);
        assert_eq!(l.len(), 5);
        assert_eq!(r.len(), 6);
        // The left half holds the smallest values (largest original indices).
        assert!(l.contains(&10) && l.contains(&6));
    }
}
