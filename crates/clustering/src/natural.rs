//! The "no preprocessing" (NP) baseline ordering.
//!
//! The input order is kept as-is and the HSS tree is a complete binary tree
//! obtained by recursively splitting index ranges into two equal (±1)
//! halves, exactly as the paper's baseline.

use crate::tree::{ClusterNode, ClusterOrdering, ClusterTree};

/// Builds the natural ordering of `n` points with the given leaf size.
pub fn natural_ordering(n: usize, leaf_size: usize) -> ClusterOrdering {
    let mut nodes = Vec::new();
    let root = split_range(0, n, leaf_size, &mut nodes);
    let tree = ClusterTree::from_parts(nodes, root);
    ClusterOrdering::new((0..n).collect(), tree)
}

fn split_range(start: usize, size: usize, leaf_size: usize, nodes: &mut Vec<ClusterNode>) -> usize {
    if size <= leaf_size {
        nodes.push(ClusterNode {
            start,
            size,
            left: None,
            right: None,
            parent: None,
        });
        return nodes.len() - 1;
    }
    let half = size / 2;
    let left_id = split_range(start, half, leaf_size, nodes);
    let right_id = split_range(start + half, size - half, leaf_size, nodes);
    nodes.push(ClusterNode {
        start,
        size,
        left: Some(left_id),
        right: Some(right_id),
        parent: None,
    });
    let id = nodes.len() - 1;
    nodes[left_id].parent = Some(id);
    nodes[right_id].parent = Some(id);
    id
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::TreeStats;

    #[test]
    fn permutation_is_identity() {
        let ord = natural_ordering(100, 16);
        assert_eq!(ord.permutation(), (0..100).collect::<Vec<_>>());
        ord.tree().validate().unwrap();
    }

    #[test]
    fn tree_is_balanced() {
        let ord = natural_ordering(1024, 16);
        let stats = TreeStats::from_tree(ord.tree());
        // A perfectly balanced split of 1024 into leaves of 16 gives depth 7.
        assert_eq!(stats.depth, 7);
        assert_eq!(stats.num_leaves, 64);
        assert_eq!(stats.min_leaf_size, 16);
        assert_eq!(stats.max_leaf_size, 16);
    }

    #[test]
    fn odd_sizes_split_within_one() {
        let ord = natural_ordering(101, 10);
        ord.tree().validate().unwrap();
        let stats = TreeStats::from_tree(ord.tree());
        assert!(stats.max_leaf_size <= 10);
        assert!(stats.min_leaf_size >= 5);
        let total: usize = ord
            .tree()
            .leaves()
            .iter()
            .map(|&l| ord.tree().node(l).size)
            .sum();
        assert_eq!(total, 101);
    }

    #[test]
    fn tiny_input_is_single_leaf() {
        let ord = natural_ordering(7, 16);
        assert_eq!(ord.tree().num_nodes(), 1);
        assert_eq!(ord.len(), 7);
    }

    #[test]
    fn empty_input_is_handled() {
        let ord = natural_ordering(0, 16);
        assert_eq!(ord.len(), 0);
        assert_eq!(ord.tree().num_nodes(), 1);
    }
}
