//! The binary cluster tree shared by every ordering method.
//!
//! A [`ClusterTree`] partitions the *reordered* index range `0..n` into a
//! binary hierarchy; its leaves are the diagonal blocks of the HSS
//! representation (Figure 2/3 of the paper) and its internal structure is
//! reused as the block cluster tree of the H-matrix format.

/// One node of the cluster tree, owning the contiguous index range
/// `start..start + size` of the *permuted* point set.
#[derive(Debug, Clone)]
pub struct ClusterNode {
    /// First permuted index owned by this node.
    pub start: usize,
    /// Number of permuted indices owned by this node.
    pub size: usize,
    /// Index of the left child in the tree's node array, if any.
    pub left: Option<usize>,
    /// Index of the right child in the tree's node array, if any.
    pub right: Option<usize>,
    /// Index of the parent node (`None` for the root).
    pub parent: Option<usize>,
}

impl ClusterNode {
    /// Half-open index range owned by this node.
    pub fn range(&self) -> std::ops::Range<usize> {
        self.start..self.start + self.size
    }

    /// Whether the node has no children.
    pub fn is_leaf(&self) -> bool {
        self.left.is_none() && self.right.is_none()
    }
}

/// A binary tree of nested index clusters.
#[derive(Debug, Clone)]
pub struct ClusterTree {
    nodes: Vec<ClusterNode>,
    root: usize,
}

impl ClusterTree {
    /// Builds a tree from a node array and root id (used by the builders in
    /// this crate).
    pub(crate) fn from_parts(nodes: Vec<ClusterNode>, root: usize) -> Self {
        ClusterTree { nodes, root }
    }

    /// Rebuilds a tree from an explicit node array and root id — the public
    /// counterpart of the internal constructor, used when a tree is restored
    /// from a serialized model. The structural invariants are validated so a
    /// corrupted serialization cannot produce an inconsistent hierarchy.
    pub fn from_nodes(nodes: Vec<ClusterNode>, root: usize) -> Result<Self, String> {
        // Only the root id needs a pre-check (validate() indexes it);
        // dangling child/parent references are caught by validate()'s
        // bounds-checked reachability walk.
        if root >= nodes.len() {
            return Err(format!(
                "root id {root} out of range for {} nodes",
                nodes.len()
            ));
        }
        let tree = ClusterTree { nodes, root };
        tree.validate()?;
        Ok(tree)
    }

    /// Builds the degenerate single-node tree over `0..n`.
    pub fn single_node(n: usize) -> Self {
        ClusterTree {
            nodes: vec![ClusterNode {
                start: 0,
                size: n,
                left: None,
                right: None,
                parent: None,
            }],
            root: 0,
        }
    }

    /// Id of the root node.
    pub fn root(&self) -> usize {
        self.root
    }

    /// Number of indices covered by the root (i.e. `n`).
    pub fn root_size(&self) -> usize {
        self.nodes[self.root].size
    }

    /// Total number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Access to a node by id.
    pub fn node(&self, id: usize) -> &ClusterNode {
        &self.nodes[id]
    }

    /// All nodes (in construction order).
    pub fn nodes(&self) -> &[ClusterNode] {
        &self.nodes
    }

    /// Whether node `id` is a leaf.
    pub fn is_leaf(&self, id: usize) -> bool {
        self.nodes[id].is_leaf()
    }

    /// Ids of all leaves, ordered left to right (by index range).
    pub fn leaves(&self) -> Vec<usize> {
        let mut out: Vec<usize> = (0..self.nodes.len())
            .filter(|&i| self.nodes[i].is_leaf())
            .collect();
        out.sort_by_key(|&i| self.nodes[i].start);
        out
    }

    /// Post-order traversal of the node ids (children before parents),
    /// matching the HSS tree numbering of Figure 3 in the paper.
    pub fn postorder(&self) -> Vec<usize> {
        let mut order = Vec::with_capacity(self.nodes.len());
        self.postorder_rec(self.root, &mut order);
        order
    }

    fn postorder_rec(&self, id: usize, order: &mut Vec<usize>) {
        let node = &self.nodes[id];
        if let Some(l) = node.left {
            self.postorder_rec(l, order);
        }
        if let Some(r) = node.right {
            self.postorder_rec(r, order);
        }
        order.push(id);
    }

    /// Node ids grouped by depth: `levels()[0]` holds the root, the last
    /// entry the deepest nodes. All nodes within one level own disjoint
    /// index ranges and depend only on deeper levels, so bottom-up
    /// algorithms (HSS compression, ULV factorization) process the groups
    /// in reverse order and parallelize freely *within* each group.
    pub fn levels(&self) -> Vec<Vec<usize>> {
        let mut out: Vec<Vec<usize>> = Vec::new();
        let mut current = vec![self.root];
        while !current.is_empty() {
            let mut next = Vec::new();
            for &id in &current {
                let node = &self.nodes[id];
                if let Some(l) = node.left {
                    next.push(l);
                }
                if let Some(r) = node.right {
                    next.push(r);
                }
            }
            out.push(current);
            current = next;
        }
        out
    }

    /// Depth of the tree (a single node has depth 1).
    pub fn depth(&self) -> usize {
        self.depth_rec(self.root)
    }

    fn depth_rec(&self, id: usize) -> usize {
        let node = &self.nodes[id];
        match (node.left, node.right) {
            (None, None) => 1,
            (l, r) => {
                1 + l
                    .map(|c| self.depth_rec(c))
                    .unwrap_or(0)
                    .max(r.map(|c| self.depth_rec(c)).unwrap_or(0))
            }
        }
    }

    /// Checks the structural invariants: every internal node has exactly two
    /// children whose ranges partition the parent's range, parent pointers
    /// are consistent, every node is reachable from the root, and the root
    /// covers `0..root_size()`.
    pub fn validate(&self) -> Result<(), String> {
        if self.nodes.is_empty() {
            return Err("cluster tree has no nodes".to_string());
        }
        let root = &self.nodes[self.root];
        if root.start != 0 {
            return Err("root range must start at 0".to_string());
        }
        if root.parent.is_some() {
            return Err("root must not have a parent".to_string());
        }
        // Reachability: a multi-node tree whose root is a leaf (or that
        // contains orphan nodes) is degenerate — bottom-up algorithms and
        // restored factorizations assume every node hangs off the root.
        let mut reached = 0usize;
        let mut stack = vec![self.root];
        let mut seen = vec![false; self.nodes.len()];
        while let Some(id) = stack.pop() {
            if id >= self.nodes.len() {
                return Err(format!("child reference {id} is out of range"));
            }
            if seen[id] {
                return Err(format!("node {id} is reachable twice from the root"));
            }
            seen[id] = true;
            reached += 1;
            let node = &self.nodes[id];
            stack.extend(node.left.iter().chain(node.right.iter()));
        }
        if reached != self.nodes.len() {
            return Err(format!(
                "{} of {} nodes are unreachable from the root",
                self.nodes.len() - reached,
                self.nodes.len()
            ));
        }
        for (id, node) in self.nodes.iter().enumerate() {
            match (node.left, node.right) {
                (None, None) => {
                    if node.size == 0 && self.nodes.len() > 1 {
                        return Err(format!("leaf {id} owns an empty range"));
                    }
                }
                (Some(l), Some(r)) => {
                    let ln = &self.nodes[l];
                    let rn = &self.nodes[r];
                    if ln.start != node.start {
                        return Err(format!(
                            "node {id}: left child does not start at parent start"
                        ));
                    }
                    if rn.start != ln.start + ln.size {
                        return Err(format!("node {id}: children ranges are not contiguous"));
                    }
                    if ln.size + rn.size != node.size {
                        return Err(format!("node {id}: children do not partition the range"));
                    }
                    if ln.parent != Some(id) || rn.parent != Some(id) {
                        return Err(format!("node {id}: child parent pointers are wrong"));
                    }
                }
                _ => {
                    return Err(format!("node {id} has exactly one child"));
                }
            }
        }
        Ok(())
    }
}

/// The result of a clustering method: the permutation to apply to the data
/// points plus the cluster tree over the permuted indices.
#[derive(Debug, Clone)]
pub struct ClusterOrdering {
    permutation: Vec<usize>,
    tree: ClusterTree,
}

impl ClusterOrdering {
    /// Creates an ordering from its parts.
    pub fn new(permutation: Vec<usize>, tree: ClusterTree) -> Self {
        assert_eq!(
            permutation.len(),
            tree.root_size(),
            "permutation length and tree size disagree"
        );
        ClusterOrdering { permutation, tree }
    }

    /// The permutation: position `i` of the reordered data holds original
    /// point `permutation()[i]`.
    pub fn permutation(&self) -> &[usize] {
        &self.permutation
    }

    /// The cluster tree over the permuted indices.
    pub fn tree(&self) -> &ClusterTree {
        &self.tree
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.permutation.len()
    }

    /// Whether the ordering covers zero points.
    pub fn is_empty(&self) -> bool {
        self.permutation.is_empty()
    }

    /// The inverse permutation: original index -> position in the new order.
    pub fn inverse_permutation(&self) -> Vec<usize> {
        let mut inv = vec![0usize; self.permutation.len()];
        for (new_pos, &orig) in self.permutation.iter().enumerate() {
            inv[orig] = new_pos;
        }
        inv
    }

    /// Applies the ordering to a label vector (or any per-point payload).
    pub fn apply<T: Clone>(&self, values: &[T]) -> Vec<T> {
        assert_eq!(
            values.len(),
            self.permutation.len(),
            "apply: length mismatch"
        );
        self.permutation
            .iter()
            .map(|&i| values[i].clone())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn three_level_tree() -> ClusterTree {
        // root(0..4) -> [0..2], [2..4]
        let nodes = vec![
            ClusterNode {
                start: 0,
                size: 4,
                left: Some(1),
                right: Some(2),
                parent: None,
            },
            ClusterNode {
                start: 0,
                size: 2,
                left: None,
                right: None,
                parent: Some(0),
            },
            ClusterNode {
                start: 2,
                size: 2,
                left: None,
                right: None,
                parent: Some(0),
            },
        ];
        ClusterTree::from_parts(nodes, 0)
    }

    #[test]
    fn single_node_tree_is_valid() {
        let t = ClusterTree::single_node(10);
        t.validate().unwrap();
        assert_eq!(t.root_size(), 10);
        assert_eq!(t.depth(), 1);
        assert_eq!(t.leaves(), vec![0]);
        assert_eq!(t.postorder(), vec![0]);
    }

    #[test]
    fn three_level_structure() {
        let t = three_level_tree();
        t.validate().unwrap();
        assert_eq!(t.depth(), 2);
        assert_eq!(t.num_nodes(), 3);
        assert_eq!(t.leaves(), vec![1, 2]);
        assert_eq!(t.postorder(), vec![1, 2, 0]);
        assert!(t.is_leaf(1));
        assert!(!t.is_leaf(0));
        assert_eq!(t.node(2).range(), 2..4);
    }

    #[test]
    fn levels_group_nodes_by_depth() {
        let t = three_level_tree();
        assert_eq!(t.levels(), vec![vec![0], vec![1, 2]]);
        let single = ClusterTree::single_node(5);
        assert_eq!(single.levels(), vec![vec![0]]);
    }

    #[test]
    fn levels_cover_every_node_exactly_once_and_respect_postorder() {
        let t = three_level_tree();
        let levels = t.levels();
        let mut seen: Vec<usize> = levels.iter().flatten().copied().collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..t.num_nodes()).collect::<Vec<_>>());
        // Reverse-level order is a valid bottom-up schedule: every child
        // appears in a deeper level than its parent.
        for (depth, level) in levels.iter().enumerate() {
            for &id in level {
                if let Some(p) = t.node(id).parent {
                    assert!(levels[depth - 1].contains(&p));
                }
            }
        }
    }

    #[test]
    fn validation_catches_bad_partition() {
        let nodes = vec![
            ClusterNode {
                start: 0,
                size: 4,
                left: Some(1),
                right: Some(2),
                parent: None,
            },
            ClusterNode {
                start: 0,
                size: 3,
                left: None,
                right: None,
                parent: Some(0),
            },
            ClusterNode {
                start: 2,
                size: 2,
                left: None,
                right: None,
                parent: Some(0),
            },
        ];
        let t = ClusterTree::from_parts(nodes, 0);
        assert!(t.validate().is_err());
    }

    #[test]
    fn validation_catches_single_child() {
        let nodes = vec![
            ClusterNode {
                start: 0,
                size: 2,
                left: Some(1),
                right: None,
                parent: None,
            },
            ClusterNode {
                start: 0,
                size: 2,
                left: None,
                right: None,
                parent: Some(0),
            },
        ];
        let t = ClusterTree::from_parts(nodes, 0);
        assert!(t.validate().is_err());
    }

    #[test]
    fn from_nodes_roundtrips_and_validates() {
        let t = three_level_tree();
        let rebuilt = ClusterTree::from_nodes(t.nodes().to_vec(), t.root()).unwrap();
        assert_eq!(rebuilt.num_nodes(), t.num_nodes());
        assert_eq!(rebuilt.root(), t.root());
        assert_eq!(rebuilt.postorder(), t.postorder());

        // Out-of-range root and dangling child references are rejected.
        assert!(ClusterTree::from_nodes(t.nodes().to_vec(), 99).is_err());
        let mut bad = t.nodes().to_vec();
        bad[0].left = Some(42);
        assert!(ClusterTree::from_nodes(bad, 0).is_err());
        // Structural invariants still apply.
        let mut unbalanced = t.nodes().to_vec();
        unbalanced[1].size = 3;
        assert!(ClusterTree::from_nodes(unbalanced, 0).is_err());
    }

    #[test]
    fn ordering_permutation_roundtrip() {
        let t = three_level_tree();
        let ord = ClusterOrdering::new(vec![2, 0, 3, 1], t);
        assert_eq!(ord.len(), 4);
        assert!(!ord.is_empty());
        let inv = ord.inverse_permutation();
        for (new_pos, &orig) in ord.permutation().iter().enumerate() {
            assert_eq!(inv[orig], new_pos);
        }
        let labels = vec![10, 20, 30, 40];
        assert_eq!(ord.apply(&labels), vec![30, 10, 40, 20]);
    }

    #[test]
    #[should_panic]
    fn ordering_rejects_mismatched_sizes() {
        let t = three_level_tree();
        let _ = ClusterOrdering::new(vec![0, 1, 2], t);
    }
}
