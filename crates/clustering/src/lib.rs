//! # hkrr-clustering
//!
//! Data-point clustering and reordering (Step 0 of the paper's Algorithm 1).
//!
//! Reordering the input points so that nearby points get consecutive indices
//! makes the off-diagonal blocks of the kernel matrix numerically low-rank,
//! which is what the HSS and H-matrix formats exploit.  This crate provides
//! the four orderings compared in the paper — natural (NP), k-d tree (KD),
//! PCA tree (PCA) and recursive two-means (2MN) — plus an agglomerative
//! (average-linkage) ordering for the comparison discussed in Section 4.3.
//!
//! Every method produces a [`ClusterOrdering`]: a permutation of the input
//! points together with the binary [`ClusterTree`] whose leaves become the
//! diagonal blocks of the hierarchical matrix formats.

pub mod agglomerative;
pub mod kd_tree;
pub mod metrics;
pub mod natural;
pub mod pca_tree;
pub mod splitter;
pub mod tree;
pub mod two_means;

pub use metrics::{permutation_is_valid, ClusteringQuality, TreeStats};
pub use splitter::Splitter;
pub use tree::{ClusterNode, ClusterOrdering, ClusterTree};

use hkrr_linalg::Matrix;

/// Default HSS leaf size used throughout the paper's experiments.
pub const DEFAULT_LEAF_SIZE: usize = 16;

/// The clustering / reordering methods compared in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClusteringMethod {
    /// No preprocessing: keep the natural order and split index ranges in
    /// half (the paper's NP baseline).
    Natural,
    /// Recursive k-d tree split along the dimension of maximum spread at
    /// the mean value (falls back to the median for very unbalanced splits).
    KdTree,
    /// Recursive split along the first principal component at the mean
    /// projection.
    PcaTree,
    /// Recursive two-means (the paper's 2MN), a divisive special case of
    /// k-means with distance-proportional seeding.
    TwoMeans {
        /// RNG seed for the cluster-representative initialization.
        seed: u64,
    },
    /// Agglomerative average-linkage clustering (O(n²) memory — small
    /// inputs only, included for the comparison in Section 4.3).
    Agglomerative,
}

impl ClusteringMethod {
    /// Short display label matching the paper's table headers.
    pub fn label(&self) -> &'static str {
        match self {
            ClusteringMethod::Natural => "NP",
            ClusteringMethod::KdTree => "KD",
            ClusteringMethod::PcaTree => "PCA",
            ClusteringMethod::TwoMeans { .. } => "2MN",
            ClusteringMethod::Agglomerative => "AGG",
        }
    }

    /// All methods compared in Table 2 (in the paper's column order).
    pub fn table2_methods(seed: u64) -> Vec<ClusteringMethod> {
        vec![
            ClusteringMethod::Natural,
            ClusteringMethod::KdTree,
            ClusteringMethod::PcaTree,
            ClusteringMethod::TwoMeans { seed },
        ]
    }
}

/// Clusters `points` (rows) with the requested method and returns the
/// ordering (permutation + cluster tree) with the given leaf size.
pub fn cluster(points: &Matrix, method: ClusteringMethod, leaf_size: usize) -> ClusterOrdering {
    assert!(leaf_size >= 1, "leaf_size must be at least 1");
    match method {
        ClusteringMethod::Natural => natural::natural_ordering(points.nrows(), leaf_size),
        ClusteringMethod::KdTree => {
            splitter::build_ordering(points, leaf_size, &mut kd_tree::KdSplitter::new())
        }
        ClusteringMethod::PcaTree => {
            splitter::build_ordering(points, leaf_size, &mut pca_tree::PcaSplitter::new())
        }
        ClusteringMethod::TwoMeans { seed } => splitter::build_ordering(
            points,
            leaf_size,
            &mut two_means::TwoMeansSplitter::new(seed),
        ),
        ClusteringMethod::Agglomerative => agglomerative::agglomerative_ordering(points, leaf_size),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hkrr_linalg::random::Pcg64;

    fn clustered_points(seed: u64, n: usize, d: usize) -> Matrix {
        // Two well-separated blobs.
        let mut rng = Pcg64::seed_from_u64(seed);
        Matrix::from_fn(n, d, |i, _| {
            let center = if i < n / 2 { -5.0 } else { 5.0 };
            center + rng.next_gaussian()
        })
    }

    #[test]
    fn all_methods_produce_valid_orderings() {
        let points = clustered_points(1, 200, 3);
        for method in [
            ClusteringMethod::Natural,
            ClusteringMethod::KdTree,
            ClusteringMethod::PcaTree,
            ClusteringMethod::TwoMeans { seed: 7 },
            ClusteringMethod::Agglomerative,
        ] {
            let ord = cluster(&points, method, 16);
            assert!(
                permutation_is_valid(ord.permutation(), 200),
                "{} produced an invalid permutation",
                method.label()
            );
            ord.tree().validate().unwrap();
            assert_eq!(ord.tree().root_size(), 200);
        }
    }

    #[test]
    fn labels_match_paper_names() {
        assert_eq!(ClusteringMethod::Natural.label(), "NP");
        assert_eq!(ClusteringMethod::KdTree.label(), "KD");
        assert_eq!(ClusteringMethod::PcaTree.label(), "PCA");
        assert_eq!(ClusteringMethod::TwoMeans { seed: 0 }.label(), "2MN");
        assert_eq!(ClusteringMethod::table2_methods(0).len(), 4);
    }

    #[test]
    fn leaf_size_is_respected() {
        let points = clustered_points(2, 150, 2);
        for method in [
            ClusteringMethod::Natural,
            ClusteringMethod::KdTree,
            ClusteringMethod::TwoMeans { seed: 3 },
        ] {
            let ord = cluster(&points, method, 10);
            let stats = TreeStats::from_tree(ord.tree());
            assert!(
                stats.max_leaf_size <= 2 * 10,
                "{}: leaf of size {} exceeds twice the target",
                method.label(),
                stats.max_leaf_size
            );
        }
    }

    #[test]
    #[should_panic]
    fn zero_leaf_size_is_rejected() {
        let points = Matrix::zeros(10, 2);
        let _ = cluster(&points, ClusteringMethod::Natural, 0);
    }
}
