//! Diagnostics for orderings and cluster trees.

use crate::tree::{ClusterOrdering, ClusterTree};
use hkrr_linalg::Matrix;

/// Checks that `perm` is a permutation of `0..n`.
pub fn permutation_is_valid(perm: &[usize], n: usize) -> bool {
    if perm.len() != n {
        return false;
    }
    let mut seen = vec![false; n];
    for &p in perm {
        if p >= n || seen[p] {
            return false;
        }
        seen[p] = true;
    }
    true
}

/// Structural statistics of a cluster tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TreeStats {
    /// Total number of nodes.
    pub num_nodes: usize,
    /// Number of leaves.
    pub num_leaves: usize,
    /// Tree depth (single node = 1).
    pub depth: usize,
    /// Smallest leaf size.
    pub min_leaf_size: usize,
    /// Largest leaf size.
    pub max_leaf_size: usize,
}

impl TreeStats {
    /// Computes the statistics of a tree.
    pub fn from_tree(tree: &ClusterTree) -> Self {
        let leaves = tree.leaves();
        let sizes: Vec<usize> = leaves.iter().map(|&l| tree.node(l).size).collect();
        TreeStats {
            num_nodes: tree.num_nodes(),
            num_leaves: leaves.len(),
            depth: tree.depth(),
            min_leaf_size: sizes.iter().copied().min().unwrap_or(0),
            max_leaf_size: sizes.iter().copied().max().unwrap_or(0),
        }
    }
}

/// Separation quality of the top-level split of an ordering: average
/// intra-cluster distance of the two children versus the distance between
/// their centroids.
#[derive(Debug, Clone)]
pub struct ClusteringQuality {
    /// Mean distance of a point to its own cluster centroid.
    pub intra_cluster_distance: f64,
    /// Distance between the two top-level cluster centroids.
    pub inter_cluster_distance: f64,
}

impl ClusteringQuality {
    /// Measures the quality of the root split of `ordering` on `points`
    /// (the original, un-permuted point matrix).
    pub fn at_root_split(points: &Matrix, ordering: &ClusterOrdering) -> Self {
        let tree = ordering.tree();
        let root = tree.node(tree.root());
        let perm = ordering.permutation();
        let (left_range, right_range) = match (root.left, root.right) {
            (Some(l), Some(r)) => (tree.node(l).range(), tree.node(r).range()),
            _ => {
                // Single-leaf tree: treat the first/second half as clusters.
                let n = perm.len();
                (0..n / 2, n / 2..n)
            }
        };
        let d = points.ncols();
        let centroid = |range: &std::ops::Range<usize>| -> Vec<f64> {
            let mut c = vec![0.0; d];
            if range.is_empty() {
                return c;
            }
            for pos in range.clone() {
                for (ck, &x) in c.iter_mut().zip(points.row(perm[pos]).iter()) {
                    *ck += x;
                }
            }
            let inv = 1.0 / range.len() as f64;
            for ck in c.iter_mut() {
                *ck *= inv;
            }
            c
        };
        let cl = centroid(&left_range);
        let cr = centroid(&right_range);
        let dist =
            |a: &[f64], b: &[f64]| -> f64 { hkrr_linalg::dense_backend().sq_distance(a, b).sqrt() };
        let mut intra = 0.0;
        let mut count = 0usize;
        for pos in left_range.clone() {
            intra += dist(points.row(perm[pos]), &cl);
            count += 1;
        }
        for pos in right_range.clone() {
            intra += dist(points.row(perm[pos]), &cr);
            count += 1;
        }
        ClusteringQuality {
            intra_cluster_distance: if count > 0 { intra / count as f64 } else { 0.0 },
            inter_cluster_distance: dist(&cl, &cr),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::natural::natural_ordering;

    #[test]
    fn permutation_validation() {
        assert!(permutation_is_valid(&[2, 0, 1], 3));
        assert!(!permutation_is_valid(&[0, 0, 1], 3));
        assert!(!permutation_is_valid(&[0, 1, 3], 3));
        assert!(!permutation_is_valid(&[0, 1], 3));
        assert!(permutation_is_valid(&[], 0));
    }

    #[test]
    fn tree_stats_of_balanced_tree() {
        let ord = natural_ordering(64, 8);
        let s = TreeStats::from_tree(ord.tree());
        assert_eq!(s.num_leaves, 8);
        assert_eq!(s.depth, 4);
        assert_eq!(s.min_leaf_size, 8);
        assert_eq!(s.max_leaf_size, 8);
        assert_eq!(s.num_nodes, 15);
    }

    #[test]
    fn quality_distinguishes_separated_from_mixed_order() {
        // Two blobs; natural order alternates between them so the root split
        // mixes them badly, giving low inter-cluster distance.
        let points = Matrix::from_fn(100, 1, |i, _| if i % 2 == 0 { -5.0 } else { 5.0 });
        let natural = natural_ordering(100, 16);
        let q_mixed = ClusteringQuality::at_root_split(&points, &natural);
        assert!(q_mixed.inter_cluster_distance < 1.0);

        // A perfect ordering groups the blobs contiguously.
        let mut perm: Vec<usize> = (0..100).filter(|i| i % 2 == 0).collect();
        perm.extend((0..100).filter(|i| i % 2 == 1));
        let ord = crate::tree::ClusterOrdering::new(perm, natural.tree().clone());
        let q_sep = ClusteringQuality::at_root_split(&points, &ord);
        assert!(q_sep.inter_cluster_distance > 9.0);
        assert!(q_sep.intra_cluster_distance < 1.0);
    }

    #[test]
    fn quality_on_single_leaf_tree() {
        let points = Matrix::from_fn(10, 2, |i, _| i as f64);
        let ord = natural_ordering(10, 16);
        let q = ClusteringQuality::at_root_split(&points, &ord);
        assert!(q.inter_cluster_distance.is_finite());
        assert!(q.intra_cluster_distance.is_finite());
    }
}
