//! PCA-tree ordering (PCA).
//!
//! At each recursion step the points of the current cluster are projected
//! onto the first principal component of that cluster (the direction of
//! maximum variance) and split at the mean projection.  This generalizes
//! the k-d tree split from coordinate axes to arbitrary directions, at the
//! cost of computing a `d x d` covariance matrix and its leading
//! eigenvector per node.

use crate::splitter::{threshold_split, Splitter};
use hkrr_linalg::eig::power_iteration;
use hkrr_linalg::Matrix;

/// Splitter for the recursive PCA-tree ordering.
#[derive(Debug)]
pub struct PcaSplitter {
    /// Counter mixed into the power-iteration seed so every node uses a
    /// different (but deterministic) start vector.
    node_counter: u64,
}

impl PcaSplitter {
    /// Creates the splitter.
    pub fn new() -> Self {
        PcaSplitter { node_counter: 0 }
    }
}

impl Default for PcaSplitter {
    fn default() -> Self {
        Self::new()
    }
}

impl Splitter for PcaSplitter {
    fn split(&mut self, points: &Matrix, idx: &[usize]) -> (Vec<usize>, Vec<usize>) {
        if idx.len() < 2 {
            return (idx.to_vec(), vec![]);
        }
        let d = points.ncols();
        self.node_counter += 1;

        // Mean of the subset.
        let mut mean = vec![0.0; d];
        for &i in idx {
            for (k, &x) in points.row(i).iter().enumerate() {
                mean[k] += x;
            }
        }
        let inv = 1.0 / idx.len() as f64;
        for m in mean.iter_mut() {
            *m *= inv;
        }

        // Covariance matrix of the subset (d x d, small).
        let mut cov = Matrix::zeros(d, d);
        for &i in idx {
            let row = points.row(i);
            for a in 0..d {
                let da = row[a] - mean[a];
                for b in a..d {
                    let db = row[b] - mean[b];
                    cov[(a, b)] += da * db;
                }
            }
        }
        for a in 0..d {
            for b in a..d {
                let v = cov[(a, b)] * inv;
                cov[(a, b)] = v;
                cov[(b, a)] = v;
            }
        }

        // Leading principal direction.
        let (variance, direction) = power_iteration(&cov, 200, 1e-10, 1000 + self.node_counter);
        if variance <= 1e-30 {
            // Degenerate cluster (all points identical).
            return (idx.to_vec(), vec![]);
        }

        // Project onto the principal direction and split at the mean
        // projection (which is zero since the data was centred).
        let values: Vec<f64> = idx
            .iter()
            .map(|&i| {
                points
                    .row(i)
                    .iter()
                    .zip(direction.iter())
                    .zip(mean.iter())
                    .map(|((&x, &dir), &m)| (x - m) * dir)
                    .sum()
            })
            .collect();
        threshold_split(idx, &values, 0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{permutation_is_valid, ClusteringQuality};
    use crate::splitter::build_ordering;
    use hkrr_linalg::random::Pcg64;

    #[test]
    fn splits_along_diagonal_direction() {
        // Two blobs separated along the (1, 1) diagonal — an axis-aligned
        // k-d split would work too, but the principal direction must align
        // with the diagonal and separate them perfectly.
        let mut rng = Pcg64::seed_from_u64(1);
        let points = Matrix::from_fn(200, 2, |i, _| {
            let c = if i < 100 { -3.0 } else { 3.0 };
            c + 0.3 * rng.next_gaussian()
        });
        let mut s = PcaSplitter::new();
        let idx: Vec<usize> = (0..200).collect();
        let (l, r) = s.split(&points, &idx);
        assert_eq!(l.len() + r.len(), 200);
        let l_ok = l.iter().all(|&i| i < 100) || l.iter().all(|&i| i >= 100);
        let r_ok = r.iter().all(|&i| i < 100) || r.iter().all(|&i| i >= 100);
        assert!(l_ok && r_ok, "PCA split mixed the two blobs");
    }

    #[test]
    fn full_ordering_is_valid() {
        let mut rng = Pcg64::seed_from_u64(2);
        let points = Matrix::from_fn(300, 6, |i, j| {
            let c = if i % 3 == 0 { -2.0 } else { 2.0 };
            c * (1.0 + j as f64 * 0.1) + rng.next_gaussian()
        });
        let ord = build_ordering(&points, 16, &mut PcaSplitter::new());
        assert!(permutation_is_valid(ord.permutation(), 300));
        ord.tree().validate().unwrap();
        let q = ClusteringQuality::at_root_split(&points, &ord);
        assert!(q.inter_cluster_distance > q.intra_cluster_distance);
    }

    #[test]
    fn identical_points_do_not_split() {
        let points = Matrix::filled(25, 3, -1.0);
        let mut s = PcaSplitter::new();
        let idx: Vec<usize> = (0..25).collect();
        let (l, r) = s.split(&points, &idx);
        assert_eq!(l.len(), 25);
        assert!(r.is_empty());
    }

    #[test]
    fn deterministic() {
        let mut rng = Pcg64::seed_from_u64(3);
        let points = Matrix::from_fn(150, 4, |_, _| rng.next_gaussian());
        let a = build_ordering(&points, 16, &mut PcaSplitter::new());
        let b = build_ordering(&points, 16, &mut PcaSplitter::new());
        assert_eq!(a.permutation(), b.permutation());
    }

    #[test]
    fn single_point_returns_unsplit() {
        let points = Matrix::zeros(1, 2);
        let mut s = PcaSplitter::new();
        let (l, r) = s.split(&points, &[0]);
        assert_eq!(l, vec![0]);
        assert!(r.is_empty());
    }
}
