//! Recursive two-means (2MN) clustering — the paper's best-performing
//! preprocessing.
//!
//! Each split runs a small k-means with k = 2: the first representative is
//! chosen uniformly at random, the second with probability proportional to
//! the squared distance from the first (the k-means++ style seeding the
//! paper describes), followed by Lloyd iterations until assignments stop
//! changing or the iteration cap is reached.

use crate::splitter::{median_split, Splitter};
use hkrr_linalg::{dense_backend, Matrix, Pcg64};
use rayon::prelude::*;

/// Splitter performing one 2-means split per node.
pub struct TwoMeansSplitter {
    rng: Pcg64,
    /// Maximum Lloyd iterations per split ("typically only a few iterations
    /// are required" — the cap keeps worst cases bounded).
    max_iters: usize,
}

impl TwoMeansSplitter {
    /// Creates the splitter with the given RNG seed.
    pub fn new(seed: u64) -> Self {
        TwoMeansSplitter {
            rng: Pcg64::seed_from_u64(seed),
            max_iters: 25,
        }
    }

    /// Overrides the Lloyd iteration cap.
    pub fn with_max_iters(mut self, max_iters: usize) -> Self {
        self.max_iters = max_iters.max(1);
        self
    }

    /// Squared distance through the active dense backend (SIMD for wide
    /// points, the identical scalar reduction below dimension 8).
    #[inline]
    fn squared_distance(a: &[f64], b: &[f64]) -> f64 {
        dense_backend().sq_distance(a, b)
    }
}

impl Splitter for TwoMeansSplitter {
    fn split(&mut self, points: &Matrix, idx: &[usize]) -> (Vec<usize>, Vec<usize>) {
        let n = idx.len();
        if n < 2 {
            return (idx.to_vec(), vec![]);
        }
        // Seed: first representative uniform, second proportional to squared
        // distance from the first.
        let first = idx[self.rng.next_usize(n)];
        let d2_first: Vec<f64> = idx
            .iter()
            .map(|&i| Self::squared_distance(points.row(i), points.row(first)))
            .collect();
        let total: f64 = d2_first.iter().sum();
        let second = if total <= 0.0 {
            // All points identical to the first representative: give up and
            // let the caller fall back to a leaf / median split.
            let vals: Vec<f64> = (0..n).map(|k| k as f64).collect();
            return median_split(idx, &vals);
        } else {
            let mut target = self.rng.next_f64() * total;
            let mut chosen = idx[n - 1];
            for (k, &d2) in d2_first.iter().enumerate() {
                if target <= d2 {
                    chosen = idx[k];
                    break;
                }
                target -= d2;
            }
            chosen
        };

        let d = points.ncols();
        let mut c0: Vec<f64> = points.row(first).to_vec();
        let mut c1: Vec<f64> = points.row(second).to_vec();
        let mut assign = vec![false; n]; // false -> cluster 0, true -> cluster 1

        for _ in 0..self.max_iters {
            // Assignment step (parallel over the points of this node).
            let new_assign: Vec<bool> = idx
                .par_iter()
                .map(|&i| {
                    let p = points.row(i);
                    Self::squared_distance(p, &c1) < Self::squared_distance(p, &c0)
                })
                .collect();
            let changed = new_assign.iter().zip(assign.iter()).any(|(a, b)| a != b);
            assign = new_assign;

            // Update step.
            let mut sum0 = vec![0.0; d];
            let mut sum1 = vec![0.0; d];
            let mut n0 = 0usize;
            let mut n1 = 0usize;
            for (k, &i) in idx.iter().enumerate() {
                let p = points.row(i);
                if assign[k] {
                    for (s, &x) in sum1.iter_mut().zip(p.iter()) {
                        *s += x;
                    }
                    n1 += 1;
                } else {
                    for (s, &x) in sum0.iter_mut().zip(p.iter()) {
                        *s += x;
                    }
                    n0 += 1;
                }
            }
            if n0 == 0 || n1 == 0 {
                // One cluster swallowed everything; fall back to a balanced
                // split along the distance to the surviving centroid.
                let c = if n0 == 0 { &c1 } else { &c0 };
                let vals: Vec<f64> = idx
                    .iter()
                    .map(|&i| Self::squared_distance(points.row(i), c))
                    .collect();
                return median_split(idx, &vals);
            }
            for (s, cnt) in [(&mut sum0, n0), (&mut sum1, n1)] {
                let inv = 1.0 / cnt as f64;
                for x in s.iter_mut() {
                    *x *= inv;
                }
            }
            c0 = sum0;
            c1 = sum1;
            if !changed {
                break;
            }
        }

        let mut left = Vec::new();
        let mut right = Vec::new();
        for (k, &i) in idx.iter().enumerate() {
            if assign[k] {
                right.push(i);
            } else {
                left.push(i);
            }
        }
        (left, right)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{permutation_is_valid, ClusteringQuality};
    use crate::splitter::build_ordering;
    use hkrr_linalg::random::Pcg64 as Rng;

    fn two_blob_points(seed: u64, n: usize, d: usize, separation: f64) -> Matrix {
        let mut rng = Rng::seed_from_u64(seed);
        Matrix::from_fn(n, d, |i, _| {
            let center = if i % 2 == 0 { -separation } else { separation };
            center + rng.next_gaussian()
        })
    }

    #[test]
    fn separates_two_well_separated_blobs() {
        let points = two_blob_points(1, 200, 3, 10.0);
        let mut splitter = TwoMeansSplitter::new(42);
        let idx: Vec<usize> = (0..200).collect();
        let (l, r) = splitter.split(&points, &idx);
        assert_eq!(l.len() + r.len(), 200);
        // Every point in one group shares the same parity (same blob).
        let l_parity: Vec<usize> = l.iter().map(|&i| i % 2).collect();
        let r_parity: Vec<usize> = r.iter().map(|&i| i % 2).collect();
        assert!(l_parity.windows(2).all(|w| w[0] == w[1]));
        assert!(r_parity.windows(2).all(|w| w[0] == w[1]));
        assert_ne!(l_parity[0], r_parity[0]);
    }

    #[test]
    fn full_ordering_is_valid_and_improves_locality() {
        let points = two_blob_points(2, 300, 4, 8.0);
        let ord = build_ordering(&points, 16, &mut TwoMeansSplitter::new(7));
        assert!(permutation_is_valid(ord.permutation(), 300));
        ord.tree().validate().unwrap();
        // The top-level split should have much larger inter- than
        // intra-cluster distance.
        let q = ClusteringQuality::at_root_split(&points, &ord);
        assert!(
            q.inter_cluster_distance > 2.0 * q.intra_cluster_distance,
            "2MN failed to separate the blobs: {q:?}"
        );
    }

    #[test]
    fn identical_points_fall_back_gracefully() {
        let points = Matrix::filled(40, 3, 1.0);
        let mut splitter = TwoMeansSplitter::new(3);
        let idx: Vec<usize> = (0..40).collect();
        let (l, r) = splitter.split(&points, &idx);
        // Must still produce a usable two-way split.
        assert_eq!(l.len() + r.len(), 40);
        assert!(!l.is_empty() && !r.is_empty());
    }

    #[test]
    fn tiny_sets_are_returned_unsplit() {
        let points = Matrix::zeros(1, 2);
        let mut splitter = TwoMeansSplitter::new(5);
        let (l, r) = splitter.split(&points, &[0]);
        assert_eq!(l, vec![0]);
        assert!(r.is_empty());
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let points = two_blob_points(4, 120, 3, 6.0);
        let a = build_ordering(&points, 16, &mut TwoMeansSplitter::new(99));
        let b = build_ordering(&points, 16, &mut TwoMeansSplitter::new(99));
        assert_eq!(a.permutation(), b.permutation());
    }

    #[test]
    fn different_seeds_may_differ_but_stay_valid() {
        let points = two_blob_points(5, 150, 3, 2.0);
        let a = build_ordering(&points, 16, &mut TwoMeansSplitter::new(1));
        let b = build_ordering(&points, 16, &mut TwoMeansSplitter::new(2));
        assert!(permutation_is_valid(a.permutation(), 150));
        assert!(permutation_is_valid(b.permutation(), 150));
    }

    #[test]
    fn max_iter_override() {
        let points = two_blob_points(6, 80, 2, 4.0);
        let mut s = TwoMeansSplitter::new(11).with_max_iters(1);
        let idx: Vec<usize> = (0..80).collect();
        let (l, r) = s.split(&points, &idx);
        assert_eq!(l.len() + r.len(), 80);
        assert!(!l.is_empty() && !r.is_empty());
    }
}
