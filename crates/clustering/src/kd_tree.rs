//! K-d tree ordering (KD).
//!
//! The data is split along the coordinate dimension of maximum spread, at
//! the mean value of that coordinate.  Splitting at the mean is cheaper and
//! — on normalized data — usually fine, but can produce very unbalanced
//! splits in the presence of outliers, so the split falls back to the
//! median when one side would be 100× smaller than the other (the guard
//! described in Section 4.3 of the paper).

use crate::splitter::{threshold_split, Splitter};
use hkrr_linalg::Matrix;

/// Splitter for the recursive k-d tree ordering.
#[derive(Debug, Default)]
pub struct KdSplitter;

impl KdSplitter {
    /// Creates the splitter.
    pub fn new() -> Self {
        KdSplitter
    }
}

impl Splitter for KdSplitter {
    fn split(&mut self, points: &Matrix, idx: &[usize]) -> (Vec<usize>, Vec<usize>) {
        if idx.len() < 2 {
            return (idx.to_vec(), vec![]);
        }
        let d = points.ncols();
        // Per-coordinate mean and spread over this subset.
        let mut mean = vec![0.0; d];
        let mut min = vec![f64::INFINITY; d];
        let mut max = vec![f64::NEG_INFINITY; d];
        for &i in idx {
            for (k, &x) in points.row(i).iter().enumerate() {
                mean[k] += x;
                if x < min[k] {
                    min[k] = x;
                }
                if x > max[k] {
                    max[k] = x;
                }
            }
        }
        let inv = 1.0 / idx.len() as f64;
        for m in mean.iter_mut() {
            *m *= inv;
        }
        // Dimension of maximum spread.
        let (split_dim, spread) = (0..d)
            .map(|k| (k, max[k] - min[k]))
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .unwrap_or((0, 0.0));
        if spread <= 0.0 {
            // All points identical in every coordinate.
            return (idx.to_vec(), vec![]);
        }
        let values: Vec<f64> = idx.iter().map(|&i| points[(i, split_dim)]).collect();
        threshold_split(idx, &values, mean[split_dim])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{permutation_is_valid, ClusteringQuality};
    use crate::splitter::build_ordering;
    use hkrr_linalg::random::Pcg64;

    #[test]
    fn splits_along_dimension_of_max_spread() {
        // Spread is 10 along dim 1, tiny along dim 0.
        let points = Matrix::from_fn(100, 2, |i, j| {
            if j == 0 {
                0.001 * i as f64
            } else if i < 50 {
                -5.0
            } else {
                5.0
            }
        });
        let mut s = KdSplitter::new();
        let idx: Vec<usize> = (0..100).collect();
        let (l, r) = s.split(&points, &idx);
        assert_eq!(l.len(), 50);
        assert_eq!(r.len(), 50);
        assert!(l.iter().all(|&i| i < 50));
        assert!(r.iter().all(|&i| i >= 50));
    }

    #[test]
    fn full_ordering_is_valid_and_separating() {
        let mut rng = Pcg64::seed_from_u64(1);
        let points = Matrix::from_fn(400, 5, |i, _| {
            let c = if i % 2 == 0 { -4.0 } else { 4.0 };
            c + rng.next_gaussian()
        });
        let ord = build_ordering(&points, 16, &mut KdSplitter::new());
        assert!(permutation_is_valid(ord.permutation(), 400));
        ord.tree().validate().unwrap();
        let q = ClusteringQuality::at_root_split(&points, &ord);
        assert!(q.inter_cluster_distance > q.intra_cluster_distance);
    }

    #[test]
    fn identical_points_do_not_split() {
        let points = Matrix::filled(30, 4, 2.0);
        let mut s = KdSplitter::new();
        let idx: Vec<usize> = (0..30).collect();
        let (l, r) = s.split(&points, &idx);
        assert_eq!(l.len(), 30);
        assert!(r.is_empty());
    }

    #[test]
    fn outlier_triggers_median_fallback() {
        // One extreme outlier: a mean split would isolate it alone
        // (1 vs 499 is more than 100x) so the median fallback kicks in.
        let mut points = Matrix::zeros(500, 1);
        for i in 0..499 {
            points[(i, 0)] = (i as f64) * 1e-4;
        }
        points[(499, 0)] = 1e6;
        let mut s = KdSplitter::new();
        let idx: Vec<usize> = (0..500).collect();
        let (l, r) = s.split(&points, &idx);
        assert_eq!(l.len(), 250);
        assert_eq!(r.len(), 250);
    }

    #[test]
    fn deterministic() {
        let mut rng = Pcg64::seed_from_u64(2);
        let points = Matrix::from_fn(200, 3, |_, _| rng.next_gaussian());
        let a = build_ordering(&points, 16, &mut KdSplitter::new());
        let b = build_ordering(&points, 16, &mut KdSplitter::new());
        assert_eq!(a.permutation(), b.permutation());
    }
}
