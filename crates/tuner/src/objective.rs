//! The tuning objective: validation accuracy of a KRR classifier.

use crate::search::SolverCandidate;
use hkrr_core::{accuracy, KrrConfig, KrrModel, SolverKind};
use hkrr_linalg::Matrix;

/// Anything that maps `(h, λ)` to a score to be maximized.
///
/// Implementations must be `Sync`: both tuners evaluate independent
/// candidates concurrently, so the objective is shared across worker
/// threads (each evaluation trains its own model and holds no mutable
/// state).
pub trait Objective: Sync {
    /// Evaluates the objective; larger is better.
    fn evaluate(&self, h: f64, lambda: f64) -> f64;

    /// Evaluates the objective with a specific solver back end — the hook
    /// that makes the solver a searchable dimension
    /// ([`crate::solver_search`]). Objectives that do not involve a solver
    /// simply inherit this default, which ignores it.
    fn evaluate_solver(&self, _solver: SolverKind, h: f64, lambda: f64) -> f64 {
        self.evaluate(h, lambda)
    }

    /// Evaluates the objective with a specific solver *candidate* — back
    /// end plus ULV factor precision — the hook that makes precision a
    /// searchable dimension of [`crate::solver_search`]. The default
    /// ignores the precision and forwards to [`Objective::evaluate_solver`],
    /// so solver-only objectives keep working unchanged.
    fn evaluate_candidate(&self, candidate: SolverCandidate, h: f64, lambda: f64) -> f64 {
        self.evaluate_solver(candidate.solver, h, lambda)
    }

    /// Evaluates the objective with a specific ensemble shard count — the
    /// hook that makes sharding a searchable dimension
    /// ([`crate::ensemble_search`]). Objectives that do not shard simply
    /// inherit this default, which ignores it.
    fn evaluate_shards(&self, _shards: usize, h: f64, lambda: f64) -> f64 {
        self.evaluate(h, lambda)
    }
}

/// Validation-set accuracy of a classifier trained with the given
/// hyperparameters (the objective used in Section 5.3 of the paper).
pub struct ValidationObjective<'a> {
    train: &'a Matrix,
    train_labels: &'a [f64],
    validation: &'a Matrix,
    validation_labels: &'a [f64],
    base_config: KrrConfig,
}

impl<'a> ValidationObjective<'a> {
    /// Creates the objective from a train/validation split and a base
    /// configuration (solver, clustering, tolerance) whose `h` and `λ` are
    /// overridden at every evaluation.
    pub fn new(
        train: &'a Matrix,
        train_labels: &'a [f64],
        validation: &'a Matrix,
        validation_labels: &'a [f64],
        base_config: KrrConfig,
    ) -> Self {
        assert_eq!(train.nrows(), train_labels.len(), "train labels mismatch");
        assert_eq!(
            validation.nrows(),
            validation_labels.len(),
            "validation labels mismatch"
        );
        ValidationObjective {
            train,
            train_labels,
            validation,
            validation_labels,
            base_config,
        }
    }
}

impl Objective for ValidationObjective<'_> {
    fn evaluate(&self, h: f64, lambda: f64) -> f64 {
        self.evaluate_solver(self.base_config.solver, h, lambda)
    }

    fn evaluate_solver(&self, solver: SolverKind, h: f64, lambda: f64) -> f64 {
        let config = self
            .base_config
            .with_h(h)
            .with_lambda(lambda)
            .with_solver(solver);
        self.fit_score(&config)
    }

    fn evaluate_candidate(&self, candidate: SolverCandidate, h: f64, lambda: f64) -> f64 {
        let config = self
            .base_config
            .with_h(h)
            .with_lambda(lambda)
            .with_solver(candidate.solver)
            .with_factor_precision(candidate.factor_precision);
        self.fit_score(&config)
    }
}

impl ValidationObjective<'_> {
    fn fit_score(&self, config: &KrrConfig) -> f64 {
        match KrrModel::fit(self.train, self.train_labels, config) {
            Ok(model) => accuracy(&model.predict(self.validation), self.validation_labels),
            // Failed fits (e.g. numerically singular systems, or an invalid
            // solver/precision combination) score zero so the search simply
            // moves away from them.
            Err(_) => 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hkrr_core::SolverKind;
    use hkrr_datasets::generate;
    use hkrr_datasets::registry::LETTER;

    #[test]
    fn good_parameters_score_higher_than_bad_ones() {
        let ds = generate(&LETTER, 300, 80, 1);
        let base = KrrConfig {
            solver: SolverKind::DenseCholesky,
            ..KrrConfig::default()
        };
        let obj =
            ValidationObjective::new(&ds.train, &ds.train_labels, &ds.test, &ds.test_labels, base);
        let good = obj.evaluate(LETTER.default_h, LETTER.default_lambda);
        // A wildly wrong bandwidth makes the kernel matrix nearly identity
        // or nearly all-ones and hurts accuracy.
        let bad = obj.evaluate(1e-4, 100.0);
        assert!(good > bad, "good {good} should beat bad {bad}");
        assert!(good > 0.85);
    }

    #[test]
    fn evaluate_solver_switches_the_back_end() {
        let ds = generate(&LETTER, 150, 40, 3);
        let obj = ValidationObjective::new(
            &ds.train,
            &ds.train_labels,
            &ds.test,
            &ds.test_labels,
            KrrConfig {
                solver: SolverKind::DenseCholesky,
                ..KrrConfig::default()
            },
        );
        let dense = obj.evaluate_solver(
            SolverKind::DenseCholesky,
            LETTER.default_h,
            LETTER.default_lambda,
        );
        let pcg = obj.evaluate_solver(SolverKind::HssPcg, LETTER.default_h, LETTER.default_lambda);
        // PCG solves the exact system: validation accuracy matches the
        // dense back end on the same split.
        assert!((dense - pcg).abs() <= 0.05, "dense {dense} vs pcg {pcg}");
        assert!(pcg > 0.8);
    }

    #[test]
    fn evaluate_candidate_switches_the_factor_precision() {
        let ds = generate(&LETTER, 150, 40, 3);
        let obj = ValidationObjective::new(
            &ds.train,
            &ds.train_labels,
            &ds.test,
            &ds.test_labels,
            KrrConfig {
                solver: SolverKind::HssPcg,
                ..KrrConfig::default()
            },
        );
        let f64_score = obj.evaluate_candidate(
            SolverCandidate::new(SolverKind::HssPcg),
            LETTER.default_h,
            LETTER.default_lambda,
        );
        let f32_score = obj.evaluate_candidate(
            SolverCandidate::hss_pcg_f32(),
            LETTER.default_h,
            LETTER.default_lambda,
        );
        // The outer f64 PCG iteration absorbs the factor demotion, so the
        // validation accuracy is unchanged.
        assert_eq!(f64_score, f32_score, "f64 {f64_score} vs f32 {f32_score}");
        assert!(f32_score > 0.8);
    }

    #[test]
    fn invalid_solver_precision_combinations_score_zero() {
        let ds = generate(&LETTER, 60, 20, 2);
        let obj = ValidationObjective::new(
            &ds.train,
            &ds.train_labels,
            &ds.test,
            &ds.test_labels,
            KrrConfig {
                solver: SolverKind::DenseCholesky,
                ..KrrConfig::default()
            },
        );
        // f32 factors require the hss-pcg solver; the candidate below is
        // rejected by config validation and must score zero, not panic.
        let candidate = SolverCandidate {
            solver: SolverKind::DenseCholesky,
            factor_precision: hkrr_core::FactorPrecision::F32,
        };
        assert_eq!(
            obj.evaluate_candidate(candidate, LETTER.default_h, LETTER.default_lambda),
            0.0
        );
    }

    #[test]
    fn invalid_parameters_score_zero() {
        let ds = generate(&LETTER, 60, 20, 2);
        let obj = ValidationObjective::new(
            &ds.train,
            &ds.train_labels,
            &ds.test,
            &ds.test_labels,
            KrrConfig {
                solver: SolverKind::DenseCholesky,
                ..KrrConfig::default()
            },
        );
        assert_eq!(obj.evaluate(-1.0, 1.0), 0.0);
    }
}
