//! # hkrr-tuner
//!
//! Hyperparameter tuning of `(h, λ)` for kernel ridge regression — and,
//! via [`solver_search`], of the solver back end itself (dense vs direct
//! HSS vs HSS-preconditioned CG, at f64 or f32 ULV factor precision — see
//! [`SolverCandidate`]), and via [`ensemble_search`] of the ensemble shard
//! count, making both one more searchable dimension.
//!
//! The paper compares an exhaustive grid search (128² runs, Figure 6a)
//! against the black-box optimization of OpenTuner (100 runs, Figure 6b)
//! and finds the budgeted black-box search both cheaper and better.
//! OpenTuner itself is a Python framework, so this crate substitutes a
//! budgeted derivative-free optimizer with the same interface: random
//! exploration followed by shrinking local refinement around the incumbent.
//!
//! Both tuners exploit the structure the paper highlights: changing `λ`
//! only shifts the diagonal of the compressed matrix, so for a fixed `h`
//! many `λ` values can be evaluated against a single compression.

pub mod grid;
pub mod objective;
pub mod search;

pub use grid::{grid_search, GridSpec};
pub use objective::{Objective, ValidationObjective};
pub use search::{
    black_box_search, ensemble_search, solver_search, EnsembleSearchResult, SearchOptions,
    SolverCandidate, SolverSearchResult,
};

/// One evaluated hyperparameter point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Evaluation {
    /// Gaussian bandwidth.
    pub h: f64,
    /// Ridge parameter.
    pub lambda: f64,
    /// Validation accuracy obtained with these parameters.
    pub accuracy: f64,
}

/// The outcome of a tuning run.
#[derive(Debug, Clone)]
pub struct TuningResult {
    /// The best parameters found.
    pub best: Evaluation,
    /// Every evaluation performed, in order.
    pub history: Vec<Evaluation>,
}

impl TuningResult {
    /// Number of objective evaluations spent.
    pub fn num_evaluations(&self) -> usize {
        self.history.len()
    }

    /// Builds the result from a history, picking the best entry.
    pub fn from_history(history: Vec<Evaluation>) -> Self {
        let best = history
            .iter()
            .copied()
            .max_by(|a, b| a.accuracy.partial_cmp(&b.accuracy).unwrap())
            .expect("tuning produced no evaluations");
        TuningResult { best, history }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn result_picks_best_evaluation() {
        let history = vec![
            Evaluation {
                h: 1.0,
                lambda: 1.0,
                accuracy: 0.7,
            },
            Evaluation {
                h: 2.0,
                lambda: 0.5,
                accuracy: 0.9,
            },
            Evaluation {
                h: 0.5,
                lambda: 2.0,
                accuracy: 0.8,
            },
        ];
        let r = TuningResult::from_history(history);
        assert_eq!(r.best.h, 2.0);
        assert_eq!(r.num_evaluations(), 3);
    }

    #[test]
    #[should_panic]
    fn empty_history_is_an_error() {
        let _ = TuningResult::from_history(vec![]);
    }
}
