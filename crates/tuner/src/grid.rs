//! Exhaustive grid search (the baseline of Figure 6a).
//!
//! Every `(h, λ)` grid point is an independent training run, so the whole
//! grid is evaluated in parallel — the embarrassingly parallel outer loop
//! the paper distributes across nodes.

use crate::objective::Objective;
use crate::{Evaluation, TuningResult};
use rayon::prelude::*;

/// A rectangular `(h, λ)` grid.
#[derive(Debug, Clone, Copy)]
pub struct GridSpec {
    /// Smallest bandwidth.
    pub h_min: f64,
    /// Largest bandwidth.
    pub h_max: f64,
    /// Number of bandwidth grid points.
    pub h_steps: usize,
    /// Smallest regularization.
    pub lambda_min: f64,
    /// Largest regularization.
    pub lambda_max: f64,
    /// Number of regularization grid points.
    pub lambda_steps: usize,
}

impl GridSpec {
    /// The `(h, λ)` values of the grid (row-major: h outer, λ inner).
    pub fn points(&self) -> Vec<(f64, f64)> {
        let hs = linspace(self.h_min, self.h_max, self.h_steps);
        let ls = linspace(self.lambda_min, self.lambda_max, self.lambda_steps);
        let mut out = Vec::with_capacity(hs.len() * ls.len());
        for &h in &hs {
            for &l in &ls {
                out.push((h, l));
            }
        }
        out
    }

    /// Total number of grid evaluations.
    pub fn num_points(&self) -> usize {
        self.h_steps * self.lambda_steps
    }
}

fn linspace(lo: f64, hi: f64, steps: usize) -> Vec<f64> {
    assert!(steps >= 1, "linspace needs at least one step");
    if steps == 1 {
        return vec![lo];
    }
    (0..steps)
        .map(|i| lo + (hi - lo) * i as f64 / (steps - 1) as f64)
        .collect()
}

/// Evaluates the objective on every grid point (the paper's 128² fine grid,
/// scaled down by the caller). Candidates are independent and evaluated in
/// parallel; the history keeps the deterministic row-major grid order.
pub fn grid_search(objective: &dyn Objective, spec: &GridSpec) -> TuningResult {
    let points = spec.points();
    let history: Vec<Evaluation> = points
        .par_iter()
        .with_min_len(1)
        .map(|&(h, lambda)| Evaluation {
            h,
            lambda,
            accuracy: objective.evaluate(h, lambda),
        })
        .collect();
    TuningResult::from_history(history)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::Objective;

    /// Analytic objective with a unique maximum at (h, λ) = (2, 3).
    struct Quadratic;

    impl Objective for Quadratic {
        fn evaluate(&self, h: f64, lambda: f64) -> f64 {
            1.0 - (h - 2.0).powi(2) - 0.5 * (lambda - 3.0).powi(2)
        }
    }

    #[test]
    fn grid_covers_expected_number_of_points() {
        let spec = GridSpec {
            h_min: 0.5,
            h_max: 2.0,
            h_steps: 4,
            lambda_min: 1.0,
            lambda_max: 10.0,
            lambda_steps: 3,
        };
        let pts = spec.points();
        assert_eq!(pts.len(), 12);
        assert_eq!(spec.num_points(), 12);
        assert_eq!(pts[0], (0.5, 1.0));
        assert_eq!(pts[11], (2.0, 10.0));
    }

    #[test]
    fn grid_search_finds_the_grid_optimum() {
        let spec = GridSpec {
            h_min: 0.0,
            h_max: 4.0,
            h_steps: 9,
            lambda_min: 0.0,
            lambda_max: 6.0,
            lambda_steps: 7,
        };
        let result = grid_search(&Quadratic, &spec);
        assert_eq!(result.num_evaluations(), 63);
        assert!((result.best.h - 2.0).abs() < 1e-12);
        assert!((result.best.lambda - 3.0).abs() < 1e-12);
    }

    #[test]
    fn single_point_grid() {
        let spec = GridSpec {
            h_min: 1.5,
            h_max: 1.5,
            h_steps: 1,
            lambda_min: 2.0,
            lambda_max: 2.0,
            lambda_steps: 1,
        };
        let result = grid_search(&Quadratic, &spec);
        assert_eq!(result.num_evaluations(), 1);
        assert_eq!(result.best.h, 1.5);
    }
}
