//! Budgeted black-box search (the OpenTuner substitute of Figure 6b).
//!
//! The search spends a fixed evaluation budget in two phases: a random
//! (log-uniform) exploration of the `(h, λ)` box followed by local
//! refinement around the incumbent with a geometrically shrinking radius.
//! This mirrors how OpenTuner is used in the paper: a derivative-free
//! optimizer that needs an order of magnitude fewer runs than a fine grid.
//!
//! The exploration phase draws its whole candidate batch up front (so the
//! RNG stream is unchanged) and evaluates the independent candidates in
//! parallel; the refinement phase stays sequential because each step's
//! proposal depends on the incumbent of the previous one.

use crate::objective::Objective;
use crate::{Evaluation, TuningResult};
use hkrr_core::{FactorPrecision, SolverKind};
use hkrr_linalg::Pcg64;
use rayon::prelude::*;

/// Options for the black-box search.
#[derive(Debug, Clone, Copy)]
pub struct SearchOptions {
    /// Lower/upper bounds for the bandwidth.
    pub h_range: (f64, f64),
    /// Lower/upper bounds for the regularization.
    pub lambda_range: (f64, f64),
    /// Total evaluation budget (the paper uses 100 runs).
    pub budget: usize,
    /// Fraction of the budget spent on pure random exploration.
    pub exploration_fraction: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SearchOptions {
    fn default() -> Self {
        SearchOptions {
            h_range: (0.05, 10.0),
            lambda_range: (0.01, 10.0),
            budget: 100,
            exploration_fraction: 0.4,
            seed: 0x7bb,
        }
    }
}

fn log_uniform(rng: &mut Pcg64, lo: f64, hi: f64) -> f64 {
    assert!(lo > 0.0 && hi > lo, "log_uniform requires 0 < lo < hi");
    (rng.uniform(lo.ln(), hi.ln())).exp()
}

/// Runs the budgeted black-box search.
pub fn black_box_search(objective: &dyn Objective, opts: &SearchOptions) -> TuningResult {
    assert!(opts.budget >= 1, "budget must be at least 1");
    let mut rng = Pcg64::seed_from_u64(opts.seed);
    let mut history: Vec<Evaluation> = Vec::with_capacity(opts.budget);

    let explore =
        ((opts.budget as f64 * opts.exploration_fraction).ceil() as usize).clamp(1, opts.budget);

    // Phase 1: log-uniform random exploration. Draw the whole batch first
    // (identical RNG stream to the sequential schedule), then evaluate the
    // independent candidates in parallel, preserving draw order.
    let candidates: Vec<(f64, f64)> = (0..explore)
        .map(|_| {
            let h = log_uniform(&mut rng, opts.h_range.0, opts.h_range.1);
            let lambda = log_uniform(&mut rng, opts.lambda_range.0, opts.lambda_range.1);
            (h, lambda)
        })
        .collect();
    history.extend(
        candidates
            .par_iter()
            .with_min_len(1)
            .map(|&(h, lambda)| Evaluation {
                h,
                lambda,
                accuracy: objective.evaluate(h, lambda),
            })
            .collect::<Vec<Evaluation>>(),
    );

    // Phase 2: shrinking local refinement around the incumbent.
    let remaining = opts.budget - explore;
    for step in 0..remaining {
        let best = history
            .iter()
            .copied()
            .max_by(|a, b| a.accuracy.partial_cmp(&b.accuracy).unwrap())
            .unwrap();
        // Radius shrinks geometrically from 0.5 decades to ~0.05 decades.
        let progress = step as f64 / remaining.max(1) as f64;
        let radius = 0.5 * (0.1_f64).powf(progress);
        let h = (best.h.ln() + rng.uniform(-radius, radius))
            .exp()
            .clamp(opts.h_range.0, opts.h_range.1);
        let lambda = (best.lambda.ln() + rng.uniform(-radius, radius))
            .exp()
            .clamp(opts.lambda_range.0, opts.lambda_range.1);
        history.push(Evaluation {
            h,
            lambda,
            accuracy: objective.evaluate(h, lambda),
        });
    }

    TuningResult::from_history(history)
}

/// One point of the solver dimension: a back end plus the precision its
/// ULV factors are stored at. Precision is part of the searched space
/// because f32 factors trade a little PCG iteration count for less than
/// half the factor memory — whether that trade pays is exactly the kind of
/// question the tuner answers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SolverCandidate {
    /// The solver back end.
    pub solver: SolverKind,
    /// The ULV factor-storage precision (meaningful for `hss-pcg` only).
    pub factor_precision: FactorPrecision,
}

impl SolverCandidate {
    /// A candidate at the default f64 factor precision.
    pub fn new(solver: SolverKind) -> Self {
        SolverCandidate {
            solver,
            factor_precision: FactorPrecision::F64,
        }
    }

    /// The `hss-pcg` back end with f32-demoted ULV factors.
    pub fn hss_pcg_f32() -> Self {
        SolverCandidate {
            solver: SolverKind::HssPcg,
            factor_precision: FactorPrecision::F32,
        }
    }

    /// Label used in reports and benchmark tables: the solver label, with
    /// a `-f32` suffix when the factors are demoted (`hss-pcg-f32`).
    pub fn label(&self) -> String {
        match self.factor_precision {
            FactorPrecision::F64 => self.solver.label().to_string(),
            FactorPrecision::F32 => format!("{}-f32", self.solver.label()),
        }
    }
}

impl From<SolverKind> for SolverCandidate {
    fn from(solver: SolverKind) -> Self {
        SolverCandidate::new(solver)
    }
}

/// The outcome of a solver-dimension search: the winning back end (and
/// factor precision), its best `(h, λ)`, and the full per-candidate tuning
/// results.
#[derive(Debug, Clone)]
pub struct SolverSearchResult {
    /// The candidate whose best evaluation won.
    pub best_candidate: SolverCandidate,
    /// The winning evaluation.
    pub best: Evaluation,
    /// One complete [`TuningResult`] per searched candidate, in input
    /// order.
    pub per_candidate: Vec<(SolverCandidate, TuningResult)>,
}

/// Adapter that pins one candidate of the searched dimension, so the inner
/// `(h, λ)` search machinery needs no solver awareness.
struct CandidatePinned<'a> {
    inner: &'a dyn Objective,
    candidate: SolverCandidate,
}

impl Objective for CandidatePinned<'_> {
    fn evaluate(&self, h: f64, lambda: f64) -> f64 {
        self.inner.evaluate_candidate(self.candidate, h, lambda)
    }
}

/// Black-box search over `(solver, factor precision, h, λ)`: the total
/// budget is split across the candidates (a non-divisible remainder goes
/// to the first candidates, one extra evaluation each, so the full budget
/// is spent), each slice runs [`black_box_search`] with the *same* seed
/// (so every candidate sees the same `(h, λ)` points and the comparison is
/// apples-to-apples), and the best evaluation overall wins.
///
/// # Panics
/// Panics when `candidates` is empty or the per-candidate budget would be
/// zero.
pub fn solver_search(
    objective: &dyn Objective,
    candidates: &[SolverCandidate],
    opts: &SearchOptions,
) -> SolverSearchResult {
    assert!(
        !candidates.is_empty(),
        "solver_search needs at least one candidate"
    );
    let per_budget = opts.budget / candidates.len();
    let remainder = opts.budget % candidates.len();
    assert!(
        per_budget >= 1,
        "budget {} cannot cover {} candidates",
        opts.budget,
        candidates.len()
    );
    let per_candidate: Vec<(SolverCandidate, TuningResult)> = candidates
        .iter()
        .enumerate()
        .map(|(i, &candidate)| {
            let pinned = CandidatePinned {
                inner: objective,
                candidate,
            };
            let opts = SearchOptions {
                budget: per_budget + usize::from(i < remainder),
                ..*opts
            };
            (candidate, black_box_search(&pinned, &opts))
        })
        .collect();
    let (best_candidate, best) = per_candidate
        .iter()
        .map(|(s, r)| (*s, r.best))
        .max_by(|a, b| a.1.accuracy.partial_cmp(&b.1.accuracy).unwrap())
        .expect("at least one candidate was searched");
    SolverSearchResult {
        best_candidate,
        best,
        per_candidate,
    }
}

/// The outcome of a shard-dimension search: the winning shard count, its
/// best `(h, λ)`, and the full per-count tuning results.
#[derive(Debug, Clone)]
pub struct EnsembleSearchResult {
    /// The shard count whose best evaluation won.
    pub best_shards: usize,
    /// The winning evaluation.
    pub best: Evaluation,
    /// One complete [`TuningResult`] per searched shard count, in input
    /// order.
    pub per_shards: Vec<(usize, TuningResult)>,
}

/// Adapter that pins one shard count of the searched dimension.
struct ShardsPinned<'a> {
    inner: &'a dyn Objective,
    shards: usize,
}

impl Objective for ShardsPinned<'_> {
    fn evaluate(&self, h: f64, lambda: f64) -> f64 {
        self.inner.evaluate_shards(self.shards, h, lambda)
    }
}

/// Black-box search over `(shards, h, λ)`: the budget-splitting discipline
/// of [`solver_search`] applied to the ensemble shard count (even split,
/// remainder to the first counts, same seed per slice so every shard count
/// sees identical `(h, λ)` candidates).
///
/// # Panics
/// Panics when `shard_counts` is empty or the per-count budget would be
/// zero.
pub fn ensemble_search(
    objective: &dyn Objective,
    shard_counts: &[usize],
    opts: &SearchOptions,
) -> EnsembleSearchResult {
    assert!(
        !shard_counts.is_empty(),
        "ensemble_search needs at least one shard count"
    );
    let per_budget = opts.budget / shard_counts.len();
    let remainder = opts.budget % shard_counts.len();
    assert!(
        per_budget >= 1,
        "budget {} cannot cover {} shard counts",
        opts.budget,
        shard_counts.len()
    );
    let per_shards: Vec<(usize, TuningResult)> = shard_counts
        .iter()
        .enumerate()
        .map(|(i, &shards)| {
            let pinned = ShardsPinned {
                inner: objective,
                shards,
            };
            let opts = SearchOptions {
                budget: per_budget + usize::from(i < remainder),
                ..*opts
            };
            (shards, black_box_search(&pinned, &opts))
        })
        .collect();
    let (best_shards, best) = per_shards
        .iter()
        .map(|(k, r)| (*k, r.best))
        .max_by(|a, b| a.1.accuracy.partial_cmp(&b.1.accuracy).unwrap())
        .expect("at least one shard count was searched");
    EnsembleSearchResult {
        best_shards,
        best,
        per_shards,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::{grid_search, GridSpec};
    use crate::objective::Objective;

    /// Smooth objective peaking at h = 1.3, λ = 0.7 (in log space).
    struct Peak;

    impl Objective for Peak {
        fn evaluate(&self, h: f64, lambda: f64) -> f64 {
            let dh = (h.ln() - 1.3_f64.ln()).powi(2);
            let dl = (lambda.ln() - 0.7_f64.ln()).powi(2);
            (-(dh + dl)).exp()
        }
    }

    #[test]
    fn search_respects_budget_and_bounds() {
        let opts = SearchOptions {
            budget: 60,
            ..Default::default()
        };
        let r = black_box_search(&Peak, &opts);
        assert_eq!(r.num_evaluations(), 60);
        for e in &r.history {
            assert!(e.h >= opts.h_range.0 && e.h <= opts.h_range.1);
            assert!(e.lambda >= opts.lambda_range.0 && e.lambda <= opts.lambda_range.1);
        }
    }

    #[test]
    fn search_gets_close_to_the_analytic_optimum() {
        let r = black_box_search(&Peak, &SearchOptions::default());
        assert!(r.best.accuracy > 0.95, "best {:?}", r.best);
        assert!((r.best.h.ln() - 1.3_f64.ln()).abs() < 0.5);
    }

    #[test]
    fn budgeted_search_beats_a_coarse_grid_of_equal_budget() {
        // 100 black-box evaluations versus a 10x10 grid: the adaptive search
        // should find an equal or better point (this is the paper's Figure 6
        // argument in miniature).
        let search = black_box_search(
            &Peak,
            &SearchOptions {
                budget: 100,
                ..Default::default()
            },
        );
        let grid = grid_search(
            &Peak,
            &GridSpec {
                h_min: 0.05,
                h_max: 10.0,
                h_steps: 10,
                lambda_min: 0.01,
                lambda_max: 10.0,
                lambda_steps: 10,
            },
        );
        assert!(search.best.accuracy >= grid.best.accuracy - 1e-9);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let a = black_box_search(&Peak, &SearchOptions::default());
        let b = black_box_search(&Peak, &SearchOptions::default());
        assert_eq!(a.best, b.best);
        assert_eq!(a.history, b.history);
    }

    /// An objective whose quality depends on the solver: the HSS-PCG back
    /// end gets an artificial edge, so the solver dimension is decisive.
    struct SolverAware;

    impl Objective for SolverAware {
        fn evaluate(&self, h: f64, lambda: f64) -> f64 {
            Peak.evaluate(h, lambda)
        }

        fn evaluate_solver(&self, solver: SolverKind, h: f64, lambda: f64) -> f64 {
            let bonus = match solver {
                SolverKind::HssPcg => 0.1,
                SolverKind::Hss => 0.05,
                _ => 0.0,
            };
            Peak.evaluate(h, lambda) * 0.8 + bonus
        }
    }

    #[test]
    fn solver_search_explores_the_solver_dimension() {
        let candidates = [
            SolverCandidate::new(SolverKind::DenseCholesky),
            SolverCandidate::new(SolverKind::Hss),
            SolverCandidate::new(SolverKind::HssPcg),
        ];
        let r = solver_search(
            &SolverAware,
            &candidates,
            &SearchOptions {
                budget: 60,
                ..Default::default()
            },
        );
        assert_eq!(r.best_candidate.solver, SolverKind::HssPcg);
        assert_eq!(r.best_candidate.factor_precision, FactorPrecision::F64);
        assert_eq!(r.per_candidate.len(), 3);
        // The budget was split evenly and fully spent.
        for (_, result) in &r.per_candidate {
            assert_eq!(result.num_evaluations(), 20);
        }
        // Same seed per slice: every solver saw identical candidates, so
        // the winner's history dominates pointwise by its bonus.
        let hss = &r.per_candidate[1].1.history;
        let pcg = &r.per_candidate[2].1.history;
        for (a, b) in hss.iter().zip(pcg.iter()) {
            assert_eq!(a.h, b.h);
            assert_eq!(a.lambda, b.lambda);
            assert!(b.accuracy > a.accuracy);
        }
        assert!((r.best.accuracy - r.per_candidate[2].1.best.accuracy).abs() < 1e-15);
    }

    /// An objective that prefers f32 factors: the memory saving is modelled
    /// as a flat score bonus, so the precision dimension is decisive.
    struct PrecisionAware;

    impl Objective for PrecisionAware {
        fn evaluate(&self, h: f64, lambda: f64) -> f64 {
            Peak.evaluate(h, lambda)
        }

        fn evaluate_candidate(&self, candidate: SolverCandidate, h: f64, lambda: f64) -> f64 {
            let bonus = match candidate.factor_precision {
                FactorPrecision::F32 => 0.1,
                FactorPrecision::F64 => 0.0,
            };
            Peak.evaluate(h, lambda) * 0.8 + bonus
        }
    }

    #[test]
    fn solver_search_explores_the_precision_dimension() {
        let candidates = [
            SolverCandidate::new(SolverKind::HssPcg),
            SolverCandidate::hss_pcg_f32(),
        ];
        assert_eq!(candidates[0].label(), "hss-pcg");
        assert_eq!(candidates[1].label(), "hss-pcg-f32");
        let r = solver_search(
            &PrecisionAware,
            &candidates,
            &SearchOptions {
                budget: 40,
                ..Default::default()
            },
        );
        assert_eq!(r.best_candidate, SolverCandidate::hss_pcg_f32());
        // Same seed per slice: both precisions saw identical `(h, λ)`
        // points, so the f32 history dominates pointwise by its bonus.
        let f64_hist = &r.per_candidate[0].1.history;
        let f32_hist = &r.per_candidate[1].1.history;
        for (a, b) in f64_hist.iter().zip(f32_hist.iter()) {
            assert_eq!(a.h, b.h);
            assert_eq!(a.lambda, b.lambda);
            assert!(b.accuracy > a.accuracy);
        }
    }

    #[test]
    fn candidates_default_to_f64_via_from() {
        let c: SolverCandidate = SolverKind::Hss.into();
        assert_eq!(c.solver, SolverKind::Hss);
        assert_eq!(c.factor_precision, FactorPrecision::F64);
        assert_eq!(c.label(), "hss");
    }

    #[test]
    #[should_panic]
    fn solver_search_rejects_an_empty_candidate_list() {
        let _ = solver_search(&SolverAware, &[], &SearchOptions::default());
    }

    #[test]
    fn solver_search_spends_a_non_divisible_budget_fully() {
        let candidates = [
            SolverCandidate::new(SolverKind::DenseCholesky),
            SolverCandidate::new(SolverKind::Hss),
            SolverCandidate::new(SolverKind::HssPcg),
        ];
        let r = solver_search(
            &SolverAware,
            &candidates,
            &SearchOptions {
                budget: 7,
                ..Default::default()
            },
        );
        let counts: Vec<usize> = r
            .per_candidate
            .iter()
            .map(|(_, res)| res.num_evaluations())
            .collect();
        assert_eq!(
            counts,
            vec![3, 2, 2],
            "remainder goes to the first candidates"
        );
        assert_eq!(counts.iter().sum::<usize>(), 7, "full budget spent");
    }

    /// An objective where an intermediate shard count is best (too few
    /// shards = slow monolith, too many = starved local experts).
    struct ShardAware;

    impl Objective for ShardAware {
        fn evaluate(&self, h: f64, lambda: f64) -> f64 {
            Peak.evaluate(h, lambda)
        }

        fn evaluate_shards(&self, shards: usize, h: f64, lambda: f64) -> f64 {
            let sweet = -((shards as f64).ln() - 4.0_f64.ln()).powi(2);
            Peak.evaluate(h, lambda) * 0.5 + 0.5 * sweet.exp()
        }
    }

    #[test]
    fn ensemble_search_explores_the_shard_dimension() {
        let counts = [1, 4, 16];
        let r = ensemble_search(
            &ShardAware,
            &counts,
            &SearchOptions {
                budget: 60,
                ..Default::default()
            },
        );
        assert_eq!(r.best_shards, 4);
        assert_eq!(r.per_shards.len(), 3);
        let sizes: Vec<usize> = r
            .per_shards
            .iter()
            .map(|(_, res)| res.num_evaluations())
            .collect();
        assert_eq!(sizes, vec![20, 20, 20]);
        // Same seed per slice: every shard count saw identical candidates.
        let a = &r.per_shards[0].1.history;
        let b = &r.per_shards[1].1.history;
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.h, y.h);
            assert_eq!(x.lambda, y.lambda);
            assert!(y.accuracy > x.accuracy, "k=4 dominates k=1 pointwise");
        }
    }

    #[test]
    #[should_panic]
    fn ensemble_search_rejects_an_empty_count_list() {
        let _ = ensemble_search(&ShardAware, &[], &SearchOptions::default());
    }

    #[test]
    fn ensemble_search_spends_a_non_divisible_budget_fully() {
        let r = ensemble_search(
            &ShardAware,
            &[1, 4, 16],
            &SearchOptions {
                budget: 7,
                ..Default::default()
            },
        );
        let counts: Vec<usize> = r
            .per_shards
            .iter()
            .map(|(_, res)| res.num_evaluations())
            .collect();
        assert_eq!(counts, vec![3, 2, 2], "remainder goes to the first counts");
    }

    #[test]
    fn tiny_budget_still_works() {
        let r = black_box_search(
            &Peak,
            &SearchOptions {
                budget: 1,
                ..Default::default()
            },
        );
        assert_eq!(r.num_evaluations(), 1);
    }
}
