//! Structured, leveled JSON-lines event log with a bounded ring buffer.
//!
//! Where spans ([`crate::trace`]) answer *where did the time go*, events
//! answer *what happened*: one JSON object per line, each carrying a wall
//! clock timestamp, a level, an event kind, and free-form fields (trace
//! ids, shard/replica labels, latencies, outcomes). The serve tier emits
//! one `request` event per query outcome and training emits per-level HSS
//! compression and PCG milestone events, so a fleet's logs can be grepped
//! and joined by `trace_id` against the merged span timeline.
//!
//! The sink is process-global and initialized once: explicitly with
//! [`init_with_path`], or lazily from `HKRR_LOG=<path|stderr>` the first
//! time an event is emitted. `HKRR_LOG_LEVEL` (`debug|info|warn|error`,
//! default `info`) filters below-threshold events at the emit site.
//!
//! **The hot path never blocks.** [`event`] pushes the formatted line into
//! a bounded in-memory ring buffer under a `try_lock`; a background drain
//! thread moves lines to the file every few milliseconds. When the buffer
//! is full the oldest line is overwritten, and when the lock is contended
//! the line is discarded — either way [`dropped_events`] counts it
//! explicitly instead of stalling the caller. When `HKRR_LOG` is unset the
//! whole path is one relaxed atomic load, mirroring the `HKRR_TRACE`
//! contract.

use std::collections::VecDeque;
use std::fs::File;
use std::io::Write as _;
use std::path::Path;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, SystemTime, UNIX_EPOCH};

const STATE_UNKNOWN: u8 = 0;
const STATE_DISABLED: u8 = 1;
const STATE_ENABLED: u8 = 2;

/// Capacity of the in-memory ring buffer, in events.
pub const RING_CAPACITY: usize = 4096;

/// How often the background thread drains the ring to the sink.
const DRAIN_INTERVAL: Duration = Duration::from_millis(10);

static STATE: AtomicU8 = AtomicU8::new(STATE_UNKNOWN);
static SINK: OnceLock<LogSink> = OnceLock::new();
/// Events discarded because the ring was full or contended.
static DROPPED: AtomicU64 = AtomicU64::new(0);
/// Lines accepted into the ring (for [`flush`] bookkeeping).
static ACCEPTED: AtomicU64 = AtomicU64::new(0);
/// Lines written through to the sink.
static WRITTEN: AtomicU64 = AtomicU64::new(0);
static MIN_LEVEL: AtomicU8 = AtomicU8::new(Level::Info as u8);

struct LogSink {
    ring: Mutex<VecDeque<String>>,
    out: Mutex<Box<dyn std::io::Write + Send>>,
    capacity: usize,
}

/// Event severity, ordered `Debug < Info < Warn < Error`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    /// Development chatter, off by default.
    Debug = 0,
    /// Normal request/training milestones (the default threshold).
    Info = 1,
    /// Degraded-but-serving conditions (failover, partial fan-out).
    Warn = 2,
    /// Request failures and rejections.
    Error = 3,
}

impl Level {
    /// Stable lowercase name used in the JSON `level` field.
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Debug => "debug",
            Level::Info => "info",
            Level::Warn => "warn",
            Level::Error => "error",
        }
    }

    /// Parses an `HKRR_LOG_LEVEL`-style name (case-insensitive).
    pub fn parse(name: &str) -> Option<Level> {
        match name.to_ascii_lowercase().as_str() {
            "debug" => Some(Level::Debug),
            "info" => Some(Level::Info),
            "warn" => Some(Level::Warn),
            "error" => Some(Level::Error),
            _ => None,
        }
    }
}

fn init_locked(out: Box<dyn std::io::Write + Send>, capacity: usize) -> bool {
    if let Ok(raw) = std::env::var("HKRR_LOG_LEVEL") {
        if let Some(level) = Level::parse(&raw) {
            MIN_LEVEL.store(level as u8, Ordering::SeqCst);
        }
    }
    let installed = SINK
        .set(LogSink {
            ring: Mutex::new(VecDeque::with_capacity(capacity.min(1024))),
            out: Mutex::new(out),
            capacity,
        })
        .is_ok();
    if installed {
        STATE.store(STATE_ENABLED, Ordering::SeqCst);
        std::thread::Builder::new()
            .name("hkrr-log-drain".into())
            .spawn(drain_loop)
            .ok();
    }
    installed
}

fn open_out(path: &Path) -> std::io::Result<Box<dyn std::io::Write + Send>> {
    if path.as_os_str() == "stderr" {
        Ok(Box::new(std::io::stderr()))
    } else {
        Ok(Box::new(File::create(path)?))
    }
}

/// Route the event log to `path` (the literal string `stderr` selects the
/// process's standard error), independent of `HKRR_LOG`.
///
/// The sink is process-global and can only be installed once; returns
/// `Ok(false)` if the log was already initialized (the existing sink
/// stays), `Err` if the file cannot be created.
pub fn init_with_path(path: impl AsRef<Path>) -> std::io::Result<bool> {
    init_with_capacity(path, RING_CAPACITY)
}

/// [`init_with_path`] with an explicit ring capacity (tests use a tiny
/// ring to pin the overflow behaviour deterministically).
pub fn init_with_capacity(path: impl AsRef<Path>, capacity: usize) -> std::io::Result<bool> {
    if SINK.get().is_some() {
        return Ok(false);
    }
    let out = open_out(path.as_ref())?;
    Ok(init_locked(out, capacity.max(1)))
}

fn init_from_env() {
    match std::env::var_os("HKRR_LOG") {
        Some(path) if !path.is_empty() => match open_out(Path::new(&path)) {
            Ok(out) => {
                init_locked(out, RING_CAPACITY);
            }
            Err(_) => STATE.store(STATE_DISABLED, Ordering::SeqCst),
        },
        _ => STATE.store(STATE_DISABLED, Ordering::SeqCst),
    }
}

/// Whether events are currently being recorded.
pub fn enabled() -> bool {
    match STATE.load(Ordering::Relaxed) {
        STATE_ENABLED => true,
        STATE_DISABLED => false,
        _ => {
            init_from_env();
            STATE.load(Ordering::Relaxed) == STATE_ENABLED
        }
    }
}

/// Events discarded so far (ring overflow or lock contention) instead of
/// blocking an emitter. Exposed as the `hkrr_log_dropped_events` gauge on
/// metrics scrapes.
pub fn dropped_events() -> u64 {
    DROPPED.load(Ordering::Relaxed)
}

/// Drain the ring and flush the sink, blocking briefly until every
/// accepted event has been written (or ~2 s elapse). Call before process
/// exit; the background drain otherwise runs every few milliseconds.
pub fn flush() {
    let Some(sink) = SINK.get() else { return };
    drain_once(sink);
    let deadline = std::time::Instant::now() + Duration::from_secs(2);
    while WRITTEN.load(Ordering::SeqCst) < ACCEPTED.load(Ordering::SeqCst) {
        if std::time::Instant::now() > deadline {
            break;
        }
        drain_once(sink);
        std::thread::sleep(Duration::from_millis(1));
    }
    if let Ok(mut out) = sink.out.lock() {
        let _ = out.flush();
    }
}

fn drain_once(sink: &LogSink) {
    let batch: Vec<String> = {
        let Ok(mut ring) = sink.ring.lock() else {
            return;
        };
        ring.drain(..).collect()
    };
    if batch.is_empty() {
        return;
    }
    let n = batch.len() as u64;
    if let Ok(mut out) = sink.out.lock() {
        for line in &batch {
            let _ = writeln!(out, "{line}");
        }
        let _ = out.flush();
    }
    WRITTEN.fetch_add(n, Ordering::SeqCst);
}

fn drain_loop() {
    loop {
        std::thread::sleep(DRAIN_INTERVAL);
        if let Some(sink) = SINK.get() {
            drain_once(sink);
        }
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Start an event of `kind` at `level`. Returns an inert builder (no
/// allocation, no clock read) when the log is disabled or the level is
/// below the `HKRR_LOG_LEVEL` threshold; otherwise chain
/// [`EventBuilder::field`] / [`EventBuilder::num`] calls and finish with
/// [`EventBuilder::emit`].
pub fn event(level: Level, kind: &str) -> EventBuilder {
    if !enabled() || (level as u8) < MIN_LEVEL.load(Ordering::Relaxed) {
        return EventBuilder { line: None };
    }
    let ts_us = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_micros() as u64)
        .unwrap_or(0);
    let mut line = String::with_capacity(160);
    line.push_str(&format!(
        "{{\"ts_us\":{},\"level\":\"{}\",\"event\":\"{}\",\"pid\":{}",
        ts_us,
        level.as_str(),
        escape(kind),
        std::process::id()
    ));
    EventBuilder { line: Some(line) }
}

/// Accumulates one JSON-lines event; see [`event`].
pub struct EventBuilder {
    line: Option<String>,
}

impl EventBuilder {
    /// Append a string-valued field.
    pub fn field(mut self, key: &str, value: impl std::fmt::Display) -> Self {
        if let Some(line) = self.line.as_mut() {
            line.push_str(&format!(
                ",\"{}\":\"{}\"",
                escape(key),
                escape(&value.to_string())
            ));
        }
        self
    }

    /// Append a numeric field (rendered unquoted; the value must format
    /// as a valid JSON number).
    pub fn num(mut self, key: &str, value: impl std::fmt::Display) -> Self {
        if let Some(line) = self.line.as_mut() {
            line.push_str(&format!(",\"{}\":{}", escape(key), value));
        }
        self
    }

    /// Append the standard `trace_id` field (32 hex digits); skipped for
    /// the `0` "untraced" sentinel.
    pub fn trace(self, trace_id: u128) -> Self {
        if trace_id == 0 {
            return self;
        }
        self.field("trace_id", format_args!("{trace_id:032x}"))
    }

    /// Close the object and push it into the ring buffer. Never blocks:
    /// a full ring overwrites its oldest line and a contended ring lock
    /// discards this one, both counted by [`dropped_events`].
    pub fn emit(self) {
        let Some(mut line) = self.line else { return };
        line.push('}');
        let Some(sink) = SINK.get() else { return };
        match sink.ring.try_lock() {
            Ok(mut ring) => {
                if ring.len() >= sink.capacity {
                    ring.pop_front();
                    DROPPED.fetch_add(1, Ordering::Relaxed);
                    // The overwritten line was already counted as
                    // accepted; it will never be written.
                    WRITTEN.fetch_add(1, Ordering::SeqCst);
                }
                ring.push_back(line);
                ACCEPTED.fetch_add(1, Ordering::SeqCst);
            }
            Err(_) => {
                DROPPED.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}
