//! # hkrr_telemetry — offline observability substrate
//!
//! One crate, two instruments, zero dependencies:
//!
//! * **Metrics** — a process-global [`Registry`] of [`Counter`]s,
//!   [`Gauge`]s, and log-spaced-bucket [`Histogram`]s. Recording is
//!   lock-free atomics; [`Registry::render_prometheus`] exposes everything
//!   in Prometheus text exposition format, which the serving stack returns
//!   over the `HKRB` `metrics` (0x07) command so every shard server and
//!   the router are scrapeable in place.
//! * **Spans** — RAII [`trace::Span`] guards (via the [`span!`] macro)
//!   with monotonic microsecond timestamps and per-thread ids, written as
//!   Chrome trace-event JSON when `HKRR_TRACE=<path>` is set and compiled
//!   down to a relaxed atomic load when it is not. Spans can adopt a
//!   cross-process [`trace::TraceContext`] so `hkrr-serve trace-merge`
//!   stitches router and shard files into one causal timeline.
//! * **Events** — a leveled JSON-lines event log ([`log`]) behind
//!   `HKRR_LOG=<path|stderr>`: request outcomes and training milestones,
//!   buffered through a bounded non-blocking ring with an explicit
//!   [`log::dropped_events`] counter, and the same one-relaxed-load cost
//!   when disabled.
//!
//! See `docs/OBSERVABILITY.md` at the workspace root for the metric-name
//! catalog, the event-log schema, and the chrome://tracing workflow.

#![warn(missing_docs)]

pub mod log;
pub mod metrics;
pub mod registry;
pub mod trace;

pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot, HistogramSpec};
pub use registry::{global, Registry};

use std::sync::OnceLock;
use std::time::Instant;

/// Compile-time build identity: crate version plus an optional build stamp.
///
/// Construct with the [`build_info!`] macro so the *calling* crate's
/// version is captured.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BuildInfo {
    /// `CARGO_PKG_VERSION` of the crate that invoked [`build_info!`].
    pub version: &'static str,
    /// `HKRR_BUILD_STAMP` from the build environment (a CI run id, a
    /// date, a short commit hash — anything git-free), `"dev"` otherwise.
    pub stamp: &'static str,
}

impl std::fmt::Display for BuildInfo {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}+{}", self.version, self.stamp)
    }
}

/// Capture the calling crate's [`BuildInfo`] at compile time.
///
/// The stamp comes from the `HKRR_BUILD_STAMP` environment variable *at
/// compile time* (`option_env!`), defaulting to `"dev"` — deliberately
/// git-free so offline builds stay reproducible.
#[macro_export]
macro_rules! build_info {
    () => {
        $crate::BuildInfo {
            version: env!("CARGO_PKG_VERSION"),
            stamp: match option_env!("HKRR_BUILD_STAMP") {
                Some(s) => s,
                None => "dev",
            },
        }
    };
}

static PROCESS_START: OnceLock<Instant> = OnceLock::new();

/// The instant this process's telemetry first woke up.
///
/// Servers call this once at startup so [`uptime_seconds`] measures from
/// process start rather than from the first scrape.
pub fn process_start() -> Instant {
    *PROCESS_START.get_or_init(Instant::now)
}

/// Seconds since [`process_start`] was first called.
pub fn uptime_seconds() -> f64 {
    process_start().elapsed().as_secs_f64()
}

/// Register the standard process-identity series in `registry`:
/// `hkrr_build_info{version,stamp} 1` and an `hkrr_uptime_seconds` gauge
/// (refreshed to the current uptime on every call, so refresh it right
/// before rendering a scrape).
pub fn record_process_identity(registry: &Registry, build: BuildInfo) {
    record_process_identity_with(registry, build, &[]);
}

/// [`record_process_identity`] with extra `hkrr_build_info` labels.
///
/// This crate is dependency-free, so runtime facts owned by other layers
/// — the active dense backend, the factor-storage precision — are passed
/// in by the caller (the serve tier labels every scrape with both).
/// Registry series are idempotent by (name, sorted labels): call this
/// with the *same* extra label set on every scrape of a process.
pub fn record_process_identity_with(registry: &Registry, build: BuildInfo, extra: &[(&str, &str)]) {
    let mut labels: Vec<(&str, &str)> = vec![("version", build.version), ("stamp", build.stamp)];
    labels.extend_from_slice(extra);
    registry
        .gauge(
            "hkrr_build_info",
            "Build identity (constant 1; version/stamp/backend/precision in labels)",
            &labels,
        )
        .set(1.0);
    registry
        .gauge(
            "hkrr_uptime_seconds",
            "Seconds since process telemetry start",
            &[],
        )
        .set(uptime_seconds());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_info_macro_captures_this_crate() {
        let b = build_info!();
        assert_eq!(b.version, env!("CARGO_PKG_VERSION"));
        assert!(!b.stamp.is_empty());
        assert!(b.to_string().contains('+'));
    }

    #[test]
    fn process_identity_renders() {
        let r = Registry::new();
        record_process_identity(&r, build_info!());
        let text = r.render_prometheus();
        assert!(text.contains("hkrr_build_info{stamp="));
        assert!(text.contains("hkrr_uptime_seconds"));
    }

    #[test]
    fn uptime_is_monotonic() {
        let a = uptime_seconds();
        let b = uptime_seconds();
        assert!(b >= a);
    }
}
