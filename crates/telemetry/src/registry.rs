//! Process-global metric registry and Prometheus text exposition.
//!
//! Registration (`counter` / `gauge` / `histogram`) takes a short mutex to
//! get-or-insert the series and hands back an `Arc` to the instrument; hot
//! paths record through the `Arc` without ever touching the registry lock
//! again. Series are keyed by `(metric name, sorted label set)`, so two
//! engines in one process coexist under distinct `engine` labels and a
//! test can pick out exactly its own series from a scrape.

use crate::metrics::{Counter, Gauge, Histogram, HistogramSpec};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::{Arc, Mutex, OnceLock};

/// One registered instrument.
#[derive(Debug, Clone)]
enum Series {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

impl Series {
    fn kind(&self) -> &'static str {
        match self {
            Series::Counter(_) => "counter",
            Series::Gauge(_) => "gauge",
            Series::Histogram(_) => "histogram",
        }
    }
}

/// Sorted `(key, value)` label pairs — the series key within a family.
type LabelSet = Vec<(String, String)>;

#[derive(Debug, Default)]
struct Family {
    help: String,
    series: BTreeMap<LabelSet, Series>,
}

/// A named collection of metric families.
///
/// Most code uses the process-global instance via [`crate::global`]; tests
/// may build private registries to keep assertions hermetic.
#[derive(Debug, Default)]
pub struct Registry {
    families: Mutex<BTreeMap<String, Family>>,
}

fn validate_name(name: &str) {
    let ok = !name.is_empty()
        && name
            .chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':');
    assert!(ok, "invalid metric name {name:?}");
}

fn escape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out
}

fn label_set(labels: &[(&str, &str)]) -> LabelSet {
    let mut set: LabelSet = labels
        .iter()
        .map(|(k, v)| {
            validate_name(k);
            (k.to_string(), v.to_string())
        })
        .collect();
    set.sort();
    set.dedup_by(|a, b| a.0 == b.0);
    set
}

/// Render a sorted label set as Prometheus does: `{k="v",k2="v2"}`; the
/// empty string when there are no labels. `extra` (e.g. the histogram `le`
/// bound) is merged in keeping keys sorted.
fn render_labels(set: &LabelSet, extra: Option<(&str, &str)>) -> String {
    let mut pairs: Vec<(&str, &str)> = set.iter().map(|(k, v)| (k.as_str(), v.as_str())).collect();
    if let Some((k, v)) = extra {
        pairs.push((k, v));
        pairs.sort();
    }
    if pairs.is_empty() {
        return String::new();
    }
    let mut out = String::from("{");
    for (i, (k, v)) in pairs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{k}=\"{}\"", escape_label(v));
    }
    out.push('}');
    out
}

fn fmt_value(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn register(&self, name: &str, help: &str, labels: &[(&str, &str)], make: Series) -> Series {
        validate_name(name);
        let key = label_set(labels);
        let mut fams = self.families.lock().unwrap();
        let fam = fams.entry(name.to_string()).or_insert_with(|| Family {
            help: help.to_string(),
            series: BTreeMap::new(),
        });
        let existing = fam.series.entry(key).or_insert_with(|| make.clone());
        assert!(
            existing.kind() == make.kind(),
            "metric {name} already registered as a {}",
            existing.kind()
        );
        existing.clone()
    }

    /// Get or register a counter series.
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        match self.register(
            name,
            help,
            labels,
            Series::Counter(Arc::new(Counter::new())),
        ) {
            Series::Counter(c) => c,
            _ => unreachable!(),
        }
    }

    /// Get or register a gauge series.
    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        match self.register(name, help, labels, Series::Gauge(Arc::new(Gauge::new()))) {
            Series::Gauge(g) => g,
            _ => unreachable!(),
        }
    }

    /// Get or register a histogram series with the given bucket ladder.
    pub fn histogram(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        spec: &HistogramSpec,
    ) -> Arc<Histogram> {
        match self.register(
            name,
            help,
            labels,
            Series::Histogram(Arc::new(Histogram::new(spec))),
        ) {
            Series::Histogram(h) => h,
            _ => unreachable!(),
        }
    }

    /// Render every family in Prometheus text exposition format.
    ///
    /// Counters and histogram `_count`/`_bucket` values are exact integers;
    /// histogram buckets are rendered cumulatively with a final `+Inf`
    /// bucket equal to `_count`.
    pub fn render_prometheus(&self) -> String {
        let fams = self.families.lock().unwrap();
        let mut out = String::new();
        for (name, fam) in fams.iter() {
            let kind = match fam.series.values().next() {
                Some(s) => s.kind(),
                None => continue,
            };
            let _ = writeln!(out, "# HELP {name} {}", fam.help.replace('\n', " "));
            let _ = writeln!(out, "# TYPE {name} {kind}");
            for (labels, series) in fam.series.iter() {
                let plain = render_labels(labels, None);
                match series {
                    Series::Counter(c) => {
                        let _ = writeln!(out, "{name}{plain} {}", c.get());
                    }
                    Series::Gauge(g) => {
                        let _ = writeln!(out, "{name}{plain} {}", fmt_value(g.get()));
                    }
                    Series::Histogram(h) => {
                        let snap = h.snapshot();
                        let mut cum = 0u64;
                        for (i, b) in snap.bounds.iter().enumerate() {
                            cum += snap.counts[i];
                            let ls = render_labels(labels, Some(("le", &b.to_string())));
                            let _ = writeln!(out, "{name}_bucket{ls} {cum}");
                        }
                        let ls = render_labels(labels, Some(("le", "+Inf")));
                        let _ = writeln!(out, "{name}_bucket{ls} {}", snap.count);
                        let _ = writeln!(out, "{name}_sum{plain} {}", snap.sum);
                        let _ = writeln!(out, "{name}_count{plain} {}", snap.count);
                    }
                }
            }
        }
        out
    }
}

static GLOBAL: OnceLock<Registry> = OnceLock::new();

/// The process-global registry every subsystem registers into.
pub fn global() -> &'static Registry {
    GLOBAL.get_or_init(Registry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_or_register_returns_the_same_instrument() {
        let r = Registry::new();
        let a = r.counter("hkrr_test_total", "help", &[("engine", "e1")]);
        let b = r.counter("hkrr_test_total", "help", &[("engine", "e1")]);
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        let other = r.counter("hkrr_test_total", "help", &[("engine", "e2")]);
        assert_eq!(other.get(), 0);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let r = Registry::new();
        r.counter("hkrr_kind", "help", &[]);
        r.gauge("hkrr_kind", "help", &[]);
    }

    #[test]
    fn prometheus_rendering_shape() {
        let r = Registry::new();
        r.counter("hkrr_reqs_total", "requests", &[("engine", "e1")])
            .add(7);
        r.gauge("hkrr_queue_depth", "depth", &[]).set(3.0);
        let h = r.histogram(
            "hkrr_lat_micros",
            "latency",
            &[("engine", "e1")],
            &HistogramSpec {
                first: 10,
                growth: 10.0,
                buckets: 2,
            },
        );
        h.record(5);
        h.record(50);
        h.record(5000);
        let text = r.render_prometheus();
        assert!(text.contains("# TYPE hkrr_reqs_total counter"));
        assert!(text.contains("hkrr_reqs_total{engine=\"e1\"} 7"));
        assert!(text.contains("hkrr_queue_depth 3"));
        assert!(text.contains("hkrr_lat_micros_bucket{engine=\"e1\",le=\"10\"} 1"));
        assert!(text.contains("hkrr_lat_micros_bucket{engine=\"e1\",le=\"100\"} 2"));
        assert!(text.contains("hkrr_lat_micros_bucket{engine=\"e1\",le=\"+Inf\"} 3"));
        assert!(text.contains("hkrr_lat_micros_sum{engine=\"e1\"} 5055"));
        assert!(text.contains("hkrr_lat_micros_count{engine=\"e1\"} 3"));
    }
}
