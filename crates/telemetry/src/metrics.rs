//! The three metric primitives: [`Counter`], [`Gauge`], and the
//! log-spaced-bucket [`Histogram`].
//!
//! Recording is lock-free (plain atomic RMW ops, `SeqCst`); the sequential
//! consistency is what lets callers establish cross-metric invariants such
//! as the serving engine's "`requests` is bumped before the batch-size
//! histogram records the same rows, so a reader that snapshots the
//! histogram first can never observe `sum(batch sizes) > requests`".
//!
//! Histograms record **integer** values (microseconds, row counts) into
//! integer bucket bounds, so a snapshot of a fixed recording sequence is
//! bitwise identical regardless of how many threads produced it — there is
//! no float accumulation order to diverge.

use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonically increasing `u64` counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A counter starting at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::SeqCst);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::SeqCst)
    }
}

/// A gauge holding an `f64` (stored as bits in an `AtomicU64`).
///
/// Covers both integer instruments (queue depth) and float ones
/// (uptime seconds). `add`/`sub` are CAS loops — fine at the rates
/// gauges move in this workspace.
#[derive(Debug, Default)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Gauge {
    /// A gauge starting at `0.0`.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the gauge to `v`.
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::SeqCst);
    }

    /// Add `d` (may be negative).
    pub fn add(&self, d: f64) {
        let mut cur = self.bits.load(Ordering::SeqCst);
        loop {
            let next = (f64::from_bits(cur) + d).to_bits();
            match self
                .bits
                .compare_exchange(cur, next, Ordering::SeqCst, Ordering::SeqCst)
            {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Subtract `d`.
    pub fn sub(&self, d: f64) {
        self.add(-d);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::SeqCst))
    }
}

/// Shape of a histogram's fixed, log-spaced bucket ladder.
///
/// Bucket `i` covers values `v <= first * growth^i` (inclusive upper
/// bounds, computed once at construction and rounded to integers, strictly
/// increasing); one implicit overflow bucket catches everything above the
/// last bound. Values therefore never saturate silently — they land in the
/// rendered `+Inf` bucket.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSpec {
    /// Upper bound of the first bucket.
    pub first: u64,
    /// Multiplicative step between consecutive bounds (`> 1.0`).
    pub growth: f64,
    /// Number of finite buckets (the `+Inf` overflow bucket is extra).
    pub buckets: usize,
}

impl HistogramSpec {
    /// Ladder for request/phase latencies recorded in microseconds:
    /// 24 doubling buckets from 50 µs to ~7 minutes.
    pub fn latency_micros() -> Self {
        Self {
            first: 50,
            growth: 2.0,
            buckets: 24,
        }
    }

    /// Ladder for batch/row counts: 12 doubling buckets from 1 to 2048.
    pub fn batch_rows() -> Self {
        Self {
            first: 1,
            growth: 2.0,
            buckets: 12,
        }
    }

    /// The concrete inclusive upper bounds this spec produces.
    pub fn bounds(&self) -> Vec<u64> {
        assert!(self.buckets > 0, "histogram needs at least one bucket");
        assert!(self.growth > 1.0, "histogram growth must exceed 1.0");
        let mut bounds = Vec::with_capacity(self.buckets);
        let mut prev = 0u64;
        for i in 0..self.buckets {
            let raw = (self.first as f64 * self.growth.powi(i as i32)).round() as u64;
            let b = raw.max(prev + 1);
            bounds.push(b);
            prev = b;
        }
        bounds
    }
}

/// Lock-free histogram over `u64` values with log-spaced buckets.
///
/// `record` touches only atomics; `snapshot` retries a bounded number of
/// times until the total count is stable across the read, giving a
/// consistent point-in-time view under quiescence (and a best-effort one
/// under live traffic).
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<u64>,
    /// `bounds.len() + 1` slots; the last is the overflow (`+Inf`) bucket.
    counts: Vec<AtomicU64>,
    sum: AtomicU64,
    max: AtomicU64,
    count: AtomicU64,
}

impl Histogram {
    /// An empty histogram with the given bucket ladder.
    pub fn new(spec: &HistogramSpec) -> Self {
        let bounds = spec.bounds();
        let counts = (0..bounds.len() + 1).map(|_| AtomicU64::new(0)).collect();
        Self {
            bounds,
            counts,
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }

    /// The inclusive upper bounds of the finite buckets.
    pub fn bounds(&self) -> &[u64] {
        &self.bounds
    }

    /// Record one observation.
    pub fn record(&self, v: u64) {
        let idx = match self.bounds.iter().position(|&b| v <= b) {
            Some(i) => i,
            None => self.bounds.len(),
        };
        self.counts[idx].fetch_add(1, Ordering::SeqCst);
        self.sum.fetch_add(v, Ordering::SeqCst);
        self.max.fetch_max(v, Ordering::SeqCst);
        // `count` is bumped last so `count <= Σ bucket counts` always holds
        // for a reader that loads `count` first.
        self.count.fetch_add(1, Ordering::SeqCst);
    }

    /// Record a signed observation, clamping negatives to zero.
    pub fn record_clamped(&self, v: i64) {
        self.record(v.max(0) as u64);
    }

    /// Record a duration in whole microseconds.
    pub fn record_duration(&self, d: std::time::Duration) {
        self.record(d.as_micros().min(u64::MAX as u128) as u64);
    }

    /// Total of all recorded values.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::SeqCst)
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::SeqCst)
    }

    /// Largest value recorded so far (0 when empty).
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::SeqCst)
    }

    /// Consistent point-in-time snapshot.
    pub fn snapshot(&self) -> HistogramSnapshot {
        for _ in 0..8 {
            let before = self.count.load(Ordering::SeqCst);
            let snap = self.read_once();
            let after = self.count.load(Ordering::SeqCst);
            if before == after {
                return snap;
            }
        }
        // Constant traffic: settle for the freshest single read rather
        // than livelock.
        self.read_once()
    }

    fn read_once(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            bounds: self.bounds.clone(),
            counts: self
                .counts
                .iter()
                .map(|c| c.load(Ordering::SeqCst))
                .collect(),
            sum: self.sum.load(Ordering::SeqCst),
            max: self.max.load(Ordering::SeqCst),
            count: self.count.load(Ordering::SeqCst),
        }
    }
}

/// Owned copy of a histogram's state at one point in time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Inclusive upper bounds of the finite buckets.
    pub bounds: Vec<u64>,
    /// Per-bucket counts; the extra last slot is the overflow bucket.
    pub counts: Vec<u64>,
    /// Total of all recorded values.
    pub sum: u64,
    /// Largest recorded value (0 when empty).
    pub max: u64,
    /// Number of observations.
    pub count: u64,
}

impl HistogramSnapshot {
    /// Mean of the recorded values (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Estimate the `q`-quantile (`0.0..=1.0`) from the bucket counts.
    ///
    /// Returns the upper bound of the bucket holding the quantile rank
    /// (conservative: true quantile is `<=` the estimate); the overflow
    /// bucket reports the recorded max. 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= rank {
                return if i < self.bounds.len() {
                    self.bounds[i]
                } else {
                    self.max
                };
            }
        }
        self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);

        let g = Gauge::new();
        g.set(3.5);
        g.add(1.0);
        g.sub(0.5);
        assert_eq!(g.get(), 4.0);
    }

    #[test]
    fn bounds_are_strictly_increasing_even_under_rounding() {
        let spec = HistogramSpec {
            first: 1,
            growth: 1.1,
            buckets: 10,
        };
        let b = spec.bounds();
        assert_eq!(b.len(), 10);
        for w in b.windows(2) {
            assert!(w[0] < w[1], "bounds must strictly increase: {b:?}");
        }
    }

    #[test]
    fn quantile_is_bucket_upper_bound() {
        let h = Histogram::new(&HistogramSpec {
            first: 10,
            growth: 2.0,
            buckets: 4,
        });
        for v in [1, 5, 10, 11, 20, 40] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 6);
        assert_eq!(s.sum, 87);
        assert_eq!(s.quantile(0.5), 10); // 3rd of 6 sits in the first bucket
        assert_eq!(s.quantile(1.0), 40);
    }
}
