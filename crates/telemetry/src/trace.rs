//! Lightweight span tracing with Chrome trace-event output.
//!
//! A span is an RAII guard: [`span`] (or the [`crate::span!`] macro)
//! captures a monotonic start timestamp, and dropping the guard writes one
//! Chrome *complete* event (`"ph":"X"`) — name, start, duration in
//! microseconds, process id, and a small dense thread id — as a JSON line
//! into the trace file. Load the file in `chrome://tracing` (or Perfetto)
//! to see per-thread flame charts of training phases, routing, and shard
//! dispatch.
//!
//! The sink is process-global and initialized once: explicitly with
//! [`init_with_path`], or lazily from the `HKRR_TRACE=<path>` environment
//! variable the first time a span is opened. When tracing is disabled the
//! whole path is one relaxed atomic load and no clock read — cheap enough
//! to leave `span!` in hot training loops.

use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

const STATE_UNKNOWN: u8 = 0;
const STATE_DISABLED: u8 = 1;
const STATE_ENABLED: u8 = 2;

static STATE: AtomicU8 = AtomicU8::new(STATE_UNKNOWN);
static SINK: OnceLock<Sink> = OnceLock::new();
static NEXT_TID: AtomicU64 = AtomicU64::new(1);
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);
static NEXT_TRACE_SEQ: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static TID: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
}

struct Sink {
    out: Mutex<BufWriter<File>>,
    epoch: Instant,
}

/// A request-scoped trace identity carried across process boundaries.
///
/// The router mints one per inbound query ([`mint_trace_id`]), stamps its
/// own spans with it, and forwards it to shard replicas inside the
/// `OP_PREDICT_TRACED` frame; the shard engine adopts it so the merged
/// timeline groups every process's spans under one id. `trace_id == 0`
/// means "no trace context" and is never minted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceContext {
    /// Globally-unique request id (hex-rendered in trace args).
    pub trace_id: u128,
    /// Span id of the caller's span, `0` for a root.
    pub parent_span: u64,
}

impl TraceContext {
    /// A freshly-minted root context (no parent span).
    pub fn mint() -> TraceContext {
        TraceContext {
            trace_id: mint_trace_id(),
            parent_span: 0,
        }
    }
}

/// Mint a trace id unique across the processes of one dbench-style run.
///
/// Zero-dependency construction: process id, a per-process random-ish seed
/// from the wall clock at first use, and a monotone sequence number. Never
/// returns `0` (the "untraced" sentinel). Works whether or not span
/// tracing is enabled — the id also travels the wire protocol.
pub fn mint_trace_id() -> u128 {
    static SEED: OnceLock<u64> = OnceLock::new();
    let seed = *SEED.get_or_init(|| {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.subsec_nanos() as u64 ^ (d.as_secs() << 32))
            .unwrap_or(0x9e37_79b9);
        nanos ^ ((std::process::id() as u64) << 17)
    });
    let seq = NEXT_TRACE_SEQ.fetch_add(1, Ordering::Relaxed);
    let id =
        ((std::process::id() as u128) << 96) | ((seed as u128) << 32) | (seq as u128 & 0xffff_ffff);
    if id == 0 {
        1
    } else {
        id
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

fn init_locked(path: &Path) -> std::io::Result<bool> {
    let file = File::create(path)?;
    let mut w = BufWriter::new(file);
    // Chrome's JSON-array trace format tolerates a missing closing `]` and
    // trailing commas, so each event can be appended as a complete line
    // and the file stays loadable even if the process dies mid-run.
    writeln!(w, "[")?;
    let installed = SINK
        .set(Sink {
            out: Mutex::new(w),
            epoch: Instant::now(),
        })
        .is_ok();
    STATE.store(
        if installed {
            STATE_ENABLED
        } else {
            STATE.load(Ordering::SeqCst)
        },
        Ordering::SeqCst,
    );
    Ok(installed)
}

/// Route trace output to `path`, independent of `HKRR_TRACE`.
///
/// The sink is process-global and can only be installed once; returns
/// `Ok(false)` if tracing was already initialized (the existing sink
/// stays), `Err` if the file cannot be created.
pub fn init_with_path(path: impl AsRef<Path>) -> std::io::Result<bool> {
    if SINK.get().is_some() {
        return Ok(false);
    }
    init_locked(path.as_ref())
}

fn init_from_env() {
    match std::env::var_os("HKRR_TRACE") {
        Some(path) if !path.is_empty() => {
            if init_locked(Path::new(&path)).is_err() {
                STATE.store(STATE_DISABLED, Ordering::SeqCst);
            }
        }
        _ => STATE.store(STATE_DISABLED, Ordering::SeqCst),
    }
}

/// Whether spans are currently being recorded.
pub fn enabled() -> bool {
    match STATE.load(Ordering::Relaxed) {
        STATE_ENABLED => true,
        STATE_DISABLED => false,
        _ => {
            init_from_env();
            STATE.load(Ordering::Relaxed) == STATE_ENABLED
        }
    }
}

/// Flush buffered trace events to disk.
pub fn flush() {
    if let Some(sink) = SINK.get() {
        let _ = sink.out.lock().unwrap().flush();
    }
}

/// An in-flight span; dropping it writes the trace event.
///
/// When tracing is disabled the guard is inert (no allocation, no clock
/// read at drop).
pub struct Span {
    inner: Option<ActiveSpan>,
}

struct ActiveSpan {
    name: String,
    start_us: u64,
    span_id: u64,
    trace: Option<TraceContext>,
    args: Vec<(String, String)>,
}

/// Open a span named `name`. Prefer the [`crate::span!`] macro.
pub fn span(name: &str) -> Span {
    if !enabled() {
        return Span { inner: None };
    }
    let sink = SINK.get().expect("enabled() implies an installed sink");
    Span {
        inner: Some(ActiveSpan {
            name: name.to_string(),
            start_us: sink.epoch.elapsed().as_micros() as u64,
            span_id: NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed),
            trace: None,
            args: Vec::new(),
        }),
    }
}

/// [`span`] over lazily-formatted arguments: nothing is formatted or
/// allocated when tracing is disabled. Used by the [`crate::span!`] macro.
pub fn span_fmt(args: std::fmt::Arguments<'_>) -> Span {
    if !enabled() {
        return Span { inner: None };
    }
    span(&args.to_string())
}

impl Span {
    /// Attach a key/value argument shown in the trace viewer's detail
    /// pane (e.g. the PCG iteration count, known only at span end).
    pub fn annotate(&mut self, key: &str, value: impl std::fmt::Display) {
        if let Some(active) = self.inner.as_mut() {
            active.args.push((key.to_string(), value.to_string()));
        }
    }

    /// Stamp this span with a cross-process [`TraceContext`]; the event's
    /// `args` gain `trace_id` (32-hex-digit), `span_id`, and (when the
    /// caller's span is known) `parent_span`, which `trace-merge` uses to
    /// stitch per-process files into one causal timeline. No-op when
    /// tracing is disabled.
    pub fn adopt(&mut self, ctx: TraceContext) {
        if let Some(active) = self.inner.as_mut() {
            active.trace = Some(ctx);
        }
    }

    /// This span's process-unique id (`0` when tracing is disabled).
    /// Pass it as `parent_span` in the [`TraceContext`] handed to callees.
    pub fn id(&self) -> u64 {
        self.inner.as_ref().map_or(0, |a| a.span_id)
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(active) = self.inner.take() else {
            return;
        };
        let Some(sink) = SINK.get() else { return };
        let end_us = sink.epoch.elapsed().as_micros() as u64;
        let dur = end_us.saturating_sub(active.start_us);
        let tid = TID.with(|t| *t);
        let mut args = String::new();
        if !active.args.is_empty() || active.trace.is_some() {
            args.push_str(",\"args\":{");
            let mut first = true;
            if let Some(ctx) = active.trace {
                args.push_str(&format!(
                    "\"trace_id\":\"{:032x}\",\"span_id\":\"{}\"",
                    ctx.trace_id, active.span_id
                ));
                if ctx.parent_span != 0 {
                    args.push_str(&format!(",\"parent_span\":\"{}\"", ctx.parent_span));
                }
                first = false;
            }
            for (k, v) in active.args.iter() {
                if !first {
                    args.push(',');
                }
                first = false;
                args.push_str(&format!("\"{}\":\"{}\"", escape(k), escape(v)));
            }
            args.push('}');
        }
        let line = format!(
            "{{\"name\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":{},\"tid\":{}{}}},",
            escape(&active.name),
            active.start_us,
            dur,
            std::process::id(),
            tid,
            args
        );
        let mut out = sink.out.lock().unwrap();
        let _ = writeln!(out, "{line}");
    }
}

/// Open an RAII trace span.
///
/// ```
/// let mut _span = hkrr_telemetry::span!("train.pcg");
/// // ... work ...
/// _span.annotate("iterations", 42);
/// // event written when `_span` drops
/// ```
///
/// With format arguments: `span!("shard.dispatch: {addr}")`.
#[macro_export]
macro_rules! span {
    ($($fmt:tt)+) => {
        $crate::trace::span_fmt(format_args!($($fmt)+))
    };
}
