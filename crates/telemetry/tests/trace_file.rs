//! Trace sink end to end: spans from several threads land in one Chrome
//! trace file with per-thread ids, durations, and annotated args.
//!
//! One test function only — the sink is process-global and can be
//! installed once per process, which is exactly the production contract.

use std::path::PathBuf;

fn temp_trace_path() -> PathBuf {
    std::env::temp_dir().join(format!("hkrr_trace_test_{}.json", std::process::id()))
}

#[test]
fn spans_from_many_threads_write_chrome_trace_events() {
    let path = temp_trace_path();
    assert!(
        hkrr_telemetry::trace::init_with_path(&path).unwrap(),
        "sink must install into a fresh process"
    );
    assert!(hkrr_telemetry::trace::enabled());

    {
        let mut outer = hkrr_telemetry::span!("test.outer");
        outer.annotate("iterations", 42);
        std::thread::scope(|s| {
            for i in 0..3 {
                s.spawn(move || {
                    let _inner = hkrr_telemetry::span!("test.worker {i}");
                });
            }
        });
    }
    hkrr_telemetry::trace::flush();

    let text = std::fs::read_to_string(&path).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines[0], "[", "file opens a JSON array");
    // 1 outer + 3 worker spans.
    let events: Vec<&str> = lines[1..].to_vec();
    assert_eq!(events.len(), 4, "one line per span: {text}");
    for e in &events {
        assert!(e.starts_with('{') && e.ends_with("},"), "event line: {e}");
        for field in [
            "\"name\":",
            "\"ph\":\"X\"",
            "\"ts\":",
            "\"dur\":",
            "\"pid\":",
            "\"tid\":",
        ] {
            assert!(e.contains(field), "missing {field} in {e}");
        }
        // Each event line (comma stripped) is standalone JSON.
        hkrr_bench::json::validate(&e[..e.len() - 1]).unwrap();
    }
    assert!(
        text.contains("\"args\":{\"iterations\":\"42\"}"),
        "annotation must be exported"
    );
    // The three workers ran on distinct threads, none on the outer's.
    let tids: std::collections::BTreeSet<&str> = events
        .iter()
        .map(|e| {
            let at = e.find("\"tid\":").unwrap() + 6;
            e[at..].split(|c: char| !c.is_ascii_digit()).next().unwrap()
        })
        .collect();
    assert!(
        tids.len() >= 2,
        "expected multiple thread ids, got {tids:?}"
    );

    // A second init is refused but harmless.
    assert!(!hkrr_telemetry::trace::init_with_path(&path).unwrap());
    std::fs::remove_file(&path).ok();
}
