//! Event log end to end: events emitted from several threads land as one
//! valid JSON object per line, below-threshold levels are filtered at the
//! emit site, and nothing is silently lost — every emitted event either
//! reaches the file or is counted by `dropped_events`.
//!
//! One test function only — the sink is process-global and can be
//! installed once per process, which is exactly the production contract
//! (the overflow and disabled paths live in their own test binaries).

use hkrr_telemetry::log::{self, Level};

#[test]
fn concurrent_emitters_write_valid_json_lines() {
    let path = std::env::temp_dir().join(format!("hkrr_event_log_{}.jsonl", std::process::id()));
    assert!(
        log::init_with_path(&path).unwrap(),
        "sink must install into a fresh process"
    );
    assert!(log::enabled());

    const THREADS: usize = 4;
    const PER_THREAD: usize = 64;
    std::thread::scope(|s| {
        for t in 0..THREADS {
            s.spawn(move || {
                for i in 0..PER_THREAD {
                    log::event(Level::Info, "test.request")
                        .trace((t * PER_THREAD + i) as u128 + 1)
                        .field("outcome", "ok")
                        .num("latency_us", 100 + i)
                        .emit();
                }
            });
        }
    });
    // Below the default info threshold: filtered before formatting.
    log::event(Level::Debug, "test.invisible")
        .field("k", "v")
        .emit();
    log::flush();

    let text = std::fs::read_to_string(&path).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    // The never-blocks contract: emitted = written + explicitly dropped.
    assert_eq!(
        lines.len() as u64 + log::dropped_events(),
        (THREADS * PER_THREAD) as u64,
        "every event must be written or counted as dropped"
    );
    assert!(
        !text.contains("test.invisible"),
        "debug filtered by default"
    );
    for line in &lines {
        hkrr_bench::json::validate(line).unwrap_or_else(|e| panic!("bad line {line}: {e}"));
        for field in [
            "\"ts_us\":",
            "\"level\":\"info\"",
            "\"event\":\"test.request\"",
            "\"pid\":",
            "\"trace_id\":\"",
            "\"outcome\":\"ok\"",
            "\"latency_us\":",
        ] {
            assert!(line.contains(field), "missing {field} in {line}");
        }
    }
    // Trace ids render as the full 32 hex digits, joinable against the
    // span timeline's args.
    assert!(text.contains(&format!("\"trace_id\":\"{:032x}\"", 1u128)));

    // A second init is refused but harmless.
    assert!(!log::init_with_path(&path).unwrap());
    std::fs::remove_file(&path).ok();
}
