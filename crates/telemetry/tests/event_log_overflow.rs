//! Ring-overflow behaviour of the event log, pinned with a deliberately
//! tiny ring: a burst far larger than the ring must never block the
//! emitter — the oldest lines are overwritten and counted by
//! `dropped_events`, and the written + dropped totals account for every
//! emitted event.
//!
//! Own test binary: the sink (and its capacity) is process-global.

use hkrr_telemetry::log::{self, Level};
use std::time::{Duration, Instant};

#[test]
fn ring_overflow_drops_oldest_and_counts_instead_of_blocking() {
    let path =
        std::env::temp_dir().join(format!("hkrr_event_overflow_{}.jsonl", std::process::id()));
    assert!(log::init_with_capacity(&path, 2).unwrap());

    const EMITTED: u64 = 200;
    let start = Instant::now();
    for i in 0..EMITTED {
        log::event(Level::Warn, "test.flood").num("i", i).emit();
    }
    // The whole burst is in-memory pushes; even one blocking write to a
    // cold file would blow this budget.
    assert!(
        start.elapsed() < Duration::from_secs(1),
        "emitters must not block on a full ring"
    );
    log::flush();

    let dropped = log::dropped_events();
    assert!(
        dropped > 0,
        "a 2-slot ring under a {EMITTED}-event burst must overflow"
    );
    let text = std::fs::read_to_string(&path).unwrap();
    let written = text.lines().count() as u64;
    assert_eq!(
        written + dropped,
        EMITTED,
        "every event is either written or explicitly dropped"
    );
    // Whatever survived is still well-formed, one object per line.
    for line in text.lines() {
        hkrr_bench::json::validate(line).unwrap_or_else(|e| panic!("bad line {line}: {e}"));
        assert!(line.contains("\"event\":\"test.flood\""));
    }
    std::fs::remove_file(&path).ok();
}
