//! Histogram edge behavior (satellite pin): bucket boundary values,
//! zero/negative clamping, top-bucket overflow, and bitwise-identical
//! snapshots across thread counts for a fixed recording sequence.

use hkrr_telemetry::{Histogram, HistogramSpec};
use std::sync::Arc;

fn spec() -> HistogramSpec {
    HistogramSpec {
        first: 10,
        growth: 2.0,
        buckets: 4, // bounds 10, 20, 40, 80 (+Inf overflow)
    }
}

#[test]
fn boundary_values_land_in_the_lower_bucket() {
    let h = Histogram::new(&spec());
    assert_eq!(h.bounds(), &[10, 20, 40, 80]);
    // Inclusive upper bounds: a value exactly on a bound stays in that
    // bucket; one past it moves up.
    for v in [10, 20, 40, 80] {
        h.record(v);
    }
    for v in [11, 21, 41] {
        h.record(v);
    }
    let s = h.snapshot();
    assert_eq!(s.counts, vec![1, 2, 2, 2, 0]);
    assert_eq!(s.count, 7);
}

#[test]
fn zero_and_negative_observations_clamp_into_the_first_bucket() {
    let h = Histogram::new(&spec());
    h.record(0);
    h.record_clamped(-5);
    h.record_clamped(-1);
    h.record_clamped(15);
    let s = h.snapshot();
    assert_eq!(s.counts[0], 3, "0 and clamped negatives share bucket 0");
    assert_eq!(s.counts[1], 1);
    assert_eq!(s.sum, 15, "clamped values contribute 0 to the sum");
    assert_eq!(s.max, 15);
}

#[test]
fn values_above_the_ladder_overflow_without_saturating_the_sum() {
    let h = Histogram::new(&spec());
    h.record(81);
    h.record(1_000_000);
    h.record(u64::MAX / 4);
    let s = h.snapshot();
    assert_eq!(s.counts, vec![0, 0, 0, 0, 3], "all land in +Inf");
    assert_eq!(s.sum, 81 + 1_000_000 + u64::MAX / 4);
    assert_eq!(s.max, u64::MAX / 4);
    assert_eq!(s.quantile(0.99), s.max, "overflow quantile reports max");
}

#[test]
fn snapshots_are_bitwise_identical_across_thread_counts() {
    // The same multiset of observations must produce the same snapshot no
    // matter how many threads recorded it — integer sums and counts have
    // no accumulation order to diverge.
    let values: Vec<u64> = (0..10_000).map(|i| (i * 7919) % 500).collect();
    let mut reference = None;
    for threads in [1usize, 2, 4, 8] {
        let h = Arc::new(Histogram::new(&spec()));
        let chunk = values.len().div_ceil(threads);
        std::thread::scope(|s| {
            for part in values.chunks(chunk) {
                let h = Arc::clone(&h);
                s.spawn(move || {
                    for &v in part {
                        h.record(v);
                    }
                });
            }
        });
        let snap = h.snapshot();
        match &reference {
            None => reference = Some(snap),
            Some(r) => assert_eq!(
                &snap, r,
                "snapshot diverged between 1 and {threads} threads"
            ),
        }
    }
}
