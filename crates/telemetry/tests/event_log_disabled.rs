//! The disabled path of the event log: with `HKRR_LOG` unset nothing is
//! installed, builders are inert no-ops, and after the first probe the
//! `enabled()` check settles to a single relaxed atomic load — cheap
//! enough for per-request call sites in the serve hot path.
//!
//! Own test binary: the first `enabled()` probe latches the process-global
//! state off the environment.

use hkrr_telemetry::log::{self, Level};

#[test]
fn unset_env_disables_the_log_path() {
    std::env::remove_var("HKRR_LOG");
    assert!(!log::enabled());

    // Builders are inert — chaining and emitting is a no-op, not an error,
    // and nothing is counted as dropped (nothing was accepted).
    log::event(Level::Error, "test.ignored")
        .field("k", "v")
        .num("n", 1)
        .trace(7)
        .emit();
    assert!(!log::enabled());
    assert_eq!(log::dropped_events(), 0);

    // The settled check is one relaxed load: a million probes stay well
    // under a generous wall-clock budget even on a busy CI core.
    let start = std::time::Instant::now();
    let mut any = false;
    for _ in 0..1_000_000 {
        any |= log::enabled();
    }
    assert!(!any);
    assert!(
        start.elapsed() < std::time::Duration::from_secs(1),
        "disabled-path enabled() must be a relaxed load, not an env probe"
    );
}
