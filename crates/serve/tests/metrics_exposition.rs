//! End-to-end telemetry integration: a live server's `metrics` scrape must
//! be valid Prometheus exposition whose engine counters agree **exactly**
//! with what the load generator observed from the client side.

use hkrr_core::{DecisionModel, KrrConfig, KrrModel, SolverKind};
use hkrr_datasets::registry::LETTER;
use hkrr_serve::client::Client;
use hkrr_serve::engine::EngineConfig;
use hkrr_serve::loadgen::{self, LoadgenConfig};
use hkrr_serve::server::{Server, ServerConfig};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;

#[test]
fn scrape_agrees_exactly_with_loadgen_observed_counts() {
    let ds = hkrr_datasets::generate(&LETTER, 200, 20, 7);
    let cfg = KrrConfig {
        h: LETTER.default_h,
        lambda: LETTER.default_lambda,
        solver: SolverKind::Hss,
        ..KrrConfig::default()
    };
    let model = Arc::new(KrrModel::fit(&ds.train, &ds.train_labels, &cfg).unwrap());
    let server = Server::start(
        model as Arc<dyn DecisionModel>,
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            engine: EngineConfig {
                workers: 2,
                ..EngineConfig::default()
            },
        },
    )
    .unwrap();
    let addr = server.local_addr().to_string();
    let engine_label = format!("e{}", server.stats().engine_id);
    let labels = [("engine", engine_label.as_str())];

    let report = loadgen::run(&LoadgenConfig {
        addr: addr.clone(),
        requests: 120,
        concurrency: 4,
        seed: 0xfeed,
        traced: true,
    })
    .unwrap();
    assert_eq!(report.ok, 120, "all queries must succeed");

    // The scrape is valid exposition …
    let text = Client::connect(&addr).unwrap().metrics().unwrap();
    let scrape = hkrr_bench::prom::validate(&text).unwrap();

    // … and this engine's counters agree exactly with the client's view.
    assert_eq!(
        scrape.counter("hkrr_engine_requests_total", &labels),
        report.ok as u64
    );
    let latency = scrape
        .histogram("hkrr_engine_request_latency_micros", &labels)
        .expect("latency histogram must be exposed");
    assert_eq!(latency.count, report.ok as u64);
    let batch = scrape
        .histogram("hkrr_engine_batch_rows", &labels)
        .expect("batch-size histogram must be exposed");
    assert_eq!(
        batch.sum as u64, report.ok as u64,
        "batch rows sum to requests"
    );
    assert_eq!(
        scrape.counter("hkrr_engine_batches_total", &labels),
        batch.count
    );
    assert_eq!(
        scrape.counter("hkrr_engine_queue_rejections_total", &labels),
        0
    );

    // Process identity rides along on every scrape.
    assert_eq!(scrape.value_sum("hkrr_build_info", &[]), Some(1.0));
    assert!(scrape.value_sum("hkrr_uptime_seconds", &[]).unwrap() > 0.0);

    // The loadgen report folded the same truth in as scrape deltas.
    let registry = report.registry.expect("loadgen must scrape the registry");
    assert_eq!(registry.requests, report.ok as u64);
    assert_eq!(registry.latency_count, report.ok as u64);
    assert!(registry.latency_p95_ms >= registry.latency_p50_ms);

    // Line mode returns the same document, terminated by `# EOF`.
    let stream = TcpStream::connect(&addr).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);
    writer.write_all(b"metrics\n").unwrap();
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    assert_eq!(line, "ok metrics\n");
    let mut body = String::new();
    loop {
        line.clear();
        reader.read_line(&mut line).unwrap();
        if line == "# EOF\n" {
            break;
        }
        assert!(!line.is_empty(), "stream ended before # EOF");
        body.push_str(&line);
    }
    let line_scrape = hkrr_bench::prom::validate(&body).unwrap();
    assert_eq!(
        line_scrape.counter("hkrr_engine_requests_total", &labels),
        report.ok as u64
    );

    server.shutdown();
}
