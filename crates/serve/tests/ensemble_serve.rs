//! The serving stack over an ensemble: the engine hosts any
//! `DecisionModel`, predictions over TCP stay bitwise faithful to the
//! in-process ensemble, and the per-shard serving load is readable from a
//! live server through the `stats` command — binary opcode and `nc`-style
//! line mode — without restarting anything.

use hkrr_core::{KrrConfig, SolverKind};
use hkrr_datasets::registry::LETTER;
use hkrr_ensemble::{EnsembleConfig, EnsembleKrr, ShardStrategy};
use hkrr_serve::codec::{decode_any, encode_ensemble, LoadedModel};
use hkrr_serve::engine::EngineConfig;
use hkrr_serve::server::{Client, Server, ServerConfig};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

fn trained(k: usize, n: usize, seed: u64) -> (EnsembleKrr, hkrr_datasets::Dataset) {
    let ds = hkrr_datasets::generate(&LETTER, n, 32, seed);
    let cfg = EnsembleConfig {
        shards: k,
        route_nearest: 2,
        strategy: ShardStrategy::Cluster,
        base: KrrConfig {
            h: LETTER.default_h,
            lambda: LETTER.default_lambda,
            solver: SolverKind::Hss,
            ..KrrConfig::default()
        },
    };
    let ens = EnsembleKrr::fit(&ds.train, &ds.train_labels, &cfg).unwrap();
    (ens, ds)
}

/// Acceptance leg of the tentpole: ensemble save → load → serve over TCP
/// is bitwise identical to in-process prediction, and the engine's stats
/// expose the per-shard routed-query counts.
#[test]
fn reloaded_ensemble_serves_bitwise_and_reports_per_shard_load() {
    let (ens, ds) = trained(4, 320, 31);
    let reference = ens.decision_values(&ds.test);

    // Through the codec, so the served model is the *reloaded* one.
    let loaded = decode_any(&encode_ensemble(&ens)).unwrap();
    assert!(loaded.is_ensemble());
    let server = Server::start(
        loaded.into_handle(),
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            engine: EngineConfig {
                workers: 1,
                ..EngineConfig::default()
            },
        },
    )
    .unwrap();
    let addr = server.local_addr().to_string();

    let mut client = Client::connect(&addr).unwrap();
    let info = client.info().unwrap();
    assert_eq!((info.dim, info.n_train), (16, 320));
    for i in 0..ds.test.nrows() {
        let p = client.predict(ds.test.row(i).to_vec()).unwrap();
        assert_eq!(p.score, reference[i], "query {i} differs over the wire");
    }

    // Binary stats: per-shard counts present and summing to requests × m.
    let stats = server.stats();
    assert_eq!(stats.requests, ds.test.nrows() as u64);
    assert_eq!(stats.num_models, 4);
    assert_eq!(stats.model_requests.len(), 4);
    assert_eq!(
        stats.model_requests.iter().sum::<u64>(),
        2 * ds.test.nrows() as u64,
        "each query is routed to exactly route_nearest shards"
    );
    let stats_json = client.stats().unwrap();
    hkrr_bench::json::validate(&stats_json).unwrap();
    assert!(stats_json.contains("\"num_models\":4"), "{stats_json}");
    assert!(stats_json.contains("\"model_requests\":["), "{stats_json}");

    // Line mode: the same stats are readable with nothing but a TCP text
    // client, while the server keeps serving.
    let stream = TcpStream::connect(&addr).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);
    writer.write_all(b"stats\n").unwrap();
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    assert!(line.starts_with("ok {"), "unexpected stats reply {line:?}");
    assert!(line.contains("\"num_models\":4"), "{line}");
    assert!(line.contains("\"model_requests\":["), "{line}");
    // Still serving after the stats read.
    writer.write_all(b"ping\n").unwrap();
    line.clear();
    reader.read_line(&mut line).unwrap();
    assert_eq!(line, "ok pong\n");
    writer.write_all(b"quit\n").unwrap();

    server.shutdown();
}

/// A single-model server reports `num_models: 1` and an empty per-model
/// list — the stats shape is stable across model kinds.
#[test]
fn single_model_stats_shape_is_stable() {
    let ds = hkrr_datasets::generate(&LETTER, 160, 10, 3);
    let cfg = KrrConfig {
        h: LETTER.default_h,
        lambda: LETTER.default_lambda,
        solver: SolverKind::Hss,
        ..KrrConfig::default()
    };
    let model = hkrr_core::KrrModel::fit(&ds.train, &ds.train_labels, &cfg).unwrap();
    let server = Server::start(
        LoadedModel::Single(model).into_handle(),
        ServerConfig::default(),
    )
    .unwrap();
    let mut client = Client::connect(&server.local_addr().to_string()).unwrap();
    client.predict(ds.test.row(0).to_vec()).unwrap();
    let stats_json = client.stats().unwrap();
    hkrr_bench::json::validate(&stats_json).unwrap();
    assert!(stats_json.contains("\"num_models\":1"), "{stats_json}");
    assert!(stats_json.contains("\"model_requests\":[]"), "{stats_json}");
    server.shutdown();
}
