//! Mixed-version fleets: a router with 0x08 (`OP_PREDICT_TRACED`) support
//! in front of a **pre-0x08 replica** — impersonated by a fake server
//! answering the legacy 9-byte health body and rejecting the traced
//! opcode. The pin: the health prober reads the missing capability byte,
//! the router downgrades every traced dispatch to plain `OP_PREDICT`
//! (counting `downgraded_dispatches`), and predictions still flow.

use hkrr_linalg::Matrix;
use hkrr_serve::client::Client;
use hkrr_serve::protocol::{self, ServerInfo, OP_METRICS, ROLE_MODEL};
use hkrr_serve::router::{RouterConfig, RouterServer};
use hkrr_serve::ServeError;
use std::io::Read as _;
use std::net::TcpListener;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The fixed score the fake legacy replica answers every predict with.
const LEGACY_SCORE: f64 = 4.25;

/// A minimal pre-0x08 model server: binary hello, legacy health body,
/// legacy 12-byte info body, plain predict — and `unknown opcode` for
/// everything else, exactly like an old binary's decoder would. The
/// returned counter ticks once per answered health probe, so a test can
/// wait until the router's prober has definitely seen the legacy body.
fn spawn_legacy_server(dim: usize) -> (String, Arc<AtomicU64>) {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let health_probes = Arc::new(AtomicU64::new(0));
    let probes = Arc::clone(&health_probes);
    std::thread::spawn(move || {
        for stream in listener.incoming() {
            let Ok(mut stream) = stream else { return };
            let probes = Arc::clone(&probes);
            std::thread::spawn(move || {
                let mut hello = [0u8; 4];
                if stream.read_exact(&mut hello).is_err() || hello != protocol::BINARY_HELLO {
                    return;
                }
                let mut requests = 0u64;
                loop {
                    let Ok(payload) = protocol::read_frame(&mut stream) else {
                        return;
                    };
                    let reply = match payload.first() {
                        Some(&protocol::OP_PREDICT) => {
                            requests += 1;
                            protocol::encode_ok(&protocol::encode_prediction(
                                &protocol::WirePrediction {
                                    score: LEGACY_SCORE,
                                    label: 1.0,
                                    batch_size: 1,
                                    latency_micros: 10,
                                },
                            ))
                        }
                        Some(&protocol::OP_HEALTH) => {
                            probes.fetch_add(1, Ordering::SeqCst);
                            protocol::encode_ok(&protocol::encode_health_legacy(
                                ROLE_MODEL, requests,
                            ))
                        }
                        Some(&protocol::OP_INFO) => {
                            // A legacy peer sends the short 12-byte body:
                            // dim + n_train only.
                            let full = protocol::encode_info(&ServerInfo {
                                dim: dim as u32,
                                n_train: 10,
                                ..ServerInfo::default()
                            });
                            protocol::encode_ok(&full[..12])
                        }
                        Some(&op) => protocol::encode_err(&format!("unknown opcode {op:#04x}")),
                        None => protocol::encode_err("empty frame"),
                    };
                    if protocol::write_frame(&mut stream, &reply).is_err() {
                        return;
                    }
                }
            });
        }
    });
    (addr, health_probes)
}

fn wait_until(deadline: Duration, mut probe: impl FnMut() -> bool) -> bool {
    let start = Instant::now();
    while start.elapsed() < deadline {
        if probe() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    false
}

#[test]
fn legacy_peer_reports_no_traced_support_and_rejects_0x08() {
    let (addr, _) = spawn_legacy_server(4);
    let mut client = Client::connect(&addr).unwrap();
    let health = client.health().unwrap();
    assert_eq!(health.role, ROLE_MODEL);
    assert_eq!(
        health.max_opcode, OP_METRICS,
        "9-byte body decodes pre-0x08"
    );
    assert!(!health.supports_traced_predict());

    // Sending 0x08 anyway gets a typed rejection, not a dead socket …
    let err = client
        .predict_traced(vec![0.0; 4], 0xfeed, 0)
        .expect_err("legacy peer must reject the traced opcode");
    assert!(
        matches!(err, ServeError::Rejected(ref m) if m.contains("unknown opcode")),
        "unexpected error: {err:?}"
    );
    // … so the same connection still answers a plain predict.
    let p = client.predict(vec![0.0; 4]).unwrap();
    assert_eq!(p.score, LEGACY_SCORE);
}

#[test]
fn router_downgrades_traced_dispatches_for_a_legacy_replica() {
    let (addr, health_probes) = spawn_legacy_server(4);
    let router = RouterServer::start(
        Matrix::from_rows(&[vec![0.0; 4]]),
        1,
        vec![vec![addr]],
        RouterConfig {
            addr: "127.0.0.1:0".to_string(),
            route_nearest: None,
            health_interval: Duration::from_millis(50),
            connect_timeout: Duration::from_millis(500),
            io_timeout: Duration::from_secs(2),
        },
    )
    .unwrap();

    // The prober must read the legacy health body and pin the replica as
    // pre-0x08. Two answered probes guarantee the first reply was fully
    // processed (the capability is stored before the prober sleeps).
    assert!(
        wait_until(Duration::from_secs(5), || {
            health_probes.load(Ordering::SeqCst) >= 2
        }),
        "prober never swept the legacy replica"
    );
    assert!(
        router.stats_json().contains("\"supports_traced\":false"),
        "stats must report the replica as pre-0x08: {}",
        router.stats_json()
    );

    // Traced queries still get answered — over plain OP_PREDICT frames,
    // each counted as a downgraded dispatch.
    let mut client = Client::connect(&router.local_addr().to_string()).unwrap();
    for i in 0..5 {
        let p = client
            .predict_traced(vec![0.1 * i as f64; 4], 0x1000 + i as u128, 0)
            .unwrap();
        assert_eq!(p.score, LEGACY_SCORE, "query {i} must be answered");
    }
    assert_eq!(
        router.downgraded_dispatches(),
        5,
        "every traced dispatch at the legacy replica counts a downgrade"
    );
    assert_eq!(router.failovers(), 0);

    router.shutdown();
}
