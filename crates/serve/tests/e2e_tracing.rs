//! End-to-end request causality across OS process boundaries: a router
//! (this process) over real `shard-serve` child processes, traced queries
//! flowing as `OP_PREDICT_TRACED` frames, one replica killed mid-run.
//!
//! The pins, per sampled query:
//! * its trace id appears in the router's span stream, and
//! * in at least one shard process's span stream — or the router's event
//!   log records a failover/degraded outcome for it;
//! * `hkrr-serve trace-merge` reconstructs one timeline with at least one
//!   multi-process trace, and `hkrr-serve doctor` lists the killed replica
//!   as unhealthy with a failover count.
//!
//! One test function only: the trace and event-log sinks are
//! process-global and installed once, which is the production contract.

use hkrr_core::{KrrConfig, SolverKind};
use hkrr_datasets::registry::LETTER;
use hkrr_ensemble::{EnsembleConfig, EnsembleKrr, ShardStrategy};
use hkrr_serve::client::Client;
use hkrr_serve::codec;
use hkrr_serve::router::{RouterConfig, RouterServer};
use hkrr_telemetry::{log, trace};
use std::io::BufRead as _;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const SHARDS: usize = 3;
const EXE: &str = env!("CARGO_BIN_EXE_hkrr-serve");

fn temp(name: &str) -> String {
    std::env::temp_dir()
        .join(format!("hkrr_e2e_{name}_{}", std::process::id()))
        .to_string_lossy()
        .to_string()
}

fn spawn_shard(model: &str, shard: usize, trace_path: &str) -> (Child, String) {
    let mut child = Command::new(EXE)
        .args([
            "shard-serve",
            model,
            "--shard",
            &shard.to_string(),
            "--addr",
            "127.0.0.1:0",
            "--workers",
            "1",
        ])
        .env("HKRR_TRACE", trace_path)
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn shard-serve");
    let stdout = child.stdout.take().unwrap();
    let mut reader = std::io::BufReader::new(stdout);
    let mut line = String::new();
    loop {
        line.clear();
        let n = reader.read_line(&mut line).unwrap();
        assert!(n > 0, "shard {shard} exited before announcing its port");
        if let Some(addr) = line.trim().strip_prefix("listening ") {
            return (child, addr.to_string());
        }
    }
}

fn wait_until(deadline: Duration, mut probe: impl FnMut() -> bool) -> bool {
    let start = Instant::now();
    while start.elapsed() < deadline {
        if probe() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    false
}

fn hex(id: u128) -> String {
    format!("{id:032x}")
}

#[test]
fn traced_queries_reconstruct_across_processes_with_failover() {
    let trace_base = temp("trace.json");
    let log_path = temp("events.jsonl");
    let model_path = temp("model.hkrr");
    assert!(trace::init_with_path(&trace_base).unwrap());
    assert!(log::init_with_path(&log_path).unwrap());

    // A small cluster-sharded ensemble, saved for the shard processes.
    let ds = hkrr_datasets::generate(&LETTER, 180, 24, 41);
    let cfg = EnsembleConfig {
        shards: SHARDS,
        route_nearest: 2,
        strategy: ShardStrategy::Cluster,
        base: KrrConfig {
            h: LETTER.default_h,
            lambda: LETTER.default_lambda,
            solver: SolverKind::Hss,
            ..KrrConfig::default()
        },
    };
    let ens = EnsembleKrr::fit(&ds.train, &ds.train_labels, &cfg).expect("ensemble training");
    codec::save_ensemble(&ens, &model_path).unwrap();
    let direct = ens.decision_values(&ds.test);

    // One shard-serve OS process per shard, each tracing to its own file.
    let shard_traces: Vec<String> = (0..SHARDS)
        .map(|i| format!("{trace_base}.shard{i}"))
        .collect();
    let mut fleet: Vec<(Child, String)> = (0..SHARDS)
        .map(|i| spawn_shard(&model_path, i, &shard_traces[i]))
        .collect();
    let groups: Vec<Vec<String>> = fleet.iter().map(|(_, addr)| vec![addr.clone()]).collect();

    let layout = codec::load_layout(&model_path).unwrap();
    let router = RouterServer::start(
        layout.centroids,
        layout.route_nearest,
        groups,
        RouterConfig {
            addr: "127.0.0.1:0".to_string(),
            route_nearest: None,
            health_interval: Duration::from_millis(100),
            connect_timeout: Duration::from_millis(500),
            io_timeout: Duration::from_secs(2),
        },
    )
    .unwrap();
    let router_addr = router.local_addr().to_string();

    // Queries dispatch as 0x08 only once the prober has confirmed every
    // replica's capability; wait for that so all sampled queries trace.
    assert!(
        wait_until(Duration::from_secs(5), || {
            let stats = router.stats_json();
            !stats.contains("\"supports_traced\":false")
                && stats.contains("\"supports_traced\":true")
        }),
        "prober must confirm 0x08 support on every replica"
    );

    // Phase A — healthy fleet: traced queries must be answered bitwise
    // identically to the in-process ensemble (tracing is observational).
    let mut client = Client::connect(&router_addr).unwrap();
    let mut sampled: Vec<u128> = Vec::new();
    for i in 0..12 {
        let id = trace::mint_trace_id();
        let p = client
            .predict_traced(ds.test.row(i).to_vec(), id, 0)
            .unwrap();
        assert_eq!(
            p.score, direct[i],
            "traced query {i} must stay bitwise identical"
        );
        sampled.push(id);
    }

    // Kill shard 0's only replica; the prober must mark it dark.
    let (mut victim, _) = fleet.remove(0);
    victim.kill().unwrap();
    victim.wait().unwrap();
    assert!(
        wait_until(Duration::from_secs(5), || !router.replica_health()[0][0]),
        "prober must mark the killed replica unhealthy"
    );

    // Phase B — disrupted fleet: keep sending until at least one query
    // actually needed failover re-routing (queries whose nearest shards
    // include the dead one), sampling every id.
    let mut i = 0;
    while router.failovers() == 0 || i < 12 {
        let id = trace::mint_trace_id();
        let p = client
            .predict_traced(ds.test.row(i % ds.test.nrows()).to_vec(), id, 0)
            .unwrap();
        assert!(p.batch_size >= 1);
        sampled.push(id);
        i += 1;
        assert!(i < 120, "no failover after {i} post-kill queries");
    }
    assert!(router.failovers() > 0);

    // Fleet doctor over TCP against the live router: the killed replica
    // must show up unhealthy, with the failover count in the diagnosis.
    let doctor = Command::new(EXE)
        .args(["doctor", "--addr", &router_addr])
        .output()
        .expect("run doctor");
    let doctor_out = String::from_utf8_lossy(&doctor.stdout).to_string();
    assert!(doctor.status.success(), "doctor failed: {doctor_out}");
    assert!(
        doctor_out.contains("UNHEALTHY"),
        "doctor page: {doctor_out}"
    );
    assert!(
        doctor_out.contains("queries needed failover"),
        "doctor page: {doctor_out}"
    );

    // Tear down: flush this process's sinks, give the children a flush
    // tick (they write their trace files every 200 ms), then kill them.
    drop(client);
    router.shutdown();
    trace::flush();
    log::flush();
    std::thread::sleep(Duration::from_millis(500));
    for (child, _) in &mut fleet {
        let _ = child.kill();
        let _ = child.wait();
    }

    // Causality, per sampled query: the trace id is in the router's span
    // stream, and in a shard process's span stream unless the router's
    // event log explains it as a failover/degraded/rejected outcome.
    let router_stream = std::fs::read_to_string(&trace_base).unwrap();
    let shard_streams: Vec<String> = shard_traces
        .iter()
        .map(|p| std::fs::read_to_string(p).unwrap_or_default())
        .collect();
    let events = std::fs::read_to_string(&log_path).unwrap();
    for line in events.lines() {
        hkrr_bench::json::validate(line).unwrap_or_else(|e| panic!("bad event {line}: {e}"));
    }
    for id in &sampled {
        let h = hex(*id);
        assert!(
            router_stream.contains(&h),
            "trace {h} missing from the router span stream"
        );
        let in_shards = shard_streams.iter().filter(|s| s.contains(&h)).count();
        let explained = events.lines().any(|l| {
            l.contains(&h)
                && (l.contains("\"outcome\":\"failover\"")
                    || l.contains("\"outcome\":\"degraded\"")
                    || l.contains("\"outcome\":\"rejected\""))
        });
        assert!(
            in_shards >= 1 || explained,
            "trace {h} reached no shard and has no explaining event"
        );
    }
    // The disruption is visible in the event log, not just counters.
    assert!(
        events.contains("\"outcome\":\"failover\""),
        "no failover event logged: {events}"
    );

    // trace-merge reconstructs one timeline with cross-process traces.
    let merged_path = temp("merged.json");
    let mut merge_args = vec![
        "trace-merge".to_string(),
        "--out".to_string(),
        merged_path.clone(),
        "--min-multi-process".to_string(),
        "1".to_string(),
        trace_base.clone(),
    ];
    merge_args.extend(shard_traces.iter().cloned());
    let merge = Command::new(EXE)
        .args(&merge_args)
        .output()
        .expect("run trace-merge");
    assert!(
        merge.status.success(),
        "trace-merge failed: {}{}",
        String::from_utf8_lossy(&merge.stdout),
        String::from_utf8_lossy(&merge.stderr)
    );
    let merged = std::fs::read_to_string(&merged_path).unwrap();
    hkrr_bench::json::validate(&merged).expect("merged trace must be strictly valid JSON");
    assert!(merged.contains(&hex(sampled[0])));

    for p in [&trace_base, &log_path, &model_path, &merged_path] {
        std::fs::remove_file(p).ok();
    }
    for p in &shard_traces {
        std::fs::remove_file(p).ok();
    }
}
