//! The distributed serving topology end to end, over real TCP:
//!
//! * one `Server` per shard, each loading ONE nested `SHnn` model from the
//!   same saved v3 ensemble file (`ModelSource::EnsembleShard`),
//! * a `RouterServer` in front holding only the file's centroids,
//!
//! and pins the acceptance criterion: a query routed over TCP through the
//! router is **bitwise identical** to the in-process `EnsembleKrr` on the
//! same shard set. On top of that: fleet-wide `refresh` through the
//! router, replication with least-loaded spread, health-prober dark-replica
//! detection, and the kill-a-shard failover scenario (bounded error rate,
//! no hangs, disruption fields in the loadgen report).

use hkrr_core::{KrrConfig, SolverKind};
use hkrr_datasets::registry::LETTER;
use hkrr_ensemble::{EnsembleConfig, EnsembleKrr, ShardStrategy};
use hkrr_serve::client::Client;
use hkrr_serve::codec;
use hkrr_serve::engine::EngineConfig;
use hkrr_serve::loadgen::{self, LoadgenConfig};
use hkrr_serve::protocol::{ROLE_MODEL, ROLE_ROUTER};
use hkrr_serve::router::{RouterConfig, RouterServer};
use hkrr_serve::server::{ModelSource, Server, ServerConfig};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

fn trained(k: usize, n: usize, seed: u64) -> (EnsembleKrr, hkrr_datasets::Dataset) {
    let ds = hkrr_datasets::generate(&LETTER, n, 24, seed);
    let cfg = EnsembleConfig {
        shards: k,
        route_nearest: 2.min(k),
        strategy: ShardStrategy::Cluster,
        base: KrrConfig {
            h: LETTER.default_h,
            lambda: LETTER.default_lambda,
            solver: SolverKind::Hss,
            ..KrrConfig::default()
        },
    };
    let ens = EnsembleKrr::fit(&ds.train, &ds.train_labels, &cfg).expect("ensemble training");
    (ens, ds)
}

fn temp_model_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "hkrr_distributed_{tag}_{}.hkrr",
        std::process::id()
    ))
}

/// One in-process (but real-TCP) shard server per replica of each shard.
fn spawn_fleet(path: &Path, shards: usize, replicas: usize) -> (Vec<Server>, Vec<Vec<String>>) {
    let mut servers = Vec::new();
    let mut groups = vec![Vec::new(); shards];
    for shard in 0..shards {
        for _ in 0..replicas {
            let server = Server::start_with_source(
                ModelSource::EnsembleShard {
                    path: path.to_path_buf(),
                    index: shard,
                },
                ServerConfig {
                    addr: "127.0.0.1:0".to_string(),
                    engine: EngineConfig {
                        workers: 1,
                        ..EngineConfig::default()
                    },
                },
            )
            .expect("shard server start");
            groups[shard].push(server.local_addr().to_string());
            servers.push(server);
        }
    }
    (servers, groups)
}

fn router_over(path: &Path, groups: Vec<Vec<String>>, health_interval_ms: u64) -> RouterServer {
    let layout = codec::load_layout(path).expect("layout");
    RouterServer::start(
        layout.centroids,
        layout.route_nearest,
        groups,
        RouterConfig {
            addr: "127.0.0.1:0".to_string(),
            route_nearest: None,
            health_interval: Duration::from_millis(health_interval_ms),
            connect_timeout: Duration::from_millis(500),
            io_timeout: Duration::from_secs(2),
        },
    )
    .expect("router start")
}

fn wait_until(deadline: Duration, mut probe: impl FnMut() -> bool) -> bool {
    let start = Instant::now();
    while start.elapsed() < deadline {
        if probe() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    false
}

#[test]
fn routed_over_tcp_is_bitwise_identical_to_the_in_process_ensemble() {
    let (ens, ds) = trained(4, 240, 11);
    let path = temp_model_path("bitwise");
    codec::save_ensemble(&ens, &path).unwrap();

    let (servers, groups) = spawn_fleet(&path, 4, 1);
    let router = router_over(&path, groups, 100);
    let mut client = Client::connect(&router.local_addr().to_string()).unwrap();

    // Shard servers identify as models, the router as a router.
    let mut shard_client = Client::connect(&servers[0].local_addr().to_string()).unwrap();
    let shard_health = shard_client.health().unwrap();
    assert_eq!(shard_health.role, ROLE_MODEL);
    assert!(shard_health.supports_traced_predict());
    assert_eq!(client.health().unwrap().role, ROLE_ROUTER);

    // The acceptance pin: every routed-over-TCP score equals the
    // in-process ensemble's bitwise.
    let direct = ens.decision_values(&ds.test);
    for i in 0..ds.test.nrows() {
        let p = client.predict(ds.test.row(i).to_vec()).unwrap();
        assert_eq!(
            p.score, direct[i],
            "routed query {i} must be bitwise identical to the in-process ensemble"
        );
        // route_nearest = 2 shards answered each query.
        assert_eq!(p.batch_size, 2, "query {i} fan-out width");
    }
    assert_eq!(router.failovers(), 0);
    assert_eq!(router.degraded(), 0);

    // The prober's first sweep sums shard info into the router's `info`.
    assert!(
        wait_until(Duration::from_secs(5), || {
            let info = client.info().unwrap();
            (info.dim, info.n_train) == (16, 240)
        }),
        "router info must converge to (dim, total n_train)"
    );

    // Fleet-wide refresh through the router: every shard reloads from the
    // file; counters aggregate per shard.
    assert_eq!(client.refresh().unwrap(), (4, 240));

    // Router stats document parses and reports the topology.
    let stats = client.stats().unwrap();
    hkrr_bench::json::validate(&stats).unwrap();
    assert!(stats.contains("\"schema\":\"hkrr-router-stats/1\""));
    assert!(stats.contains("\"shards\":4"));

    router.shutdown();
    for s in &servers {
        s.shutdown();
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn replication_spreads_load_and_the_prober_detects_dark_replicas() {
    let (ens, _) = trained(2, 200, 23);
    let path = temp_model_path("replicas");
    codec::save_ensemble(&ens, &path).unwrap();

    let (servers, groups) = spawn_fleet(&path, 2, 2);
    let router = router_over(&path, groups, 100);
    let addr = router.local_addr().to_string();

    // Concurrent load: with the per-replica connection serialized, the
    // least-loaded rule must route overlapping queries to both replicas.
    let report = loadgen::run(&LoadgenConfig {
        addr: addr.clone(),
        requests: 200,
        concurrency: 8,
        seed: 7,
        traced: true,
    })
    .unwrap();
    assert_eq!(report.errors, 0, "healthy fleet must not error");
    let dispatched = router.replica_dispatched();
    // m = 2 of 2 shards: every query hits both shards once.
    for (shard, counts) in dispatched.iter().enumerate() {
        assert_eq!(
            counts.iter().sum::<u64>(),
            200,
            "shard {shard} must answer every query exactly once"
        );
        assert!(
            counts.iter().all(|&c| c > 0),
            "least-loaded routing must spread shard {shard} across replicas, got {counts:?}"
        );
    }

    // Kill one replica of shard 0: the prober marks it dark, the other
    // replica keeps the shard fully available.
    servers[0].shutdown();
    assert!(
        wait_until(Duration::from_secs(5), || {
            let health = router.replica_health();
            !health[0][0] && health[0][1]
        }),
        "prober must mark the dead replica unhealthy and keep its sibling"
    );
    let mut client = Client::connect(&addr).unwrap();
    for i in 0..8 {
        let p = client.predict(vec![0.1 * i as f64; 16]).unwrap();
        assert_eq!(p.batch_size, 2, "replicated shard stays fully available");
    }
    assert_eq!(router.degraded(), 0);

    router.shutdown();
    for s in &servers {
        s.shutdown();
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn killing_a_whole_shard_mid_run_keeps_the_service_available() {
    let (ens, _) = trained(4, 240, 37);
    let path = temp_model_path("failover");
    codec::save_ensemble(&ens, &path).unwrap();

    let (servers, groups) = spawn_fleet(&path, 4, 1);
    let router = router_over(&path, groups, 100);
    let addr = router.local_addr().to_string();

    // Hammer the router and kill shard 0's only server halfway through.
    // The run completing at all proves no hangs (client quotas run dry
    // under the router's I/O deadlines); the report's disruption section
    // carries the availability numbers.
    let victim = &servers[0];
    let report = loadgen::run_with_disruption(
        &LoadgenConfig {
            addr,
            requests: 200,
            concurrency: 4,
            seed: 99,
            traced: true,
        },
        100,
        || victim.shutdown(),
    )
    .unwrap();

    let d = report.disruption.as_ref().expect("disruption must fire");
    assert!(d.fired_at_request >= 100);
    assert!(d.requests_after > 0, "load must continue past the kill");
    // Queries routed at the dead shard fail over to the next-nearest
    // centroid's shard — answered, not errored. Allow the same 5% budget
    // the CLI dbench enforces.
    assert!(
        (d.errors_after as f64) <= 0.05 * d.requests_after as f64,
        "post-disruption error rate too high: {}/{}",
        d.errors_after,
        d.requests_after
    );

    // The JSON snapshot carries the new failover fields.
    let json = report
        .clone()
        .with_routing(loadgen::RoutingStats {
            failovers: router.failovers(),
            degraded: router.degraded(),
            exhausted: 0,
        })
        .to_json();
    hkrr_bench::json::validate(&json).unwrap();
    assert!(json.contains("\"disruption\""));
    assert!(json.contains("\"post_max_ms\""));
    assert!(json.contains("\"routing\""));

    // Queries that fell on the dead shard needed re-routing; with three
    // healthy shards left (> route_nearest = 2) every one of them could
    // still be answered at full fan-out width, so none is degraded.
    assert!(
        router.failovers() > 0,
        "killing a shard's only replica must trigger failover re-routing"
    );
    assert_eq!(router.degraded(), 0);

    router.shutdown();
    for s in &servers {
        s.shutdown();
    }
    std::fs::remove_file(&path).ok();
}
