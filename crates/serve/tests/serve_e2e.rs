//! End-to-end acceptance of the serving stack: a model trained in-process,
//! saved with the codec, reloaded, served over a loopback TCP port, and
//! hammered by the load generator — with micro-batch coalescing observable
//! in the engine statistics.

use hkrr_core::{KrrConfig, KrrModel, SolverKind};
use hkrr_datasets::registry::LETTER;
use hkrr_serve::codec::{load_model, save_model};
use hkrr_serve::engine::EngineConfig;
use hkrr_serve::loadgen::{self, LoadgenConfig};
use hkrr_serve::server::{Client, Server, ServerConfig};
use std::sync::Arc;
use std::time::Duration;

fn trained(n: usize, seed: u64) -> (KrrModel, hkrr_datasets::Dataset) {
    let ds = hkrr_datasets::generate(&LETTER, n, 40, seed);
    let cfg = KrrConfig {
        h: LETTER.default_h,
        lambda: LETTER.default_lambda,
        solver: SolverKind::Hss,
        ..KrrConfig::default()
    };
    let model = KrrModel::fit(&ds.train, &ds.train_labels, &cfg).unwrap();
    (model, ds)
}

/// Acceptance: save → serve the *reloaded* model → predictions over the
/// wire are bitwise identical to the in-process model.
#[test]
fn saved_and_reloaded_model_serves_bitwise_identical_predictions() {
    let (model, ds) = trained(260, 17);
    let path = std::env::temp_dir().join(format!("hkrr_e2e_{}.hkrr", std::process::id()));
    save_model(&model, &path).unwrap();
    let loaded = load_model(&path).unwrap();
    std::fs::remove_file(&path).ok();

    // In-process check first: the reload skipped re-factorization (factors
    // are present) and is bitwise faithful.
    assert!(loaded.factors().is_some());
    let reference = model.decision_values(&ds.test);
    assert_eq!(loaded.decision_values(&ds.test), reference);

    // Now the same through the full TCP stack.
    let server = Server::start(Arc::new(loaded), ServerConfig::default()).unwrap();
    let mut client = Client::connect(&server.local_addr().to_string()).unwrap();
    for i in 0..ds.test.nrows() {
        let p = client.predict(ds.test.row(i).to_vec()).unwrap();
        assert_eq!(
            p.score, reference[i],
            "query {i}: served prediction differs from the in-process model"
        );
    }
    server.shutdown();
}

/// Acceptance: ≥ 1000 loopback queries through `loadgen` against a loaded
/// model, zero failures, and coalescing observable (mean batch size > 1
/// under concurrent load).
#[test]
fn loadgen_pushes_1000_queries_with_observable_batching() {
    let (model, _) = trained(220, 23);
    let loaded = load_model_via_bytes(&model);
    let server = Server::start(
        Arc::new(loaded),
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            engine: EngineConfig {
                workers: 1,
                max_batch: 64,
                queue_capacity: 4096,
                linger: Duration::from_millis(2),
            },
        },
    )
    .unwrap();

    let report = loadgen::run(&LoadgenConfig {
        addr: server.local_addr().to_string(),
        requests: 1000,
        concurrency: 8,
        seed: 0xfeed,
        traced: true,
    })
    .unwrap();

    assert_eq!(report.ok, 1000, "all 1000 queries must succeed");
    assert_eq!(report.errors, 0);
    assert!(
        report.mean_batch_size > 1.0,
        "coalescing must be observable under concurrent load (mean batch {})",
        report.mean_batch_size
    );
    assert!(report.qps > 0.0);
    assert!(report.client_p50_ms <= report.client_p95_ms);
    assert!(report.client_p95_ms <= report.client_max_ms + 1e-9);

    // The engine's own accounting agrees.
    let stats = server.stats();
    assert_eq!(stats.requests, 1000);
    assert!(stats.mean_batch_size > 1.0);
    assert!(
        stats.batches < 1000,
        "1000 requests must not take 1000 batches"
    );

    // And the snapshot is valid, schema-tagged JSON.
    let json = report.to_json();
    hkrr_bench::json::validate(&json).unwrap();
    assert!(json.contains("\"schema\":\"hkrr-serve-perf/1\""));
    server.shutdown();
}

fn load_model_via_bytes(model: &KrrModel) -> KrrModel {
    hkrr_serve::codec::decode_model(&hkrr_serve::codec::encode_model(model)).unwrap()
}
