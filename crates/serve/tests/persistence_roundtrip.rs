//! Property tests of the `hkrr-model/1` codec: every save → load round
//! trip must reproduce predictions **bitwise**, and every corruption must
//! surface as a typed [`CodecError`] — never a panic, never a silently
//! wrong model.

use hkrr_core::{KrrConfig, KrrModel, SolverKind};
use hkrr_datasets::registry::{LETTER, PEN, SUSY};
use hkrr_linalg::random::{gaussian_matrix, Pcg64};
use hkrr_serve::codec::{decode_model, encode_model, CodecError};
use proptest::prelude::*;

fn fit(
    spec_idx: usize,
    solver_idx: usize,
    n: usize,
    seed: u64,
) -> (KrrModel, hkrr_datasets::Dataset) {
    let spec = [&LETTER, &SUSY, &PEN][spec_idx % 3];
    let solver = [
        SolverKind::Hss,
        SolverKind::HssWithHSampling,
        SolverKind::DenseCholesky,
        SolverKind::HssPcg,
    ][solver_idx % 4];
    let ds = hkrr_datasets::generate(spec, n, 24, seed);
    let cfg = KrrConfig {
        h: spec.default_h,
        lambda: spec.default_lambda,
        solver,
        ..KrrConfig::default()
    };
    let model = KrrModel::fit(&ds.train, &ds.train_labels, &cfg).expect("training failed");
    (model, ds)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// save → load → bitwise-identical predictions on random queries, for
    /// random (dataset, solver, size, seed) combinations.
    #[test]
    fn roundtrip_is_bitwise_on_random_queries(
        spec_idx in 0..3usize,
        solver_idx in 0..4usize,
        n in 96..200usize,
        seed in 0..1_000u64,
        query_seed in 0..1_000u64,
    ) {
        let (model, _) = fit(spec_idx, solver_idx, n, seed);
        let loaded = decode_model(&encode_model(&model)).expect("roundtrip decode");

        // Random query points in the raw feature space.
        let mut rng = Pcg64::seed_from_u64(query_seed);
        let queries = gaussian_matrix(&mut rng, 17, model.dim());
        prop_assert_eq!(loaded.decision_values(&queries), model.decision_values(&queries));
        prop_assert_eq!(loaded.predict(&queries), model.predict(&queries));
        prop_assert_eq!(loaded.weights(), model.weights());
        prop_assert_eq!(loaded.permutation(), model.permutation());
        prop_assert_eq!(loaded.factors().is_some(), model.factors().is_some());
    }

    /// Truncating the encoding at any byte length is a typed error, never a
    /// panic.
    #[test]
    fn truncation_never_panics(
        n in 96..160usize,
        seed in 0..1_000u64,
        cut_frac in 0.0..1.0f64,
    ) {
        let (model, _) = fit(0, 0, n, seed);
        let bytes = encode_model(&model);
        let cut = ((bytes.len() - 1) as f64 * cut_frac) as usize;
        match decode_model(&bytes[..cut]) {
            Err(_) => {} // any typed CodecError is acceptable
            Ok(_) => prop_assert!(false, "decoding a truncated file must not succeed"),
        }
    }

    /// Flipping any single payload byte is caught by the per-section CRC32
    /// (or, for table/header bytes, by a structural check) — typed errors
    /// only, and never a silently different model.
    #[test]
    fn single_byte_corruption_is_detected(
        n in 96..160usize,
        seed in 0..1_000u64,
        pos_frac in 0.0..1.0f64,
        bit in 0..8usize,
    ) {
        let (model, ds) = fit(0, 0, n, seed);
        let reference = model.decision_values(&ds.test);
        let mut bytes = encode_model(&model);
        let pos = ((bytes.len() - 1) as f64 * pos_frac) as usize;
        bytes[pos] ^= 1 << bit;
        match decode_model(&bytes) {
            Err(_) => {}
            Ok(loaded) => {
                // Corrupting padding-free content must not change output;
                // the only tolerated success is one that is still bitwise
                // faithful (e.g. the flip landed in an unused report field
                // that does not affect predictions… which cannot happen for
                // checksummed sections, so demand full equality).
                prop_assert_eq!(loaded.decision_values(&ds.test), reference.clone());
            }
        }
    }
}

#[test]
fn corruption_matrix_of_typed_errors() {
    let (model, _) = fit(0, 0, 128, 3);
    let bytes = encode_model(&model);

    // Truncated file.
    assert!(matches!(
        decode_model(&bytes[..bytes.len() / 3]),
        Err(CodecError::Truncated | CodecError::ChecksumMismatch { .. })
    ));
    // Bad magic.
    let mut bad_magic = bytes.clone();
    bad_magic[3] ^= 0xff;
    assert!(matches!(
        decode_model(&bad_magic),
        Err(CodecError::BadMagic)
    ));
    // Wrong version.
    let mut bad_version = bytes.clone();
    bad_version[8..12].copy_from_slice(&7u32.to_le_bytes());
    assert!(matches!(
        decode_model(&bad_version),
        Err(CodecError::UnsupportedVersion(7))
    ));
    // Flipped checksum byte (in the table's CRC field of the first section:
    // offset 16 + 20).
    let mut bad_crc = bytes.clone();
    bad_crc[16 + 20] ^= 0x01;
    assert!(matches!(
        decode_model(&bad_crc),
        Err(CodecError::ChecksumMismatch { .. })
    ));
    // Flipped payload byte.
    let mut bad_payload = bytes;
    let last = bad_payload.len() - 1;
    bad_payload[last] ^= 0x80;
    assert!(matches!(
        decode_model(&bad_payload),
        Err(CodecError::ChecksumMismatch { .. })
    ));
}

/// Hand-crafts a model file whose `NORM` section carries a negative scale
/// in column `scale_idx`, with the section CRC *recomputed* so the
/// checksum layer is bypassed, and returns the decode outcome.
fn decode_with_negated_scale(
    model: &hkrr_core::KrrModel,
    scale_idx: usize,
) -> Result<hkrr_core::KrrModel, CodecError> {
    let mut bytes = encode_model(model);

    // Walk the section table (header: 8-byte magic, u32 version, u32
    // count; entries: tag[4], offset u64, len u64, crc u32) to find NORM.
    let count = u32::from_le_bytes(bytes[12..16].try_into().unwrap()) as usize;
    let (mut norm_start, mut norm_len, mut crc_pos) = (0usize, 0usize, 0usize);
    for i in 0..count {
        let entry = 16 + 24 * i;
        if &bytes[entry..entry + 4] == b"NORM" {
            norm_start =
                u64::from_le_bytes(bytes[entry + 4..entry + 12].try_into().unwrap()) as usize;
            norm_len =
                u64::from_le_bytes(bytes[entry + 12..entry + 20].try_into().unwrap()) as usize;
            crc_pos = entry + 20;
        }
    }
    assert!(norm_len > 0, "NORM section not found");

    // NORM payload: scheme u8 | offset slice (u64 len + f64s) | scale
    // slice (u64 len + f64s). Negate the chosen scale.
    let dim = model.dim();
    let scale_pos = norm_start + 1 + 8 + 8 * dim + 8 + 8 * (scale_idx % dim);
    let mut v = f64::from_le_bytes(bytes[scale_pos..scale_pos + 8].try_into().unwrap());
    assert!(v > 0.0, "fit produced a non-positive scale?");
    v = -v;
    bytes[scale_pos..scale_pos + 8].copy_from_slice(&v.to_le_bytes());

    // Recompute the section CRC so the corruption sails past the checksum
    // layer and lands on the semantic validation.
    let crc = hkrr_serve::codec::crc32(&bytes[norm_start..norm_start + norm_len]);
    bytes[crc_pos..crc_pos + 4].copy_from_slice(&crc.to_le_bytes());

    decode_model(&bytes)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// A hand-crafted model file with a negative scale in *any* column of
    /// the `NORM` section — CRC layer bypassed — must be refused as
    /// `Malformed`: `NormalizationStats::fit` can never produce a negative
    /// scale, and accepting one would silently flip that feature's sign.
    #[test]
    fn negative_scale_with_valid_crc_is_rejected_as_malformed(
        n in 96..160usize,
        seed in 0..1_000u64,
        scale_idx in 0..64usize,
    ) {
        let (model, _) = fit(0, 0, n, seed);
        match decode_with_negated_scale(&model, scale_idx) {
            Err(CodecError::Malformed(msg)) => {
                prop_assert!(msg.contains("positive"), "unexpected message: {msg}")
            }
            Err(other) => prop_assert!(false, "expected Malformed, got {other:?}"),
            Ok(_) => prop_assert!(false, "negative scale must not decode"),
        }
    }
}

#[test]
fn loaded_model_skips_refactorization_for_new_labels() {
    let (model, ds) = fit(0, 0, 160, 9);
    let loaded = decode_model(&encode_model(&model)).unwrap();
    // The ULV factors came back byte-for-byte: re-solving the training
    // system through the loaded model reproduces the weights bitwise.
    assert_eq!(
        loaded.solve_new_labels(&ds.train_labels).unwrap(),
        model.weights()
    );
}
