//! Property tests of the codec's ensemble support (format version 3) and
//! its backward compatibility:
//!
//! * an ensemble round-trips **bitwise** — including every shard's HSS
//!   form and ULV factors,
//! * corruption *inside any shard section* (truncation, bit flip, a wrong
//!   nested format version) surfaces as a typed [`CodecError`], never a
//!   panic,
//! * v1 and v2 single-model files still load,
//! * `info_lines` emits the stable line-oriented metadata for every codec
//!   version, and it parses.

use hkrr_core::{KrrConfig, KrrModel, SolverKind};
use hkrr_datasets::registry::{LETTER, SUSY};
use hkrr_ensemble::{EnsembleConfig, EnsembleKrr, ShardStrategy};
use hkrr_serve::codec::{
    self, crc32, decode_any, decode_model, encode_ensemble, encode_model_as_version, info_lines,
    CodecError, LoadedModel,
};
use proptest::prelude::*;
use std::collections::HashMap;

const HEADER_LEN: usize = 16;
const TABLE_ENTRY_LEN: usize = 24;

fn base_config(solver: SolverKind) -> KrrConfig {
    KrrConfig {
        h: LETTER.default_h,
        lambda: LETTER.default_lambda,
        solver,
        ..KrrConfig::default()
    }
}

fn trained_ensemble(
    k: usize,
    n: usize,
    seed: u64,
    solver: SolverKind,
) -> (EnsembleKrr, hkrr_datasets::Dataset) {
    let ds = hkrr_datasets::generate(&LETTER, n, 24, seed);
    let cfg = EnsembleConfig {
        shards: k,
        route_nearest: 2.min(k),
        strategy: ShardStrategy::Cluster,
        base: base_config(solver),
    };
    let ens = EnsembleKrr::fit(&ds.train, &ds.train_labels, &cfg).expect("ensemble training");
    (ens, ds)
}

/// Finds `(payload_start, payload_len, crc_field_pos)` of the section with
/// the given tag in an encoded file.
fn section_span(bytes: &[u8], tag: &[u8; 4]) -> Option<(usize, usize, usize)> {
    let count = u32::from_le_bytes(bytes[12..16].try_into().unwrap()) as usize;
    for i in 0..count {
        let entry = HEADER_LEN + TABLE_ENTRY_LEN * i;
        if &bytes[entry..entry + 4] == tag {
            let start = u64::from_le_bytes(bytes[entry + 4..entry + 12].try_into().unwrap());
            let len = u64::from_le_bytes(bytes[entry + 12..entry + 20].try_into().unwrap());
            return Some((start as usize, len as usize, entry + 20));
        }
    }
    None
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    /// Ensemble save → load is bitwise: decision values, per-shard
    /// weights, and — through `solve_new_labels` on every shard — the ULV
    /// factors themselves.
    #[test]
    fn ensemble_roundtrip_is_bitwise_including_every_shards_ulv(
        k in 2..5usize,
        n in 140..260usize,
        seed in 0..1_000u64,
    ) {
        let (ens, ds) = trained_ensemble(k, n, seed, SolverKind::Hss);
        let loaded = match decode_any(&encode_ensemble(&ens)).expect("roundtrip decode") {
            LoadedModel::Ensemble(e) => e,
            LoadedModel::Single(_) => panic!("ensemble file decoded as single"),
        };
        prop_assert_eq!(loaded.num_shards(), k);
        prop_assert_eq!(loaded.decision_values(&ds.test), ens.decision_values(&ds.test));
        for (orig, back) in ens.models().iter().zip(loaded.models().iter()) {
            prop_assert_eq!(back.weights(), orig.weights());
            prop_assert!(back.factors().is_some(), "shard lost its factors");
            // The restored ULV performs the identical arithmetic: a fresh
            // solve through the loaded factors matches the original
            // factors' solve bitwise.
            let labels: Vec<f64> =
                (0..orig.num_train()).map(|i| if i % 3 == 0 { -1.0 } else { 1.0 }).collect();
            prop_assert_eq!(
                back.solve_new_labels(&labels).unwrap(),
                orig.solve_new_labels(&labels).unwrap()
            );
        }
        // Router config survives too.
        prop_assert_eq!(
            loaded.router().route_nearest(),
            ens.router().route_nearest()
        );
        prop_assert_eq!(loaded.strategy(), ens.strategy());
    }

    /// Truncating an ensemble encoding anywhere is a typed error, never a
    /// panic — including cuts landing inside a shard section.
    #[test]
    fn ensemble_truncation_never_panics(
        cut_frac in 0.0..1.0f64,
        seed in 0..1_000u64,
    ) {
        let (ens, _) = trained_ensemble(3, 150, seed, SolverKind::Hss);
        let bytes = encode_ensemble(&ens);
        let cut = ((bytes.len() - 1) as f64 * cut_frac) as usize;
        prop_assert!(decode_any(&bytes[..cut]).is_err(), "truncated decode succeeded");
    }

    /// Flipping any single bit in an ensemble file either fails typed or
    /// leaves predictions bitwise identical (flips in dead table padding
    /// cannot exist — every payload byte is checksummed).
    #[test]
    fn ensemble_single_bit_corruption_is_detected(
        pos_frac in 0.0..1.0f64,
        bit in 0..8usize,
        seed in 0..1_000u64,
    ) {
        let (ens, ds) = trained_ensemble(2, 150, seed, SolverKind::Hss);
        let reference = ens.decision_values(&ds.test);
        let mut bytes = encode_ensemble(&ens);
        let pos = ((bytes.len() - 1) as f64 * pos_frac) as usize;
        bytes[pos] ^= 1 << bit;
        match decode_any(&bytes) {
            Err(_) => {}
            Ok(loaded) => prop_assert_eq!(loaded.decision_values(&ds.test), reference.clone()),
        }
    }
}

/// A wrong format version *inside* a shard's nested encoding is caught as
/// a typed `UnsupportedVersion` — the nested decode re-runs the full
/// header validation per shard.
#[test]
fn wrong_version_inside_a_shard_section_is_typed() {
    let (ens, _) = trained_ensemble(2, 140, 9, SolverKind::Hss);
    let mut bytes = encode_ensemble(&ens);
    let (start, len, crc_pos) = section_span(&bytes, b"SH01").expect("shard section");
    // The nested file's version field sits 8 bytes into the shard payload.
    bytes[start + 8..start + 12].copy_from_slice(&99u32.to_le_bytes());
    // Recompute the outer CRC so only the nested header check can object.
    let crc = crc32(&bytes[start..start + len]);
    bytes[crc_pos..crc_pos + 4].copy_from_slice(&crc.to_le_bytes());
    assert!(matches!(
        decode_any(&bytes),
        Err(CodecError::UnsupportedVersion(99))
    ));

    // Same treatment for a corrupted nested magic: typed BadMagic.
    let mut bytes = encode_ensemble(&ens);
    let (start, len, crc_pos) = section_span(&bytes, b"SH00").expect("shard section");
    bytes[start] = b'X';
    let crc = crc32(&bytes[start..start + len]);
    bytes[crc_pos..crc_pos + 4].copy_from_slice(&crc.to_le_bytes());
    assert!(matches!(decode_any(&bytes), Err(CodecError::BadMagic)));
}

/// A crafted file whose shard section holds a *nested ensemble* is
/// refused typed — the decoder never recurses into ensembles-of-ensembles,
/// so a malicious file cannot drive unbounded recursion.
#[test]
fn nested_ensemble_inside_a_shard_is_typed_not_recursive() {
    let (inner, _) = trained_ensemble(2, 130, 13, SolverKind::Hss);
    let inner_bytes = encode_ensemble(&inner);
    let dim = inner.dim();

    // Hand-assemble an outer v3 ensemble file: an ENSH header declaring
    // one shard, whose SH00 payload is the complete inner *ensemble* file.
    let mut ensh = Vec::new();
    ensh.push(0u8); // strategy: cluster
    ensh.extend_from_slice(&1u64.to_le_bytes()); // shards
    ensh.extend_from_slice(&1u64.to_le_bytes()); // route_nearest
    ensh.extend_from_slice(&1u64.to_le_bytes()); // centroids rows
    ensh.extend_from_slice(&(dim as u64).to_le_bytes()); // centroids cols
    for _ in 0..dim {
        ensh.extend_from_slice(&0.0f64.to_le_bytes());
    }
    ensh.extend_from_slice(&0.0f64.to_le_bytes()); // fit_wall_seconds
    ensh.extend_from_slice(&1u64.to_le_bytes()); // shard_wall_seconds len
    ensh.extend_from_slice(&0.0f64.to_le_bytes());

    let sections: Vec<([u8; 4], &[u8])> = vec![(*b"ENSH", &ensh), (*b"SH00", &inner_bytes)];
    let mut outer = Vec::new();
    outer.extend_from_slice(b"HKRRMDL1");
    outer.extend_from_slice(&3u32.to_le_bytes());
    outer.extend_from_slice(&(sections.len() as u32).to_le_bytes());
    let mut offset = HEADER_LEN + TABLE_ENTRY_LEN * sections.len();
    for (tag, body) in &sections {
        outer.extend_from_slice(&tag[..]);
        outer.extend_from_slice(&(offset as u64).to_le_bytes());
        outer.extend_from_slice(&(body.len() as u64).to_le_bytes());
        outer.extend_from_slice(&crc32(body).to_le_bytes());
        offset += body.len();
    }
    for (_, body) in &sections {
        outer.extend_from_slice(body);
    }

    match decode_any(&outer) {
        Err(CodecError::Malformed(m)) => assert!(m.contains("ensemble"), "{m}"),
        other => panic!("nested ensemble must be typed Malformed, got {other:?}"),
    }
}

/// `encoded_version` draws the same BadMagic/Truncated distinction as the
/// full decoder: correct magic but no version word is `Truncated`.
#[test]
fn encoded_version_distinguishes_truncation_from_foreign_files() {
    let (ens, _) = trained_ensemble(2, 130, 3, SolverKind::Hss);
    let bytes = encode_ensemble(&ens);
    assert_eq!(codec::encoded_version(&bytes).unwrap(), 4);
    assert!(matches!(
        codec::encoded_version(&bytes[..10]),
        Err(CodecError::Truncated)
    ));
    assert!(matches!(
        codec::encoded_version(b"PK\x03\x04"),
        Err(CodecError::BadMagic)
    ));
}

#[test]
fn missing_shard_section_is_typed() {
    let (ens, _) = trained_ensemble(3, 150, 11, SolverKind::Hss);
    let mut bytes = encode_ensemble(&ens);
    let (_, _, crc_pos) = section_span(&bytes, b"SH02").expect("shard section");
    // Rename the tag in the table; the payload stays checksummed, so the
    // decoder reaches the missing-shard check.
    let entry = crc_pos - 20;
    bytes[entry..entry + 4].copy_from_slice(b"XXXX");
    match decode_any(&bytes) {
        Err(CodecError::Malformed(m)) => assert!(m.contains("shard"), "{m}"),
        other => panic!("expected Malformed, got {other:?}"),
    }
}

#[test]
fn single_model_decoder_refuses_ensemble_files() {
    let (ens, _) = trained_ensemble(2, 130, 3, SolverKind::Hss);
    match decode_model(&encode_ensemble(&ens)) {
        Err(CodecError::Malformed(m)) => assert!(m.contains("ensemble"), "{m}"),
        other => panic!("expected Malformed, got {other:?}"),
    }
}

/// v1 and v2 single-model files — produced with the real old layouts —
/// still load, bitwise.
#[test]
fn old_format_versions_still_load_bitwise() {
    let ds = hkrr_datasets::generate(&SUSY, 160, 24, 7);
    let model = KrrModel::fit(&ds.train, &ds.train_labels, &base_config(SolverKind::Hss)).unwrap();
    let reference = model.decision_values(&ds.test);
    for version in [1u32, 2, 3, 4] {
        let bytes = encode_model_as_version(&model, version)
            .unwrap_or_else(|e| panic!("encoding v{version}: {e}"));
        assert_eq!(codec::encoded_version(&bytes).unwrap(), version);
        let loaded = decode_model(&bytes).unwrap_or_else(|e| panic!("decoding v{version}: {e}"));
        assert_eq!(
            loaded.decision_values(&ds.test),
            reference,
            "v{version} reload is not bitwise"
        );
        assert!(loaded.factors().is_some(), "v{version} lost the factors");
    }
    // v1 predates hss-pcg: encoding such a model at v1 is refused…
    let pcg = KrrModel::fit(
        &ds.train,
        &ds.train_labels,
        &base_config(SolverKind::HssPcg),
    )
    .unwrap();
    assert!(matches!(
        encode_model_as_version(&pcg, 1),
        Err(CodecError::Malformed(_))
    ));
    // …and v2 carries it fine.
    let v2 = encode_model_as_version(&pcg, 2).unwrap();
    let loaded = decode_model(&v2).unwrap();
    assert_eq!(
        loaded.decision_values(&ds.test),
        pcg.decision_values(&ds.test)
    );
    assert_eq!(loaded.report().pcg_iterations, pcg.report().pcg_iterations);
    // Unknown versions are refused typed, on both paths.
    assert!(matches!(
        encode_model_as_version(&model, 99),
        Err(CodecError::UnsupportedVersion(99))
    ));
}

/// The `hkrr-serve info` output is stable `key: value` lines with the
/// solver kind, the PCG configuration, and the shard layout, for every
/// codec version.
#[test]
fn info_lines_are_parseable_for_every_version() {
    let ds = hkrr_datasets::generate(&LETTER, 150, 20, 5);
    let model = KrrModel::fit(
        &ds.train,
        &ds.train_labels,
        &base_config(SolverKind::HssPcg),
    )
    .unwrap();

    let parse = |lines: &[String]| -> HashMap<String, String> {
        lines
            .iter()
            .map(|line| {
                let (key, value) = line
                    .split_once(": ")
                    .unwrap_or_else(|| panic!("unparseable info line {line:?}"));
                (key.to_string(), value.to_string())
            })
            .collect()
    };

    // Single models, at every readable version (v1 via an hss model —
    // hss-pcg cannot be a v1 fixture).
    let hss_model =
        KrrModel::fit(&ds.train, &ds.train_labels, &base_config(SolverKind::Hss)).unwrap();
    for version in [1u32, 2, 3, 4] {
        let source = if version == 1 { &hss_model } else { &model };
        let bytes = encode_model_as_version(source, version).unwrap();
        let loaded = decode_any(&bytes).unwrap();
        let map = parse(&info_lines(version, &loaded));
        assert_eq!(map["schema"], "hkrr-model/1");
        assert_eq!(map["version"], version.to_string());
        assert_eq!(map["kind"], "single");
        assert_eq!(map["shards"], "1");
        assert_eq!(map["solver"], if version == 1 { "hss" } else { "hss-pcg" });
        // The PCG config is printed for every version (v1 surfaces the
        // defaults its era implied).
        assert!(map.contains_key("pcg_tolerance"), "{map:?}");
        assert_eq!(map["pcg_max_iterations"], "500");
        assert!(map.contains_key("pcg_loosening"));
        // Pre-v4 files surface the f64 default their era implied.
        assert_eq!(map["factor_precision"], "f64");
        assert_eq!(map["n_train"], "150");
    }

    // Ensembles: the shard layout appears, one line per shard.
    let (ens, _) = trained_ensemble(3, 150, 5, SolverKind::Hss);
    let loaded = decode_any(&encode_ensemble(&ens)).unwrap();
    let lines = info_lines(3, &loaded);
    let map = parse(&lines);
    assert_eq!(map["kind"], "ensemble");
    assert_eq!(map["shards"], "3");
    assert_eq!(map["route_nearest"], "2");
    assert_eq!(map["strategy"], "cluster");
    assert_eq!(map["solver"], "hss");
    for i in 0..3 {
        let value = &map[&format!("shard {i}")];
        assert!(
            value.contains("solver=hss") && value.contains("n="),
            "shard line {value:?}"
        );
    }
}
