//! The micro-batching prediction engine.
//!
//! Production prediction traffic arrives as single points, but the kernel
//! work is much cheaper per point when evaluated in batches (one pass over
//! the stored training points serves every query in the batch, and the
//! batched [`KrrModel::decision_values_into`] path parallelizes over the
//! batch rows via the column-parallel cross-kernel). This engine sits
//! between the two shapes:
//!
//! * requests go into a **bounded queue** (backpressure: a full queue
//!   rejects with [`ServeError::QueueFull`] instead of buffering without
//!   limit),
//! * a **worker pool** shares one loaded model; each worker pops the oldest
//!   request and then **coalesces** whatever else arrived — waiting up to
//!   [`EngineConfig::linger`] for stragglers, never beyond
//!   [`EngineConfig::max_batch`] — into one batched evaluation,
//! * per-request **latency accounting** (enqueue → reply) and batch-size
//!   statistics are kept in [`EngineStats`], which the serve snapshot
//!   (`BENCH_serve.json`) reports.
//!
//! Workers reuse their batch and score buffers across batches, so the
//! steady-state hot path performs no per-request allocation beyond the
//! request envelope itself.

use crate::ServeError;
use hkrr_core::KrrModel;
use hkrr_linalg::Matrix;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tuning knobs of the micro-batching engine.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Number of worker threads sharing the model.
    pub workers: usize,
    /// Largest number of requests coalesced into one batched evaluation.
    pub max_batch: usize,
    /// Bound on the request queue; submissions beyond it are rejected.
    pub queue_capacity: usize,
    /// How long a worker holding a non-full batch waits for more arrivals
    /// before evaluating. Zero disables coalescing-by-waiting (batches then
    /// only form from genuine queue backlog).
    pub linger: Duration,
}

impl Default for EngineConfig {
    fn default() -> Self {
        let host = std::thread::available_parallelism().map_or(1, |n| n.get());
        EngineConfig {
            workers: host.min(4),
            max_batch: 64,
            queue_capacity: 1024,
            linger: Duration::from_micros(500),
        }
    }
}

/// One answered prediction request.
#[derive(Debug, Clone, Copy)]
pub struct Prediction {
    /// Raw decision value `w · K'(x, ·)`.
    pub score: f64,
    /// `sign(score)` as a ±1 label.
    pub label: f64,
    /// Enqueue-to-reply latency observed by the engine.
    pub latency: Duration,
    /// Size of the coalesced batch this request was evaluated in.
    pub batch_size: usize,
}

/// A submitted request whose answer can be awaited later (so callers can
/// pipeline submissions).
pub struct PendingPrediction {
    rx: mpsc::Receiver<Prediction>,
}

impl PendingPrediction {
    /// Blocks until the engine answers.
    pub fn wait(self) -> Result<Prediction, ServeError> {
        self.rx.recv().map_err(|_| ServeError::ShuttingDown)
    }
}

struct Request {
    point: Vec<f64>,
    enqueued: Instant,
    reply: mpsc::Sender<Prediction>,
}

/// Cumulative engine counters (lock-free reads; written by the workers).
#[derive(Debug, Default)]
pub struct EngineStats {
    /// Requests answered.
    pub requests: AtomicU64,
    /// Batched evaluations performed.
    pub batches: AtomicU64,
    /// Largest batch evaluated.
    pub max_batch_observed: AtomicU64,
    /// Sum of enqueue-to-reply latencies, in microseconds.
    pub latency_micros_total: AtomicU64,
    /// Largest single enqueue-to-reply latency, in microseconds.
    pub latency_micros_max: AtomicU64,
    /// Submissions rejected because the queue was full.
    pub queue_rejections: AtomicU64,
}

/// A point-in-time copy of [`EngineStats`] with derived ratios.
#[derive(Debug, Clone, Copy, Default)]
pub struct StatsSnapshot {
    /// Requests answered.
    pub requests: u64,
    /// Batched evaluations performed.
    pub batches: u64,
    /// Mean coalesced batch size (`requests / batches`).
    pub mean_batch_size: f64,
    /// Largest batch evaluated.
    pub max_batch_observed: u64,
    /// Mean enqueue-to-reply latency in milliseconds.
    pub mean_latency_ms: f64,
    /// Largest enqueue-to-reply latency in milliseconds.
    pub max_latency_ms: f64,
    /// Submissions rejected because the queue was full.
    pub queue_rejections: u64,
}

impl EngineStats {
    /// Takes a consistent-enough snapshot for reporting.
    pub fn snapshot(&self) -> StatsSnapshot {
        let requests = self.requests.load(Ordering::Relaxed);
        let batches = self.batches.load(Ordering::Relaxed);
        StatsSnapshot {
            requests,
            batches,
            mean_batch_size: if batches > 0 {
                requests as f64 / batches as f64
            } else {
                0.0
            },
            max_batch_observed: self.max_batch_observed.load(Ordering::Relaxed),
            mean_latency_ms: if requests > 0 {
                self.latency_micros_total.load(Ordering::Relaxed) as f64 / requests as f64 / 1000.0
            } else {
                0.0
            },
            max_latency_ms: self.latency_micros_max.load(Ordering::Relaxed) as f64 / 1000.0,
            queue_rejections: self.queue_rejections.load(Ordering::Relaxed),
        }
    }
}

fn fetch_max(cell: &AtomicU64, value: u64) {
    cell.fetch_max(value, Ordering::Relaxed);
}

struct Shared {
    queue: Mutex<VecDeque<Request>>,
    arrived: Condvar,
    shutdown: AtomicBool,
    stats: EngineStats,
    config: EngineConfig,
    model: Arc<KrrModel>,
}

/// The micro-batching prediction engine: a worker pool over a shared
/// loaded model. See the module docs for the batching discipline.
pub struct PredictionEngine {
    shared: Arc<Shared>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl PredictionEngine {
    /// Starts the worker pool over a loaded model.
    pub fn start(model: Arc<KrrModel>, config: EngineConfig) -> Arc<PredictionEngine> {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::with_capacity(config.queue_capacity.min(4096))),
            arrived: Condvar::new(),
            shutdown: AtomicBool::new(false),
            stats: EngineStats::default(),
            config: EngineConfig {
                max_batch: config.max_batch.max(1),
                queue_capacity: config.queue_capacity.max(1),
                ..config
            },
            model,
        });
        let workers = (0..shared.config.workers)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        Arc::new(PredictionEngine {
            shared,
            workers: Mutex::new(workers),
        })
    }

    /// The model being served.
    pub fn model(&self) -> &KrrModel {
        &self.shared.model
    }

    /// Cumulative counters.
    pub fn stats(&self) -> StatsSnapshot {
        self.shared.stats.snapshot()
    }

    /// Submits one raw (un-normalized) point; the reply can be awaited via
    /// [`PendingPrediction::wait`]. Validates the dimension and applies
    /// queue backpressure here, before any worker is involved.
    pub fn submit(&self, point: Vec<f64>) -> Result<PendingPrediction, ServeError> {
        let dim = self.shared.model.dim();
        if point.len() != dim {
            return Err(ServeError::Rejected(format!(
                "point has {} features, model expects {dim}",
                point.len()
            )));
        }
        if point.iter().any(|v| !v.is_finite()) {
            return Err(ServeError::Rejected("non-finite feature value".to_string()));
        }
        let (tx, rx) = mpsc::channel();
        {
            let mut queue = self.shared.queue.lock().unwrap();
            // Checked under the lock: shutdown() sets the flag before its
            // final drain, so a push that wins this lock either happens
            // before the drain (and is answered) or observes the flag here
            // — no request can slip in after the workers are gone.
            if self.shared.shutdown.load(Ordering::Acquire) {
                return Err(ServeError::ShuttingDown);
            }
            if queue.len() >= self.shared.config.queue_capacity {
                drop(queue);
                self.shared
                    .stats
                    .queue_rejections
                    .fetch_add(1, Ordering::Relaxed);
                return Err(ServeError::QueueFull);
            }
            queue.push_back(Request {
                point,
                enqueued: Instant::now(),
                reply: tx,
            });
        }
        self.shared.arrived.notify_one();
        Ok(PendingPrediction { rx })
    }

    /// Submits one point and blocks for the answer.
    pub fn predict_one(&self, point: Vec<f64>) -> Result<Prediction, ServeError> {
        self.submit(point)?.wait()
    }

    /// Signals shutdown, lets the workers drain the queue, and joins them.
    /// Idempotent.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.arrived.notify_all();
        let mut workers = self.workers.lock().unwrap();
        for handle in workers.drain(..) {
            let _ = handle.join();
        }
        // With a normal pool the workers drained everything; with zero
        // workers (tests) drop the leftovers so waiters observe shutdown
        // instead of blocking forever.
        self.shared.queue.lock().unwrap().clear();
    }
}

impl Drop for PredictionEngine {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Pops a batch: the oldest request plus everything else available, waiting
/// up to `linger` for stragglers while below `max_batch`. Returns an empty
/// batch only at shutdown with a drained queue.
fn pop_batch(shared: &Shared, batch: &mut Vec<Request>) {
    batch.clear();
    let max_batch = shared.config.max_batch;
    let mut queue = shared.queue.lock().unwrap();
    // Phase 1: wait for the first request (or shutdown).
    loop {
        while let Some(req) = queue.pop_front() {
            batch.push(req);
            if batch.len() >= max_batch {
                return;
            }
        }
        if !batch.is_empty() {
            break;
        }
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        queue = shared.arrived.wait(queue).unwrap();
    }
    // Phase 2: linger for stragglers to coalesce a larger batch.
    let deadline = Instant::now() + shared.config.linger;
    loop {
        while let Some(req) = queue.pop_front() {
            batch.push(req);
            if batch.len() >= max_batch {
                return;
            }
        }
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        let now = Instant::now();
        if now >= deadline {
            return;
        }
        let (q, timeout) = shared.arrived.wait_timeout(queue, deadline - now).unwrap();
        queue = q;
        if timeout.timed_out() && queue.is_empty() {
            return;
        }
    }
}

fn worker_loop(shared: &Shared) {
    let model = &shared.model;
    let dim = model.dim();
    let mut batch: Vec<Request> = Vec::with_capacity(shared.config.max_batch);
    // Reused across batches: zero steady-state allocation on the hot path.
    let mut points_buf: Vec<f64> = Vec::with_capacity(shared.config.max_batch * dim.max(1));
    let mut scores: Vec<f64> = vec![0.0; shared.config.max_batch];

    loop {
        pop_batch(shared, &mut batch);
        if batch.is_empty() {
            // Shutdown with a drained queue.
            return;
        }
        let rows = batch.len();
        points_buf.clear();
        for req in &batch {
            points_buf.extend_from_slice(&req.point);
        }
        let test = Matrix::from_vec(rows, dim, std::mem::take(&mut points_buf));
        model.decision_values_into(&test, &mut scores[..rows]);
        points_buf = test.into_vec();

        let stats = &shared.stats;
        stats.requests.fetch_add(rows as u64, Ordering::Relaxed);
        stats.batches.fetch_add(1, Ordering::Relaxed);
        fetch_max(&stats.max_batch_observed, rows as u64);
        for (req, &score) in batch.drain(..).zip(scores.iter()) {
            let latency = req.enqueued.elapsed();
            let micros = latency.as_micros() as u64;
            stats
                .latency_micros_total
                .fetch_add(micros, Ordering::Relaxed);
            fetch_max(&stats.latency_micros_max, micros);
            // A dropped receiver (client gone) is fine; ignore send errors.
            let _ = req.reply.send(Prediction {
                score,
                label: if score >= 0.0 { 1.0 } else { -1.0 },
                latency,
                batch_size: rows,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hkrr_core::{KrrConfig, SolverKind};
    use hkrr_datasets::registry::LETTER;

    fn model(n: usize) -> (Arc<KrrModel>, hkrr_datasets::Dataset) {
        let ds = hkrr_datasets::generate(&LETTER, n, 64, 3);
        let cfg = KrrConfig {
            h: LETTER.default_h,
            lambda: LETTER.default_lambda,
            solver: SolverKind::Hss,
            ..KrrConfig::default()
        };
        let m = KrrModel::fit(&ds.train, &ds.train_labels, &cfg).unwrap();
        (Arc::new(m), ds)
    }

    #[test]
    fn single_requests_match_direct_prediction_bitwise() {
        let (m, ds) = model(200);
        let engine = PredictionEngine::start(
            Arc::clone(&m),
            EngineConfig {
                workers: 2,
                ..EngineConfig::default()
            },
        );
        let direct = m.decision_values(&ds.test);
        for i in 0..16 {
            let p = engine.predict_one(ds.test.row(i).to_vec()).unwrap();
            assert_eq!(p.score, direct[i], "request {i}");
            assert_eq!(p.label, if direct[i] >= 0.0 { 1.0 } else { -1.0 });
            assert!(p.batch_size >= 1);
        }
        let stats = engine.stats();
        assert_eq!(stats.requests, 16);
        assert!(stats.batches >= 1);
        assert!(stats.mean_latency_ms >= 0.0);
        engine.shutdown();
    }

    #[test]
    fn invalid_points_are_rejected_before_queueing() {
        let (m, _) = model(100);
        let engine = PredictionEngine::start(m, EngineConfig::default());
        assert!(matches!(
            engine.predict_one(vec![0.0; 3]),
            Err(ServeError::Rejected(_))
        ));
        assert!(matches!(
            engine.predict_one(vec![f64::NAN; 16]),
            Err(ServeError::Rejected(_))
        ));
        engine.shutdown();
    }

    #[test]
    fn bounded_queue_rejects_when_full() {
        let (m, ds) = model(100);
        // No workers: nothing drains the queue, so the capacity bound is
        // exactly observable.
        let engine = PredictionEngine::start(
            m,
            EngineConfig {
                workers: 0,
                queue_capacity: 4,
                ..EngineConfig::default()
            },
        );
        let mut pending = Vec::new();
        for _ in 0..4 {
            pending.push(engine.submit(ds.test.row(0).to_vec()).unwrap());
        }
        assert!(matches!(
            engine.submit(ds.test.row(0).to_vec()),
            Err(ServeError::QueueFull)
        ));
        assert_eq!(engine.stats().queue_rejections, 1);
        engine.shutdown();
        // Queued-but-never-answered requests surface as ShuttingDown.
        for p in pending {
            assert!(matches!(p.wait(), Err(ServeError::ShuttingDown)));
        }
    }

    #[test]
    fn concurrent_load_coalesces_into_batches() {
        let (m, ds) = model(220);
        let direct = m.decision_values(&ds.test);
        let engine = PredictionEngine::start(
            Arc::clone(&m),
            EngineConfig {
                workers: 1,
                max_batch: 32,
                queue_capacity: 4096,
                linger: Duration::from_millis(2),
            },
        );
        let rounds = 40;
        std::thread::scope(|scope| {
            for t in 0..8 {
                let engine = &engine;
                let ds = &ds;
                let direct = &direct;
                scope.spawn(move || {
                    for r in 0..rounds {
                        let i = (t * rounds + r) % ds.test.nrows();
                        let p = engine.predict_one(ds.test.row(i).to_vec()).unwrap();
                        assert_eq!(p.score, direct[i], "client {t} round {r}");
                    }
                });
            }
        });
        let stats = engine.stats();
        assert_eq!(stats.requests, 8 * rounds as u64);
        assert!(
            stats.mean_batch_size > 1.0,
            "expected coalescing under concurrent load, got mean batch {}",
            stats.mean_batch_size
        );
        assert!(stats.max_batch_observed > 1);
        engine.shutdown();
    }

    #[test]
    fn shutdown_drains_queued_requests() {
        let (m, ds) = model(120);
        let engine = PredictionEngine::start(
            m,
            EngineConfig {
                workers: 1,
                linger: Duration::ZERO,
                ..EngineConfig::default()
            },
        );
        let pending: Vec<_> = (0..32)
            .map(|i| {
                engine
                    .submit(ds.test.row(i % ds.test.nrows()).to_vec())
                    .unwrap()
            })
            .collect();
        engine.shutdown();
        // Everything already queued was answered before the workers exited.
        for (i, p) in pending.into_iter().enumerate() {
            assert!(p.wait().is_ok(), "queued request {i} was dropped");
        }
        // New submissions are refused.
        assert!(matches!(
            engine.submit(vec![0.0; 16]),
            Err(ServeError::ShuttingDown)
        ));
    }
}
