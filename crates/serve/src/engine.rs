//! The micro-batching prediction engine.
//!
//! Production prediction traffic arrives as single points, but the kernel
//! work is much cheaper per point when evaluated in batches (one pass over
//! the stored training points serves every query in the batch, and the
//! batched [`DecisionModel::decision_values_into`] path parallelizes over
//! the batch rows via the column-parallel cross-kernel). This engine sits
//! between the two shapes:
//!
//! * requests go into a **bounded queue** (backpressure: a full queue
//!   rejects with [`ServeError::QueueFull`] instead of buffering without
//!   limit),
//! * a **worker pool** shares one loaded model; each worker pops the oldest
//!   request and then **coalesces** whatever else arrived — waiting up to
//!   [`EngineConfig::linger`] for stragglers, never beyond
//!   [`EngineConfig::max_batch`] — into one batched evaluation,
//! * per-request **latency accounting** (enqueue → reply) and batch-size
//!   statistics are kept in [`EngineStats`], which the serve snapshot
//!   (`BENCH_serve.json`) reports.
//!
//! Workers reuse their batch and score buffers across batches, so the
//! steady-state hot path performs no per-request allocation beyond the
//! request envelope itself.

use crate::slowlog::{SlowEntry, SlowLog, SLOWLOG_CAPACITY};
use crate::ServeError;
use hkrr_core::DecisionModel;
use hkrr_linalg::Matrix;
use hkrr_telemetry::trace::TraceContext;
use hkrr_telemetry::{Counter, Gauge, Histogram, HistogramSpec};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tuning knobs of the micro-batching engine.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Number of worker threads sharing the model.
    pub workers: usize,
    /// Largest number of requests coalesced into one batched evaluation.
    pub max_batch: usize,
    /// Bound on the request queue; submissions beyond it are rejected.
    pub queue_capacity: usize,
    /// How long a worker holding a non-full batch waits for more arrivals
    /// before evaluating. Zero disables coalescing-by-waiting (batches then
    /// only form from genuine queue backlog).
    pub linger: Duration,
}

impl Default for EngineConfig {
    fn default() -> Self {
        let host = std::thread::available_parallelism().map_or(1, |n| n.get());
        EngineConfig {
            workers: host.min(4),
            max_batch: 64,
            queue_capacity: 1024,
            linger: Duration::from_micros(500),
        }
    }
}

/// One answered prediction request.
#[derive(Debug, Clone, Copy)]
pub struct Prediction {
    /// Raw decision value `w · K'(x, ·)`.
    pub score: f64,
    /// `sign(score)` as a ±1 label.
    pub label: f64,
    /// Enqueue-to-reply latency observed by the engine.
    pub latency: Duration,
    /// Size of the coalesced batch this request was evaluated in.
    pub batch_size: usize,
}

/// Why the engine refused or abandoned a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineError {
    /// [`PredictionEngine::shutdown`] ran: the request was either refused
    /// at [`PredictionEngine::submit`] or drained unanswered from the
    /// queue. Every waiter observes this error — no request is left
    /// hanging on a queue no worker will ever drain again.
    Shutdown,
    /// [`PredictionEngine::refresh`] was offered a replacement model with
    /// a different input dimension; the swap was refused and the old
    /// model keeps serving.
    RefreshDimensionMismatch {
        /// Input dimension of the model currently being served.
        expected: usize,
        /// Input dimension of the rejected replacement.
        got: usize,
    },
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::Shutdown => write!(f, "engine is shut down"),
            EngineError::RefreshDimensionMismatch { expected, got } => write!(
                f,
                "refreshed model has dimension {got}, the engine serves dimension {expected}"
            ),
        }
    }
}

impl std::error::Error for EngineError {}

/// A submitted request whose answer can be awaited later (so callers can
/// pipeline submissions).
pub struct PendingPrediction {
    rx: mpsc::Receiver<Result<Prediction, EngineError>>,
}

impl PendingPrediction {
    /// Blocks until the engine answers (or resolves the request with a
    /// typed error at shutdown).
    pub fn wait(self) -> Result<Prediction, ServeError> {
        match self.rx.recv() {
            Ok(Ok(p)) => Ok(p),
            Ok(Err(e)) => Err(ServeError::Engine(e)),
            // A dropped sender without a reply means the engine went away
            // (worker death mid-batch): surface it as shutdown, never hang.
            Err(_) => Err(ServeError::Engine(EngineError::Shutdown)),
        }
    }

    /// [`PendingPrediction::wait`] with an upper bound: returns `None` if
    /// no resolution arrives within `timeout`.
    pub fn wait_timeout(self, timeout: Duration) -> Option<Result<Prediction, ServeError>> {
        match self.rx.recv_timeout(timeout) {
            Ok(Ok(p)) => Some(Ok(p)),
            Ok(Err(e)) => Some(Err(ServeError::Engine(e))),
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                Some(Err(ServeError::Engine(EngineError::Shutdown)))
            }
            Err(mpsc::RecvTimeoutError::Timeout) => None,
        }
    }
}

struct Request {
    point: Vec<f64>,
    enqueued: Instant,
    /// Cross-process trace id (`0` = untraced plain predict).
    trace_id: u128,
    /// Caller's span id within that trace (`0` = root).
    parent_span: u64,
    reply: mpsc::Sender<Result<Prediction, EngineError>>,
}

/// Globally unique (per process) engine ids, so every engine's series in
/// the process-wide metrics registry stay distinct — and exactly matchable
/// by tests and scrapes — even with several engines alive at once.
static NEXT_ENGINE_ID: AtomicUsize = AtomicUsize::new(1);

/// Cumulative engine instruments, registered in the process-global
/// [`hkrr_telemetry`] registry under an `engine="e<id>"` label (lock-free
/// writes by the workers; a `metrics` scrape renders the same numbers the
/// [`StatsSnapshot`] reports).
#[derive(Debug)]
pub struct EngineStats {
    /// This engine's unique id within the process.
    pub engine_id: usize,
    /// Requests answered (`hkrr_engine_requests_total`).
    pub requests: Arc<Counter>,
    /// Batched evaluations performed (`hkrr_engine_batches_total`).
    pub batches: Arc<Counter>,
    /// Submissions rejected on a full queue
    /// (`hkrr_engine_queue_rejections_total`).
    pub queue_rejections: Arc<Counter>,
    /// Instantaneous queue depth (`hkrr_engine_queue_depth`).
    pub queue_depth: Arc<Gauge>,
    /// Coalesced batch sizes (`hkrr_engine_batch_rows`).
    pub batch_rows: Arc<Histogram>,
    /// Enqueue-to-reply latencies in µs
    /// (`hkrr_engine_request_latency_micros`).
    pub latency_micros: Arc<Histogram>,
}

impl EngineStats {
    /// Registers a fresh engine's instruments in the global registry.
    pub fn register() -> EngineStats {
        let engine_id = NEXT_ENGINE_ID.fetch_add(1, Ordering::Relaxed);
        let id = format!("e{engine_id}");
        let labels: &[(&str, &str)] = &[("engine", id.as_str())];
        let reg = hkrr_telemetry::global();
        EngineStats {
            engine_id,
            requests: reg.counter(
                "hkrr_engine_requests_total",
                "Requests answered by the prediction engine",
                labels,
            ),
            batches: reg.counter(
                "hkrr_engine_batches_total",
                "Batched evaluations performed",
                labels,
            ),
            queue_rejections: reg.counter(
                "hkrr_engine_queue_rejections_total",
                "Submissions rejected because the queue was full",
                labels,
            ),
            queue_depth: reg.gauge(
                "hkrr_engine_queue_depth",
                "Requests currently waiting in the engine queue",
                labels,
            ),
            batch_rows: reg.histogram(
                "hkrr_engine_batch_rows",
                "Coalesced batch sizes, in rows",
                labels,
                &HistogramSpec::batch_rows(),
            ),
            latency_micros: reg.histogram(
                "hkrr_engine_request_latency_micros",
                "Enqueue-to-reply latency per request, in microseconds",
                labels,
                &HistogramSpec::latency_micros(),
            ),
        }
    }
}

/// A point-in-time copy of [`EngineStats`] with derived ratios, plus the
/// hosted model's per-constituent serving load (one entry per shard for an
/// ensemble; empty when the model is a single `KrrModel`).
#[derive(Debug, Clone, Default)]
pub struct StatsSnapshot {
    /// Id of the engine the snapshot was taken from (its metric series
    /// carry the matching `engine="e<id>"` label).
    pub engine_id: usize,
    /// Requests answered.
    pub requests: u64,
    /// Batched evaluations performed.
    pub batches: u64,
    /// Sum of all batch sizes recorded in the batch histogram. Snapshot
    /// ordering guarantees `requests >= batch_rows_recorded` — the workers
    /// bump `requests` before recording the batch, and the snapshot reads
    /// the histogram first.
    pub batch_rows_recorded: u64,
    /// Mean coalesced batch size (`requests / batches`).
    pub mean_batch_size: f64,
    /// Largest batch evaluated.
    pub max_batch_observed: u64,
    /// Mean enqueue-to-reply latency in milliseconds.
    pub mean_latency_ms: f64,
    /// Largest enqueue-to-reply latency in milliseconds.
    pub max_latency_ms: f64,
    /// Submissions rejected because the queue was full.
    pub queue_rejections: u64,
    /// Number of constituent models behind the engine (1 for a single
    /// model, the shard count for an ensemble).
    pub num_models: usize,
    /// Cumulative routed-query count per constituent model, when the
    /// hosted model tracks one (per-shard load for an ensemble; empty for
    /// a single model).
    pub model_requests: Vec<u64>,
    /// The engine's slow-query capture: the top-N requests by latency,
    /// slowest first, with trace ids and batch context.
    pub slowlog: Vec<SlowEntry>,
}

impl EngineStats {
    /// Takes a consistent snapshot: the histograms are read *before* the
    /// counters, and the workers bump the counters *before* recording into
    /// the histograms (all `SeqCst`), so derived invariants such as
    /// `requests >= batch_rows_recorded` can never be observed inverted
    /// mid-traffic.
    pub fn snapshot(&self) -> StatsSnapshot {
        let batch = self.batch_rows.snapshot();
        let latency = self.latency_micros.snapshot();
        let batches = self.batches.get();
        let requests = self.requests.get();
        StatsSnapshot {
            engine_id: self.engine_id,
            requests,
            batches,
            batch_rows_recorded: batch.sum,
            mean_batch_size: if batches > 0 {
                requests as f64 / batches as f64
            } else {
                0.0
            },
            max_batch_observed: batch.max,
            mean_latency_ms: latency.mean() / 1000.0,
            max_latency_ms: latency.max as f64 / 1000.0,
            queue_rejections: self.queue_rejections.get(),
            num_models: 1,
            model_requests: Vec::new(),
            slowlog: Vec::new(),
        }
    }
}

struct Shared {
    queue: Mutex<VecDeque<Request>>,
    arrived: Condvar,
    shutdown: AtomicBool,
    stats: EngineStats,
    /// Top-N requests by enqueue-to-reply latency (trace ids + batch
    /// context), surfaced through [`StatsSnapshot::slowlog`].
    slowlog: SlowLog,
    config: EngineConfig,
    /// The served model, behind a swap lock so `refresh` can replace it
    /// while the workers keep draining: a worker clones the handle once
    /// per *batch* (one read-lock acquisition, not one per request), so a
    /// swap never tears a batch and in-flight batches finish on the model
    /// they started with.
    model: RwLock<Arc<dyn DecisionModel>>,
    /// Input dimension, fixed for the engine's lifetime (`refresh`
    /// enforces it), so `submit` validates without taking the model lock.
    dim: usize,
}

impl Shared {
    fn model(&self) -> Arc<dyn DecisionModel> {
        Arc::clone(&self.model.read().unwrap())
    }
}

/// The micro-batching prediction engine: a worker pool over a shared
/// loaded model. See the module docs for the batching discipline.
pub struct PredictionEngine {
    shared: Arc<Shared>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl PredictionEngine {
    /// Starts the worker pool over a loaded model — any
    /// [`DecisionModel`]: a single `KrrModel` or a sharded ensemble.
    pub fn start(model: Arc<dyn DecisionModel>, config: EngineConfig) -> Arc<PredictionEngine> {
        let dim = model.dim();
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::with_capacity(config.queue_capacity.min(4096))),
            arrived: Condvar::new(),
            shutdown: AtomicBool::new(false),
            stats: EngineStats::register(),
            slowlog: SlowLog::new(SLOWLOG_CAPACITY),
            config: EngineConfig {
                max_batch: config.max_batch.max(1),
                queue_capacity: config.queue_capacity.max(1),
                ..config
            },
            model: RwLock::new(model),
            dim,
        });
        let workers = (0..shared.config.workers)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        Arc::new(PredictionEngine {
            shared,
            workers: Mutex::new(workers),
        })
    }

    /// The model currently being served (a clone of the swap handle, so
    /// the caller's view is stable across a concurrent
    /// [`PredictionEngine::refresh`]).
    pub fn model(&self) -> Arc<dyn DecisionModel> {
        self.shared.model()
    }

    /// Hot-swaps the served model. The replacement must have the same
    /// input dimension; in-flight batches finish on the old model, later
    /// batches use the new one, and no request is dropped either way.
    /// Per-constituent load counters restart with the new model.
    pub fn refresh(&self, model: Arc<dyn DecisionModel>) -> Result<(), EngineError> {
        if model.dim() != self.shared.dim {
            return Err(EngineError::RefreshDimensionMismatch {
                expected: self.shared.dim,
                got: model.dim(),
            });
        }
        *self.shared.model.write().unwrap() = model;
        Ok(())
    }

    /// Cumulative counters, including the hosted model's per-constituent
    /// (per-shard) routed-query counts when it tracks them, and the
    /// slow-query capture.
    pub fn stats(&self) -> StatsSnapshot {
        let mut snapshot = self.shared.stats.snapshot();
        let model = self.shared.model();
        snapshot.num_models = model.num_models();
        snapshot.model_requests = model.model_loads();
        snapshot.slowlog = self.shared.slowlog.snapshot();
        snapshot
    }

    /// Submits one raw (un-normalized) point; the reply can be awaited via
    /// [`PendingPrediction::wait`]. Validates the dimension and applies
    /// queue backpressure here, before any worker is involved.
    pub fn submit(&self, point: Vec<f64>) -> Result<PendingPrediction, ServeError> {
        self.submit_traced(point, 0, 0)
    }

    /// [`PredictionEngine::submit`] under a cross-process trace context:
    /// the worker's `engine.predict` span adopts `trace_id`/`parent_span`
    /// and the slowlog remembers the id. `trace_id == 0` means untraced
    /// (identical to `submit` — same arithmetic, same replies).
    pub fn submit_traced(
        &self,
        point: Vec<f64>,
        trace_id: u128,
        parent_span: u64,
    ) -> Result<PendingPrediction, ServeError> {
        let dim = self.shared.dim;
        if point.len() != dim {
            return Err(ServeError::Rejected(format!(
                "point has {} features, model expects {dim}",
                point.len()
            )));
        }
        if point.iter().any(|v| !v.is_finite()) {
            return Err(ServeError::Rejected("non-finite feature value".to_string()));
        }
        let (tx, rx) = mpsc::channel();
        {
            let mut queue = self.shared.queue.lock().unwrap();
            // Checked under the lock: shutdown() sets the flag before its
            // final drain, so a push that wins this lock either happens
            // before the drain (and is answered or error-resolved) or
            // observes the flag here — no request can slip in after the
            // workers are gone.
            if self.shared.shutdown.load(Ordering::Acquire) {
                return Err(ServeError::Engine(EngineError::Shutdown));
            }
            if queue.len() >= self.shared.config.queue_capacity {
                drop(queue);
                self.shared.stats.queue_rejections.inc();
                hkrr_telemetry::log::event(hkrr_telemetry::log::Level::Error, "engine.reject")
                    .trace(trace_id)
                    .num("engine", self.shared.stats.engine_id)
                    .field("outcome", "rejected")
                    .field("reason", "queue_full")
                    .emit();
                return Err(ServeError::QueueFull);
            }
            queue.push_back(Request {
                point,
                enqueued: Instant::now(),
                trace_id,
                parent_span,
                reply: tx,
            });
            self.shared.stats.queue_depth.set(queue.len() as f64);
        }
        self.shared.arrived.notify_one();
        Ok(PendingPrediction { rx })
    }

    /// Submits one point and blocks for the answer.
    pub fn predict_one(&self, point: Vec<f64>) -> Result<Prediction, ServeError> {
        self.submit(point)?.wait()
    }

    /// Submits one traced point and blocks for the answer.
    pub fn predict_one_traced(
        &self,
        point: Vec<f64>,
        trace_id: u128,
        parent_span: u64,
    ) -> Result<Prediction, ServeError> {
        self.submit_traced(point, trace_id, parent_span)?.wait()
    }

    /// Signals shutdown, lets the workers drain the queue, and joins them.
    /// Requests still queued when the workers exit (zero-worker engines, or
    /// a request that raced past the final batch) are resolved with a typed
    /// [`EngineError::Shutdown`] — a waiter never hangs on a queue no
    /// worker will drain again. Idempotent.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.arrived.notify_all();
        let mut workers = self.workers.lock().unwrap();
        for handle in workers.drain(..) {
            let _ = handle.join();
        }
        // Resolve any leftovers explicitly instead of silently dropping
        // them: the waiter gets Err(Shutdown), not a bare disconnect.
        let drained: Vec<Request> = self.shared.queue.lock().unwrap().drain(..).collect();
        self.shared.stats.queue_depth.set(0.0);
        for req in drained {
            let _ = req.reply.send(Err(EngineError::Shutdown));
        }
    }
}

impl Drop for PredictionEngine {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Pops a batch: the oldest request plus everything else available, waiting
/// up to `linger` for stragglers while below `max_batch`. Returns an empty
/// batch only at shutdown with a drained queue.
fn pop_batch(shared: &Shared, batch: &mut Vec<Request>) {
    batch.clear();
    let max_batch = shared.config.max_batch;
    let mut queue = shared.queue.lock().unwrap();
    // Phase 1: wait for the first request (or shutdown).
    loop {
        while let Some(req) = queue.pop_front() {
            batch.push(req);
            if batch.len() >= max_batch {
                shared.stats.queue_depth.set(queue.len() as f64);
                return;
            }
        }
        shared.stats.queue_depth.set(queue.len() as f64);
        if !batch.is_empty() {
            break;
        }
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        queue = shared.arrived.wait(queue).unwrap();
    }
    // Phase 2: linger for stragglers to coalesce a larger batch.
    let deadline = Instant::now() + shared.config.linger;
    loop {
        while let Some(req) = queue.pop_front() {
            batch.push(req);
            if batch.len() >= max_batch {
                shared.stats.queue_depth.set(queue.len() as f64);
                return;
            }
        }
        shared.stats.queue_depth.set(queue.len() as f64);
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        let now = Instant::now();
        if now >= deadline {
            return;
        }
        let (q, timeout) = shared.arrived.wait_timeout(queue, deadline - now).unwrap();
        queue = q;
        if timeout.timed_out() && queue.is_empty() {
            return;
        }
    }
}

fn worker_loop(shared: &Shared) {
    let dim = shared.dim;
    let mut batch: Vec<Request> = Vec::with_capacity(shared.config.max_batch);
    // Reused across batches: zero steady-state allocation on the hot path.
    let mut points_buf: Vec<f64> = Vec::with_capacity(shared.config.max_batch * dim.max(1));
    let mut scores: Vec<f64> = vec![0.0; shared.config.max_batch];

    loop {
        pop_batch(shared, &mut batch);
        if batch.is_empty() {
            // Shutdown with a drained queue.
            return;
        }
        let rows = batch.len();
        points_buf.clear();
        for req in &batch {
            points_buf.extend_from_slice(&req.point);
        }
        // One `engine.predict` span per *traced* request, opened before the
        // evaluation so the span covers the batched model work. When
        // tracing is disabled this stays an empty Vec (one relaxed load in
        // `enabled()`, nothing allocated).
        let mut req_spans: Vec<Option<hkrr_telemetry::trace::Span>> = Vec::new();
        if hkrr_telemetry::trace::enabled() {
            req_spans.extend(batch.iter().map(|req| {
                (req.trace_id != 0).then(|| {
                    let mut s = hkrr_telemetry::trace::span("engine.predict");
                    s.adopt(TraceContext {
                        trace_id: req.trace_id,
                        parent_span: req.parent_span,
                    });
                    s
                })
            }));
        }
        let test = Matrix::from_vec(rows, dim, std::mem::take(&mut points_buf));
        // One handle clone per batch: a concurrent refresh swaps the slot
        // without tearing this batch.
        let model = shared.model();
        model.decision_values_into(&test, &mut scores[..rows]);
        points_buf = test.into_vec();

        let stats = &shared.stats;
        // Counters first, histograms second: paired with the snapshot's
        // histograms-first read order, a concurrent reader can never see
        // more batch rows recorded than requests answered.
        stats.requests.add(rows as u64);
        stats.batches.inc();
        stats.batch_rows.record(rows as u64);
        for (i, (req, &score)) in batch.drain(..).zip(scores.iter()).enumerate() {
            let latency = req.enqueued.elapsed();
            stats.latency_micros.record_duration(latency);
            let latency_us = latency.as_micros() as u64;
            shared
                .slowlog
                .record(latency_us, req.trace_id, || format!("batch={rows}"));
            if let Some(Some(span)) = req_spans.get_mut(i) {
                span.annotate("batch", rows);
                span.annotate("latency_us", latency_us);
            }
            // A dropped receiver (client gone) is fine; ignore send errors.
            let _ = req.reply.send(Ok(Prediction {
                score,
                label: if score >= 0.0 { 1.0 } else { -1.0 },
                latency,
                batch_size: rows,
            }));
        }
        // Spans drop here: each traced request's `engine.predict` event is
        // written with its trace id once the whole batch has been replied.
        req_spans.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hkrr_core::{KrrConfig, KrrModel, SolverKind};
    use hkrr_datasets::registry::LETTER;

    fn model(n: usize) -> (Arc<KrrModel>, hkrr_datasets::Dataset) {
        let ds = hkrr_datasets::generate(&LETTER, n, 64, 3);
        let cfg = KrrConfig {
            h: LETTER.default_h,
            lambda: LETTER.default_lambda,
            solver: SolverKind::Hss,
            ..KrrConfig::default()
        };
        let m = KrrModel::fit(&ds.train, &ds.train_labels, &cfg).unwrap();
        (Arc::new(m), ds)
    }

    #[test]
    fn single_requests_match_direct_prediction_bitwise() {
        let (m, ds) = model(200);
        let engine = PredictionEngine::start(
            Arc::clone(&m) as Arc<dyn DecisionModel>,
            EngineConfig {
                workers: 2,
                ..EngineConfig::default()
            },
        );
        let direct = m.decision_values(&ds.test);
        for i in 0..16 {
            let p = engine.predict_one(ds.test.row(i).to_vec()).unwrap();
            assert_eq!(p.score, direct[i], "request {i}");
            assert_eq!(p.label, if direct[i] >= 0.0 { 1.0 } else { -1.0 });
            assert!(p.batch_size >= 1);
        }
        let stats = engine.stats();
        assert_eq!(stats.requests, 16);
        assert!(stats.batches >= 1);
        assert!(stats.mean_latency_ms >= 0.0);
        engine.shutdown();
    }

    #[test]
    fn invalid_points_are_rejected_before_queueing() {
        let (m, _) = model(100);
        let engine = PredictionEngine::start(m, EngineConfig::default());
        assert!(matches!(
            engine.predict_one(vec![0.0; 3]),
            Err(ServeError::Rejected(_))
        ));
        assert!(matches!(
            engine.predict_one(vec![f64::NAN; 16]),
            Err(ServeError::Rejected(_))
        ));
        engine.shutdown();
    }

    #[test]
    fn bounded_queue_rejects_when_full() {
        let (m, ds) = model(100);
        // No workers: nothing drains the queue, so the capacity bound is
        // exactly observable.
        let engine = PredictionEngine::start(
            m,
            EngineConfig {
                workers: 0,
                queue_capacity: 4,
                ..EngineConfig::default()
            },
        );
        let mut pending = Vec::new();
        for _ in 0..4 {
            pending.push(engine.submit(ds.test.row(0).to_vec()).unwrap());
        }
        assert!(matches!(
            engine.submit(ds.test.row(0).to_vec()),
            Err(ServeError::QueueFull)
        ));
        assert_eq!(engine.stats().queue_rejections, 1);
        engine.shutdown();
        // Queued-but-never-answered requests are resolved with the typed
        // shutdown error (explicitly sent, not a bare disconnect).
        for p in pending {
            assert!(matches!(
                p.wait(),
                Err(ServeError::Engine(EngineError::Shutdown))
            ));
        }
    }

    #[test]
    fn concurrent_load_coalesces_into_batches() {
        let (m, ds) = model(220);
        let direct = m.decision_values(&ds.test);
        let engine = PredictionEngine::start(
            Arc::clone(&m) as Arc<dyn DecisionModel>,
            EngineConfig {
                workers: 1,
                max_batch: 32,
                queue_capacity: 4096,
                linger: Duration::from_millis(2),
            },
        );
        let rounds = 40;
        std::thread::scope(|scope| {
            for t in 0..8 {
                let engine = &engine;
                let ds = &ds;
                let direct = &direct;
                scope.spawn(move || {
                    for r in 0..rounds {
                        let i = (t * rounds + r) % ds.test.nrows();
                        let p = engine.predict_one(ds.test.row(i).to_vec()).unwrap();
                        assert_eq!(p.score, direct[i], "client {t} round {r}");
                    }
                });
            }
        });
        let stats = engine.stats();
        assert_eq!(stats.requests, 8 * rounds as u64);
        assert!(
            stats.mean_batch_size > 1.0,
            "expected coalescing under concurrent load, got mean batch {}",
            stats.mean_batch_size
        );
        assert!(stats.max_batch_observed > 1);
        engine.shutdown();
    }

    #[test]
    fn shutdown_drains_queued_requests() {
        let (m, ds) = model(120);
        let engine = PredictionEngine::start(
            m,
            EngineConfig {
                workers: 1,
                linger: Duration::ZERO,
                ..EngineConfig::default()
            },
        );
        let pending: Vec<_> = (0..32)
            .map(|i| {
                engine
                    .submit(ds.test.row(i % ds.test.nrows()).to_vec())
                    .unwrap()
            })
            .collect();
        engine.shutdown();
        // Everything already queued was answered before the workers exited.
        for (i, p) in pending.into_iter().enumerate() {
            assert!(p.wait().is_ok(), "queued request {i} was dropped");
        }
        // New submissions are refused with the typed engine error.
        assert!(matches!(
            engine.submit(vec![0.0; 16]),
            Err(ServeError::Engine(EngineError::Shutdown))
        ));
    }

    #[test]
    fn refresh_hot_swaps_the_model_and_validates_the_dimension() {
        let (m, ds) = model(150);
        let engine = PredictionEngine::start(
            Arc::clone(&m) as Arc<dyn DecisionModel>,
            EngineConfig {
                workers: 1,
                ..EngineConfig::default()
            },
        );
        let before = engine.predict_one(ds.test.row(0).to_vec()).unwrap();
        assert_eq!(before.score, m.decision_values(&ds.test)[0]);

        // Swap in a model trained on different data: answers change to the
        // new model's, bitwise, with no restart.
        let ds2 = hkrr_datasets::generate(&LETTER, 130, 16, 99);
        let cfg = KrrConfig {
            h: LETTER.default_h,
            lambda: LETTER.default_lambda,
            solver: SolverKind::Hss,
            ..KrrConfig::default()
        };
        let m2 = Arc::new(KrrModel::fit(&ds2.train, &ds2.train_labels, &cfg).unwrap());
        engine
            .refresh(Arc::clone(&m2) as Arc<dyn DecisionModel>)
            .unwrap();
        let after = engine.predict_one(ds.test.row(0).to_vec()).unwrap();
        assert_eq!(after.score, m2.decision_values(&ds.test)[0]);

        // A wrong-dimension replacement is refused and the old model keeps
        // serving.
        let ds8 = hkrr_datasets::generate(&hkrr_datasets::registry::SUSY, 100, 8, 1);
        let cfg8 = KrrConfig {
            h: hkrr_datasets::registry::SUSY.default_h,
            lambda: hkrr_datasets::registry::SUSY.default_lambda,
            solver: SolverKind::Hss,
            ..KrrConfig::default()
        };
        let m8 = Arc::new(KrrModel::fit(&ds8.train, &ds8.train_labels, &cfg8).unwrap());
        assert_eq!(
            engine.refresh(m8),
            Err(EngineError::RefreshDimensionMismatch {
                expected: 16,
                got: 8
            })
        );
        let still = engine.predict_one(ds.test.row(1).to_vec()).unwrap();
        assert_eq!(still.score, m2.decision_values(&ds.test)[1]);
        engine.shutdown();
    }

    /// Races `submit` against `shutdown`: whatever interleaving the
    /// scheduler picks, every submission either is refused with the typed
    /// shutdown error or yields a pending prediction that *resolves* —
    /// answered or error-resolved, never hung.
    #[test]
    fn submit_racing_shutdown_never_hangs_a_waiter() {
        let (m, ds) = model(120);
        for round in 0..4 {
            let engine = PredictionEngine::start(
                Arc::clone(&m) as Arc<dyn DecisionModel>,
                EngineConfig {
                    workers: 1,
                    linger: Duration::from_micros(200),
                    queue_capacity: 4096,
                    ..EngineConfig::default()
                },
            );
            std::thread::scope(|scope| {
                for t in 0..4 {
                    let engine = &engine;
                    let ds = &ds;
                    scope.spawn(move || {
                        let mut pending = Vec::new();
                        for i in 0..64 {
                            let row = ds.test.row((t * 64 + i) % ds.test.nrows()).to_vec();
                            match engine.submit(row) {
                                Ok(p) => pending.push(p),
                                Err(ServeError::Engine(EngineError::Shutdown)) => break,
                                Err(ServeError::QueueFull) => continue,
                                Err(e) => panic!("unexpected submit error: {e}"),
                            }
                        }
                        for p in pending {
                            match p.wait_timeout(Duration::from_secs(10)) {
                                Some(Ok(_))
                                | Some(Err(ServeError::Engine(EngineError::Shutdown))) => {}
                                Some(Err(e)) => panic!("unexpected resolution: {e}"),
                                None => panic!("waiter hung for 10s after shutdown"),
                            }
                        }
                    });
                }
                // Let the round's interleaving vary, then pull the rug.
                std::thread::sleep(Duration::from_micros(150 * round));
                engine.shutdown();
            });
        }
    }

    /// Satellite pin: under live traffic, a stats snapshot must never
    /// observe more batch rows recorded in the histogram than requests
    /// answered — the worker bumps `requests` first and the snapshot reads
    /// the histogram first, so the invariant holds at every interleaving.
    #[test]
    fn snapshot_never_inverts_requests_vs_recorded_batch_rows() {
        let (m, ds) = model(150);
        let engine = PredictionEngine::start(
            Arc::clone(&m) as Arc<dyn DecisionModel>,
            EngineConfig {
                workers: 2,
                max_batch: 16,
                linger: Duration::from_micros(100),
                ..EngineConfig::default()
            },
        );
        let done = AtomicBool::new(false);
        std::thread::scope(|scope| {
            for t in 0..4 {
                let engine = &engine;
                let ds = &ds;
                scope.spawn(move || {
                    for r in 0..150 {
                        let i = (t * 150 + r) % ds.test.nrows();
                        engine.predict_one(ds.test.row(i).to_vec()).unwrap();
                    }
                });
            }
            let engine = &engine;
            let done = &done;
            scope.spawn(move || {
                let mut checks = 0u64;
                while !done.load(Ordering::Relaxed) {
                    let snap = engine.stats();
                    assert!(
                        snap.requests >= snap.batch_rows_recorded,
                        "inverted snapshot: {} requests < {} batch rows",
                        snap.requests,
                        snap.batch_rows_recorded
                    );
                    checks += 1;
                }
                assert!(checks > 0);
            });
            // Scope joins the writers when this closure returns; flag the
            // reader down first so it cannot outlive them.
            for _ in 0..64 {
                let snap = engine.stats();
                assert!(snap.requests >= snap.batch_rows_recorded);
                std::thread::sleep(Duration::from_micros(200));
            }
            done.store(true, Ordering::Relaxed);
        });
        let snap = engine.stats();
        assert_eq!(snap.requests, 600);
        assert_eq!(snap.batch_rows_recorded, 600, "all batches recorded");
        engine.shutdown();
    }

    /// Builds a bare `Shared` (no workers) so `pop_batch` edge cases can
    /// be driven directly.
    fn shared_for(model: Arc<KrrModel>, linger: Duration, max_batch: usize) -> Arc<Shared> {
        let dim = model.dim();
        Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            arrived: Condvar::new(),
            shutdown: AtomicBool::new(false),
            stats: EngineStats::register(),
            slowlog: SlowLog::new(SLOWLOG_CAPACITY),
            config: EngineConfig {
                workers: 0,
                max_batch,
                queue_capacity: 64,
                linger,
            },
            model: RwLock::new(model),
            dim,
        })
    }

    fn push_request(shared: &Shared, point: Vec<f64>) -> PendingPrediction {
        let (tx, rx) = mpsc::channel();
        shared.queue.lock().unwrap().push_back(Request {
            point,
            enqueued: Instant::now(),
            trace_id: 0,
            parent_span: 0,
            reply: tx,
        });
        shared.arrived.notify_one();
        PendingPrediction { rx }
    }

    #[test]
    fn pop_batch_zero_linger_flushes_immediately_without_underflow() {
        let (m, ds) = model(100);
        // linger == 0 puts the deadline exactly at `now`: the linger loop
        // must take the `now >= deadline` exit, never evaluate the
        // `deadline - now` wait with a negative span.
        let shared = shared_for(m, Duration::ZERO, 8);
        let _p1 = push_request(&shared, ds.test.row(0).to_vec());
        let _p2 = push_request(&shared, ds.test.row(1).to_vec());
        let mut batch = Vec::new();
        pop_batch(&shared, &mut batch);
        assert_eq!(batch.len(), 2, "zero linger still takes the whole backlog");
    }

    #[test]
    fn pop_batch_request_landing_at_the_deadline_is_safe() {
        let (m, ds) = model(100);
        // A linger short enough that the straggler's arrival brackets the
        // deadline: depending on scheduling it lands just before (coalesced)
        // or just after (left for the next batch) — both must be clean, and
        // the `deadline - now` computation must never underflow.
        let shared = shared_for(m, Duration::from_millis(2), 8);
        let _p1 = push_request(&shared, ds.test.row(0).to_vec());
        let straggler = {
            let shared = Arc::clone(&shared);
            let row = ds.test.row(1).to_vec();
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(2));
                let _p = push_request(&shared, row);
            })
        };
        let mut batch = Vec::new();
        pop_batch(&shared, &mut batch);
        straggler.join().unwrap();
        assert!(
            (1..=2).contains(&batch.len()),
            "deadline-edge batch of {}",
            batch.len()
        );
    }

    #[test]
    fn pop_batch_shutdown_mid_linger_flushes_the_nonempty_batch() {
        let (m, ds) = model(100);
        // Linger far longer than the test budget: only the shutdown signal
        // can end the wait, and it must flush the batch, not discard it.
        let shared = shared_for(m, Duration::from_secs(30), 8);
        let _p1 = push_request(&shared, ds.test.row(0).to_vec());
        let signaller = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(30));
                shared.shutdown.store(true, Ordering::Release);
                shared.arrived.notify_all();
            })
        };
        let start = Instant::now();
        let mut batch = Vec::new();
        pop_batch(&shared, &mut batch);
        signaller.join().unwrap();
        assert_eq!(batch.len(), 1, "shutdown must flush, not drop, the batch");
        assert!(
            start.elapsed() < Duration::from_secs(10),
            "shutdown should cut the 30s linger short"
        );
    }
}
