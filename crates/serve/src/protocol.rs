//! The wire protocol of the prediction service.
//!
//! Two modes share one TCP port:
//!
//! * **Binary (framed)** — a client opens with the 4-byte hello `HKRB`,
//!   then exchanges length-prefixed frames: `len: u32 LE` followed by `len`
//!   bytes of `opcode: u8` + body. All numbers little-endian, floats as
//!   their exact bit patterns (predictions stay bitwise faithful on the
//!   wire).
//! * **Line mode** — anything else on the first bytes switches the
//!   connection to newline-terminated ASCII commands, so `nc`/`telnet`
//!   work for manual poking: `predict 0.1 -0.3 …`, `stats`, `ping`,
//!   `info`, `health`, `refresh`, `quit`.
//!
//! ## Binary opcodes
//!
//! | op   | request body           | OK response body                             |
//! |------|------------------------|----------------------------------------------|
//! | 0x01 | `d × f64` point        | `score f64, label f64, batch u32, µs u64`    |
//! | 0x02 | —                      | engine stats as a JSON string                |
//! | 0x03 | — (ping)               | —                                            |
//! | 0x04 | — (info)               | `dim u32, n_train u64, uptime µs u64, version, stamp` |
//! | 0x05 | — (health)             | `role u8, requests u64[, max_opcode u8]`     |
//! | 0x06 | — (refresh)            | `num_models u32, n_train u64`                |
//! | 0x07 | — (metrics)            | Prometheus text exposition (UTF-8)           |
//! | 0x08 | `trace u128, parent u64, d × f64` | same as 0x01                      |
//!
//! `health` (0x05) is the router tier's liveness + readiness probe: unlike
//! `ping`, it proves the peer speaks the binary protocol *and* reports
//! which role it plays (`0` = model server, `1` = router) plus how many
//! predict requests it has answered. Post-0x08 servers append a
//! `max_opcode` capability byte (the highest request opcode they accept);
//! decoders tolerate the legacy 9-byte body and report
//! [`OP_METRICS`] for it, which is how the router detects a pre-0x08 peer
//! and downgrades traced dispatches to plain [`OP_PREDICT`]. `refresh`
//! (0x06) asks a model server to re-load its model from the source it was
//! started from and hot-swap it behind the live engine; servers without a
//! reloadable source answer with a status-1 error. `metrics` (0x07)
//! renders the process-global telemetry registry in Prometheus text
//! exposition format, so shard servers and routers are scrapeable in
//! place. `predict-traced` (0x08) is `predict` plus a leading
//! cross-process trace context — `trace_id: u128` then
//! `parent_span: u64`, both little-endian, before the point — so the
//! server's engine spans join the caller's trace; it is **binary-only**
//! (line mode rejects it cleanly: trace ids are not meaningful on a
//! hand-typed `nc` session).
//!
//! The info body carries the server's uptime and build identity after the
//! fixed `dim`/`n_train` fields (version and stamp as `len: u8` + UTF-8
//! bytes); decoders accept the legacy 12-byte body from pre-0x07 servers.
//!
//! Responses carry a status byte before the body: `0` OK, `1` error (body
//! is a UTF-8 message).

use crate::ServeError;
use std::io::{Read, Write};

/// Binary-mode connection hello.
pub const BINARY_HELLO: [u8; 4] = *b"HKRB";
/// Largest accepted frame (1 MiB): bounds per-connection memory.
pub const MAX_FRAME_LEN: u32 = 1 << 20;

/// Request opcode: predict one point.
pub const OP_PREDICT: u8 = 0x01;
/// Request opcode: engine statistics.
pub const OP_STATS: u8 = 0x02;
/// Request opcode: liveness probe.
pub const OP_PING: u8 = 0x03;
/// Request opcode: model metadata (dimension, training size).
pub const OP_INFO: u8 = 0x04;
/// Request opcode: protocol-level health probe (role + request count).
pub const OP_HEALTH: u8 = 0x05;
/// Request opcode: re-load the model from its source and hot-swap it.
pub const OP_REFRESH: u8 = 0x06;
/// Request opcode: Prometheus text exposition of the telemetry registry.
pub const OP_METRICS: u8 = 0x07;
/// Request opcode: predict one point carrying a cross-process trace
/// context (`trace_id: u128` + `parent_span: u64` before the features).
pub const OP_PREDICT_TRACED: u8 = 0x08;

/// The highest request opcode this build understands; advertised in the
/// health response's `max_opcode` capability byte.
pub const MAX_OPCODE: u8 = OP_PREDICT_TRACED;

/// Byte length of the trace-context prefix in an [`OP_PREDICT_TRACED`]
/// body: `trace_id: u128` (16) + `parent_span: u64` (8).
pub const TRACE_PREFIX_LEN: usize = 24;

/// `role` byte in a health response: a model (shard) server.
pub const ROLE_MODEL: u8 = 0;
/// `role` byte in a health response: a fan-out router.
pub const ROLE_ROUTER: u8 = 1;

/// Response status: success.
pub const STATUS_OK: u8 = 0;
/// Response status: error (body is a UTF-8 message).
pub const STATUS_ERR: u8 = 1;

/// One parsed binary request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Predict a single raw feature vector.
    Predict(Vec<f64>),
    /// Predict a single raw feature vector under a caller-supplied trace
    /// context (binary-only; see [`OP_PREDICT_TRACED`]).
    PredictTraced {
        /// The feature vector, as in [`Request::Predict`].
        point: Vec<f64>,
        /// Caller's globally-unique trace id (`0` never sent).
        trace_id: u128,
        /// Span id of the caller's dispatch span (`0` for a root).
        parent_span: u64,
    },
    /// Engine statistics (JSON).
    Stats,
    /// Liveness probe.
    Ping,
    /// Model metadata.
    Info,
    /// Health probe: role + cumulative predict-request count.
    Health,
    /// Re-load the model from its source and hot-swap it into the engine.
    Refresh,
    /// Prometheus text exposition of the process-global metrics registry.
    Metrics,
}

/// One answered prediction, as it travels on the wire.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WirePrediction {
    /// Raw decision value.
    pub score: f64,
    /// ±1 label.
    pub label: f64,
    /// Coalesced batch size the request was served in.
    pub batch_size: u32,
    /// Server-side enqueue-to-reply latency in microseconds.
    pub latency_micros: u64,
}

/// Writes one length-prefixed frame.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> Result<(), ServeError> {
    if payload.len() > MAX_FRAME_LEN as usize {
        return Err(ServeError::Protocol(format!(
            "frame of {} bytes exceeds the {MAX_FRAME_LEN}-byte cap",
            payload.len()
        )));
    }
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()?;
    Ok(())
}

/// Reads one length-prefixed frame.
pub fn read_frame(r: &mut impl Read) -> Result<Vec<u8>, ServeError> {
    let mut len_bytes = [0u8; 4];
    r.read_exact(&mut len_bytes)?;
    let len = u32::from_le_bytes(len_bytes);
    if len > MAX_FRAME_LEN {
        return Err(ServeError::Protocol(format!(
            "frame of {len} bytes exceeds the {MAX_FRAME_LEN}-byte cap"
        )));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    Ok(payload)
}

/// Encodes a request frame payload.
pub fn encode_request(req: &Request) -> Vec<u8> {
    match req {
        Request::Predict(point) => {
            let mut out = Vec::with_capacity(1 + point.len() * 8);
            out.push(OP_PREDICT);
            for &v in point {
                out.extend_from_slice(&v.to_le_bytes());
            }
            out
        }
        Request::PredictTraced {
            point,
            trace_id,
            parent_span,
        } => {
            let mut out = Vec::with_capacity(1 + TRACE_PREFIX_LEN + point.len() * 8);
            out.push(OP_PREDICT_TRACED);
            out.extend_from_slice(&trace_id.to_le_bytes());
            out.extend_from_slice(&parent_span.to_le_bytes());
            for &v in point {
                out.extend_from_slice(&v.to_le_bytes());
            }
            out
        }
        Request::Stats => vec![OP_STATS],
        Request::Ping => vec![OP_PING],
        Request::Info => vec![OP_INFO],
        Request::Health => vec![OP_HEALTH],
        Request::Refresh => vec![OP_REFRESH],
        Request::Metrics => vec![OP_METRICS],
    }
}

/// Decodes a request frame payload.
pub fn decode_request(payload: &[u8]) -> Result<Request, ServeError> {
    let (&op, body) = payload
        .split_first()
        .ok_or_else(|| ServeError::Protocol("empty frame".to_string()))?;
    match op {
        OP_PREDICT => {
            if body.len() % 8 != 0 {
                return Err(ServeError::Protocol(format!(
                    "predict body of {} bytes is not a whole number of f64s",
                    body.len()
                )));
            }
            let point = body
                .chunks_exact(8)
                .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
                .collect();
            Ok(Request::Predict(point))
        }
        OP_PREDICT_TRACED => {
            if body.len() < TRACE_PREFIX_LEN {
                return Err(ServeError::Protocol(format!(
                    "traced predict body of {} bytes is shorter than the \
                     {TRACE_PREFIX_LEN}-byte trace context",
                    body.len()
                )));
            }
            let trace_id = u128::from_le_bytes(body[0..16].try_into().unwrap());
            let parent_span = u64::from_le_bytes(body[16..24].try_into().unwrap());
            let rest = &body[TRACE_PREFIX_LEN..];
            if rest.len() % 8 != 0 {
                return Err(ServeError::Protocol(format!(
                    "traced predict point of {} bytes is not a whole number of f64s",
                    rest.len()
                )));
            }
            let point = rest
                .chunks_exact(8)
                .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
                .collect();
            Ok(Request::PredictTraced {
                point,
                trace_id,
                parent_span,
            })
        }
        OP_STATS => Ok(Request::Stats),
        OP_PING => Ok(Request::Ping),
        OP_INFO => Ok(Request::Info),
        OP_HEALTH => Ok(Request::Health),
        OP_REFRESH => Ok(Request::Refresh),
        OP_METRICS => Ok(Request::Metrics),
        op => Err(ServeError::Protocol(format!("unknown opcode {op:#04x}"))),
    }
}

/// Encodes an OK response with the given body.
pub fn encode_ok(body: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(1 + body.len());
    out.push(STATUS_OK);
    out.extend_from_slice(body);
    out
}

/// Encodes an error response.
pub fn encode_err(message: &str) -> Vec<u8> {
    let mut out = Vec::with_capacity(1 + message.len());
    out.push(STATUS_ERR);
    out.extend_from_slice(message.as_bytes());
    out
}

/// Splits a response payload into `Ok(body)` / `Err(message)`.
pub fn decode_response(payload: &[u8]) -> Result<&[u8], ServeError> {
    let (&status, body) = payload
        .split_first()
        .ok_or_else(|| ServeError::Protocol("empty response".to_string()))?;
    match status {
        STATUS_OK => Ok(body),
        STATUS_ERR => Err(ServeError::Rejected(
            String::from_utf8_lossy(body).into_owned(),
        )),
        s => Err(ServeError::Protocol(format!("unknown status {s:#04x}"))),
    }
}

/// Encodes a prediction response body.
pub fn encode_prediction(p: &WirePrediction) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + 8 + 4 + 8);
    out.extend_from_slice(&p.score.to_le_bytes());
    out.extend_from_slice(&p.label.to_le_bytes());
    out.extend_from_slice(&p.batch_size.to_le_bytes());
    out.extend_from_slice(&p.latency_micros.to_le_bytes());
    out
}

/// Decodes a prediction response body.
pub fn decode_prediction(body: &[u8]) -> Result<WirePrediction, ServeError> {
    if body.len() != 28 {
        return Err(ServeError::Protocol(format!(
            "prediction body is {} bytes, expected 28",
            body.len()
        )));
    }
    Ok(WirePrediction {
        score: f64::from_le_bytes(body[0..8].try_into().unwrap()),
        label: f64::from_le_bytes(body[8..16].try_into().unwrap()),
        batch_size: u32::from_le_bytes(body[16..20].try_into().unwrap()),
        latency_micros: u64::from_le_bytes(body[20..28].try_into().unwrap()),
    })
}

/// The info reply: model metadata plus server identity, so a scrape can
/// distinguish a restarted server (uptime reset, same build) from a
/// redeployed one (new build stamp).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ServerInfo {
    /// Input feature dimension of the served model.
    pub dim: u32,
    /// Total training points behind the served model.
    pub n_train: u64,
    /// Microseconds since the server process started.
    pub uptime_micros: u64,
    /// Crate version of the serving binary (`CARGO_PKG_VERSION`).
    pub version: String,
    /// Compile-time build stamp (`HKRR_BUILD_STAMP`, `"dev"` by default;
    /// empty when talking to a legacy server).
    pub build_stamp: String,
}

impl ServerInfo {
    /// Uptime as fractional seconds.
    pub fn uptime_seconds(&self) -> f64 {
        self.uptime_micros as f64 / 1e6
    }
}

fn push_short_string(out: &mut Vec<u8>, s: &str) {
    let bytes = &s.as_bytes()[..s.len().min(u8::MAX as usize)];
    out.push(bytes.len() as u8);
    out.extend_from_slice(bytes);
}

fn take_short_string(body: &[u8], at: &mut usize) -> Result<String, ServeError> {
    let len = *body
        .get(*at)
        .ok_or_else(|| ServeError::Protocol("truncated info string".to_string()))?
        as usize;
    *at += 1;
    let bytes = body
        .get(*at..*at + len)
        .ok_or_else(|| ServeError::Protocol("truncated info string".to_string()))?;
    *at += len;
    String::from_utf8(bytes.to_vec())
        .map_err(|_| ServeError::Protocol("info string is not UTF-8".to_string()))
}

/// Encodes an info response body.
pub fn encode_info(info: &ServerInfo) -> Vec<u8> {
    let mut out = Vec::with_capacity(20 + 2 + info.version.len() + info.build_stamp.len());
    out.extend_from_slice(&info.dim.to_le_bytes());
    out.extend_from_slice(&info.n_train.to_le_bytes());
    out.extend_from_slice(&info.uptime_micros.to_le_bytes());
    push_short_string(&mut out, &info.version);
    push_short_string(&mut out, &info.build_stamp);
    out
}

/// Decodes an info response body. A legacy 12-byte body (`dim`, `n_train`
/// only) decodes with zero uptime and empty identity strings.
pub fn decode_info(body: &[u8]) -> Result<ServerInfo, ServeError> {
    if body.len() < 12 {
        return Err(ServeError::Protocol(format!(
            "info body is {} bytes, expected at least 12",
            body.len()
        )));
    }
    let dim = u32::from_le_bytes(body[0..4].try_into().unwrap());
    let n_train = u64::from_le_bytes(body[4..12].try_into().unwrap());
    if body.len() == 12 {
        return Ok(ServerInfo {
            dim,
            n_train,
            ..ServerInfo::default()
        });
    }
    if body.len() < 20 {
        return Err(ServeError::Protocol(format!(
            "info body is {} bytes, expected 12 (legacy) or at least 20",
            body.len()
        )));
    }
    let uptime_micros = u64::from_le_bytes(body[12..20].try_into().unwrap());
    let mut at = 20;
    let version = take_short_string(body, &mut at)?;
    let build_stamp = take_short_string(body, &mut at)?;
    if at != body.len() {
        return Err(ServeError::Protocol(format!(
            "info body has {} trailing bytes",
            body.len() - at
        )));
    }
    Ok(ServerInfo {
        dim,
        n_train,
        uptime_micros,
        version,
        build_stamp,
    })
}

/// A decoded health response: liveness, role, and protocol capability.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HealthReport {
    /// [`ROLE_MODEL`] or [`ROLE_ROUTER`].
    pub role: u8,
    /// Cumulative predict requests answered by the peer.
    pub requests: u64,
    /// Highest request opcode the peer accepts. Legacy 9-byte bodies
    /// decode as [`OP_METRICS`] (0x07): a pre-0x08 peer that must be sent
    /// plain [`OP_PREDICT`] frames.
    pub max_opcode: u8,
}

impl HealthReport {
    /// Whether the peer accepts [`OP_PREDICT_TRACED`] frames.
    pub fn supports_traced_predict(&self) -> bool {
        self.max_opcode >= OP_PREDICT_TRACED
    }
}

/// Encodes a health response body (10 bytes, capability byte included).
pub fn encode_health(role: u8, requests: u64) -> Vec<u8> {
    let mut out = Vec::with_capacity(10);
    out.push(role);
    out.extend_from_slice(&requests.to_le_bytes());
    out.push(MAX_OPCODE);
    out
}

/// Encodes the legacy 9-byte health body of a pre-0x08 server. Production
/// servers always advertise their capability; this exists so
/// mixed-version tests can impersonate an old peer.
pub fn encode_health_legacy(role: u8, requests: u64) -> Vec<u8> {
    let mut out = Vec::with_capacity(9);
    out.push(role);
    out.extend_from_slice(&requests.to_le_bytes());
    out
}

/// Decodes a health response body. The legacy 9-byte body (no capability
/// byte) decodes with `max_opcode = OP_METRICS`; anything else that is not
/// exactly 10 bytes is refused.
pub fn decode_health(body: &[u8]) -> Result<HealthReport, ServeError> {
    if body.len() != 9 && body.len() != 10 {
        return Err(ServeError::Protocol(format!(
            "health body is {} bytes, expected 9 (legacy) or 10",
            body.len()
        )));
    }
    Ok(HealthReport {
        role: body[0],
        requests: u64::from_le_bytes(body[1..9].try_into().unwrap()),
        max_opcode: if body.len() == 10 {
            body[9]
        } else {
            OP_METRICS
        },
    })
}

/// Encodes a refresh response body.
pub fn encode_refreshed(num_models: u32, n_train: u64) -> Vec<u8> {
    let mut out = Vec::with_capacity(12);
    out.extend_from_slice(&num_models.to_le_bytes());
    out.extend_from_slice(&n_train.to_le_bytes());
    out
}

/// Decodes a refresh response body into `(num_models, n_train)`.
pub fn decode_refreshed(body: &[u8]) -> Result<(u32, u64), ServeError> {
    if body.len() != 12 {
        return Err(ServeError::Protocol(format!(
            "refresh body is {} bytes, expected 12",
            body.len()
        )));
    }
    Ok((
        u32::from_le_bytes(body[0..4].try_into().unwrap()),
        u64::from_le_bytes(body[4..12].try_into().unwrap()),
    ))
}

/// Parses one line-mode command. Returns `None` for `quit`/`exit` (close
/// the connection).
///
/// Traced predict ([`OP_PREDICT_TRACED`]) has **no line-mode form**: a
/// `predict-traced …` line is refused with a typed error (rendered as an
/// `err …` reply, connection kept) rather than silently parsed as an
/// untraced predict — trace ids are binary-frame-only.
pub fn parse_line(line: &str) -> Result<Option<Request>, ServeError> {
    let mut words = line.split_whitespace();
    match words.next() {
        None => Err(ServeError::Protocol("empty command".to_string())),
        Some("predict") => {
            let point: Result<Vec<f64>, _> = words.map(str::parse::<f64>).collect();
            match point {
                Ok(p) if !p.is_empty() => Ok(Some(Request::Predict(p))),
                Ok(_) => Err(ServeError::Protocol(
                    "predict needs at least one feature".to_string(),
                )),
                Err(e) => Err(ServeError::Protocol(format!("bad feature value: {e}"))),
            }
        }
        Some("predict-traced") => Err(ServeError::Protocol(
            "predict-traced is binary-only; open an HKRB framed connection to send \
             trace context"
                .to_string(),
        )),
        Some("stats") => Ok(Some(Request::Stats)),
        Some("ping") => Ok(Some(Request::Ping)),
        Some("info") => Ok(Some(Request::Info)),
        Some("health") => Ok(Some(Request::Health)),
        Some("refresh") => Ok(Some(Request::Refresh)),
        Some("metrics") => Ok(Some(Request::Metrics)),
        Some("quit") | Some("exit") => Ok(None),
        Some(cmd) => Err(ServeError::Protocol(format!("unknown command {cmd:?}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn frames_roundtrip_through_a_stream() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut cursor = Cursor::new(buf);
        assert_eq!(read_frame(&mut cursor).unwrap(), b"hello");
        assert_eq!(read_frame(&mut cursor).unwrap(), b"");
        // EOF surfaces as an Io error, not a panic.
        assert!(matches!(read_frame(&mut cursor), Err(ServeError::Io(_))));
    }

    #[test]
    fn oversized_frames_are_refused_on_both_sides() {
        let huge = vec![0u8; MAX_FRAME_LEN as usize + 1];
        let mut sink = Vec::new();
        assert!(matches!(
            write_frame(&mut sink, &huge),
            Err(ServeError::Protocol(_))
        ));
        let mut bogus = Vec::new();
        bogus.extend_from_slice(&(MAX_FRAME_LEN + 1).to_le_bytes());
        assert!(matches!(
            read_frame(&mut Cursor::new(bogus)),
            Err(ServeError::Protocol(_))
        ));
    }

    #[test]
    fn requests_roundtrip_bitwise() {
        let point = vec![1.5, -2.25, f64::MIN_POSITIVE, 1e300];
        for req in [
            Request::Predict(point),
            Request::Stats,
            Request::Ping,
            Request::Info,
            Request::Health,
            Request::Refresh,
            Request::Metrics,
        ] {
            let decoded = decode_request(&encode_request(&req)).unwrap();
            assert_eq!(decoded, req);
        }
        assert!(decode_request(&[]).is_err());
        assert!(decode_request(&[0x7f]).is_err());
        assert!(decode_request(&[OP_PREDICT, 1, 2, 3]).is_err());
    }

    #[test]
    fn traced_predict_roundtrips_bitwise() {
        let req = Request::PredictTraced {
            point: vec![1.5, -2.25, f64::MIN_POSITIVE, 1e300],
            trace_id: 0xfeed_beef_dead_cafe_0123_4567_89ab_cdef,
            parent_span: 42,
        };
        let payload = encode_request(&req);
        assert_eq!(payload[0], OP_PREDICT_TRACED);
        assert_eq!(payload.len(), 1 + TRACE_PREFIX_LEN + 4 * 8);
        assert_eq!(decode_request(&payload).unwrap(), req);

        // Zero-length point is wire-legal at this layer (dimension checks
        // live in the engine).
        let empty = Request::PredictTraced {
            point: vec![],
            trace_id: 1,
            parent_span: 0,
        };
        assert_eq!(decode_request(&encode_request(&empty)).unwrap(), empty);
    }

    #[test]
    fn traced_predict_refuses_truncated_and_garbage_bodies() {
        // Body shorter than the 24-byte trace context.
        for short in [0, 1, 8, 23] {
            let mut payload = vec![OP_PREDICT_TRACED];
            payload.extend_from_slice(&vec![0xAB; short]);
            match decode_request(&payload) {
                Err(ServeError::Protocol(msg)) => {
                    assert!(msg.contains("trace context"), "unexpected message: {msg}")
                }
                other => panic!("expected Protocol error, got {other:?}"),
            }
        }
        // Context present but point bytes not a multiple of 8.
        let mut payload = vec![OP_PREDICT_TRACED];
        payload.extend_from_slice(&[0u8; TRACE_PREFIX_LEN]);
        payload.extend_from_slice(&[1, 2, 3]);
        match decode_request(&payload) {
            Err(ServeError::Protocol(msg)) => {
                assert!(msg.contains("whole number of f64s"), "unexpected: {msg}")
            }
            other => panic!("expected Protocol error, got {other:?}"),
        }
    }

    #[test]
    fn responses_roundtrip() {
        let p = WirePrediction {
            score: -0.123456789,
            label: -1.0,
            batch_size: 17,
            latency_micros: 4321,
        };
        let ok = encode_ok(&encode_prediction(&p));
        let body = decode_response(&ok).unwrap();
        assert_eq!(decode_prediction(body).unwrap(), p);

        let err = encode_err("queue full");
        assert!(matches!(
            decode_response(&err),
            Err(ServeError::Rejected(msg)) if msg == "queue full"
        ));

        let full = ServerInfo {
            dim: 16,
            n_train: 2000,
            uptime_micros: 1_500_000,
            version: "0.1.0".to_string(),
            build_stamp: "ci-42".to_string(),
        };
        let info = encode_ok(&encode_info(&full));
        let decoded = decode_info(decode_response(&info).unwrap()).unwrap();
        assert_eq!(decoded, full);
        assert_eq!(decoded.uptime_seconds(), 1.5);
        // A legacy 12-byte body still decodes (zero uptime, no identity).
        let mut legacy = Vec::new();
        legacy.extend_from_slice(&16u32.to_le_bytes());
        legacy.extend_from_slice(&2000u64.to_le_bytes());
        let decoded = decode_info(&legacy).unwrap();
        assert_eq!((decoded.dim, decoded.n_train), (16, 2000));
        assert_eq!(decoded.uptime_micros, 0);
        assert!(decoded.version.is_empty());
        assert!(decode_prediction(&[0u8; 5]).is_err());
        assert!(decode_info(&[0u8; 5]).is_err());
        assert!(decode_info(&[0u8; 15]).is_err());
        // Truncated identity strings are refused, as are trailing bytes.
        let mut bad = encode_info(&full);
        bad.pop();
        assert!(decode_info(&bad).is_err());
        let mut trailing = encode_info(&full);
        trailing.push(0xEE);
        assert!(decode_info(&trailing).is_err());
        assert!(decode_response(&[]).is_err());

        let health = encode_ok(&encode_health(ROLE_ROUTER, 12345));
        let report = decode_health(decode_response(&health).unwrap()).unwrap();
        assert_eq!(
            report,
            HealthReport {
                role: ROLE_ROUTER,
                requests: 12345,
                max_opcode: MAX_OPCODE,
            }
        );
        assert!(report.supports_traced_predict());
        // A legacy 9-byte body decodes as a pre-0x08 peer.
        let legacy = decode_health(&encode_health_legacy(ROLE_MODEL, 7)).unwrap();
        assert_eq!(legacy.requests, 7);
        assert_eq!(legacy.max_opcode, OP_METRICS);
        assert!(!legacy.supports_traced_predict());
        assert!(decode_health(&[0u8; 3]).is_err());
        assert!(decode_health(&[0u8; 11]).is_err());

        let refreshed = encode_ok(&encode_refreshed(4, 2000));
        assert_eq!(
            decode_refreshed(decode_response(&refreshed).unwrap()).unwrap(),
            (4, 2000)
        );
        assert!(decode_refreshed(&[0u8; 3]).is_err());
    }

    #[test]
    fn line_commands_parse() {
        assert_eq!(
            parse_line("predict 1.0 -2.5 3").unwrap(),
            Some(Request::Predict(vec![1.0, -2.5, 3.0]))
        );
        assert_eq!(parse_line("stats").unwrap(), Some(Request::Stats));
        assert_eq!(parse_line("ping").unwrap(), Some(Request::Ping));
        assert_eq!(parse_line("info").unwrap(), Some(Request::Info));
        assert_eq!(parse_line("health").unwrap(), Some(Request::Health));
        assert_eq!(parse_line("refresh").unwrap(), Some(Request::Refresh));
        assert_eq!(parse_line("metrics").unwrap(), Some(Request::Metrics));
        assert_eq!(parse_line("quit").unwrap(), None);
        // Traced predict is binary-only: the line form is refused with a
        // typed error, not parsed as a plain predict.
        match parse_line("predict-traced 1.0 2.0") {
            Err(ServeError::Protocol(msg)) => assert!(msg.contains("binary-only")),
            other => panic!("expected Protocol error, got {other:?}"),
        }
        assert!(parse_line("predict").is_err());
        assert!(parse_line("predict one two").is_err());
        assert!(parse_line("launch missiles").is_err());
        assert!(parse_line("   ").is_err());
    }
}
