//! The benchmarking client: hammers a prediction server with concurrent
//! single-point queries and distills the run into the machine-readable
//! `BENCH_serve.json` snapshot (schema `hkrr-serve-perf/1`), the serving
//! counterpart of the training pipeline's `BENCH_pipeline.json`.
//!
//! Each client thread keeps one binary-protocol connection open and fires
//! seeded-random queries back to back; because the server coalesces across
//! connections, concurrency > 1 makes micro-batching directly observable in
//! the reported `mean_batch_size`.

use crate::server::Client;
use crate::ServeError;
use hkrr_bench::json::{validate, JsonWriter};
use hkrr_linalg::random::Pcg64;
use std::time::Instant;

/// Parameters of one load-generation run.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Server address (`host:port`).
    pub addr: String,
    /// Total number of queries across all client threads.
    pub requests: usize,
    /// Number of concurrent client connections.
    pub concurrency: usize,
    /// RNG seed for the query points.
    pub seed: u64,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        LoadgenConfig {
            addr: "127.0.0.1:7878".to_string(),
            requests: 1000,
            concurrency: 8,
            seed: 0x10ad,
        }
    }
}

/// Aggregated results of a load-generation run.
#[derive(Debug, Clone)]
pub struct LoadgenReport {
    /// Queries answered successfully.
    pub ok: usize,
    /// Queries that failed (transport or server-side rejection).
    pub errors: usize,
    /// Client connections used.
    pub concurrency: usize,
    /// Model feature dimension (from the server's `info`).
    pub dim: usize,
    /// Training-set size of the served model (from `info`).
    pub n_train: usize,
    /// Wall-clock duration of the whole run, seconds.
    pub elapsed_seconds: f64,
    /// Achieved throughput, queries per second.
    pub qps: f64,
    /// Client-observed latency percentiles/mean, milliseconds.
    pub client_mean_ms: f64,
    /// Median client-observed latency.
    pub client_p50_ms: f64,
    /// 95th-percentile client-observed latency.
    pub client_p95_ms: f64,
    /// Worst client-observed latency.
    pub client_max_ms: f64,
    /// Mean server-side (enqueue-to-reply) latency, milliseconds.
    pub server_mean_ms: f64,
    /// Request-weighted mean of the batch sizes requests were served in
    /// (> 1 ⇔ coalescing happened).
    pub mean_batch_size: f64,
    /// Largest batch any request was served in.
    pub max_batch_observed: usize,
}

fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ms.len() as f64 - 1.0) * p).round() as usize;
    sorted_ms[idx.min(sorted_ms.len() - 1)]
}

/// Runs the load against a live server.
pub fn run(config: &LoadgenConfig) -> Result<LoadgenReport, ServeError> {
    let concurrency = config.concurrency.max(1);
    let (dim, n_train) = Client::connect(&config.addr)?.info()?;
    let dim = dim as usize;

    // Split the total as evenly as possible across the clients.
    let base = config.requests / concurrency;
    let extra = config.requests % concurrency;

    struct ClientOutcome {
        latencies_ms: Vec<f64>,
        server_micros: u64,
        batch_sum: u64,
        batch_max: usize,
        errors: usize,
    }

    let start = Instant::now();
    let outcomes: Vec<ClientOutcome> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..concurrency)
            .map(|t| {
                let quota = base + usize::from(t < extra);
                let addr = config.addr.clone();
                let seed = config.seed ^ ((t as u64 + 1) * 0x9e37_79b9);
                scope.spawn(move || {
                    let mut out = ClientOutcome {
                        latencies_ms: Vec::with_capacity(quota),
                        server_micros: 0,
                        batch_sum: 0,
                        batch_max: 0,
                        errors: 0,
                    };
                    let Ok(mut client) = Client::connect(&addr) else {
                        out.errors = quota;
                        return out;
                    };
                    let mut rng = Pcg64::seed_from_u64(seed);
                    for _ in 0..quota {
                        let point: Vec<f64> = (0..dim).map(|_| rng.next_gaussian()).collect();
                        let sent = Instant::now();
                        match client.predict(point) {
                            Ok(p) => {
                                out.latencies_ms.push(sent.elapsed().as_secs_f64() * 1e3);
                                out.server_micros += p.latency_micros;
                                out.batch_sum += p.batch_size as u64;
                                out.batch_max = out.batch_max.max(p.batch_size as usize);
                            }
                            Err(_) => out.errors += 1,
                        }
                    }
                    out
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let elapsed_seconds = start.elapsed().as_secs_f64();

    let mut latencies: Vec<f64> = Vec::with_capacity(config.requests);
    let mut server_micros = 0u64;
    let mut batch_sum = 0u64;
    let mut batch_max = 0usize;
    let mut errors = 0usize;
    for o in outcomes {
        latencies.extend_from_slice(&o.latencies_ms);
        server_micros += o.server_micros;
        batch_sum += o.batch_sum;
        batch_max = batch_max.max(o.batch_max);
        errors += o.errors;
    }
    let ok = latencies.len();
    latencies.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let mean = if ok > 0 {
        latencies.iter().sum::<f64>() / ok as f64
    } else {
        0.0
    };

    Ok(LoadgenReport {
        ok,
        errors,
        concurrency,
        dim,
        n_train: n_train as usize,
        elapsed_seconds,
        qps: if elapsed_seconds > 0.0 {
            ok as f64 / elapsed_seconds
        } else {
            0.0
        },
        client_mean_ms: mean,
        client_p50_ms: percentile(&latencies, 0.50),
        client_p95_ms: percentile(&latencies, 0.95),
        client_max_ms: latencies.last().copied().unwrap_or(0.0),
        server_mean_ms: if ok > 0 {
            server_micros as f64 / ok as f64 / 1000.0
        } else {
            0.0
        },
        mean_batch_size: if ok > 0 {
            batch_sum as f64 / ok as f64
        } else {
            0.0
        },
        max_batch_observed: batch_max,
    })
}

impl LoadgenReport {
    /// Serializes the snapshot (schema `hkrr-serve-perf/1`), validated
    /// through the shared JSON checker before being handed out.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.field_str("schema", "hkrr-serve-perf/1");
        w.field_usize("requests_ok", self.ok);
        w.field_usize("requests_failed", self.errors);
        w.field_usize("concurrency", self.concurrency);
        w.field_usize("dim", self.dim);
        w.field_usize("n_train", self.n_train);
        w.field_f64("elapsed_seconds", self.elapsed_seconds);
        w.field_f64("qps", self.qps);
        w.field_f64("client_mean_ms", self.client_mean_ms);
        w.field_f64("client_p50_ms", self.client_p50_ms);
        w.field_f64("client_p95_ms", self.client_p95_ms);
        w.field_f64("client_max_ms", self.client_max_ms);
        w.field_f64("server_mean_ms", self.server_mean_ms);
        w.field_f64("mean_batch_size", self.mean_batch_size);
        w.field_usize("max_batch_observed", self.max_batch_observed);
        w.end_object();
        let out = w.finish();
        validate(&out).expect("generated BENCH_serve.json must be well-formed");
        out
    }

    /// A compact human-readable summary line.
    pub fn summary(&self) -> String {
        format!(
            "{} ok / {} failed over {} conns in {:.2}s — {:.0} q/s, \
             client p50 {:.2}ms p95 {:.2}ms, server mean {:.2}ms, \
             mean batch {:.2} (max {})",
            self.ok,
            self.errors,
            self.concurrency,
            self.elapsed_seconds,
            self.qps,
            self.client_p50_ms,
            self.client_p95_ms,
            self.server_mean_ms,
            self.mean_batch_size,
            self.max_batch_observed
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_of_small_samples() {
        assert_eq!(percentile(&[], 0.5), 0.0);
        assert_eq!(percentile(&[4.0], 0.5), 4.0);
        let v = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 0.5), 3.0);
        assert_eq!(percentile(&v, 1.0), 5.0);
    }

    #[test]
    fn report_serializes_to_valid_json() {
        let report = LoadgenReport {
            ok: 100,
            errors: 0,
            concurrency: 8,
            dim: 16,
            n_train: 400,
            elapsed_seconds: 0.5,
            qps: 200.0,
            client_mean_ms: 1.5,
            client_p50_ms: 1.2,
            client_p95_ms: 3.4,
            client_max_ms: 9.9,
            server_mean_ms: 0.8,
            mean_batch_size: 3.7,
            max_batch_observed: 12,
        };
        let json = report.to_json();
        validate(&json).unwrap();
        assert!(json.contains("\"schema\":\"hkrr-serve-perf/1\""));
        assert!(json.contains("\"mean_batch_size\":3.700000"));
        assert!(report.summary().contains("100 ok"));
    }
}
