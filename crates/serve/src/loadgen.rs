//! The benchmarking client: hammers a prediction server with concurrent
//! single-point queries and distills the run into the machine-readable
//! `BENCH_serve.json` snapshot (schema `hkrr-serve-perf/1`), the serving
//! counterpart of the training pipeline's `BENCH_pipeline.json`.
//!
//! Each client thread keeps one binary-protocol connection open and fires
//! seeded-random queries back to back; because the server coalesces across
//! connections, concurrency > 1 makes micro-batching directly observable in
//! the reported `mean_batch_size`.
//!
//! For availability testing of the distributed tier,
//! [`run_with_disruption`] fires a caller-supplied disruption (typically
//! "kill one shard-server process") once a threshold of requests has
//! completed, and the report then separates post-disruption error rate and
//! failover-era latency from the steady-state numbers.

use crate::client::Client;
use crate::ServeError;
use hkrr_bench::json::{validate, JsonWriter};
use hkrr_bench::prom::{self, Scrape};
use hkrr_linalg::random::Pcg64;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::time::Instant;

/// Parameters of one load-generation run.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Server address (`host:port`).
    pub addr: String,
    /// Total number of queries across all client threads.
    pub requests: usize,
    /// Number of concurrent client connections.
    pub concurrency: usize,
    /// RNG seed for the query points.
    pub seed: u64,
    /// Send `OP_PREDICT_TRACED` frames (a fresh trace id per query) when
    /// the server's health reply advertises 0x08 support; the report then
    /// carries `traced_requests` and the slowest trace ids, so a tail
    /// latency in `BENCH_serve*.json` can be chased into the merged
    /// cross-process trace. Auto-downgrades to plain `predict` against a
    /// pre-0x08 server.
    pub traced: bool,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        LoadgenConfig {
            addr: "127.0.0.1:7878".to_string(),
            requests: 1000,
            concurrency: 8,
            seed: 0x10ad,
            traced: true,
        }
    }
}

/// What happened after a mid-run disruption ([`run_with_disruption`]):
/// the availability numbers the kill-a-shard scenario asserts on.
#[derive(Debug, Clone)]
pub struct DisruptionStats {
    /// The configured trigger: disrupt after this many completed requests.
    pub after_requests: usize,
    /// Completed-request count actually observed when the disruption
    /// fired (≥ `after_requests`; the watcher polls).
    pub fired_at_request: usize,
    /// Requests attempted after the disruption fired.
    pub requests_after: usize,
    /// Of those, how many failed.
    pub errors_after: usize,
    /// 95th-percentile client latency after the disruption — the failover
    /// era, where dead-replica detection and re-routing costs live.
    pub post_p95_ms: f64,
    /// Worst client latency after the disruption (the failover latency
    /// ceiling: it bounds how long any query stalled on a dead replica).
    pub post_max_ms: f64,
}

/// Router-side counters for the report's `routing` section, copied from a
/// [`RouterServer`](crate::router::RouterServer) after the run — or read
/// off a `metrics` scrape with [`RoutingStats::from_scrape`] when the
/// router lives in another process.
#[derive(Debug, Clone, Copy)]
pub struct RoutingStats {
    /// Queries where at least one planned shard was replaced or dropped.
    pub failovers: u64,
    /// Queries answered with fewer than `route_nearest` contributions.
    pub degraded: u64,
    /// Queries no shard replica could answer (errors to the client).
    pub exhausted: u64,
}

impl RoutingStats {
    /// Reads the router counters out of a parsed `metrics` scrape (summed
    /// over every router in the scraped process).
    pub fn from_scrape(scrape: &Scrape) -> RoutingStats {
        RoutingStats {
            failovers: scrape.counter("hkrr_router_failovers_total", &[]),
            degraded: scrape.counter("hkrr_router_degraded_total", &[]),
            exhausted: scrape.counter("hkrr_router_exhausted_total", &[]),
        }
    }
}

/// Server-side activity between the pre-run and post-run `metrics`
/// scrapes of the target: the registry's view of the same run the client
/// timed, folded into the report's `registry` section.
#[derive(Debug, Clone, Copy, Default)]
pub struct RegistryDelta {
    /// Predict requests the server-side counters gained during the run
    /// (engine counters for a model server, router counters for a router).
    pub requests: u64,
    /// Queue rejections gained (model servers; 0 for a router).
    pub queue_rejections: u64,
    /// Failovers gained (routers; 0 for a model server).
    pub failovers: u64,
    /// Degraded replies gained (routers).
    pub degraded: u64,
    /// Exhausted replies gained (routers).
    pub exhausted: u64,
    /// Observations the request-latency histogram gained.
    pub latency_count: u64,
    /// Median server-side latency of the run, from histogram bucket
    /// deltas (bucket-upper-bound resolution), milliseconds.
    pub latency_p50_ms: f64,
    /// 95th percentile from the same bucket deltas, milliseconds.
    pub latency_p95_ms: f64,
    /// 99th percentile from the same bucket deltas, milliseconds.
    pub latency_p99_ms: f64,
}

impl RegistryDelta {
    /// Folds two scrapes of the same process into the run's deltas. The
    /// latency percentiles come from whichever request-latency histogram
    /// moved (router for a router target, engine otherwise).
    pub fn between(before: &Scrape, after: &Scrape) -> RegistryDelta {
        let counter = |name: &str| {
            after
                .counter(name, &[])
                .saturating_sub(before.counter(name, &[]))
        };
        let mut delta = RegistryDelta {
            requests: counter("hkrr_engine_requests_total") + counter("hkrr_router_requests_total"),
            queue_rejections: counter("hkrr_engine_queue_rejections_total"),
            failovers: counter("hkrr_router_failovers_total"),
            degraded: counter("hkrr_router_degraded_total"),
            exhausted: counter("hkrr_router_exhausted_total"),
            ..RegistryDelta::default()
        };
        for name in [
            "hkrr_router_request_latency_micros",
            "hkrr_engine_request_latency_micros",
        ] {
            let (Some(a), b) = (after.histogram(name, &[]), before.histogram(name, &[])) else {
                continue;
            };
            let moved = match b {
                Some(b) => a.delta(&b).ok(),
                None => Some(a),
            };
            if let Some(h) = moved.filter(|h| h.count > 0) {
                delta.latency_count = h.count;
                delta.latency_p50_ms = h.quantile(0.50) / 1e3;
                delta.latency_p95_ms = h.quantile(0.95) / 1e3;
                delta.latency_p99_ms = h.quantile(0.99) / 1e3;
                break;
            }
        }
        delta
    }
}

/// Aggregated results of a load-generation run.
#[derive(Debug, Clone)]
pub struct LoadgenReport {
    /// Queries answered successfully.
    pub ok: usize,
    /// Queries that failed (transport or server-side rejection).
    pub errors: usize,
    /// Client connections used.
    pub concurrency: usize,
    /// Model feature dimension (from the server's `info`).
    pub dim: usize,
    /// Training-set size of the served model (from `info`).
    pub n_train: usize,
    /// Wall-clock duration of the whole run, seconds.
    pub elapsed_seconds: f64,
    /// Achieved throughput, queries per second.
    pub qps: f64,
    /// Client-observed latency percentiles/mean, milliseconds.
    pub client_mean_ms: f64,
    /// Median client-observed latency.
    pub client_p50_ms: f64,
    /// 95th-percentile client-observed latency.
    pub client_p95_ms: f64,
    /// Worst client-observed latency.
    pub client_max_ms: f64,
    /// Mean server-side (enqueue-to-reply) latency, milliseconds.
    pub server_mean_ms: f64,
    /// Request-weighted mean of the batch sizes requests were served in
    /// (> 1 ⇔ coalescing happened).
    pub mean_batch_size: f64,
    /// Largest batch any request was served in.
    pub max_batch_observed: usize,
    /// Present when the run had a mid-run disruption
    /// ([`run_with_disruption`]).
    pub disruption: Option<DisruptionStats>,
    /// Router counters, filled in by the caller when the target was a
    /// router tier (see [`LoadgenReport::with_routing`]).
    pub routing: Option<RoutingStats>,
    /// Server-side registry deltas between the pre-run and post-run
    /// `metrics` scrapes (absent only when the target could not be
    /// scraped).
    pub registry: Option<RegistryDelta>,
    /// Queries sent as `OP_PREDICT_TRACED` frames (0 when the server is
    /// pre-0x08 or [`LoadgenConfig::traced`] was off).
    pub traced_requests: usize,
    /// The slowest traced queries of the run as `(latency_micros,
    /// trace_id)`, slowest first — the ids to look up in the merged trace
    /// or the event log.
    pub slowest_traces: Vec<(u64, u128)>,
}

/// How many slowest-trace ids the report retains.
const SLOWEST_TRACES: usize = 5;

/// Merge `(latency_micros, trace_id)` observations into a bounded
/// slowest-first list.
fn merge_slowest(into: &mut Vec<(u64, u128)>, from: &[(u64, u128)]) {
    into.extend_from_slice(from);
    into.sort_by_key(|&(latency, _)| std::cmp::Reverse(latency));
    into.truncate(SLOWEST_TRACES);
}

fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ms.len() as f64 - 1.0) * p).round() as usize;
    sorted_ms[idx.min(sorted_ms.len() - 1)]
}

/// Runs the load against a live server.
pub fn run(config: &LoadgenConfig) -> Result<LoadgenReport, ServeError> {
    run_inner(config, None)
}

/// Runs the load and, once `after_requests` queries have completed, fires
/// `disrupt` (typically: kill one shard-server process) from a watcher
/// thread while the client threads keep hammering. The report's
/// [`DisruptionStats`] then isolates post-disruption availability — the
/// kill-a-shard scenario asserts a bounded error rate and, because every
/// client runs to its full quota, completing at all proves no hangs.
pub fn run_with_disruption(
    config: &LoadgenConfig,
    after_requests: usize,
    disrupt: impl FnOnce() + Send,
) -> Result<LoadgenReport, ServeError> {
    run_inner(config, Some((after_requests, Box::new(disrupt))))
}

fn run_inner(
    config: &LoadgenConfig,
    disruption: Option<(usize, Box<dyn FnOnce() + Send + '_>)>,
) -> Result<LoadgenReport, ServeError> {
    let concurrency = config.concurrency.max(1);
    let mut probe = Client::connect(&config.addr)?;
    let info = probe.info()?;
    let dim = info.dim as usize;
    let n_train = info.n_train;
    // Traced sends only against a peer that advertises 0x08 — a legacy
    // server would reject the opcode, turning a capability mismatch into
    // phantom errors.
    let use_traced = config.traced
        && probe
            .health()
            .map(|h| h.supports_traced_predict())
            .unwrap_or(false);
    // Server-side view of the run: scrape the registry before and after so
    // the report can carry counter/histogram deltas next to the
    // client-observed numbers. Best-effort — a peer that cannot answer
    // `metrics` still gets load-generated.
    let scrape_before = probe.metrics().ok().and_then(|t| prom::parse(&t).ok());
    drop(probe);

    // Split the total as evenly as possible across the clients.
    let base = config.requests / concurrency;
    let extra = config.requests % concurrency;

    #[derive(Default)]
    struct ClientOutcome {
        latencies_ms: Vec<f64>,
        server_micros: u64,
        batch_sum: u64,
        batch_max: usize,
        errors: usize,
        post_latencies_ms: Vec<f64>,
        post_requests: usize,
        post_errors: usize,
        traced_requests: usize,
        slowest_traces: Vec<(u64, u128)>,
    }

    // Shared run state: completed-attempt counter drives the disruption
    // trigger; the flag tells client threads which bucket a request
    // belongs to (pre- or post-disruption).
    let completed = AtomicUsize::new(0);
    let disrupted = AtomicBool::new(false);
    let workers_done = AtomicBool::new(false);
    let fired_at = AtomicUsize::new(0);
    let after_configured = disruption.as_ref().map(|(after, _)| *after);

    let start = Instant::now();
    let outcomes: Vec<ClientOutcome> = std::thread::scope(|scope| {
        let watcher = disruption.map(|(after, disrupt)| {
            let completed = &completed;
            let disrupted = &disrupted;
            let workers_done = &workers_done;
            let fired_at = &fired_at;
            scope.spawn(move || {
                loop {
                    let done = completed.load(Ordering::Acquire);
                    if done >= after {
                        fired_at.store(done, Ordering::Release);
                        disrupt();
                        disrupted.store(true, Ordering::Release);
                        return;
                    }
                    if workers_done.load(Ordering::Acquire) {
                        return; // run finished before the threshold
                    }
                    std::thread::sleep(std::time::Duration::from_micros(500));
                }
            })
        });
        let handles: Vec<_> = (0..concurrency)
            .map(|t| {
                let quota = base + usize::from(t < extra);
                let addr = config.addr.clone();
                let seed = config.seed ^ ((t as u64 + 1) * 0x9e37_79b9);
                let completed = &completed;
                let disrupted = &disrupted;
                scope.spawn(move || {
                    let mut out = ClientOutcome {
                        latencies_ms: Vec::with_capacity(quota),
                        ..ClientOutcome::default()
                    };
                    let Ok(mut client) = Client::connect(&addr) else {
                        out.errors = quota;
                        completed.fetch_add(quota, Ordering::AcqRel);
                        return out;
                    };
                    let mut rng = Pcg64::seed_from_u64(seed);
                    for _ in 0..quota {
                        let point: Vec<f64> = (0..dim).map(|_| rng.next_gaussian()).collect();
                        let post = disrupted.load(Ordering::Acquire);
                        let trace_id = if use_traced {
                            hkrr_telemetry::trace::mint_trace_id()
                        } else {
                            0
                        };
                        let sent = Instant::now();
                        let result = if trace_id != 0 {
                            out.traced_requests += 1;
                            client.predict_traced(point, trace_id, 0)
                        } else {
                            client.predict(point)
                        };
                        let latency_ms = sent.elapsed().as_secs_f64() * 1e3;
                        if post {
                            out.post_requests += 1;
                            out.post_latencies_ms.push(latency_ms);
                        }
                        if trace_id != 0 {
                            merge_slowest(
                                &mut out.slowest_traces,
                                &[(sent.elapsed().as_micros() as u64, trace_id)],
                            );
                        }
                        match result {
                            Ok(p) => {
                                out.latencies_ms.push(latency_ms);
                                out.server_micros += p.latency_micros;
                                out.batch_sum += p.batch_size as u64;
                                out.batch_max = out.batch_max.max(p.batch_size as usize);
                            }
                            Err(_) => {
                                out.errors += 1;
                                if post {
                                    out.post_errors += 1;
                                }
                            }
                        }
                        completed.fetch_add(1, Ordering::AcqRel);
                    }
                    out
                })
            })
            .collect();
        let outcomes = handles.into_iter().map(|h| h.join().unwrap()).collect();
        workers_done.store(true, Ordering::Release);
        if let Some(w) = watcher {
            let _ = w.join();
        }
        outcomes
    });
    let elapsed_seconds = start.elapsed().as_secs_f64();

    let mut latencies: Vec<f64> = Vec::with_capacity(config.requests);
    let mut post_latencies: Vec<f64> = Vec::new();
    let mut server_micros = 0u64;
    let mut batch_sum = 0u64;
    let mut batch_max = 0usize;
    let mut errors = 0usize;
    let mut post_requests = 0usize;
    let mut post_errors = 0usize;
    let mut traced_requests = 0usize;
    let mut slowest_traces: Vec<(u64, u128)> = Vec::new();
    for o in outcomes {
        latencies.extend_from_slice(&o.latencies_ms);
        post_latencies.extend_from_slice(&o.post_latencies_ms);
        server_micros += o.server_micros;
        batch_sum += o.batch_sum;
        batch_max = batch_max.max(o.batch_max);
        errors += o.errors;
        post_requests += o.post_requests;
        post_errors += o.post_errors;
        traced_requests += o.traced_requests;
        merge_slowest(&mut slowest_traces, &o.slowest_traces);
    }
    let ok = latencies.len();
    let registry = scrape_before.and_then(|before| {
        let after = Client::connect(&config.addr)
            .ok()?
            .metrics()
            .ok()
            .and_then(|t| prom::parse(&t).ok())?;
        Some(RegistryDelta::between(&before, &after))
    });
    let disruption_stats = if disrupted.load(Ordering::Acquire) {
        post_latencies.sort_by(|a, b| a.partial_cmp(b).unwrap());
        Some(DisruptionStats {
            after_requests: after_configured.unwrap_or(0),
            fired_at_request: fired_at.load(Ordering::Acquire),
            requests_after: post_requests,
            errors_after: post_errors,
            post_p95_ms: percentile(&post_latencies, 0.95),
            post_max_ms: post_latencies.last().copied().unwrap_or(0.0),
        })
    } else {
        None
    };
    latencies.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let mean = if ok > 0 {
        latencies.iter().sum::<f64>() / ok as f64
    } else {
        0.0
    };

    Ok(LoadgenReport {
        ok,
        errors,
        concurrency,
        dim,
        n_train: n_train as usize,
        elapsed_seconds,
        qps: if elapsed_seconds > 0.0 {
            ok as f64 / elapsed_seconds
        } else {
            0.0
        },
        client_mean_ms: mean,
        client_p50_ms: percentile(&latencies, 0.50),
        client_p95_ms: percentile(&latencies, 0.95),
        client_max_ms: latencies.last().copied().unwrap_or(0.0),
        server_mean_ms: if ok > 0 {
            server_micros as f64 / ok as f64 / 1000.0
        } else {
            0.0
        },
        mean_batch_size: if ok > 0 {
            batch_sum as f64 / ok as f64
        } else {
            0.0
        },
        max_batch_observed: batch_max,
        disruption: disruption_stats,
        routing: None,
        registry,
        traced_requests,
        slowest_traces,
    })
}

impl LoadgenReport {
    /// Attaches router counters (read off the router after the run) so the
    /// JSON snapshot carries a `routing` section.
    pub fn with_routing(mut self, routing: RoutingStats) -> LoadgenReport {
        self.routing = Some(routing);
        self
    }

    /// Serializes the snapshot (schema `hkrr-serve-perf/1`), validated
    /// through the shared JSON checker before being handed out.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.field_str("schema", "hkrr-serve-perf/1");
        w.field_usize("requests_ok", self.ok);
        w.field_usize("requests_failed", self.errors);
        w.field_usize("concurrency", self.concurrency);
        w.field_usize("dim", self.dim);
        w.field_usize("n_train", self.n_train);
        w.field_f64("elapsed_seconds", self.elapsed_seconds);
        w.field_f64("qps", self.qps);
        w.field_f64("client_mean_ms", self.client_mean_ms);
        w.field_f64("client_p50_ms", self.client_p50_ms);
        w.field_f64("client_p95_ms", self.client_p95_ms);
        w.field_f64("client_max_ms", self.client_max_ms);
        w.field_f64("server_mean_ms", self.server_mean_ms);
        w.field_f64("mean_batch_size", self.mean_batch_size);
        w.field_usize("max_batch_observed", self.max_batch_observed);
        if let Some(d) = &self.disruption {
            w.key("disruption");
            w.begin_object();
            w.field_usize("after_requests", d.after_requests);
            w.field_usize("fired_at_request", d.fired_at_request);
            w.field_usize("requests_after", d.requests_after);
            w.field_usize("errors_after", d.errors_after);
            w.field_f64("post_p95_ms", d.post_p95_ms);
            w.field_f64("post_max_ms", d.post_max_ms);
            w.end_object();
        }
        if let Some(r) = &self.routing {
            w.key("routing");
            w.begin_object();
            w.field_u64("failovers", r.failovers);
            w.field_u64("degraded", r.degraded);
            w.field_u64("exhausted", r.exhausted);
            w.end_object();
        }
        if self.registry.is_some() || self.traced_requests > 0 {
            w.key("registry");
            w.begin_object();
            if let Some(r) = &self.registry {
                w.field_u64("requests", r.requests);
                w.field_u64("queue_rejections", r.queue_rejections);
                w.field_u64("failovers", r.failovers);
                w.field_u64("degraded", r.degraded);
                w.field_u64("exhausted", r.exhausted);
                w.field_u64("latency_count", r.latency_count);
                w.field_f64("latency_p50_ms", r.latency_p50_ms);
                w.field_f64("latency_p95_ms", r.latency_p95_ms);
                w.field_f64("latency_p99_ms", r.latency_p99_ms);
            }
            w.field_usize("traced_requests", self.traced_requests);
            w.key("slowest_traces");
            w.begin_array();
            for (latency_us, trace_id) in &self.slowest_traces {
                w.begin_object();
                w.field_u64("latency_us", *latency_us);
                w.field_str("trace_id", &format!("{trace_id:032x}"));
                w.end_object();
            }
            w.end_array();
            w.end_object();
        }
        w.end_object();
        let out = w.finish();
        validate(&out).expect("generated BENCH_serve.json must be well-formed");
        out
    }

    /// A compact human-readable summary line.
    pub fn summary(&self) -> String {
        let mut line = format!(
            "{} ok / {} failed over {} conns in {:.2}s — {:.0} q/s, \
             client p50 {:.2}ms p95 {:.2}ms, server mean {:.2}ms, \
             mean batch {:.2} (max {})",
            self.ok,
            self.errors,
            self.concurrency,
            self.elapsed_seconds,
            self.qps,
            self.client_p50_ms,
            self.client_p95_ms,
            self.server_mean_ms,
            self.mean_batch_size,
            self.max_batch_observed
        );
        if let Some(d) = &self.disruption {
            line.push_str(&format!(
                "; after disruption at #{}: {}/{} failed, post p95 {:.2}ms max {:.2}ms",
                d.fired_at_request, d.errors_after, d.requests_after, d.post_p95_ms, d.post_max_ms
            ));
        }
        line
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_of_small_samples() {
        assert_eq!(percentile(&[], 0.5), 0.0);
        assert_eq!(percentile(&[4.0], 0.5), 4.0);
        let v = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 0.5), 3.0);
        assert_eq!(percentile(&v, 1.0), 5.0);
    }

    #[test]
    fn report_serializes_to_valid_json() {
        let report = LoadgenReport {
            ok: 100,
            errors: 0,
            concurrency: 8,
            dim: 16,
            n_train: 400,
            elapsed_seconds: 0.5,
            qps: 200.0,
            client_mean_ms: 1.5,
            client_p50_ms: 1.2,
            client_p95_ms: 3.4,
            client_max_ms: 9.9,
            server_mean_ms: 0.8,
            mean_batch_size: 3.7,
            max_batch_observed: 12,
            disruption: None,
            routing: None,
            registry: None,
            traced_requests: 0,
            slowest_traces: Vec::new(),
        };
        let json = report.to_json();
        validate(&json).unwrap();
        assert!(json.contains("\"schema\":\"hkrr-serve-perf/1\""));
        assert!(json.contains("\"mean_batch_size\":3.700000"));
        assert!(!json.contains("\"disruption\""));
        assert!(!json.contains("\"registry\""));
        assert!(report.summary().contains("100 ok"));

        let report = LoadgenReport {
            disruption: Some(DisruptionStats {
                after_requests: 50,
                fired_at_request: 52,
                requests_after: 48,
                errors_after: 1,
                post_p95_ms: 4.2,
                post_max_ms: 12.5,
            }),
            ..report
        }
        .with_routing(RoutingStats {
            failovers: 3,
            degraded: 2,
            exhausted: 0,
        });
        let report = LoadgenReport {
            registry: Some(RegistryDelta {
                requests: 100,
                latency_count: 100,
                latency_p50_ms: 0.4,
                latency_p95_ms: 1.6,
                latency_p99_ms: 3.2,
                ..RegistryDelta::default()
            }),
            traced_requests: 100,
            slowest_traces: vec![(900, 0xabcd), (500, 0x1234)],
            ..report
        };
        let json = report.to_json();
        validate(&json).unwrap();
        assert!(json.contains("\"disruption\""));
        assert!(json.contains("\"errors_after\":1"));
        assert!(json.contains("\"failovers\":3"));
        assert!(json.contains("\"registry\""));
        assert!(json.contains("\"latency_count\":100"));
        assert!(json.contains("\"traced_requests\":100"));
        assert!(json.contains(&format!("\"trace_id\":\"{:032x}\"", 0xabcdu128)));
        assert!(report.summary().contains("after disruption at #52"));
    }

    #[test]
    fn merge_slowest_keeps_bounded_slowest_first() {
        let mut acc: Vec<(u64, u128)> = Vec::new();
        merge_slowest(&mut acc, &[(10, 1), (90, 2)]);
        merge_slowest(&mut acc, &[(50, 3), (70, 4), (20, 5), (60, 6), (80, 7)]);
        assert_eq!(acc.len(), SLOWEST_TRACES);
        assert_eq!(acc[0], (90, 2));
        assert!(acc.windows(2).all(|w| w[0].0 >= w[1].0));
    }

    #[test]
    fn registry_delta_reads_both_tiers_from_scrapes() {
        let before = prom::parse(
            "# TYPE hkrr_engine_requests_total counter\n\
             hkrr_engine_requests_total{engine=\"e1\"} 10\n\
             # TYPE hkrr_engine_request_latency_micros histogram\n\
             hkrr_engine_request_latency_micros_bucket{engine=\"e1\",le=\"100\"} 5\n\
             hkrr_engine_request_latency_micros_bucket{engine=\"e1\",le=\"+Inf\"} 10\n\
             hkrr_engine_request_latency_micros_sum{engine=\"e1\"} 2000\n\
             hkrr_engine_request_latency_micros_count{engine=\"e1\"} 10\n",
        )
        .unwrap();
        let after = prom::parse(
            "# TYPE hkrr_engine_requests_total counter\n\
             hkrr_engine_requests_total{engine=\"e1\"} 30\n\
             # TYPE hkrr_engine_queue_rejections_total counter\n\
             hkrr_engine_queue_rejections_total{engine=\"e1\"} 2\n\
             # TYPE hkrr_engine_request_latency_micros histogram\n\
             hkrr_engine_request_latency_micros_bucket{engine=\"e1\",le=\"100\"} 20\n\
             hkrr_engine_request_latency_micros_bucket{engine=\"e1\",le=\"+Inf\"} 30\n\
             hkrr_engine_request_latency_micros_sum{engine=\"e1\"} 9000\n\
             hkrr_engine_request_latency_micros_count{engine=\"e1\"} 30\n",
        )
        .unwrap();
        let d = RegistryDelta::between(&before, &after);
        assert_eq!(d.requests, 20);
        assert_eq!(d.queue_rejections, 2);
        assert_eq!(d.latency_count, 20);
        // 15 of the 20 new observations landed in the le=100µs bucket, so
        // the median resolves to that bucket's upper bound: 0.1 ms.
        assert_eq!(d.latency_p50_ms, 0.1);
        let routing = RoutingStats::from_scrape(&after);
        assert_eq!(
            (routing.failovers, routing.degraded, routing.exhausted),
            (0, 0, 0)
        );
    }
}
