//! # hkrr-serve
//!
//! The serving layer: everything between a trained [`hkrr_core::KrrModel`]
//! and production prediction traffic.
//!
//! * [`codec`] — the versioned `hkrr-model/1` binary format: a trained
//!   model (config, normalization, training points, weights, clustering
//!   permutation, **and** the compressed HSS form + ULV factors) — or a
//!   whole cluster-sharded ensemble, one nested model file per shard —
//!   round-trips through a file, so reload skips clustering, compression
//!   and factorization entirely and predictions are bitwise identical,
//! * [`engine`] — a micro-batching prediction engine: a worker pool over a
//!   shared loaded model (any [`hkrr_core::DecisionModel`] — single or
//!   ensemble) and a bounded queue that coalesces single-point queries
//!   into batched `decision_values_into` calls, with per-request latency
//!   accounting and, for ensembles, per-shard routed-query counts,
//! * [`protocol`] — the length-prefixed binary wire format (with a
//!   line-mode fallback for `nc`-style manual testing),
//! * [`server`] — a `std::net` TCP front-end with graceful shutdown,
//!   generic over a [`server::RequestHandler`],
//! * [`client`] — the reusable client half of the protocol (deadlines,
//!   typed errors) shared by the load generator and the router tier,
//! * [`router`] — the distributed fan-out tier: holds only shard centroids
//!   and client connections, routes each query to its nearest shard
//!   *processes* with replication, least-loaded selection and failover,
//! * [`loadgen`] — a benchmarking client that hammers a server over
//!   loopback (or the network) and writes the `BENCH_serve.json`
//!   latency/throughput snapshot (schema `hkrr-serve-perf/1`), including a
//!   kill-a-shard disruption mode for availability testing,
//! * [`slowlog`] — fixed-size top-N-by-latency capture (trace ids +
//!   context) kept by the engine and the router, surfaced through `stats`
//!   and the fleet-wide `hkrr-serve doctor` diagnosis.
//!
//! The `hkrr-serve` binary stitches these together:
//! `train → save → serve → loadgen`, or distributed:
//! `save --shards k → k × shard-serve → route → loadgen` (see
//! `docs/OPERATIONS.md`).

#![warn(missing_docs)]

pub mod client;
pub mod codec;
pub mod engine;
pub mod loadgen;
pub mod protocol;
pub mod router;
pub mod server;
pub mod slowlog;

pub use client::Client;
pub use codec::{
    load_any, load_layout, load_model, load_shard, save_ensemble, save_model, CodecError,
    EnsembleLayout, LoadedModel,
};
pub use engine::{EngineConfig, EngineError, EngineStats, PredictionEngine};
pub use loadgen::{LoadgenConfig, LoadgenReport};
pub use router::{RouterConfig, RouterServer};
pub use server::{ModelSource, Reply, RequestHandler, Server, ServerConfig, TcpFrontEnd};
pub use slowlog::{SlowEntry, SlowLog};

/// Errors surfaced by the serving layer.
#[derive(Debug)]
pub enum ServeError {
    /// Persistence failed (I/O or a malformed / corrupted model file).
    Codec(CodecError),
    /// A prediction request was rejected before reaching a worker.
    Rejected(String),
    /// The engine refused or abandoned the request (shutdown, worker
    /// death); the inner [`EngineError`] says which.
    Engine(engine::EngineError),
    /// The bounded request queue is full (backpressure).
    QueueFull,
    /// A network/socket error.
    Io(std::io::Error),
    /// The peer spoke the protocol wrong.
    Protocol(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Codec(e) => write!(f, "codec error: {e}"),
            ServeError::Rejected(s) => write!(f, "request rejected: {s}"),
            ServeError::Engine(e) => write!(f, "engine error: {e}"),
            ServeError::QueueFull => write!(f, "request queue is full"),
            ServeError::Io(e) => write!(f, "i/o error: {e}"),
            ServeError::Protocol(s) => write!(f, "protocol error: {s}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<CodecError> for ServeError {
    fn from(e: CodecError) -> Self {
        ServeError::Codec(e)
    }
}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}

impl From<engine::EngineError> for ServeError {
    fn from(e: engine::EngineError) -> Self {
        ServeError::Engine(e)
    }
}
