//! `hkrr-serve` — train, persist and serve kernel ridge regression models
//! (single or cluster-sharded ensembles).
//!
//! ```text
//! hkrr-serve save    --out model.hkrr [--dataset LETTER] [--n-train 600]
//!                    [--seed 42] [--solver dense|hss|hss+h|hss-pcg]
//!                    [--factor-precision f64|f32]   # f32 needs hss-pcg
//!                    [--shards K] [--route-nearest M]
//!                    [--shard-strategy cluster|random]
//! hkrr-serve info    <model.hkrr>
//! hkrr-serve serve   <model.hkrr> [--addr 127.0.0.1:7878] [--workers N]
//!                    [--max-batch 64] [--linger-us 500]
//! hkrr-serve loadgen --addr 127.0.0.1:7878 [--requests 1000]
//!                    [--concurrency 8] [--out BENCH_serve.json]
//! hkrr-serve metrics --addr 127.0.0.1:7878 [--out FILE.prom]
//!                    # scrape a live server/router's metrics registry
//! hkrr-serve bench   [--requests 1000] [--concurrency 8] [--shards K]
//!                    [--out BENCH_serve.json]   # train→save→load→serve→loadgen
//! hkrr-serve shard-serve <model.hkrr> --shard I [--addr 127.0.0.1:0]
//!                    [--workers N]              # serve ONE shard of an ensemble
//! hkrr-serve route   <model.hkrr> --shard ADDR[,ADDR…] … [--addr 127.0.0.1:7878]
//!                    [--route-nearest M] [--health-interval-ms 500]
//!                    # fan-out router over shard-serve processes
//! hkrr-serve dbench  [--shards K] [--replicas R] [--requests 400]
//!                    [--out BENCH_serve_distributed.json]
//!                    # distributed bench: spawn K×R shard processes + router,
//!                    # kill one shard mid-run, assert availability
//! hkrr-serve trace-merge --out merged.json FILE [FILE…]
//!                    # merge per-process HKRR_TRACE files, grouping spans
//!                    # by trace id across process boundaries
//! hkrr-serve doctor  --addr ROUTER   # scrape health+metrics+stats across
//!                    # a router's fleet, print a one-page diagnosis
//! ```
//!
//! `--shards K` (K > 1) trains a cluster-sharded ensemble: the training
//! set is cut into `K` geometrically coherent shards, one model per shard
//! trains in parallel, and serving routes each query to its
//! `--route-nearest M` nearest shard centroids. `shard-serve` + `route`
//! run the same ensemble as separate processes (see `docs/OPERATIONS.md`).

use hkrr_core::{KrrConfig, SolverKind};
use hkrr_ensemble::{EnsembleConfig, EnsembleKrr, ShardStrategy};
use hkrr_serve::client::Client;
use hkrr_serve::codec::{self, LoadedModel};
use hkrr_serve::engine::EngineConfig;
use hkrr_serve::loadgen::{self, LoadgenConfig, RoutingStats};
use hkrr_serve::router::{RouterConfig, RouterServer};
use hkrr_serve::server::{ModelSource, Server, ServerConfig};
use hkrr_serve::{save_model, ServeError};
use std::io::BufRead;
use std::process::ExitCode;
use std::time::Duration;

/// Tiny `--flag value` parser over the raw argument list.
struct Args {
    positional: Vec<String>,
    flags: Vec<(String, String)>,
}

impl Args {
    fn parse(raw: &[String]) -> Result<Args, String> {
        let mut positional = Vec::new();
        let mut flags = Vec::new();
        let mut it = raw.iter();
        while let Some(arg) = it.next() {
            if let Some(name) = arg.strip_prefix("--") {
                let value = it.next().ok_or_else(|| format!("--{name} needs a value"))?;
                flags.push((name.to_string(), value.clone()));
            } else {
                positional.push(arg.clone());
            }
        }
        Ok(Args { positional, flags })
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .rev()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// All occurrences of a repeatable flag, in order — `route` takes one
    /// `--shard` per shard.
    fn get_all(&self, name: &str) -> Vec<&str> {
        self.flags
            .iter()
            .filter(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
            .collect()
    }

    fn get_parsed<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{name}: cannot parse {v:?}")),
        }
    }
}

fn solver_from(name: &str) -> Result<SolverKind, String> {
    match name {
        "dense" => Ok(SolverKind::DenseCholesky),
        "hss" => Ok(SolverKind::Hss),
        "hss+h" => Ok(SolverKind::HssWithHSampling),
        "hss-pcg" => Ok(SolverKind::HssPcg),
        other => Err(format!(
            "unknown solver {other:?} (dense | hss | hss+h | hss-pcg)"
        )),
    }
}

fn strategy_from(name: &str, seed: u64) -> Result<ShardStrategy, String> {
    match name {
        "cluster" => Ok(ShardStrategy::Cluster),
        "random" => Ok(ShardStrategy::Random { seed }),
        other => Err(format!(
            "unknown shard strategy {other:?} (cluster | random)"
        )),
    }
}

/// Trains either a single model or (with `--shards K`, K > 1) a
/// cluster-sharded ensemble on a synthetic dataset.
fn train_model(args: &Args) -> Result<(LoadedModel, hkrr_datasets::Dataset), String> {
    let dataset = args.get("dataset").unwrap_or("LETTER");
    let spec = hkrr_datasets::spec_by_name(dataset)
        .ok_or_else(|| format!("unknown dataset {dataset:?}"))?;
    let n_train = args.get_parsed("n-train", 600usize)?;
    let n_test = args.get_parsed("n-test", 150usize)?;
    let seed = args.get_parsed("seed", 42u64)?;
    let solver = solver_from(args.get("solver").unwrap_or("hss"))?;
    let factor_precision = match args.get("factor-precision") {
        None => hkrr_core::FactorPrecision::F64,
        Some(raw) => hkrr_core::FactorPrecision::parse(raw)
            .ok_or_else(|| format!("--factor-precision: f64 or f32, got {raw:?}"))?,
    };
    let shards = args.get_parsed("shards", 1usize)?;
    let ds = hkrr_datasets::generate(&spec, n_train, n_test, seed);
    let cfg = KrrConfig {
        h: spec.default_h,
        lambda: spec.default_lambda,
        solver,
        factor_precision,
        ..KrrConfig::default()
    };
    cfg.validate()?;
    let model = if shards > 1 {
        let route_nearest = args.get_parsed("route-nearest", 2usize.min(shards))?;
        let strategy = strategy_from(args.get("shard-strategy").unwrap_or("cluster"), seed)?;
        let ens_cfg = EnsembleConfig {
            shards,
            route_nearest,
            strategy,
            base: cfg,
        };
        eprintln!(
            "training {}×{} ensemble ({} sharding, route {} nearest) on {dataset} (n={n_train}, d={}) …",
            shards,
            solver.label(),
            strategy.label(),
            route_nearest,
            spec.dim
        );
        let ens =
            EnsembleKrr::fit(&ds.train, &ds.train_labels, &ens_cfg).map_err(|e| e.to_string())?;
        eprintln!("{}", ens.report());
        LoadedModel::Ensemble(ens)
    } else {
        eprintln!(
            "training {} on {dataset} (n={n_train}, d={}) …",
            solver.label(),
            spec.dim
        );
        let model = hkrr_core::KrrModel::fit(&ds.train, &ds.train_labels, &cfg)
            .map_err(|e| e.to_string())?;
        eprintln!("{}", model.report());
        LoadedModel::Single(model)
    };
    let acc = hkrr_core::accuracy(&model.predict(&ds.test), &ds.test_labels);
    eprintln!(
        "test accuracy: {:.2}% on {n_test} held-out points",
        100.0 * acc
    );
    Ok((model, ds))
}

fn save_loaded(model: &LoadedModel, path: &str) -> Result<(), ServeError> {
    match model {
        LoadedModel::Single(m) => save_model(m, path)?,
        LoadedModel::Ensemble(e) => codec::save_ensemble(e, path)?,
    }
    Ok(())
}

fn engine_config(args: &Args) -> Result<EngineConfig, String> {
    let default = EngineConfig::default();
    let workers = args.get_parsed("workers", default.workers)?;
    if workers == 0 {
        // workers: 0 is a test-only engine mode (nothing ever drains the
        // queue); a server started that way would accept and then starve
        // every request.
        return Err("--workers must be at least 1".to_string());
    }
    Ok(EngineConfig {
        workers,
        max_batch: args.get_parsed("max-batch", default.max_batch)?,
        queue_capacity: args.get_parsed("queue-capacity", default.queue_capacity)?,
        linger: Duration::from_micros(
            args.get_parsed("linger-us", default.linger.as_micros() as u64)?,
        ),
    })
}

fn cmd_save(args: &Args) -> Result<(), String> {
    let out = args.get("out").unwrap_or("model.hkrr").to_string();
    let (model, _) = train_model(args)?;
    save_loaded(&model, &out).map_err(|e| e.to_string())?;
    let bytes = std::fs::metadata(&out).map(|m| m.len()).unwrap_or(0);
    println!(
        "saved {out} ({bytes} bytes, schema {}, kind: {})",
        codec::SCHEMA,
        if model.is_ensemble() {
            "ensemble"
        } else {
            "single"
        }
    );
    Ok(())
}

fn cmd_info(args: &Args) -> Result<(), String> {
    let path = args
        .positional
        .first()
        .ok_or("usage: hkrr-serve info <model.hkrr>")?;
    let (version, model) = codec::load_any(path).map_err(|e| e.to_string())?;
    for line in codec::info_lines(version, &model) {
        println!("{line}");
    }
    Ok(())
}

fn cmd_serve(args: &Args) -> Result<(), String> {
    let path = args
        .positional
        .first()
        .ok_or("usage: hkrr-serve serve <model.hkrr> [--addr host:port]")?;
    let (_, model) = codec::load_any(path).map_err(|e| e.to_string())?;
    eprintln!(
        "loaded {path}: kind={}, n_train={}, dim={}, models={} (no re-factorization needed)",
        if model.is_ensemble() {
            "ensemble"
        } else {
            "single"
        },
        model.num_train(),
        model.dim(),
        model.num_models()
    );
    drop(model); // the server re-loads through its ModelSource
    let config = ServerConfig {
        addr: args.get("addr").unwrap_or("127.0.0.1:7878").to_string(),
        engine: engine_config(args)?,
    };
    // Starting from a source (not a pre-loaded handle) enables the
    // `refresh` command: re-load the file and hot-swap without a restart.
    let server = Server::start_with_source(ModelSource::File(path.into()), config)
        .map_err(|e| e.to_string())?;
    println!("serving on {} (ctrl-c to stop)", server.local_addr());
    serve_forever()
}

/// Serve until killed: the accept loop runs on its own thread. The ticker
/// flushes buffered trace events so a SIGKILLed process (dbench's
/// kill-a-shard scenario, CI teardown) still leaves a usable `HKRR_TRACE`
/// file behind; the event log needs no help — its drain thread already
/// writes continuously.
fn serve_forever() -> ! {
    loop {
        std::thread::sleep(Duration::from_millis(200));
        hkrr_telemetry::trace::flush();
    }
}

/// Serves ONE shard of an ensemble file as its own process — the worker
/// tier of the distributed topology. Prints `listening <addr>` on stdout
/// so a parent (`dbench`, CI scripts) can scrape the bound port.
fn cmd_shard_serve(args: &Args) -> Result<(), String> {
    let path = args
        .positional
        .first()
        .ok_or("usage: hkrr-serve shard-serve <model.hkrr> --shard I [--addr host:port]")?;
    let index = args.get_parsed("shard", usize::MAX)?;
    if index == usize::MAX {
        return Err("shard-serve needs --shard I (zero-based shard index)".to_string());
    }
    let config = ServerConfig {
        addr: args.get("addr").unwrap_or("127.0.0.1:0").to_string(),
        engine: engine_config(args)?,
    };
    let source = ModelSource::EnsembleShard {
        path: path.into(),
        index,
    };
    let server = Server::start_with_source(source, config).map_err(|e| e.to_string())?;
    let model = server.engine().model();
    eprintln!(
        "shard {index} of {path}: n_train={}, dim={}",
        model.num_train(),
        model.dim()
    );
    println!("listening {}", server.local_addr());
    // A parent process scrapes that line; make sure it is not stuck in a
    // pipe buffer.
    use std::io::Write as _;
    std::io::stdout().flush().ok();
    serve_forever()
}

/// Parses the repeated `--shard ADDR[,ADDR…]` flags into per-shard replica
/// address groups.
fn shard_addr_groups(args: &Args) -> Result<Vec<Vec<String>>, String> {
    let groups: Vec<Vec<String>> = args
        .get_all("shard")
        .iter()
        .map(|g| {
            g.split(',')
                .map(str::trim)
                .filter(|a| !a.is_empty())
                .map(str::to_string)
                .collect()
        })
        .collect();
    if groups.is_empty() {
        return Err("route needs one --shard ADDR[,ADDR…] per shard (in shard order)".to_string());
    }
    Ok(groups)
}

fn router_config(args: &Args) -> Result<RouterConfig, String> {
    let default = RouterConfig::default();
    Ok(RouterConfig {
        addr: args.get("addr").unwrap_or("127.0.0.1:7878").to_string(),
        route_nearest: match args.get("route-nearest") {
            None => None,
            Some(v) => Some(
                v.parse()
                    .map_err(|_| format!("--route-nearest: cannot parse {v:?}"))?,
            ),
        },
        health_interval: Duration::from_millis(args.get_parsed(
            "health-interval-ms",
            default.health_interval.as_millis() as u64,
        )?),
        connect_timeout: Duration::from_millis(args.get_parsed(
            "connect-timeout-ms",
            default.connect_timeout.as_millis() as u64,
        )?),
        io_timeout: Duration::from_millis(
            args.get_parsed("io-timeout-ms", default.io_timeout.as_millis() as u64)?,
        ),
    })
}

/// The router tier: reads only the centroids from the ensemble file and
/// fans queries out to shard-serve processes.
fn cmd_route(args: &Args) -> Result<(), String> {
    let path = args
        .positional
        .first()
        .ok_or("usage: hkrr-serve route <model.hkrr> --shard ADDR[,ADDR…] … [--addr host:port]")?;
    let layout = codec::load_layout(path).map_err(|e| e.to_string())?;
    let groups = shard_addr_groups(args)?;
    let config = router_config(args)?;
    eprintln!(
        "router over {} shards ({} replicas total), route {} nearest",
        layout.shards,
        groups.iter().map(Vec::len).sum::<usize>(),
        config.route_nearest.unwrap_or(layout.route_nearest)
    );
    let router = RouterServer::start(layout.centroids, layout.route_nearest, groups, config)
        .map_err(|e| e.to_string())?;
    println!("listening {}", router.local_addr());
    use std::io::Write as _;
    std::io::stdout().flush().ok();
    serve_forever()
}

fn write_snapshot(report: &loadgen::LoadgenReport, out: &str) -> Result<(), String> {
    std::fs::write(out, report.to_json()).map_err(|e| format!("cannot write {out}: {e}"))?;
    println!("{}", report.summary());
    println!("wrote {out}");
    Ok(())
}

/// Scrapes a live server's metrics registry over the binary `metrics`
/// command, validates the exposition, and prints it (or writes `--out`).
fn cmd_metrics(args: &Args) -> Result<(), String> {
    let addr = args.get("addr").unwrap_or("127.0.0.1:7878");
    let text = Client::connect(addr)
        .and_then(|mut c| c.metrics())
        .map_err(|e| format!("scraping {addr}: {e}"))?;
    hkrr_bench::prom::validate(&text)
        .map_err(|e| format!("{addr} returned invalid exposition: {e}"))?;
    match args.get("out") {
        Some(out) => {
            std::fs::write(out, &text).map_err(|e| format!("cannot write {out}: {e}"))?;
            println!("wrote {out} ({} bytes)", text.len());
        }
        None => print!("{text}"),
    }
    Ok(())
}

/// Scrapes `addr` and writes the validated exposition to `out` — the
/// `.prom` artifacts `bench`/`dbench` leave next to their JSON snapshots.
fn write_prom_artifact(addr: &str, out: &str) -> Result<(), String> {
    let text = Client::connect(addr)
        .and_then(|mut c| c.metrics())
        .map_err(|e| format!("scraping {addr}: {e}"))?;
    hkrr_bench::prom::validate(&text)
        .map_err(|e| format!("{addr} returned invalid exposition: {e}"))?;
    std::fs::write(out, &text).map_err(|e| format!("cannot write {out}: {e}"))?;
    println!("wrote {out} ({} bytes)", text.len());
    Ok(())
}

fn cmd_loadgen(args: &Args) -> Result<(), String> {
    let config = LoadgenConfig {
        addr: args.get("addr").unwrap_or("127.0.0.1:7878").to_string(),
        requests: args.get_parsed("requests", 1000usize)?,
        concurrency: args.get_parsed("concurrency", 8usize)?,
        seed: args.get_parsed("seed", 0x10adu64)?,
        traced: args.get_parsed("traced", true)?,
    };
    let report = loadgen::run(&config).map_err(|e| e.to_string())?;
    write_snapshot(&report, args.get("out").unwrap_or("BENCH_serve.json"))
}

/// The zero-to-production walkthrough in one command: train a model, save
/// it, load it back, serve it on a loopback port, hammer it with the load
/// generator, and leave behind `BENCH_serve.json`.
fn cmd_bench(args: &Args) -> Result<(), String> {
    let (model, _) = train_model(args)?;
    let path = std::env::temp_dir().join(format!("hkrr_bench_{}.hkrr", std::process::id()));
    save_loaded(&model, &path.to_string_lossy()).map_err(|e| e.to_string())?;
    let file_bytes = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
    let (_, loaded) = codec::load_any(&path).map_err(|e| e.to_string())?;
    std::fs::remove_file(&path).ok();
    println!(
        "save → load round trip ok ({file_bytes} bytes, kind: {}, models: {})",
        if loaded.is_ensemble() {
            "ensemble"
        } else {
            "single"
        },
        loaded.num_models()
    );

    let server = Server::start(
        loaded.into_handle(),
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            engine: engine_config(args)?,
        },
    )
    .map_err(|e| e.to_string())?;
    let addr = server.local_addr().to_string();
    println!("serving on {addr}");

    let config = LoadgenConfig {
        addr,
        requests: args.get_parsed("requests", 1000usize)?,
        concurrency: args.get_parsed("concurrency", 8usize)?,
        seed: args.get_parsed("seed", 0x10adu64)?,
        traced: args.get_parsed("traced", true)?,
    };
    let report = loadgen::run(&config).map_err(|e| e.to_string())?;
    // Leave the post-run scrape next to the JSON snapshot (CI validates
    // it with prom_check).
    write_prom_artifact(
        &config.addr,
        args.get("prom-out").unwrap_or("BENCH_serve.prom"),
    )?;
    server.shutdown();
    hkrr_telemetry::trace::flush();
    let engine_stats = server.stats();
    println!(
        "engine: {} requests in {} batches (mean batch {:.2})",
        engine_stats.requests, engine_stats.batches, engine_stats.mean_batch_size
    );
    if !engine_stats.model_requests.is_empty() {
        println!(
            "per-shard routed queries: {:?}",
            engine_stats.model_requests
        );
    }
    write_snapshot(&report, args.get("out").unwrap_or("BENCH_serve.json"))?;
    if report.errors > 0 {
        return Err(format!("{} queries failed", report.errors));
    }
    Ok(())
}

/// One spawned `shard-serve` child process and the address it bound.
struct ShardProcess {
    child: std::process::Child,
    addr: String,
    shard: usize,
}

/// Spawns `hkrr-serve shard-serve` as a real child process on a free
/// loopback port and scrapes `listening <addr>` from its stdout. When the
/// parent runs under `HKRR_TRACE` or `HKRR_LOG`, each child gets its own
/// derived trace/event-log path (`<path>.shard<i>r<r>`) — two processes
/// appending to one file would interleave garbage. `HKRR_LOG=stderr` is
/// forwarded as-is (stderr interleaving is line-atomic enough for eyes).
fn spawn_shard_process(
    model_path: &str,
    shard: usize,
    replica: usize,
) -> Result<ShardProcess, String> {
    let exe = std::env::current_exe().map_err(|e| format!("cannot find own binary: {e}"))?;
    let mut command = std::process::Command::new(exe);
    command
        .args([
            "shard-serve",
            model_path,
            "--shard",
            &shard.to_string(),
            "--addr",
            "127.0.0.1:0",
            "--workers",
            "1",
        ])
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::null());
    if let Ok(trace) = std::env::var("HKRR_TRACE") {
        command.env("HKRR_TRACE", format!("{trace}.shard{shard}r{replica}"));
    }
    if let Ok(log) = std::env::var("HKRR_LOG") {
        if log == "stderr" {
            command.env("HKRR_LOG", log);
        } else {
            command.env("HKRR_LOG", format!("{log}.shard{shard}r{replica}"));
        }
    }
    let mut child = command
        .spawn()
        .map_err(|e| format!("cannot spawn shard-serve: {e}"))?;
    let stdout = child.stdout.take().expect("stdout was piped");
    let mut reader = std::io::BufReader::new(stdout);
    let mut line = String::new();
    loop {
        line.clear();
        let n = reader
            .read_line(&mut line)
            .map_err(|e| format!("reading shard {shard} stdout: {e}"))?;
        if n == 0 {
            let _ = child.kill();
            return Err(format!(
                "shard {shard} process exited before announcing its port"
            ));
        }
        if let Some(addr) = line.trim().strip_prefix("listening ") {
            return Ok(ShardProcess {
                child,
                addr: addr.to_string(),
                shard,
            });
        }
    }
}

/// The distributed walkthrough in one command: train a sharded ensemble,
/// save it, launch one `shard-serve` OS process per shard replica, put an
/// in-process router in front, hammer it — and kill every replica of one
/// shard mid-run to measure availability under failover. Fails when the
/// post-disruption error rate exceeds 5% (degraded-but-answered queries
/// are fine; hangs are impossible by construction because every client
/// runs to quota under the router's I/O deadlines).
fn cmd_dbench(args: &Args) -> Result<(), String> {
    let shards = args.get_parsed("shards", 4usize)?;
    if shards < 2 {
        return Err("dbench needs --shards ≥ 2 (distributed implies sharded)".to_string());
    }
    let replicas = args.get_parsed("replicas", 1usize)?.max(1);
    let requests = args.get_parsed("requests", 400usize)?;

    // Train + save the ensemble the shard processes will each load a
    // nested section of.
    let mut train_args = Args {
        positional: args.positional.clone(),
        flags: args.flags.clone(),
    };
    if train_args.get("shards").is_none() {
        train_args
            .flags
            .push(("shards".to_string(), shards.to_string()));
    }
    let (model, _) = train_model(&train_args)?;
    let path = std::env::temp_dir().join(format!("hkrr_dbench_{}.hkrr", std::process::id()));
    let path_str = path.to_string_lossy().to_string();
    save_loaded(&model, &path_str).map_err(|e| e.to_string())?;
    let layout = codec::load_layout(&path_str).map_err(|e| e.to_string())?;
    drop(model);

    // One OS process per shard replica.
    let mut fleet: Vec<ShardProcess> = Vec::with_capacity(shards * replicas);
    for shard in 0..shards {
        for replica in 0..replicas {
            match spawn_shard_process(&path_str, shard, replica) {
                Ok(p) => fleet.push(p),
                Err(e) => {
                    for p in &mut fleet {
                        let _ = p.child.kill();
                    }
                    std::fs::remove_file(&path).ok();
                    return Err(e);
                }
            }
        }
    }
    let mut groups: Vec<Vec<String>> = vec![Vec::new(); shards];
    for p in &fleet {
        groups[p.shard].push(p.addr.clone());
    }
    println!(
        "spawned {} shard-serve processes ({} shards × {} replicas)",
        fleet.len(),
        shards,
        replicas
    );

    // Kill-a-shard scenario: every replica of shard 0 dies mid-run.
    let victims: Vec<std::process::Child> = {
        let mut victims = Vec::new();
        let mut kept = Vec::new();
        for p in fleet {
            if p.shard == 0 {
                victims.push(p.child);
            } else {
                kept.push(p);
            }
        }
        fleet = kept;
        victims
    };

    let router = RouterServer::start(
        layout.centroids,
        layout.route_nearest,
        groups,
        RouterConfig {
            addr: "127.0.0.1:0".to_string(),
            health_interval: Duration::from_millis(200),
            connect_timeout: Duration::from_millis(500),
            io_timeout: Duration::from_secs(2),
            route_nearest: None,
        },
    )
    .map_err(|e| e.to_string())?;
    println!("router listening on {}", router.local_addr());

    let config = LoadgenConfig {
        addr: router.local_addr().to_string(),
        requests,
        concurrency: args.get_parsed("concurrency", 4usize)?,
        seed: args.get_parsed("seed", 0x10adu64)?,
        traced: args.get_parsed("traced", true)?,
    };
    let disrupt_after = requests / 2;
    let report = loadgen::run_with_disruption(&config, disrupt_after, move || {
        for mut child in victims {
            let _ = child.kill();
            let _ = child.wait();
        }
    })
    .map_err(|e| e.to_string())?;

    let stats_json = router.stats_json();
    // The routing section comes from a registry scrape of the live router
    // (the same path an external monitoring system would use), not from
    // in-process accessors — and the scrapes are left behind as validated
    // .prom artifacts: the router's, and one surviving shard process's.
    let router_addr = router.local_addr().to_string();
    let router_scrape = Client::connect(&router_addr)
        .and_then(|mut c| c.metrics())
        .map_err(|e| e.to_string())
        .and_then(|t| {
            hkrr_bench::prom::validate(&t)
                .map(|s| (t, s))
                .map_err(|e| e.to_string())
        });
    let report = match &router_scrape {
        Ok((_, scrape)) => report.with_routing(RoutingStats::from_scrape(scrape)),
        Err(_) => report.with_routing(RoutingStats {
            failovers: router.failovers(),
            degraded: router.degraded(),
            exhausted: 0,
        }),
    };
    if let Ok((text, _)) = &router_scrape {
        let out = args.get("router-prom").unwrap_or("BENCH_router.prom");
        std::fs::write(out, text).map_err(|e| format!("cannot write {out}: {e}"))?;
        println!("wrote {out} ({} bytes)", text.len());
    }
    if let Some(survivor) = fleet.first() {
        write_prom_artifact(
            &survivor.addr,
            args.get("shard-prom").unwrap_or("BENCH_shard.prom"),
        )?;
    }

    // Fleet doctor against the live (and deliberately disrupted) router —
    // the same one-page diagnosis `hkrr-serve doctor --addr` prints, taken
    // over TCP like an external operator would. The killed shard must show
    // up unhealthy here.
    let doctor = doctor_page(&router_addr)?;
    print!("{doctor}");
    if let Some(out) = args.get("doctor-out") {
        std::fs::write(out, &doctor).map_err(|e| format!("cannot write {out}: {e}"))?;
        println!("wrote {out}");
    }

    router.shutdown();
    hkrr_telemetry::trace::flush();
    hkrr_telemetry::log::flush();
    // Give the shard processes one flush tick so their trace files carry
    // the tail of the run before the SIGKILL below.
    std::thread::sleep(Duration::from_millis(400));
    for p in &mut fleet {
        let _ = p.child.kill();
        let _ = p.child.wait();
    }
    std::fs::remove_file(&path).ok();

    // With HKRR_TRACE set, stitch the router's trace file and every shard
    // process's (spawn_shard_process derived `{base}.shardNrM` paths) into
    // one timeline — the artifact where a single query's spans line up
    // across process boundaries.
    if let Ok(trace_base) = std::env::var("HKRR_TRACE") {
        let mut inputs = vec![trace_base.clone()];
        for shard in 0..shards {
            for replica in 0..replicas {
                let p = format!("{trace_base}.shard{shard}r{replica}");
                if std::path::Path::new(&p).exists() {
                    inputs.push(p);
                }
            }
        }
        let merged = format!("{trace_base}.merged");
        match merge_trace_files(&inputs, &merged) {
            Ok(s) => println!(
                "trace-merge: {} events from {} files, {} traces ({} multi-process) → {merged}",
                s.events, s.files, s.traces, s.multi_process
            ),
            Err(e) => eprintln!("trace-merge skipped: {e}"),
        }
    }
    let (failovers_scraped, degraded_scraped) = match &report.routing {
        Some(r) => (r.failovers, r.degraded),
        None => (0, 0),
    };
    println!("registry scrape: {failovers_scraped} failovers, {degraded_scraped} degraded replies");

    println!("router stats: {stats_json}");
    write_snapshot(
        &report,
        args.get("out").unwrap_or("BENCH_serve_distributed.json"),
    )?;

    let d = report
        .disruption
        .as_ref()
        .ok_or("disruption never fired (run too short?)")?;
    if d.requests_after == 0 {
        return Err("no requests observed after the disruption".to_string());
    }
    let error_rate = d.errors_after as f64 / d.requests_after as f64;
    println!(
        "post-disruption availability: {}/{} answered ({:.1}% errors)",
        d.requests_after - d.errors_after,
        d.requests_after,
        100.0 * error_rate
    );
    if error_rate > 0.05 {
        return Err(format!(
            "post-disruption error rate {:.1}% exceeds the 5% budget",
            100.0 * error_rate
        ));
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Minimal JSON field extraction for the stats documents this binary's own
// JsonWriter produced — flat objects and arrays of flat objects, no general
// JSON parser needed (the workspace deliberately has none).
// ---------------------------------------------------------------------------

/// `"key":"value"` → the (escaped) string value.
fn json_str(doc: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\":\"");
    let start = doc.find(&pat)? + pat.len();
    let bytes = doc.as_bytes();
    let mut i = start;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b'"' => return Some(doc[start..i].to_string()),
            _ => i += 1,
        }
    }
    None
}

/// `"key":123` → the integer value.
fn json_u64(doc: &str, key: &str) -> Option<u64> {
    let pat = format!("\"{key}\":");
    let start = doc.find(&pat)? + pat.len();
    let digits: String = doc[start..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    digits.parse().ok()
}

/// `"key":true|false` → the flag.
fn json_bool(doc: &str, key: &str) -> Option<bool> {
    let pat = format!("\"{key}\":");
    let start = doc.find(&pat)? + pat.len();
    let rest = &doc[start..];
    if rest.starts_with("true") {
        Some(true)
    } else if rest.starts_with("false") {
        Some(false)
    } else {
        None
    }
}

/// The top-level `{…}` elements of the array at `"key":[…]`, each returned
/// as its raw JSON text.
fn json_objects(doc: &str, key: &str) -> Vec<String> {
    let pat = format!("\"{key}\":[");
    let Some(start) = doc.find(&pat).map(|i| i + pat.len()) else {
        return Vec::new();
    };
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut obj_start = 0usize;
    let mut in_str = false;
    let mut escaped = false;
    for (i, c) in doc[start..].char_indices() {
        if in_str {
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_str = false;
            }
            continue;
        }
        match c {
            '"' => in_str = true,
            '{' => {
                if depth == 0 {
                    obj_start = i;
                }
                depth += 1;
            }
            '}' => {
                depth -= 1;
                if depth == 0 {
                    out.push(doc[start + obj_start..start + i + 1].to_string());
                }
            }
            ']' if depth == 0 => break,
            _ => {}
        }
    }
    out
}

// ---------------------------------------------------------------------------
// trace-merge: stitch per-process HKRR_TRACE files into one timeline.
// ---------------------------------------------------------------------------

/// What [`merge_trace_files`] found.
struct TraceMergeSummary {
    files: usize,
    events: usize,
    traced_events: usize,
    traces: usize,
    /// Traces whose spans came from more than one process id — the proof
    /// that cross-process propagation actually happened.
    multi_process: usize,
}

/// `"trace_id":"<32 hex>"` from one span line.
fn event_trace_id(line: &str) -> Option<&str> {
    let pat = "\"trace_id\":\"";
    let start = line.find(pat)? + pat.len();
    let end = line[start..].find('"')? + start;
    Some(&line[start..end])
}

/// `"pid":N` from one span line.
fn event_pid(line: &str) -> Option<u64> {
    json_u64(line, "pid")
}

/// Reads per-process Chrome trace files (the line-oriented format the
/// telemetry sink writes: `[` then one `{…},` event per line), merges every
/// event into `out` as a strictly-valid JSON array, and groups traced spans
/// by their `trace_id` across process boundaries.
fn merge_trace_files(inputs: &[String], out: &str) -> Result<TraceMergeSummary, String> {
    use std::collections::{HashMap, HashSet};
    let mut events: Vec<String> = Vec::new();
    let mut traces: HashMap<String, HashSet<u64>> = HashMap::new();
    let mut traced_events = 0usize;
    for path in inputs {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        for line in text.lines() {
            let line = line.trim();
            let line = line.strip_suffix(',').unwrap_or(line);
            if !line.starts_with('{') {
                continue; // the opening `[`, blanks, or a closing `]`
            }
            if let Some(trace_id) = event_trace_id(line) {
                traced_events += 1;
                traces
                    .entry(trace_id.to_string())
                    .or_default()
                    .insert(event_pid(line).unwrap_or(0));
            }
            events.push(line.to_string());
        }
    }
    let body = events.join(",\n");
    std::fs::write(out, format!("[\n{body}\n]\n"))
        .map_err(|e| format!("cannot write {out}: {e}"))?;
    Ok(TraceMergeSummary {
        files: inputs.len(),
        events: events.len(),
        traced_events,
        traces: traces.len(),
        multi_process: traces.values().filter(|pids| pids.len() > 1).count(),
    })
}

fn cmd_trace_merge(args: &Args) -> Result<(), String> {
    if args.positional.is_empty() {
        return Err("usage: hkrr-serve trace-merge [--out merged.json] FILE [FILE…]".to_string());
    }
    let out = args.get("out").unwrap_or("trace_merged.json");
    let min_multi = args.get_parsed("min-multi-process", 0usize)?;
    let s = merge_trace_files(&args.positional, out)?;
    println!(
        "merged {} events from {} files into {out}",
        s.events, s.files
    );
    println!(
        "traces: {} distinct over {} traced spans, {} spanning multiple processes",
        s.traces, s.traced_events, s.multi_process
    );
    if s.multi_process < min_multi {
        return Err(format!(
            "only {} multi-process traces found, --min-multi-process demands {min_multi} \
             (was HKRR_TRACE set on every process, and did traced queries flow?)",
            s.multi_process
        ));
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// doctor: one-page fleet diagnosis off a live router.
// ---------------------------------------------------------------------------

/// p99 (µs) of one `{name}_bucket` histogram in a Prometheus text
/// exposition, restricted to series carrying `label.0="label.1"`.
/// `u64::MAX` means "in the +Inf overflow bucket".
fn prom_histogram_p99(text: &str, name: &str, label: (&str, &str)) -> Option<u64> {
    let prefix = format!("{name}_bucket{{");
    let needle = format!("{}=\"{}\"", label.0, label.1);
    let mut buckets: Vec<(f64, u64)> = Vec::new();
    for line in text.lines() {
        if !line.starts_with(&prefix) || !line.contains(&needle) {
            continue;
        }
        let le_start = line.find("le=\"")? + 4;
        let le_end = line[le_start..].find('"')? + le_start;
        let le = match &line[le_start..le_end] {
            "+Inf" => f64::INFINITY,
            v => v.parse().ok()?,
        };
        let count: u64 = line.rsplit(' ').next()?.trim().parse().ok()?;
        buckets.push((le, count));
    }
    buckets.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
    let total = buckets.last()?.1;
    if total == 0 {
        return None;
    }
    let target = ((total as f64) * 0.99).ceil() as u64;
    for (le, cum) in buckets {
        if cum >= target {
            return Some(if le.is_finite() { le as u64 } else { u64::MAX });
        }
    }
    None
}

fn fmt_p99(p99: Option<u64>) -> String {
    match p99 {
        None => "p99=n/a".to_string(),
        Some(u64::MAX) => "p99=overflow".to_string(),
        Some(us) => format!("p99={us}us"),
    }
}

/// Scrapes health + stats + metrics from the router at `addr`, then every
/// replica the router's stats document lists, and renders the one-page
/// diagnosis `hkrr-serve doctor` prints: per-replica health/dispatch/p99
/// deltas, queue rejections, failover counters, and the slowest traces.
fn doctor_page(addr: &str) -> Result<String, String> {
    use std::fmt::Write as _;
    let connect = Duration::from_millis(1000);
    let io = Duration::from_secs(2);
    let mut client = Client::connect_with(addr, connect, io)
        .map_err(|e| format!("cannot reach router {addr}: {e}"))?;
    let health = client
        .health()
        .map_err(|e| format!("health of {addr}: {e}"))?;
    let stats = client
        .stats()
        .map_err(|e| format!("stats of {addr}: {e}"))?;
    let metrics = client
        .metrics()
        .map_err(|e| format!("metrics of {addr}: {e}"))?;

    let mut page = String::new();
    let _ = writeln!(page, "== hkrr fleet doctor: {addr} ==");
    let role = if health.role == hkrr_serve::protocol::ROLE_ROUTER {
        "router"
    } else {
        "model server"
    };
    let _ = writeln!(
        page,
        "{role} v{} up {:.0}s, {} requests, max opcode 0x{:02x}",
        json_str(&stats, "version").unwrap_or_else(|| "?".into()),
        json_u64(&stats, "uptime_seconds").unwrap_or(0),
        health.requests,
        health.max_opcode
    );
    let failovers = json_u64(&stats, "failovers").unwrap_or(0);
    let degraded = json_u64(&stats, "degraded").unwrap_or(0);
    let exhausted = json_u64(&stats, "exhausted").unwrap_or(0);
    let downgraded = json_u64(&stats, "downgraded_dispatches").unwrap_or(0);
    let _ = writeln!(
        page,
        "queries: {} | failovers {failovers} | degraded {degraded} | exhausted {exhausted} \
         | downgraded dispatches {downgraded}",
        json_u64(&stats, "requests").unwrap_or(0),
    );

    // Per-replica rows: router-side counters + p99 from the router's own
    // dispatch histogram, fleet-median delta, and a direct scrape of the
    // replica's engine stats (unreachable replicas are flagged, not fatal).
    let replicas = json_objects(&stats, "replicas");
    let p99s: Vec<Option<u64>> = replicas
        .iter()
        .map(|r| {
            let addr = json_str(r, "addr")?;
            prom_histogram_p99(
                &metrics,
                "hkrr_router_replica_latency_micros",
                ("replica", &addr),
            )
        })
        .collect();
    let mut finite: Vec<u64> = p99s
        .iter()
        .flatten()
        .copied()
        .filter(|&v| v != u64::MAX)
        .collect();
    finite.sort_unstable();
    let median_p99 = finite
        .get(finite.len() / 2)
        .copied()
        .filter(|_| !finite.is_empty());
    let mut unhealthy: Vec<String> = Vec::new();
    let mut total_rejections = 0u64;
    let mut shard_slow: Vec<(u64, String, String, String)> = Vec::new();
    let _ = writeln!(page, "replicas:");
    for (replica, p99) in replicas.iter().zip(&p99s) {
        let raddr = json_str(replica, "addr").unwrap_or_else(|| "?".into());
        let shard = json_u64(replica, "shard").unwrap_or(0);
        let healthy = json_bool(replica, "healthy").unwrap_or(false);
        if !healthy {
            unhealthy.push(format!("shard {shard} {raddr}"));
        }
        let delta = match (p99, median_p99) {
            (Some(p), Some(m)) if *p != u64::MAX && m > 0 => {
                format!(
                    " ({:+.0}% vs fleet median)",
                    100.0 * (*p as f64 - m as f64) / m as f64
                )
            }
            _ => String::new(),
        };
        // The replica's own view, over a short-deadline scrape.
        let direct = Client::connect_with(
            &raddr,
            Duration::from_millis(300),
            Duration::from_millis(1000),
        )
        .and_then(|mut c| c.stats());
        let engine_info = match &direct {
            Ok(estats) => {
                let rejections = json_u64(estats, "queue_rejections").unwrap_or(0);
                total_rejections += rejections;
                for entry in json_objects(estats, "slowlog") {
                    shard_slow.push((
                        json_u64(&entry, "latency_us").unwrap_or(0),
                        json_str(&entry, "trace_id").unwrap_or_else(|| "-".into()),
                        json_str(&entry, "detail").unwrap_or_default(),
                        format!("shard {shard} {raddr}"),
                    ));
                }
                format!("queue_rejections={rejections}")
            }
            Err(e) => format!("unreachable: {e}"),
        };
        let _ = writeln!(
            page,
            "  shard {shard} {raddr}  {}  dispatched={} failures={} {}{delta}  {engine_info}",
            if healthy { "healthy" } else { "UNHEALTHY" },
            json_u64(replica, "dispatched").unwrap_or(0),
            json_u64(replica, "failures").unwrap_or(0),
            fmt_p99(*p99),
        );
    }

    let _ = writeln!(page, "slowest traces (router):");
    for entry in json_objects(&stats, "slowlog") {
        let _ = writeln!(
            page,
            "  {:>8}us trace={} {}",
            json_u64(&entry, "latency_us").unwrap_or(0),
            json_str(&entry, "trace_id").unwrap_or_else(|| "-".into()),
            json_str(&entry, "detail").unwrap_or_default(),
        );
    }
    shard_slow.sort_by_key(|e| std::cmp::Reverse(e.0));
    if !shard_slow.is_empty() {
        let _ = writeln!(page, "slowest traces (shards):");
        for (latency_us, trace_id, detail, whom) in shard_slow.iter().take(5) {
            let _ = writeln!(
                page,
                "  {latency_us:>8}us trace={trace_id} {detail} [{whom}]"
            );
        }
    }

    let _ = writeln!(page, "diagnosis:");
    let mut findings = 0;
    if !unhealthy.is_empty() {
        findings += 1;
        let _ = writeln!(
            page,
            "  - {} replica(s) unhealthy: {}",
            unhealthy.len(),
            unhealthy.join(", ")
        );
    }
    if failovers > 0 {
        findings += 1;
        let _ = writeln!(page, "  - {failovers} queries needed failover");
    }
    if degraded > 0 || exhausted > 0 {
        findings += 1;
        let _ = writeln!(
            page,
            "  - degraded replies: {degraded}, exhausted (errored): {exhausted}"
        );
    }
    if total_rejections > 0 {
        findings += 1;
        let _ = writeln!(
            page,
            "  - {total_rejections} queue rejections across the fleet"
        );
    }
    if downgraded > 0 {
        findings += 1;
        let _ = writeln!(
            page,
            "  - {downgraded} traced dispatches downgraded for pre-0x08 replicas"
        );
    }
    if findings == 0 {
        let _ = writeln!(page, "  - all replicas healthy, no failovers — nominal");
    }
    Ok(page)
}

fn cmd_doctor(args: &Args) -> Result<(), String> {
    let addr = args
        .get("addr")
        .ok_or("usage: hkrr-serve doctor --addr ROUTER [--out FILE]")?;
    let page = doctor_page(addr)?;
    print!("{page}");
    if let Some(out) = args.get("out") {
        std::fs::write(out, &page).map_err(|e| format!("cannot write {out}: {e}"))?;
    }
    Ok(())
}

const USAGE: &str =
    "usage: hkrr-serve <save|train|info|serve|loadgen|bench|shard-serve|route|dbench|trace-merge|doctor> [options]
  save         train a model on a synthetic dataset and persist it (hkrr-model/1);
               --shards K (K>1) trains a cluster-sharded ensemble
  info         print a persisted model's metadata (line-oriented key: value)
  serve        load a model or ensemble and answer prediction queries over TCP
  loadgen      benchmark a running server, write BENCH_serve.json
  metrics      scrape a live server/router's metrics registry (Prometheus text)
  bench        end-to-end: train → save → load → serve → loadgen
  shard-serve  serve ONE shard of an ensemble file (--shard I) as its own process
  route        fan-out router over shard-serve processes (--shard ADDR[,ADDR…] per shard)
  dbench       distributed bench: spawn shard processes + router, kill a shard
               mid-run, assert availability, write BENCH_serve_distributed.json
  trace-merge  stitch per-process HKRR_TRACE files into one timeline
               (--out merged.json, --min-multi-process N) and count the
               traces that crossed process boundaries
  doctor       one-page fleet diagnosis off a live router (--addr ROUTER
               [--out FILE]): per-replica health/p99 deltas, failovers,
               queue rejections, slowest traces";

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = raw.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    if std::env::var_os("HKRR_TRACE").is_some() {
        eprintln!("HKRR_TRACE set: writing chrome://tracing events");
    }
    let result = Args::parse(rest).and_then(|args| match cmd.as_str() {
        // `train` kept as an alias: saving is what makes training durable.
        "save" | "train" => cmd_save(&args),
        "info" => cmd_info(&args),
        "serve" => cmd_serve(&args),
        "loadgen" => cmd_loadgen(&args),
        "metrics" => cmd_metrics(&args),
        "bench" => cmd_bench(&args),
        "shard-serve" => cmd_shard_serve(&args),
        "route" => cmd_route(&args),
        "dbench" => cmd_dbench(&args),
        "trace-merge" => cmd_trace_merge(&args),
        "doctor" => cmd_doctor(&args),
        other => Err(format!("unknown command {other:?}\n{USAGE}")),
    });
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("hkrr-serve: {e}");
            ExitCode::FAILURE
        }
    }
}
