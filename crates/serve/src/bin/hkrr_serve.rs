//! `hkrr-serve` — train, persist and serve kernel ridge regression models
//! (single or cluster-sharded ensembles).
//!
//! ```text
//! hkrr-serve save    --out model.hkrr [--dataset LETTER] [--n-train 600]
//!                    [--seed 42] [--solver dense|hss|hss+h|hss-pcg]
//!                    [--shards K] [--route-nearest M]
//!                    [--shard-strategy cluster|random]
//! hkrr-serve info    <model.hkrr>
//! hkrr-serve serve   <model.hkrr> [--addr 127.0.0.1:7878] [--workers N]
//!                    [--max-batch 64] [--linger-us 500]
//! hkrr-serve loadgen --addr 127.0.0.1:7878 [--requests 1000]
//!                    [--concurrency 8] [--out BENCH_serve.json]
//! hkrr-serve bench   [--requests 1000] [--concurrency 8] [--shards K]
//!                    [--out BENCH_serve.json]   # train→save→load→serve→loadgen
//! ```
//!
//! `--shards K` (K > 1) trains a cluster-sharded ensemble: the training
//! set is cut into `K` geometrically coherent shards, one model per shard
//! trains in parallel, and serving routes each query to its
//! `--route-nearest M` nearest shard centroids.

use hkrr_core::{KrrConfig, SolverKind};
use hkrr_ensemble::{EnsembleConfig, EnsembleKrr, ShardStrategy};
use hkrr_serve::codec::{self, LoadedModel};
use hkrr_serve::engine::EngineConfig;
use hkrr_serve::loadgen::{self, LoadgenConfig};
use hkrr_serve::server::{Server, ServerConfig};
use hkrr_serve::{save_model, ServeError};
use std::process::ExitCode;
use std::time::Duration;

/// Tiny `--flag value` parser over the raw argument list.
struct Args {
    positional: Vec<String>,
    flags: Vec<(String, String)>,
}

impl Args {
    fn parse(raw: &[String]) -> Result<Args, String> {
        let mut positional = Vec::new();
        let mut flags = Vec::new();
        let mut it = raw.iter();
        while let Some(arg) = it.next() {
            if let Some(name) = arg.strip_prefix("--") {
                let value = it.next().ok_or_else(|| format!("--{name} needs a value"))?;
                flags.push((name.to_string(), value.clone()));
            } else {
                positional.push(arg.clone());
            }
        }
        Ok(Args { positional, flags })
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .rev()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    fn get_parsed<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{name}: cannot parse {v:?}")),
        }
    }
}

fn solver_from(name: &str) -> Result<SolverKind, String> {
    match name {
        "dense" => Ok(SolverKind::DenseCholesky),
        "hss" => Ok(SolverKind::Hss),
        "hss+h" => Ok(SolverKind::HssWithHSampling),
        "hss-pcg" => Ok(SolverKind::HssPcg),
        other => Err(format!(
            "unknown solver {other:?} (dense | hss | hss+h | hss-pcg)"
        )),
    }
}

fn strategy_from(name: &str, seed: u64) -> Result<ShardStrategy, String> {
    match name {
        "cluster" => Ok(ShardStrategy::Cluster),
        "random" => Ok(ShardStrategy::Random { seed }),
        other => Err(format!(
            "unknown shard strategy {other:?} (cluster | random)"
        )),
    }
}

/// Trains either a single model or (with `--shards K`, K > 1) a
/// cluster-sharded ensemble on a synthetic dataset.
fn train_model(args: &Args) -> Result<(LoadedModel, hkrr_datasets::Dataset), String> {
    let dataset = args.get("dataset").unwrap_or("LETTER");
    let spec = hkrr_datasets::spec_by_name(dataset)
        .ok_or_else(|| format!("unknown dataset {dataset:?}"))?;
    let n_train = args.get_parsed("n-train", 600usize)?;
    let n_test = args.get_parsed("n-test", 150usize)?;
    let seed = args.get_parsed("seed", 42u64)?;
    let solver = solver_from(args.get("solver").unwrap_or("hss"))?;
    let shards = args.get_parsed("shards", 1usize)?;
    let ds = hkrr_datasets::generate(&spec, n_train, n_test, seed);
    let cfg = KrrConfig {
        h: spec.default_h,
        lambda: spec.default_lambda,
        solver,
        ..KrrConfig::default()
    };
    let model = if shards > 1 {
        let route_nearest = args.get_parsed("route-nearest", 2usize.min(shards))?;
        let strategy = strategy_from(args.get("shard-strategy").unwrap_or("cluster"), seed)?;
        let ens_cfg = EnsembleConfig {
            shards,
            route_nearest,
            strategy,
            base: cfg,
        };
        eprintln!(
            "training {}×{} ensemble ({} sharding, route {} nearest) on {dataset} (n={n_train}, d={}) …",
            shards,
            solver.label(),
            strategy.label(),
            route_nearest,
            spec.dim
        );
        let ens =
            EnsembleKrr::fit(&ds.train, &ds.train_labels, &ens_cfg).map_err(|e| e.to_string())?;
        eprintln!("{}", ens.report());
        LoadedModel::Ensemble(ens)
    } else {
        eprintln!(
            "training {} on {dataset} (n={n_train}, d={}) …",
            solver.label(),
            spec.dim
        );
        let model = hkrr_core::KrrModel::fit(&ds.train, &ds.train_labels, &cfg)
            .map_err(|e| e.to_string())?;
        eprintln!("{}", model.report());
        LoadedModel::Single(model)
    };
    let acc = hkrr_core::accuracy(&model.predict(&ds.test), &ds.test_labels);
    eprintln!(
        "test accuracy: {:.2}% on {n_test} held-out points",
        100.0 * acc
    );
    Ok((model, ds))
}

fn save_loaded(model: &LoadedModel, path: &str) -> Result<(), ServeError> {
    match model {
        LoadedModel::Single(m) => save_model(m, path)?,
        LoadedModel::Ensemble(e) => codec::save_ensemble(e, path)?,
    }
    Ok(())
}

fn engine_config(args: &Args) -> Result<EngineConfig, String> {
    let default = EngineConfig::default();
    let workers = args.get_parsed("workers", default.workers)?;
    if workers == 0 {
        // workers: 0 is a test-only engine mode (nothing ever drains the
        // queue); a server started that way would accept and then starve
        // every request.
        return Err("--workers must be at least 1".to_string());
    }
    Ok(EngineConfig {
        workers,
        max_batch: args.get_parsed("max-batch", default.max_batch)?,
        queue_capacity: args.get_parsed("queue-capacity", default.queue_capacity)?,
        linger: Duration::from_micros(
            args.get_parsed("linger-us", default.linger.as_micros() as u64)?,
        ),
    })
}

fn cmd_save(args: &Args) -> Result<(), String> {
    let out = args.get("out").unwrap_or("model.hkrr").to_string();
    let (model, _) = train_model(args)?;
    save_loaded(&model, &out).map_err(|e| e.to_string())?;
    let bytes = std::fs::metadata(&out).map(|m| m.len()).unwrap_or(0);
    println!(
        "saved {out} ({bytes} bytes, schema {}, kind: {})",
        codec::SCHEMA,
        if model.is_ensemble() {
            "ensemble"
        } else {
            "single"
        }
    );
    Ok(())
}

fn cmd_info(args: &Args) -> Result<(), String> {
    let path = args
        .positional
        .first()
        .ok_or("usage: hkrr-serve info <model.hkrr>")?;
    let (version, model) = codec::load_any(path).map_err(|e| e.to_string())?;
    for line in codec::info_lines(version, &model) {
        println!("{line}");
    }
    Ok(())
}

fn cmd_serve(args: &Args) -> Result<(), String> {
    let path = args
        .positional
        .first()
        .ok_or("usage: hkrr-serve serve <model.hkrr> [--addr host:port]")?;
    let (_, model) = codec::load_any(path).map_err(|e| e.to_string())?;
    eprintln!(
        "loaded {path}: kind={}, n_train={}, dim={}, models={} (no re-factorization needed)",
        if model.is_ensemble() {
            "ensemble"
        } else {
            "single"
        },
        model.num_train(),
        model.dim(),
        model.num_models()
    );
    let config = ServerConfig {
        addr: args.get("addr").unwrap_or("127.0.0.1:7878").to_string(),
        engine: engine_config(args)?,
    };
    let server = Server::start(model.into_handle(), config).map_err(|e| e.to_string())?;
    println!("serving on {} (ctrl-c to stop)", server.local_addr());
    // Serve until killed: the accept loop runs on its own thread.
    loop {
        std::thread::sleep(Duration::from_secs(3600));
    }
}

fn write_snapshot(report: &loadgen::LoadgenReport, out: &str) -> Result<(), String> {
    std::fs::write(out, report.to_json()).map_err(|e| format!("cannot write {out}: {e}"))?;
    println!("{}", report.summary());
    println!("wrote {out}");
    Ok(())
}

fn cmd_loadgen(args: &Args) -> Result<(), String> {
    let config = LoadgenConfig {
        addr: args.get("addr").unwrap_or("127.0.0.1:7878").to_string(),
        requests: args.get_parsed("requests", 1000usize)?,
        concurrency: args.get_parsed("concurrency", 8usize)?,
        seed: args.get_parsed("seed", 0x10adu64)?,
    };
    let report = loadgen::run(&config).map_err(|e| e.to_string())?;
    write_snapshot(&report, args.get("out").unwrap_or("BENCH_serve.json"))
}

/// The zero-to-production walkthrough in one command: train a model, save
/// it, load it back, serve it on a loopback port, hammer it with the load
/// generator, and leave behind `BENCH_serve.json`.
fn cmd_bench(args: &Args) -> Result<(), String> {
    let (model, _) = train_model(args)?;
    let path = std::env::temp_dir().join(format!("hkrr_bench_{}.hkrr", std::process::id()));
    save_loaded(&model, &path.to_string_lossy()).map_err(|e| e.to_string())?;
    let file_bytes = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
    let (_, loaded) = codec::load_any(&path).map_err(|e| e.to_string())?;
    std::fs::remove_file(&path).ok();
    println!(
        "save → load round trip ok ({file_bytes} bytes, kind: {}, models: {})",
        if loaded.is_ensemble() {
            "ensemble"
        } else {
            "single"
        },
        loaded.num_models()
    );

    let server = Server::start(
        loaded.into_handle(),
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            engine: engine_config(args)?,
        },
    )
    .map_err(|e| e.to_string())?;
    let addr = server.local_addr().to_string();
    println!("serving on {addr}");

    let config = LoadgenConfig {
        addr,
        requests: args.get_parsed("requests", 1000usize)?,
        concurrency: args.get_parsed("concurrency", 8usize)?,
        seed: args.get_parsed("seed", 0x10adu64)?,
    };
    let report = loadgen::run(&config).map_err(|e| e.to_string())?;
    server.shutdown();
    let engine_stats = server.stats();
    println!(
        "engine: {} requests in {} batches (mean batch {:.2})",
        engine_stats.requests, engine_stats.batches, engine_stats.mean_batch_size
    );
    if !engine_stats.model_requests.is_empty() {
        println!(
            "per-shard routed queries: {:?}",
            engine_stats.model_requests
        );
    }
    write_snapshot(&report, args.get("out").unwrap_or("BENCH_serve.json"))?;
    if report.errors > 0 {
        return Err(format!("{} queries failed", report.errors));
    }
    Ok(())
}

const USAGE: &str = "usage: hkrr-serve <save|train|info|serve|loadgen|bench> [options]
  save     train a model on a synthetic dataset and persist it (hkrr-model/1);
           --shards K (K>1) trains a cluster-sharded ensemble
  info     print a persisted model's metadata (line-oriented key: value)
  serve    load a model or ensemble and answer prediction queries over TCP
  loadgen  benchmark a running server, write BENCH_serve.json
  bench    end-to-end: train → save → load → serve → loadgen";

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = raw.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let result = Args::parse(rest).and_then(|args| match cmd.as_str() {
        // `train` kept as an alias: saving is what makes training durable.
        "save" | "train" => cmd_save(&args),
        "info" => cmd_info(&args),
        "serve" => cmd_serve(&args),
        "loadgen" => cmd_loadgen(&args),
        "bench" => cmd_bench(&args),
        other => Err(format!("unknown command {other:?}\n{USAGE}")),
    });
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("hkrr-serve: {e}");
            ExitCode::FAILURE
        }
    }
}
