//! Fixed-size slow-query capture.
//!
//! Both the engine and the router keep a [`SlowLog`]: the top-N requests
//! by latency, each with its trace id and a short context string (batch
//! size for the engine, shard/replica for the router). The log is
//! surfaced through the `stats` command and scraped fleet-wide by
//! `hkrr-serve doctor`, so a tail-latency spike can be attributed to a
//! specific trace — and then inspected on the merged cross-process
//! timeline — instead of dissolving into a histogram bucket.
//!
//! Recording is designed for the hot path: a relaxed atomic floor check
//! rejects the common case (a latency below the current top-N cutoff)
//! without taking the lock or formatting the context string.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Default number of entries an engine or router slowlog retains.
pub const SLOWLOG_CAPACITY: usize = 8;

/// One captured slow request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlowEntry {
    /// Observed latency in microseconds.
    pub latency_micros: u64,
    /// Trace id of the request (`0` for an untraced request).
    pub trace_id: u128,
    /// Short context: `batch=12` (engine) or `shard=2 replica=0:1`
    /// (router).
    pub detail: String,
}

impl SlowEntry {
    /// The trace id as the 32-hex-digit form used in trace files and
    /// event logs, or `"-"` for an untraced request.
    pub fn trace_hex(&self) -> String {
        if self.trace_id == 0 {
            "-".to_string()
        } else {
            format!("{:032x}", self.trace_id)
        }
    }
}

/// A bounded top-N-by-latency log. See the module docs.
#[derive(Debug)]
pub struct SlowLog {
    capacity: usize,
    /// Latency of the cheapest retained entry once the log is full; `0`
    /// while it still has room. Relaxed reads gate the hot path.
    floor: AtomicU64,
    entries: Mutex<Vec<SlowEntry>>,
}

impl SlowLog {
    /// An empty log retaining up to `capacity` entries.
    pub fn new(capacity: usize) -> SlowLog {
        SlowLog {
            capacity: capacity.max(1),
            floor: AtomicU64::new(0),
            entries: Mutex::new(Vec::with_capacity(capacity.max(1))),
        }
    }

    /// Offer one request. `detail` is only invoked when the request
    /// actually enters the top N, keeping formatting off the common path.
    pub fn record(&self, latency_micros: u64, trace_id: u128, detail: impl FnOnce() -> String) {
        if latency_micros <= self.floor.load(Ordering::Relaxed) {
            return;
        }
        let mut entries = self.entries.lock().unwrap();
        if entries.len() >= self.capacity {
            // Evict the cheapest entry; re-check under the lock (the
            // relaxed floor may lag).
            let (min_idx, min_latency) = entries
                .iter()
                .enumerate()
                .map(|(i, e)| (i, e.latency_micros))
                .min_by_key(|&(_, l)| l)
                .expect("capacity >= 1");
            if latency_micros <= min_latency {
                return;
            }
            entries.swap_remove(min_idx);
        }
        entries.push(SlowEntry {
            latency_micros,
            trace_id,
            detail: detail(),
        });
        if entries.len() >= self.capacity {
            let new_floor = entries
                .iter()
                .map(|e| e.latency_micros)
                .min()
                .expect("just pushed");
            self.floor.store(new_floor, Ordering::Relaxed);
        }
    }

    /// The retained entries, slowest first.
    pub fn snapshot(&self) -> Vec<SlowEntry> {
        let mut entries = self.entries.lock().unwrap().clone();
        entries.sort_by_key(|e| std::cmp::Reverse(e.latency_micros));
        entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_the_top_n_by_latency() {
        let log = SlowLog::new(3);
        for (i, latency) in [50u64, 10, 90, 30, 70, 20].into_iter().enumerate() {
            log.record(latency, i as u128 + 1, || format!("req={i}"));
        }
        let snap = log.snapshot();
        assert_eq!(
            snap.iter().map(|e| e.latency_micros).collect::<Vec<_>>(),
            vec![90, 70, 50]
        );
        assert_eq!(snap[0].trace_id, 3);
        assert_eq!(snap[0].detail, "req=2");
    }

    #[test]
    fn floor_gates_below_cutoff_records() {
        let log = SlowLog::new(2);
        log.record(100, 1, || "a".into());
        log.record(200, 2, || "b".into());
        // Below the floor: the closure must not even run.
        log.record(50, 3, || panic!("formatted a rejected entry"));
        assert_eq!(log.snapshot().len(), 2);
    }

    #[test]
    fn trace_hex_renders_untraced_as_dash() {
        let e = SlowEntry {
            latency_micros: 1,
            trace_id: 0,
            detail: String::new(),
        };
        assert_eq!(e.trace_hex(), "-");
        let t = SlowEntry {
            latency_micros: 1,
            trace_id: 0xab,
            detail: String::new(),
        };
        assert_eq!(t.trace_hex(), format!("{:032x}", 0xabu128));
    }

    #[test]
    fn concurrent_records_never_exceed_capacity() {
        let log = std::sync::Arc::new(SlowLog::new(4));
        std::thread::scope(|scope| {
            for t in 0..4 {
                let log = std::sync::Arc::clone(&log);
                scope.spawn(move || {
                    for i in 0..500u64 {
                        log.record(t * 1000 + i, 1, || "x".into());
                    }
                });
            }
        });
        let snap = log.snapshot();
        assert_eq!(snap.len(), 4);
        // The global top entry always survives.
        assert_eq!(snap[0].latency_micros, 3 * 1000 + 499);
    }
}
