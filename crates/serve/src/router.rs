//! The distributed fan-out router tier.
//!
//! A [`RouterServer`] is the process in front of a fleet of per-shard
//! `shard-serve` processes. It holds **only** the ensemble's shard
//! centroids (a few kilobytes, read straight from the v3 file header via
//! [`crate::codec::load_layout`]) plus client connections — never a model —
//! and it speaks the same `HKRB` protocol in both directions: a protocol
//! *server* to the outside, a protocol *client* (via [`Client`]) of its N
//! shard servers.
//!
//! Per query it sorts all centroids by distance with the ensemble's own
//! [`hkrr_ensemble::Router`], dispatches the point to the
//! `route_nearest` nearest shards, and combines the replies with the
//! ensemble's own [`hkrr_ensemble::combine_scores`] — so a routed-over-TCP
//! answer is **bitwise identical** to the in-process
//! [`hkrr_ensemble::EnsembleKrr`] on the same shard set (the
//! `distributed_serve` integration test pins this).
//!
//! Availability layers on top of that identity without disturbing it:
//!
//! * **Replication** — each shard may be served by several replicas; the
//!   router picks the replica with the fewest in-flight requests
//!   (least-loaded routing) and keeps cumulative per-replica dispatch
//!   counters for the `stats` command.
//! * **Health checks** — a background prober walks every replica each
//!   `health_interval` with the binary `health` command, so a replica that
//!   went dark is marked unhealthy (and is re-admitted when it answers
//!   again) without waiting for a query to trip over it.
//! * **Failover** — when a dispatch fails mid-query the replica is marked
//!   unhealthy and the next replica is tried; when a whole shard has no
//!   replica left, the query falls through to the next-nearest centroid's
//!   shard. A degraded reply (fewer than `route_nearest` contributions, but
//!   at least one) is still served rather than errored.

use crate::client::Client;
use crate::protocol::{Request, WirePrediction, ROLE_ROUTER};
use crate::server::{metrics_exposition, server_info, Reply, RequestHandler, TcpFrontEnd};
use crate::ServeError;
use hkrr_bench::json::JsonWriter;
use hkrr_ensemble::combine_scores;
use hkrr_linalg::Matrix;
use hkrr_telemetry::{Counter, Histogram, HistogramSpec};
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Monotone router id so several routers in one process (tests) keep
/// distinct label sets in the shared registry.
static NEXT_ROUTER_ID: AtomicUsize = AtomicUsize::new(1);

/// Configuration of the router tier.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Address to bind (`127.0.0.1:0` picks a free loopback port).
    pub addr: String,
    /// How many nearest shards answer each query. `None` uses the value
    /// the ensemble was trained with (from the file header) — the setting
    /// that reproduces the in-process ensemble bitwise.
    pub route_nearest: Option<usize>,
    /// Period of the background replica health prober.
    pub health_interval: Duration,
    /// Deadline for establishing a connection to a shard replica.
    pub connect_timeout: Duration,
    /// Deadline for each read/write on a shard connection — the bound on
    /// how long a dead-but-accepting replica can stall one query.
    pub io_timeout: Duration,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            addr: "127.0.0.1:0".to_string(),
            route_nearest: None,
            health_interval: Duration::from_millis(500),
            connect_timeout: Duration::from_millis(500),
            io_timeout: Duration::from_secs(5),
        }
    }
}

/// One replica of one shard: an address, a cached connection, and the
/// health/load instruments the routing decisions read. The cumulative
/// counters and the dispatch-latency histogram live in the process-global
/// metrics registry under `{router,shard,replica}` labels, so a `metrics`
/// scrape of the router carries per-replica dispatch/failure/latency.
struct Replica {
    addr: String,
    conn: Mutex<Option<Client>>,
    healthy: AtomicBool,
    /// Requests currently being answered by this replica — the
    /// least-loaded routing key.
    inflight: AtomicU64,
    /// Cumulative requests ever dispatched here (reported by `stats`).
    dispatched: Arc<Counter>,
    /// Cumulative dispatch failures (reported by `stats`).
    failures: Arc<Counter>,
    /// Wall-clock of successful dispatches (connect + round trip).
    latency_micros: Arc<Histogram>,
}

impl Replica {
    fn new(addr: String, router_label: &str, shard: usize) -> Replica {
        let registry = hkrr_telemetry::global();
        let shard_label = shard.to_string();
        let labels = [
            ("router", router_label),
            ("shard", shard_label.as_str()),
            ("replica", addr.as_str()),
        ];
        let dispatched = registry.counter(
            "hkrr_router_replica_dispatched_total",
            "Predict requests successfully answered by this replica",
            &labels,
        );
        let failures = registry.counter(
            "hkrr_router_replica_failures_total",
            "Dispatches to this replica that failed",
            &labels,
        );
        let latency_micros = registry.histogram(
            "hkrr_router_replica_latency_micros",
            "Wall-clock of successful dispatches to this replica",
            &labels,
            &HistogramSpec::latency_micros(),
        );
        Replica {
            addr,
            conn: Mutex::new(None),
            // Optimistic until the first probe or dispatch says otherwise,
            // so a router can start before its shard fleet finishes coming
            // up without permanently blacklisting anyone.
            healthy: AtomicBool::new(true),
            inflight: AtomicU64::new(0),
            dispatched,
            failures,
            latency_micros,
        }
    }

    /// One request/response against this replica, reusing the cached
    /// connection when possible. On any error the cached connection is
    /// dropped and the replica is marked unhealthy (the prober re-admits
    /// it when it answers again).
    fn call(
        &self,
        point: &[f64],
        connect_timeout: Duration,
        io_timeout: Duration,
    ) -> Result<WirePrediction, ServeError> {
        self.inflight.fetch_add(1, Ordering::AcqRel);
        let dispatch_started = Instant::now();
        let result = (|| {
            let mut guard = self.conn.lock().unwrap();
            if guard.is_none() {
                *guard = Some(Client::connect_with(
                    &self.addr,
                    connect_timeout,
                    io_timeout,
                )?);
            }
            let client = guard.as_mut().expect("connection just established");
            match client.predict(point.to_vec()) {
                Ok(p) => Ok(p),
                Err(e @ (ServeError::Io(_) | ServeError::Protocol(_))) => {
                    // The stream may be desynced or dead — never reuse it.
                    *guard = None;
                    Err(e)
                }
                // Typed server-side errors (Rejected, Engine, …) leave the
                // connection healthy and reusable.
                Err(e) => Err(e),
            }
        })();
        self.inflight.fetch_sub(1, Ordering::AcqRel);
        match &result {
            Ok(_) => {
                self.dispatched.inc();
                self.latency_micros
                    .record_duration(dispatch_started.elapsed());
                self.healthy.store(true, Ordering::Release);
            }
            Err(ServeError::Io(_) | ServeError::Protocol(_)) => {
                self.failures.inc();
                self.healthy.store(false, Ordering::Release);
            }
            Err(_) => {
                self.failures.inc();
            }
        }
        result
    }
}

/// The replicas serving one shard.
struct ShardPool {
    replicas: Vec<Replica>,
}

impl ShardPool {
    /// Replica indices in dispatch-preference order: healthy ones first by
    /// ascending in-flight count (least-loaded), then unhealthy ones as a
    /// last resort (they may have recovered since the last probe).
    fn preference_order(&self) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.replicas.len()).collect();
        order.sort_by_key(|&i| {
            let r = &self.replicas[i];
            let unhealthy = !r.healthy.load(Ordering::Acquire);
            (unhealthy, r.inflight.load(Ordering::Acquire), i)
        });
        order
    }
}

struct RouterInner {
    /// Full-order centroid router (`route_nearest` = shard count): its
    /// sorted output is both the primary shard selection *and* the
    /// failover order.
    full_router: hkrr_ensemble::Router,
    /// How many shards answer each query on the healthy path.
    route_nearest: usize,
    pools: Vec<ShardPool>,
    connect_timeout: Duration,
    io_timeout: Duration,
    /// `"r<id>"` — this router's label value in the shared registry.
    router_label: String,
    /// Predict requests answered (including degraded ones).
    requests: Arc<Counter>,
    /// Queries where at least one planned shard was replaced or dropped.
    failovers: Arc<Counter>,
    /// Queries answered with fewer than `route_nearest` contributions.
    degraded: Arc<Counter>,
    /// Queries answered with zero contributions (errors to the caller).
    exhausted: Arc<Counter>,
    /// End-to-end routed-query latency (fan-out + combine).
    latency_micros: Arc<Histogram>,
    /// Total training points behind the fleet, summed from shard `info`
    /// replies at startup (0 until at least one shard answered).
    n_train: AtomicU64,
}

impl RouterInner {
    fn dim(&self) -> usize {
        self.full_router.centroids().ncols()
    }

    /// Routes one point to shard processes and combines the replies —
    /// bitwise the in-process ensemble when all shards are reachable.
    fn predict(&self, point: &[f64]) -> Result<WirePrediction, ServeError> {
        if point.len() != self.dim() {
            return Err(ServeError::Rejected(format!(
                "dimension mismatch: model expects {}, request has {}",
                self.dim(),
                point.len()
            )));
        }
        let started = Instant::now();
        let mut predict_span = hkrr_telemetry::span!("router.predict");
        let order = self.full_router.route(point);
        // (d2, score) contributions, gathered in failover order: the first
        // `route_nearest` shards when all are reachable — exactly the
        // in-process selection — with next-nearest substitutes appended
        // only when a nearer shard is completely dark.
        let mut contributions: Vec<(f64, f64)> = Vec::with_capacity(self.route_nearest);
        let mut failed_over = false;
        for &(shard, d2) in &order {
            if contributions.len() == self.route_nearest {
                break;
            }
            let pool = &self.pools[shard];
            let mut answered = false;
            for idx in pool.preference_order() {
                let mut dispatch_span = hkrr_telemetry::span!("router.dispatch");
                dispatch_span.annotate("shard", shard);
                dispatch_span.annotate("replica", &pool.replicas[idx].addr);
                match pool.replicas[idx].call(point, self.connect_timeout, self.io_timeout) {
                    Ok(p) => {
                        contributions.push((d2, p.score));
                        answered = true;
                        break;
                    }
                    Err(ServeError::Io(_) | ServeError::Protocol(_)) => {
                        // Dead replica: already marked unhealthy, try the
                        // next one.
                        failed_over = true;
                    }
                    // A typed reply from a live shard (e.g. Rejected) is
                    // not an availability problem — surface it.
                    Err(e) => return Err(e),
                }
            }
            if !answered {
                failed_over = true;
            }
        }
        self.requests.inc();
        self.latency_micros.record_duration(started.elapsed());
        predict_span.annotate("contributions", contributions.len());
        predict_span.annotate("failed_over", failed_over);
        drop(predict_span);
        if failed_over {
            self.failovers.inc();
        }
        if contributions.is_empty() {
            self.exhausted.inc();
            return Err(ServeError::Rejected(
                "no shard replica reachable for this query".to_string(),
            ));
        }
        if contributions.len() < self.route_nearest {
            self.degraded.inc();
        }
        let num_contributions = contributions.len();
        let score = combine_scores(&mut contributions);
        Ok(WirePrediction {
            score,
            label: if score >= 0.0 { 1.0 } else { -1.0 },
            // For a router the "batch" is the fan-out width that actually
            // answered — loadgen and operators read degraded replies off
            // this field.
            batch_size: num_contributions as u32,
            latency_micros: started.elapsed().as_micros() as u64,
        })
    }

    /// Router stats as a JSON object (schema `hkrr-router-stats/1`):
    /// query counters plus per-shard, per-replica address / health / load.
    fn stats_json(&self) -> String {
        let build = hkrr_telemetry::build_info!();
        let mut w = JsonWriter::new();
        w.begin_object();
        w.field_str("schema", "hkrr-router-stats/1");
        w.field_str("role", "router");
        w.field_f64("uptime_seconds", hkrr_telemetry::uptime_seconds());
        w.field_str("version", build.version);
        w.field_str("build_stamp", build.stamp);
        w.field_str("router", &self.router_label);
        w.field_u64("requests", self.requests.get());
        w.field_u64("failovers", self.failovers.get());
        w.field_u64("degraded", self.degraded.get());
        w.field_u64("exhausted", self.exhausted.get());
        w.field_usize("shards", self.pools.len());
        w.field_usize("route_nearest", self.route_nearest);
        w.key("replicas");
        w.begin_array();
        for (shard, pool) in self.pools.iter().enumerate() {
            for replica in &pool.replicas {
                w.begin_object();
                w.field_usize("shard", shard);
                w.field_str("addr", &replica.addr);
                w.key("healthy");
                w.value_bool(replica.healthy.load(Ordering::Acquire));
                w.field_u64("inflight", replica.inflight.load(Ordering::Acquire));
                w.field_u64("dispatched", replica.dispatched.get());
                w.field_u64("failures", replica.failures.get());
                w.end_object();
            }
        }
        w.end_array();
        w.end_object();
        w.finish()
    }
}

/// The [`RequestHandler`] face of the router: same protocol as a model
/// server, answered by fan-out instead of an engine.
struct RouterHandler {
    inner: Arc<RouterInner>,
}

impl RequestHandler for RouterHandler {
    fn handle(&self, req: Request) -> Result<Reply, ServeError> {
        match req {
            Request::Predict(point) => Ok(Reply::Prediction(self.inner.predict(&point)?)),
            Request::Stats => Ok(Reply::Json(self.inner.stats_json())),
            Request::Ping => Ok(Reply::Pong),
            Request::Info => Ok(Reply::Info(server_info(
                self.inner.dim() as u32,
                self.inner.n_train.load(Ordering::Relaxed),
            ))),
            Request::Metrics => Ok(Reply::Metrics(metrics_exposition())),
            Request::Health => Ok(Reply::Health {
                role: ROLE_ROUTER,
                requests: self.inner.requests.get(),
            }),
            Request::Refresh => {
                // Broadcast: ask one replica per shard (all replicas of a
                // shard host the same file) plus every other replica, so
                // the whole fleet reloads. Counters aggregate per shard.
                let mut refreshed_shards = 0u32;
                let mut n_train = 0u64;
                let mut last_err: Option<ServeError> = None;
                for pool in &self.inner.pools {
                    let mut shard_done = false;
                    for replica in &pool.replicas {
                        match refresh_replica(
                            replica,
                            self.inner.connect_timeout,
                            self.inner.io_timeout,
                        ) {
                            Ok((_, nt)) => {
                                if !shard_done {
                                    refreshed_shards += 1;
                                    n_train += nt;
                                    shard_done = true;
                                }
                            }
                            Err(e) => last_err = Some(e),
                        }
                    }
                }
                if refreshed_shards == 0 {
                    return Err(last_err.unwrap_or_else(|| {
                        ServeError::Rejected("no shard replica reachable".to_string())
                    }));
                }
                Ok(Reply::Refreshed {
                    num_models: refreshed_shards,
                    n_train,
                })
            }
        }
    }
}

/// One `refresh` round trip on a replica's cached connection.
fn refresh_replica(
    replica: &Replica,
    connect_timeout: Duration,
    io_timeout: Duration,
) -> Result<(u32, u64), ServeError> {
    let mut guard = replica.conn.lock().unwrap();
    if guard.is_none() {
        *guard = Some(Client::connect_with(
            &replica.addr,
            connect_timeout,
            io_timeout,
        )?);
    }
    let client = guard.as_mut().expect("connection just established");
    match client.refresh() {
        Ok(out) => Ok(out),
        Err(e) => {
            *guard = None;
            Err(e)
        }
    }
}

/// A running router: a [`TcpFrontEnd`] whose handler fans out to shard
/// server processes, plus the background health prober.
pub struct RouterServer {
    front: TcpFrontEnd,
    inner: Arc<RouterInner>,
    prober_running: Arc<AtomicBool>,
    prober: Mutex<Option<JoinHandle<()>>>,
}

impl RouterServer {
    /// Starts a router over `centroids` (`k × d`, from the ensemble file
    /// header) with `shard_addrs[i]` holding the replica addresses of
    /// shard `i`. `trained_route_nearest` is the ensemble's own `m` (the
    /// file header value), used when the config does not override it.
    pub fn start(
        centroids: Matrix,
        trained_route_nearest: usize,
        shard_addrs: Vec<Vec<String>>,
        config: RouterConfig,
    ) -> Result<RouterServer, ServeError> {
        let shards = centroids.nrows();
        if shard_addrs.len() != shards {
            return Err(ServeError::Rejected(format!(
                "ensemble has {shards} shards but {} shard address groups were given",
                shard_addrs.len()
            )));
        }
        if shard_addrs.iter().any(Vec::is_empty) {
            return Err(ServeError::Rejected(
                "every shard needs at least one replica address".to_string(),
            ));
        }
        let route_nearest = config.route_nearest.unwrap_or(trained_route_nearest);
        if route_nearest == 0 || route_nearest > shards {
            return Err(ServeError::Rejected(format!(
                "route_nearest must be in 1..={shards}, got {route_nearest}"
            )));
        }
        // Pin the uptime epoch and claim a unique registry label before
        // any instrument registers under it.
        hkrr_telemetry::process_start();
        let router_label = format!("r{}", NEXT_ROUTER_ID.fetch_add(1, Ordering::Relaxed));
        // Full order: the sorted list is both selection and failover plan.
        let full_router =
            hkrr_ensemble::Router::new(centroids, shards).map_err(ServeError::Rejected)?;
        let pools = shard_addrs
            .into_iter()
            .enumerate()
            .map(|(shard, addrs)| ShardPool {
                replicas: addrs
                    .into_iter()
                    .map(|addr| Replica::new(addr, &router_label, shard))
                    .collect(),
            })
            .collect();
        let registry = hkrr_telemetry::global();
        let labels = [("router", router_label.as_str())];
        let inner = Arc::new(RouterInner {
            full_router,
            route_nearest,
            pools,
            connect_timeout: config.connect_timeout,
            io_timeout: config.io_timeout,
            requests: registry.counter(
                "hkrr_router_requests_total",
                "Routed predict queries answered (including degraded ones)",
                &labels,
            ),
            failovers: registry.counter(
                "hkrr_router_failovers_total",
                "Queries where a planned shard was replaced or dropped",
                &labels,
            ),
            degraded: registry.counter(
                "hkrr_router_degraded_total",
                "Queries answered with fewer than route_nearest contributions",
                &labels,
            ),
            exhausted: registry.counter(
                "hkrr_router_exhausted_total",
                "Queries answered with zero contributions (errors)",
                &labels,
            ),
            latency_micros: registry.histogram(
                "hkrr_router_request_latency_micros",
                "End-to-end routed-query latency (fan-out plus combine)",
                &labels,
                &HistogramSpec::latency_micros(),
            ),
            router_label,
            n_train: AtomicU64::new(0),
        });

        let front = TcpFrontEnd::start(
            &config.addr,
            Arc::new(RouterHandler {
                inner: Arc::clone(&inner),
            }),
        )?;

        let prober_running = Arc::new(AtomicBool::new(true));
        let prober = {
            let inner = Arc::clone(&inner);
            let running = Arc::clone(&prober_running);
            let interval = config.health_interval;
            std::thread::spawn(move || probe_loop(&inner, &running, interval))
        };

        Ok(RouterServer {
            front,
            inner,
            prober_running,
            prober: Mutex::new(Some(prober)),
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.front.local_addr()
    }

    /// The router stats JSON (same document the `stats` command returns).
    pub fn stats_json(&self) -> String {
        self.inner.stats_json()
    }

    /// Snapshot of per-shard replica health: `health[shard][replica]`.
    pub fn replica_health(&self) -> Vec<Vec<bool>> {
        self.inner
            .pools
            .iter()
            .map(|pool| {
                pool.replicas
                    .iter()
                    .map(|r| r.healthy.load(Ordering::Acquire))
                    .collect()
            })
            .collect()
    }

    /// Cumulative per-replica dispatch counts:
    /// `dispatched[shard][replica]`.
    pub fn replica_dispatched(&self) -> Vec<Vec<u64>> {
        self.inner
            .pools
            .iter()
            .map(|pool| pool.replicas.iter().map(|r| r.dispatched.get()).collect())
            .collect()
    }

    /// Queries that needed failover so far.
    pub fn failovers(&self) -> u64 {
        self.inner.failovers.get()
    }

    /// Queries answered with fewer than `route_nearest` contributions.
    pub fn degraded(&self) -> u64 {
        self.inner.degraded.get()
    }

    /// Stops the prober and the front-end. Idempotent.
    pub fn shutdown(&self) {
        self.prober_running.store(false, Ordering::Release);
        if let Some(handle) = self.prober.lock().unwrap().take() {
            let _ = handle.join();
        }
        self.front.shutdown();
    }
}

impl Drop for RouterServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// The background prober: every `interval`, walk every replica with a
/// fresh short-deadline connection and the binary `health` command, and
/// set its healthy flag from the outcome. The first sweep also sums shard
/// `info.n_train` into the router's `info` reply.
fn probe_loop(inner: &RouterInner, running: &AtomicBool, interval: Duration) {
    let connect_timeout = inner.connect_timeout.min(Duration::from_millis(250));
    let io_timeout = inner.io_timeout.min(Duration::from_millis(500));
    let mut have_n_train = false;
    while running.load(Ordering::Acquire) {
        let mut n_train_sum = 0u64;
        let mut all_info = true;
        for pool in &inner.pools {
            let mut shard_n_train: Option<u64> = None;
            for replica in &pool.replicas {
                let outcome = Client::connect_with(&replica.addr, connect_timeout, io_timeout)
                    .and_then(|mut c| {
                        let health = c.health()?;
                        if !have_n_train && shard_n_train.is_none() {
                            shard_n_train = Some(c.info()?.n_train);
                        }
                        Ok(health)
                    });
                replica.healthy.store(outcome.is_ok(), Ordering::Release);
            }
            match shard_n_train {
                Some(n) => n_train_sum += n,
                None => all_info = false,
            }
        }
        if !have_n_train && all_info {
            inner.n_train.store(n_train_sum, Ordering::Relaxed);
            have_n_train = true;
        }
        // Sleep in short slices so shutdown is prompt even with a long
        // probe interval.
        let mut remaining = interval;
        while remaining > Duration::ZERO && running.load(Ordering::Acquire) {
            let slice = remaining.min(Duration::from_millis(50));
            std::thread::sleep(slice);
            remaining = remaining.saturating_sub(slice);
        }
    }
}
