//! The distributed fan-out router tier.
//!
//! A [`RouterServer`] is the process in front of a fleet of per-shard
//! `shard-serve` processes. It holds **only** the ensemble's shard
//! centroids (a few kilobytes, read straight from the v3 file header via
//! [`crate::codec::load_layout`]) plus client connections — never a model —
//! and it speaks the same `HKRB` protocol in both directions: a protocol
//! *server* to the outside, a protocol *client* (via [`Client`]) of its N
//! shard servers.
//!
//! Per query it sorts all centroids by distance with the ensemble's own
//! [`hkrr_ensemble::Router`], dispatches the point to the
//! `route_nearest` nearest shards, and combines the replies with the
//! ensemble's own [`hkrr_ensemble::combine_scores`] — so a routed-over-TCP
//! answer is **bitwise identical** to the in-process
//! [`hkrr_ensemble::EnsembleKrr`] on the same shard set (the
//! `distributed_serve` integration test pins this).
//!
//! Availability layers on top of that identity without disturbing it:
//!
//! * **Replication** — each shard may be served by several replicas; the
//!   router picks the replica with the fewest in-flight requests
//!   (least-loaded routing) and keeps cumulative per-replica dispatch
//!   counters for the `stats` command.
//! * **Health checks** — a background prober walks every replica each
//!   `health_interval` with the binary `health` command, so a replica that
//!   went dark is marked unhealthy (and is re-admitted when it answers
//!   again) without waiting for a query to trip over it.
//! * **Failover** — when a dispatch fails mid-query the replica is marked
//!   unhealthy and the next replica is tried; when a whole shard has no
//!   replica left, the query falls through to the next-nearest centroid's
//!   shard. A degraded reply (fewer than `route_nearest` contributions, but
//!   at least one) is still served rather than errored.
//!
//! The router is also the root of cross-process request tracing: it mints
//! a trace id per inbound query (or adopts the caller's on an
//! [`crate::protocol::OP_PREDICT_TRACED`] request), stamps it on its
//! `router.predict` / `router.dispatch` spans, and forwards it to each
//! shard replica so the shard's engine spans join the same timeline.
//! Capability is probed, not assumed: the health prober records each
//! replica's `max_opcode` and the dispatcher falls back to plain
//! `predict` — counting a `downgraded_dispatch` — for pre-0x08 peers.
//! Every routed query also lands one structured event-log `request` line
//! (when `HKRR_LOG` is set) and competes for the router's [`SlowLog`].

use crate::client::Client;
use crate::protocol::{Request, WirePrediction, ROLE_ROUTER};
use crate::server::{
    metrics_exposition, server_info, write_slowlog, Reply, RequestHandler, TcpFrontEnd,
};
use crate::slowlog::{SlowLog, SLOWLOG_CAPACITY};
use crate::ServeError;
use hkrr_bench::json::JsonWriter;
use hkrr_ensemble::combine_scores;
use hkrr_linalg::Matrix;
use hkrr_telemetry::log::{self, Level};
use hkrr_telemetry::trace::{self, TraceContext};
use hkrr_telemetry::{Counter, Histogram, HistogramSpec};
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Replica traced-predict capability: not yet probed.
const TRACED_UNKNOWN: u8 = 0;
/// Replica traced-predict capability: health reported `max_opcode >= 0x08`.
const TRACED_YES: u8 = 1;
/// Replica traced-predict capability: pre-0x08 peer — dispatch plain.
const TRACED_NO: u8 = 2;

/// Monotone router id so several routers in one process (tests) keep
/// distinct label sets in the shared registry.
static NEXT_ROUTER_ID: AtomicUsize = AtomicUsize::new(1);

/// Configuration of the router tier.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Address to bind (`127.0.0.1:0` picks a free loopback port).
    pub addr: String,
    /// How many nearest shards answer each query. `None` uses the value
    /// the ensemble was trained with (from the file header) — the setting
    /// that reproduces the in-process ensemble bitwise.
    pub route_nearest: Option<usize>,
    /// Period of the background replica health prober.
    pub health_interval: Duration,
    /// Deadline for establishing a connection to a shard replica.
    pub connect_timeout: Duration,
    /// Deadline for each read/write on a shard connection — the bound on
    /// how long a dead-but-accepting replica can stall one query.
    pub io_timeout: Duration,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            addr: "127.0.0.1:0".to_string(),
            route_nearest: None,
            health_interval: Duration::from_millis(500),
            connect_timeout: Duration::from_millis(500),
            io_timeout: Duration::from_secs(5),
        }
    }
}

/// One replica of one shard: an address, a cached connection, and the
/// health/load instruments the routing decisions read. The cumulative
/// counters and the dispatch-latency histogram live in the process-global
/// metrics registry under `{router,shard,replica}` labels, so a `metrics`
/// scrape of the router carries per-replica dispatch/failure/latency.
struct Replica {
    addr: String,
    conn: Mutex<Option<Client>>,
    healthy: AtomicBool,
    /// Whether this replica accepts `OP_PREDICT_TRACED` (0x08), learned
    /// from the `max_opcode` byte of its health reply: one of
    /// [`TRACED_UNKNOWN`], [`TRACED_YES`], [`TRACED_NO`]. While unknown
    /// the router dispatches plain (safe against pre-0x08 peers) without
    /// counting a downgrade.
    traced_support: AtomicU8,
    /// Requests currently being answered by this replica — the
    /// least-loaded routing key.
    inflight: AtomicU64,
    /// Cumulative requests ever dispatched here (reported by `stats`).
    dispatched: Arc<Counter>,
    /// Cumulative dispatch failures (reported by `stats`).
    failures: Arc<Counter>,
    /// Wall-clock of successful dispatches (connect + round trip).
    latency_micros: Arc<Histogram>,
}

impl Replica {
    fn new(addr: String, router_label: &str, shard: usize) -> Replica {
        let registry = hkrr_telemetry::global();
        let shard_label = shard.to_string();
        let labels = [
            ("router", router_label),
            ("shard", shard_label.as_str()),
            ("replica", addr.as_str()),
        ];
        let dispatched = registry.counter(
            "hkrr_router_replica_dispatched_total",
            "Predict requests successfully answered by this replica",
            &labels,
        );
        let failures = registry.counter(
            "hkrr_router_replica_failures_total",
            "Dispatches to this replica that failed",
            &labels,
        );
        let latency_micros = registry.histogram(
            "hkrr_router_replica_latency_micros",
            "Wall-clock of successful dispatches to this replica",
            &labels,
            &HistogramSpec::latency_micros(),
        );
        Replica {
            addr,
            conn: Mutex::new(None),
            // Optimistic until the first probe or dispatch says otherwise,
            // so a router can start before its shard fleet finishes coming
            // up without permanently blacklisting anyone.
            healthy: AtomicBool::new(true),
            traced_support: AtomicU8::new(TRACED_UNKNOWN),
            inflight: AtomicU64::new(0),
            dispatched,
            failures,
            latency_micros,
        }
    }

    /// One request/response against this replica, reusing the cached
    /// connection when possible. `trace` carries the `(trace_id,
    /// parent_span)` to forward as an `OP_PREDICT_TRACED` frame — the
    /// caller only passes `Some` when this replica is known to accept
    /// 0x08. On any error the cached connection is dropped and the
    /// replica is marked unhealthy (the prober re-admits it when it
    /// answers again).
    fn call(
        &self,
        point: &[f64],
        trace: Option<(u128, u64)>,
        connect_timeout: Duration,
        io_timeout: Duration,
    ) -> Result<WirePrediction, ServeError> {
        self.inflight.fetch_add(1, Ordering::AcqRel);
        let dispatch_started = Instant::now();
        let result = (|| {
            let mut guard = self.conn.lock().unwrap();
            if guard.is_none() {
                *guard = Some(Client::connect_with(
                    &self.addr,
                    connect_timeout,
                    io_timeout,
                )?);
            }
            let client = guard.as_mut().expect("connection just established");
            let outcome = match trace {
                Some((trace_id, parent_span)) => {
                    client.predict_traced(point.to_vec(), trace_id, parent_span)
                }
                None => client.predict(point.to_vec()),
            };
            match outcome {
                Ok(p) => Ok(p),
                Err(e @ (ServeError::Io(_) | ServeError::Protocol(_))) => {
                    // The stream may be desynced or dead — never reuse it.
                    *guard = None;
                    Err(e)
                }
                // Typed server-side errors (Rejected, Engine, …) leave the
                // connection healthy and reusable.
                Err(e) => Err(e),
            }
        })();
        self.inflight.fetch_sub(1, Ordering::AcqRel);
        match &result {
            Ok(_) => {
                self.dispatched.inc();
                self.latency_micros
                    .record_duration(dispatch_started.elapsed());
                self.healthy.store(true, Ordering::Release);
            }
            Err(ServeError::Io(_) | ServeError::Protocol(_)) => {
                self.failures.inc();
                self.healthy.store(false, Ordering::Release);
            }
            Err(_) => {
                self.failures.inc();
            }
        }
        result
    }
}

/// The replicas serving one shard.
struct ShardPool {
    replicas: Vec<Replica>,
}

impl ShardPool {
    /// Replica indices in dispatch-preference order: healthy ones first by
    /// ascending in-flight count (least-loaded), then unhealthy ones as a
    /// last resort (they may have recovered since the last probe).
    fn preference_order(&self) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.replicas.len()).collect();
        order.sort_by_key(|&i| {
            let r = &self.replicas[i];
            let unhealthy = !r.healthy.load(Ordering::Acquire);
            (unhealthy, r.inflight.load(Ordering::Acquire), i)
        });
        order
    }
}

struct RouterInner {
    /// Full-order centroid router (`route_nearest` = shard count): its
    /// sorted output is both the primary shard selection *and* the
    /// failover order.
    full_router: hkrr_ensemble::Router,
    /// How many shards answer each query on the healthy path.
    route_nearest: usize,
    pools: Vec<ShardPool>,
    connect_timeout: Duration,
    io_timeout: Duration,
    /// `"r<id>"` — this router's label value in the shared registry.
    router_label: String,
    /// Predict requests answered (including degraded ones).
    requests: Arc<Counter>,
    /// Queries where at least one planned shard was replaced or dropped.
    failovers: Arc<Counter>,
    /// Queries answered with fewer than `route_nearest` contributions.
    degraded: Arc<Counter>,
    /// Queries answered with zero contributions (errors to the caller).
    exhausted: Arc<Counter>,
    /// Traced dispatches downgraded to plain `predict` because the
    /// replica's health reply reported a pre-0x08 `max_opcode`.
    downgraded_dispatches: Arc<Counter>,
    /// End-to-end routed-query latency (fan-out + combine).
    latency_micros: Arc<Histogram>,
    /// Top-N slowest routed queries (trace ids + fan-out context),
    /// surfaced through `stats` and `hkrr-serve doctor`.
    slowlog: SlowLog,
    /// Total training points behind the fleet, summed from shard `info`
    /// replies at startup (0 until at least one shard answered).
    n_train: AtomicU64,
}

impl RouterInner {
    fn dim(&self) -> usize {
        self.full_router.centroids().ncols()
    }

    /// Routes one point to shard processes and combines the replies —
    /// bitwise the in-process ensemble when all shards are reachable.
    ///
    /// `inbound` is the caller's trace context for an `OP_PREDICT_TRACED`
    /// request. For a plain predict the router mints its own context —
    /// but only when tracing or event logging is actually on, so the
    /// fully-disabled path dispatches byte-identical plain `OP_PREDICT`
    /// frames.
    fn predict(
        &self,
        point: &[f64],
        inbound: Option<TraceContext>,
    ) -> Result<WirePrediction, ServeError> {
        let ctx = match inbound {
            Some(ctx) => Some(ctx),
            None if trace::enabled() || log::enabled() => Some(TraceContext::mint()),
            None => None,
        };
        let trace_id = ctx.map_or(0, |c| c.trace_id);
        if point.len() != self.dim() {
            if log::enabled() {
                log::event(Level::Error, "request")
                    .trace(trace_id)
                    .field("role", "router")
                    .field("outcome", "rejected")
                    .field("reason", "dimension_mismatch")
                    .emit();
            }
            return Err(ServeError::Rejected(format!(
                "dimension mismatch: model expects {}, request has {}",
                self.dim(),
                point.len()
            )));
        }
        let started = Instant::now();
        let mut predict_span = hkrr_telemetry::span!("router.predict");
        if let Some(ctx) = ctx {
            predict_span.adopt(ctx);
        }
        let predict_span_id = predict_span.id();
        let order = self.full_router.route(point);
        // (d2, score) contributions, gathered in failover order: the first
        // `route_nearest` shards when all are reachable — exactly the
        // in-process selection — with next-nearest substitutes appended
        // only when a nearer shard is completely dark.
        let mut contributions: Vec<(f64, f64)> = Vec::with_capacity(self.route_nearest);
        let mut failed_over = false;
        // Slowest successful dispatch `(micros, shard, replica addr)` —
        // the context string the slowlog entry carries.
        let mut slowest_dispatch: Option<(u64, usize, usize)> = None;
        for &(shard, d2) in &order {
            if contributions.len() == self.route_nearest {
                break;
            }
            let pool = &self.pools[shard];
            let mut answered = false;
            for idx in pool.preference_order() {
                let replica = &pool.replicas[idx];
                let mut dispatch_span = hkrr_telemetry::span!("router.dispatch");
                dispatch_span.annotate("shard", shard);
                dispatch_span.annotate("replica", &replica.addr);
                if let Some(ctx) = ctx {
                    dispatch_span.adopt(TraceContext {
                        trace_id: ctx.trace_id,
                        parent_span: predict_span_id,
                    });
                }
                // Forward the trace only to peers whose health reply
                // advertised 0x08; a known-legacy peer downgrades the
                // dispatch to plain predict, an unprobed one dispatches
                // plain without counting a downgrade.
                let forward = if trace_id != 0 {
                    match replica.traced_support.load(Ordering::Acquire) {
                        TRACED_YES => Some((trace_id, dispatch_span.id())),
                        TRACED_NO => {
                            self.downgraded_dispatches.inc();
                            None
                        }
                        _ => None,
                    }
                } else {
                    None
                };
                let dispatch_started = Instant::now();
                match replica.call(point, forward, self.connect_timeout, self.io_timeout) {
                    Ok(p) => {
                        let micros = dispatch_started.elapsed().as_micros() as u64;
                        if slowest_dispatch.map_or(true, |(m, _, _)| micros > m) {
                            slowest_dispatch = Some((micros, shard, idx));
                        }
                        contributions.push((d2, p.score));
                        answered = true;
                        break;
                    }
                    Err(ServeError::Io(_) | ServeError::Protocol(_)) => {
                        // Dead replica: already marked unhealthy, try the
                        // next one.
                        failed_over = true;
                    }
                    // A typed reply from a live shard (e.g. Rejected) is
                    // not an availability problem — surface it.
                    Err(e) => return Err(e),
                }
            }
            if !answered {
                failed_over = true;
            }
        }
        self.requests.inc();
        let latency = started.elapsed();
        self.latency_micros.record_duration(latency);
        predict_span.annotate("contributions", contributions.len());
        predict_span.annotate("failed_over", failed_over);
        drop(predict_span);
        if failed_over {
            self.failovers.inc();
        }
        let latency_micros = latency.as_micros() as u64;
        let num_contributions = contributions.len();
        self.slowlog.record(latency_micros, trace_id, || {
            let tail = match slowest_dispatch {
                Some((micros, shard, idx)) => format!(
                    " slowest_dispatch=shard{shard}:{} ({micros}us)",
                    self.pools[shard].replicas[idx].addr
                ),
                None => String::new(),
            };
            format!("contributions={num_contributions} failover={failed_over}{tail}")
        });
        let outcome = if contributions.is_empty() {
            "rejected"
        } else if num_contributions < self.route_nearest {
            "degraded"
        } else if failed_over {
            "failover"
        } else {
            "ok"
        };
        if log::enabled() {
            let level = match outcome {
                "ok" => Level::Info,
                "rejected" => Level::Error,
                _ => Level::Warn,
            };
            let mut ev = log::event(level, "request")
                .trace(trace_id)
                .field("role", "router")
                .num("latency_us", latency_micros)
                .num("contributions", num_contributions)
                .field("outcome", outcome);
            if let Some((micros, shard, idx)) = slowest_dispatch {
                ev = ev
                    .num("slowest_dispatch_us", micros)
                    .num("shard", shard)
                    .field("replica", &self.pools[shard].replicas[idx].addr);
            }
            ev.emit();
        }
        if contributions.is_empty() {
            self.exhausted.inc();
            return Err(ServeError::Rejected(
                "no shard replica reachable for this query".to_string(),
            ));
        }
        if num_contributions < self.route_nearest {
            self.degraded.inc();
        }
        let score = combine_scores(&mut contributions);
        Ok(WirePrediction {
            score,
            label: if score >= 0.0 { 1.0 } else { -1.0 },
            // For a router the "batch" is the fan-out width that actually
            // answered — loadgen and operators read degraded replies off
            // this field.
            batch_size: num_contributions as u32,
            latency_micros: started.elapsed().as_micros() as u64,
        })
    }

    /// Router stats as a JSON object (schema `hkrr-router-stats/1`):
    /// query counters plus per-shard, per-replica address / health / load.
    fn stats_json(&self) -> String {
        let build = hkrr_telemetry::build_info!();
        let mut w = JsonWriter::new();
        w.begin_object();
        w.field_str("schema", "hkrr-router-stats/1");
        w.field_str("role", "router");
        w.field_f64("uptime_seconds", hkrr_telemetry::uptime_seconds());
        w.field_str("version", build.version);
        w.field_str("build_stamp", build.stamp);
        w.field_str("router", &self.router_label);
        w.field_u64("requests", self.requests.get());
        w.field_u64("failovers", self.failovers.get());
        w.field_u64("degraded", self.degraded.get());
        w.field_u64("exhausted", self.exhausted.get());
        w.field_u64("downgraded_dispatches", self.downgraded_dispatches.get());
        w.field_usize("shards", self.pools.len());
        w.field_usize("route_nearest", self.route_nearest);
        w.key("replicas");
        w.begin_array();
        for (shard, pool) in self.pools.iter().enumerate() {
            for replica in &pool.replicas {
                w.begin_object();
                w.field_usize("shard", shard);
                w.field_str("addr", &replica.addr);
                w.key("healthy");
                w.value_bool(replica.healthy.load(Ordering::Acquire));
                w.field_u64("inflight", replica.inflight.load(Ordering::Acquire));
                w.field_u64("dispatched", replica.dispatched.get());
                w.field_u64("failures", replica.failures.get());
                w.key("supports_traced");
                w.value_bool(replica.traced_support.load(Ordering::Acquire) == TRACED_YES);
                w.end_object();
            }
        }
        w.end_array();
        write_slowlog(&mut w, &self.slowlog.snapshot());
        w.end_object();
        w.finish()
    }
}

/// The [`RequestHandler`] face of the router: same protocol as a model
/// server, answered by fan-out instead of an engine.
struct RouterHandler {
    inner: Arc<RouterInner>,
}

impl RequestHandler for RouterHandler {
    fn handle(&self, req: Request) -> Result<Reply, ServeError> {
        match req {
            Request::Predict(point) => Ok(Reply::Prediction(self.inner.predict(&point, None)?)),
            Request::PredictTraced {
                point,
                trace_id,
                parent_span,
            } => Ok(Reply::Prediction(self.inner.predict(
                &point,
                Some(TraceContext {
                    trace_id,
                    parent_span,
                }),
            )?)),
            Request::Stats => Ok(Reply::Json(self.inner.stats_json())),
            Request::Ping => Ok(Reply::Pong),
            Request::Info => Ok(Reply::Info(server_info(
                self.inner.dim() as u32,
                self.inner.n_train.load(Ordering::Relaxed),
            ))),
            Request::Metrics => Ok(Reply::Metrics(metrics_exposition())),
            Request::Health => Ok(Reply::Health {
                role: ROLE_ROUTER,
                requests: self.inner.requests.get(),
            }),
            Request::Refresh => {
                // Broadcast: ask one replica per shard (all replicas of a
                // shard host the same file) plus every other replica, so
                // the whole fleet reloads. Counters aggregate per shard.
                let mut refreshed_shards = 0u32;
                let mut n_train = 0u64;
                let mut last_err: Option<ServeError> = None;
                for pool in &self.inner.pools {
                    let mut shard_done = false;
                    for replica in &pool.replicas {
                        match refresh_replica(
                            replica,
                            self.inner.connect_timeout,
                            self.inner.io_timeout,
                        ) {
                            Ok((_, nt)) => {
                                if !shard_done {
                                    refreshed_shards += 1;
                                    n_train += nt;
                                    shard_done = true;
                                }
                            }
                            Err(e) => last_err = Some(e),
                        }
                    }
                }
                if refreshed_shards == 0 {
                    return Err(last_err.unwrap_or_else(|| {
                        ServeError::Rejected("no shard replica reachable".to_string())
                    }));
                }
                Ok(Reply::Refreshed {
                    num_models: refreshed_shards,
                    n_train,
                })
            }
        }
    }
}

/// One `refresh` round trip on a replica's cached connection.
fn refresh_replica(
    replica: &Replica,
    connect_timeout: Duration,
    io_timeout: Duration,
) -> Result<(u32, u64), ServeError> {
    let mut guard = replica.conn.lock().unwrap();
    if guard.is_none() {
        *guard = Some(Client::connect_with(
            &replica.addr,
            connect_timeout,
            io_timeout,
        )?);
    }
    let client = guard.as_mut().expect("connection just established");
    match client.refresh() {
        Ok(out) => Ok(out),
        Err(e) => {
            *guard = None;
            Err(e)
        }
    }
}

/// A running router: a [`TcpFrontEnd`] whose handler fans out to shard
/// server processes, plus the background health prober.
pub struct RouterServer {
    front: TcpFrontEnd,
    inner: Arc<RouterInner>,
    prober_running: Arc<AtomicBool>,
    prober: Mutex<Option<JoinHandle<()>>>,
}

impl RouterServer {
    /// Starts a router over `centroids` (`k × d`, from the ensemble file
    /// header) with `shard_addrs[i]` holding the replica addresses of
    /// shard `i`. `trained_route_nearest` is the ensemble's own `m` (the
    /// file header value), used when the config does not override it.
    pub fn start(
        centroids: Matrix,
        trained_route_nearest: usize,
        shard_addrs: Vec<Vec<String>>,
        config: RouterConfig,
    ) -> Result<RouterServer, ServeError> {
        let shards = centroids.nrows();
        if shard_addrs.len() != shards {
            return Err(ServeError::Rejected(format!(
                "ensemble has {shards} shards but {} shard address groups were given",
                shard_addrs.len()
            )));
        }
        if shard_addrs.iter().any(Vec::is_empty) {
            return Err(ServeError::Rejected(
                "every shard needs at least one replica address".to_string(),
            ));
        }
        let route_nearest = config.route_nearest.unwrap_or(trained_route_nearest);
        if route_nearest == 0 || route_nearest > shards {
            return Err(ServeError::Rejected(format!(
                "route_nearest must be in 1..={shards}, got {route_nearest}"
            )));
        }
        // Pin the uptime epoch and claim a unique registry label before
        // any instrument registers under it.
        hkrr_telemetry::process_start();
        let router_label = format!("r{}", NEXT_ROUTER_ID.fetch_add(1, Ordering::Relaxed));
        // Full order: the sorted list is both selection and failover plan.
        let full_router =
            hkrr_ensemble::Router::new(centroids, shards).map_err(ServeError::Rejected)?;
        let pools = shard_addrs
            .into_iter()
            .enumerate()
            .map(|(shard, addrs)| ShardPool {
                replicas: addrs
                    .into_iter()
                    .map(|addr| Replica::new(addr, &router_label, shard))
                    .collect(),
            })
            .collect();
        let registry = hkrr_telemetry::global();
        let labels = [("router", router_label.as_str())];
        let inner = Arc::new(RouterInner {
            full_router,
            route_nearest,
            pools,
            connect_timeout: config.connect_timeout,
            io_timeout: config.io_timeout,
            requests: registry.counter(
                "hkrr_router_requests_total",
                "Routed predict queries answered (including degraded ones)",
                &labels,
            ),
            failovers: registry.counter(
                "hkrr_router_failovers_total",
                "Queries where a planned shard was replaced or dropped",
                &labels,
            ),
            degraded: registry.counter(
                "hkrr_router_degraded_total",
                "Queries answered with fewer than route_nearest contributions",
                &labels,
            ),
            exhausted: registry.counter(
                "hkrr_router_exhausted_total",
                "Queries answered with zero contributions (errors)",
                &labels,
            ),
            downgraded_dispatches: registry.counter(
                "hkrr_router_downgraded_dispatches_total",
                "Traced dispatches downgraded to plain predict for pre-0x08 replicas",
                &labels,
            ),
            slowlog: SlowLog::new(SLOWLOG_CAPACITY),
            latency_micros: registry.histogram(
                "hkrr_router_request_latency_micros",
                "End-to-end routed-query latency (fan-out plus combine)",
                &labels,
                &HistogramSpec::latency_micros(),
            ),
            router_label,
            n_train: AtomicU64::new(0),
        });

        let front = TcpFrontEnd::start(
            &config.addr,
            Arc::new(RouterHandler {
                inner: Arc::clone(&inner),
            }),
        )?;

        let prober_running = Arc::new(AtomicBool::new(true));
        let prober = {
            let inner = Arc::clone(&inner);
            let running = Arc::clone(&prober_running);
            let interval = config.health_interval;
            std::thread::spawn(move || probe_loop(&inner, &running, interval))
        };

        Ok(RouterServer {
            front,
            inner,
            prober_running,
            prober: Mutex::new(Some(prober)),
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.front.local_addr()
    }

    /// The router stats JSON (same document the `stats` command returns).
    pub fn stats_json(&self) -> String {
        self.inner.stats_json()
    }

    /// Snapshot of per-shard replica health: `health[shard][replica]`.
    pub fn replica_health(&self) -> Vec<Vec<bool>> {
        self.inner
            .pools
            .iter()
            .map(|pool| {
                pool.replicas
                    .iter()
                    .map(|r| r.healthy.load(Ordering::Acquire))
                    .collect()
            })
            .collect()
    }

    /// Cumulative per-replica dispatch counts:
    /// `dispatched[shard][replica]`.
    pub fn replica_dispatched(&self) -> Vec<Vec<u64>> {
        self.inner
            .pools
            .iter()
            .map(|pool| pool.replicas.iter().map(|r| r.dispatched.get()).collect())
            .collect()
    }

    /// Queries that needed failover so far.
    pub fn failovers(&self) -> u64 {
        self.inner.failovers.get()
    }

    /// Queries answered with fewer than `route_nearest` contributions.
    pub fn degraded(&self) -> u64 {
        self.inner.degraded.get()
    }

    /// Traced dispatches downgraded to plain `predict` because the target
    /// replica's health reply reported a pre-0x08 `max_opcode`.
    pub fn downgraded_dispatches(&self) -> u64 {
        self.inner.downgraded_dispatches.get()
    }

    /// Stops the prober and the front-end. Idempotent.
    pub fn shutdown(&self) {
        self.prober_running.store(false, Ordering::Release);
        if let Some(handle) = self.prober.lock().unwrap().take() {
            let _ = handle.join();
        }
        self.front.shutdown();
    }
}

impl Drop for RouterServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// The background prober: every `interval`, walk every replica with a
/// fresh short-deadline connection and the binary `health` command, and
/// set its healthy flag from the outcome. The first sweep also sums shard
/// `info.n_train` into the router's `info` reply.
fn probe_loop(inner: &RouterInner, running: &AtomicBool, interval: Duration) {
    let connect_timeout = inner.connect_timeout.min(Duration::from_millis(250));
    let io_timeout = inner.io_timeout.min(Duration::from_millis(500));
    let mut have_n_train = false;
    while running.load(Ordering::Acquire) {
        let mut n_train_sum = 0u64;
        let mut all_info = true;
        for pool in &inner.pools {
            let mut shard_n_train: Option<u64> = None;
            for replica in &pool.replicas {
                let outcome = Client::connect_with(&replica.addr, connect_timeout, io_timeout)
                    .and_then(|mut c| {
                        let health = c.health()?;
                        if !have_n_train && shard_n_train.is_none() {
                            shard_n_train = Some(c.info()?.n_train);
                        }
                        Ok(health)
                    });
                if let Ok(health) = &outcome {
                    let support = if health.supports_traced_predict() {
                        TRACED_YES
                    } else {
                        TRACED_NO
                    };
                    replica.traced_support.store(support, Ordering::Release);
                }
                replica.healthy.store(outcome.is_ok(), Ordering::Release);
            }
            match shard_n_train {
                Some(n) => n_train_sum += n,
                None => all_info = false,
            }
        }
        if !have_n_train && all_info {
            inner.n_train.store(n_train_sum, Ordering::Relaxed);
            have_n_train = true;
        }
        // Sleep in short slices so shutdown is prompt even with a long
        // probe interval.
        let mut remaining = interval;
        while remaining > Duration::ZERO && running.load(Ordering::Acquire) {
            let slice = remaining.min(Duration::from_millis(50));
            std::thread::sleep(slice);
            remaining = remaining.saturating_sub(slice);
        }
    }
}
