//! The `std::net` TCP front-end of the prediction service.
//!
//! One listener thread accepts connections; each connection gets its own
//! handler thread that speaks either the binary framed protocol or line
//! mode (see [`crate::protocol`]) and hands decoded requests to a
//! [`RequestHandler`]. The connection machinery is shared by two handlers:
//!
//! * the engine-backed [`Server`] funnels predict requests into the shared
//!   micro-batching [`PredictionEngine`] — so queries from *different*
//!   connections coalesce into the same batches,
//! * the fan-out [`RouterServer`](crate::router::RouterServer) answers the
//!   same protocol by dispatching to remote shard servers.
//!
//! Shutdown is graceful: the accept loop is unblocked with a loopback
//! connection, handlers notice the flag through short read timeouts and
//! finish their in-flight request, and (for the engine-backed server) the
//! engine drains its queue before the workers exit.

use crate::codec;
use crate::engine::{EngineConfig, PredictionEngine, StatsSnapshot};
use crate::protocol::{self, Request, ServerInfo, WirePrediction, ROLE_MODEL, ROLE_ROUTER};
use crate::ServeError;
use hkrr_bench::json::JsonWriter;
use hkrr_core::DecisionModel;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

pub use crate::client::Client;

/// Configuration of the TCP front-end.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Address to bind (`127.0.0.1:0` picks a free loopback port).
    pub addr: String,
    /// Engine (worker pool / batching) configuration.
    pub engine: EngineConfig,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            engine: EngineConfig::default(),
        }
    }
}

/// A typed reply from a [`RequestHandler`] — rendered once for the binary
/// protocol and once for line mode, so handlers never touch wire encoding.
#[derive(Debug, Clone)]
pub enum Reply {
    /// Answer to [`Request::Predict`].
    Prediction(WirePrediction),
    /// A JSON document (the `stats` command).
    Json(String),
    /// Answer to [`Request::Ping`].
    Pong,
    /// Answer to [`Request::Info`].
    Info(ServerInfo),
    /// Answer to [`Request::Metrics`]: the process metrics registry in
    /// Prometheus text exposition format.
    Metrics(String),
    /// Answer to [`Request::Health`].
    Health {
        /// [`ROLE_MODEL`] or [`ROLE_ROUTER`].
        role: u8,
        /// Predict requests answered so far.
        requests: u64,
    },
    /// Answer to [`Request::Refresh`].
    Refreshed {
        /// Constituent model count after the reload.
        num_models: u32,
        /// Training points after the reload.
        n_train: u64,
    },
}

/// What a protocol front-end needs from the thing it fronts: one decoded
/// request in, one typed [`Reply`] (or typed error) out. Implemented by the
/// engine-backed server and by the shard-fan-out router, which share the
/// accept/framing machinery through this trait.
pub trait RequestHandler: Send + Sync + 'static {
    /// Answers one request. Errors become protocol-level error replies on
    /// the connection that asked; they never tear the server down.
    fn handle(&self, req: Request) -> Result<Reply, ServeError>;
}

/// Where a server's model came from, so `refresh` can re-load it in place.
#[derive(Debug, Clone)]
pub enum ModelSource {
    /// An `hkrr-model/1` file holding a single model or a whole ensemble.
    File(PathBuf),
    /// One shard (`SHnn` section) of an ensemble file — what a
    /// `shard-serve` process hosts.
    EnsembleShard {
        /// Path of the ensemble file.
        path: PathBuf,
        /// Zero-based shard index.
        index: usize,
    },
}

impl ModelSource {
    /// Loads (or re-loads) the model this source points at.
    pub fn load(&self) -> Result<Arc<dyn DecisionModel>, ServeError> {
        match self {
            ModelSource::File(path) => Ok(codec::load_any(path)?.1.into_handle()),
            ModelSource::EnsembleShard { path, index } => {
                Ok(Arc::new(codec::load_shard(path, *index)?))
            }
        }
    }
}

/// The engine-backed [`RequestHandler`]: predicts through the
/// micro-batching engine and, when a [`ModelSource`] is attached, services
/// `refresh` by re-loading the file and hot-swapping the engine's model.
struct EngineHandler {
    engine: Arc<PredictionEngine>,
    source: Option<ModelSource>,
}

impl RequestHandler for EngineHandler {
    fn handle(&self, req: Request) -> Result<Reply, ServeError> {
        match req {
            Request::Predict(point) => {
                let p = self.engine.predict_one(point)?;
                Ok(Reply::Prediction(WirePrediction {
                    score: p.score,
                    label: p.label,
                    batch_size: p.batch_size as u32,
                    latency_micros: p.latency.as_micros() as u64,
                }))
            }
            Request::PredictTraced {
                point,
                trace_id,
                parent_span,
            } => {
                let result = self.engine.predict_one_traced(point, trace_id, parent_span);
                match &result {
                    Ok(p) => {
                        hkrr_telemetry::log::event(hkrr_telemetry::log::Level::Info, "request")
                            .trace(trace_id)
                            .field("role", "model")
                            .num("latency_us", p.latency.as_micros())
                            .num("batch", p.batch_size)
                            .field("outcome", "ok")
                            .emit();
                    }
                    Err(e) => {
                        hkrr_telemetry::log::event(hkrr_telemetry::log::Level::Error, "request")
                            .trace(trace_id)
                            .field("role", "model")
                            .field("outcome", "error")
                            .field("error", e)
                            .emit();
                    }
                }
                let p = result?;
                Ok(Reply::Prediction(WirePrediction {
                    score: p.score,
                    label: p.label,
                    batch_size: p.batch_size as u32,
                    latency_micros: p.latency.as_micros() as u64,
                }))
            }
            Request::Stats => Ok(Reply::Json(stats_json(&self.engine.stats()))),
            Request::Ping => Ok(Reply::Pong),
            Request::Info => {
                let model = self.engine.model();
                Ok(Reply::Info(server_info(
                    model.dim() as u32,
                    model.num_train() as u64,
                )))
            }
            Request::Metrics => Ok(Reply::Metrics(metrics_exposition())),
            Request::Health => Ok(Reply::Health {
                role: ROLE_MODEL,
                requests: self.engine.stats().requests,
            }),
            Request::Refresh => {
                let source = self.source.as_ref().ok_or_else(|| {
                    ServeError::Rejected(
                        "server was started without a model source; refresh is unavailable"
                            .to_string(),
                    )
                })?;
                let model = source.load()?;
                self.engine.refresh(Arc::clone(&model))?;
                Ok(Reply::Refreshed {
                    num_models: model.num_models() as u32,
                    n_train: model.num_train() as u64,
                })
            }
        }
    }
}

/// The protocol-agnostic TCP accept loop: binds, spawns one thread per
/// connection, and dispatches decoded requests to a [`RequestHandler`].
/// [`Server`] and [`RouterServer`](crate::router::RouterServer) are both
/// built on this.
pub struct TcpFrontEnd {
    addr: SocketAddr,
    running: Arc<AtomicBool>,
    accept_handle: Mutex<Option<JoinHandle<()>>>,
}

impl TcpFrontEnd {
    /// Binds `addr` and starts accepting connections for `handler`.
    pub fn start(addr: &str, handler: Arc<dyn RequestHandler>) -> Result<TcpFrontEnd, ServeError> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let running = Arc::new(AtomicBool::new(true));

        let accept_running = Arc::clone(&running);
        let accept_handle = std::thread::spawn(move || {
            // Handler threads detach; the running flag plus short read
            // timeouts bound how long they outlive the accept loop.
            for stream in listener.incoming() {
                if !accept_running.load(Ordering::Acquire) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                let handler = Arc::clone(&handler);
                let running = Arc::clone(&accept_running);
                std::thread::spawn(move || {
                    let _ = handle_connection(stream, handler.as_ref(), &running);
                });
            }
        });

        Ok(TcpFrontEnd {
            addr,
            running,
            accept_handle: Mutex::new(Some(accept_handle)),
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting and joins the accept loop. Idempotent.
    pub fn shutdown(&self) {
        if !self.running.swap(false, Ordering::AcqRel) {
            return;
        }
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept_handle.lock().unwrap().take() {
            let _ = handle.join();
        }
    }
}

impl Drop for TcpFrontEnd {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// A running prediction server: a [`TcpFrontEnd`] over the micro-batching
/// [`PredictionEngine`].
pub struct Server {
    front: TcpFrontEnd,
    engine: Arc<PredictionEngine>,
}

impl Server {
    /// Binds the listener and starts serving `model` — any
    /// [`DecisionModel`]: a single `KrrModel` or a sharded ensemble. The
    /// `refresh` command is rejected (there is no source to re-load from);
    /// use [`Server::start_with_source`] to enable it.
    pub fn start(
        model: Arc<dyn DecisionModel>,
        config: ServerConfig,
    ) -> Result<Server, ServeError> {
        Server::start_inner(model, None, config)
    }

    /// Like [`Server::start`], but remembers where the model came from so
    /// the `refresh` command can re-load the file and hot-swap the model
    /// without dropping connections (same-dimension models only).
    pub fn start_with_source(
        source: ModelSource,
        config: ServerConfig,
    ) -> Result<Server, ServeError> {
        let model = source.load()?;
        Server::start_inner(model, Some(source), config)
    }

    fn start_inner(
        model: Arc<dyn DecisionModel>,
        source: Option<ModelSource>,
        config: ServerConfig,
    ) -> Result<Server, ServeError> {
        // Pin the uptime epoch now so `info`/`stats` uptimes measure from
        // server start even if no other telemetry fired yet.
        hkrr_telemetry::process_start();
        let engine = PredictionEngine::start(model, config.engine);
        let handler = Arc::new(EngineHandler {
            engine: Arc::clone(&engine),
            source,
        });
        let front = TcpFrontEnd::start(&config.addr, handler)?;
        Ok(Server { front, engine })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.front.local_addr()
    }

    /// Engine statistics.
    pub fn stats(&self) -> StatsSnapshot {
        self.engine.stats()
    }

    /// The engine behind the front-end.
    pub fn engine(&self) -> &Arc<PredictionEngine> {
        &self.engine
    }

    /// Gracefully stops accepting, drains the engine, and joins the accept
    /// loop. Idempotent.
    pub fn shutdown(&self) {
        self.front.shutdown();
        self.engine.shutdown();
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// The [`ServerInfo`] for this process's endpoint: model geometry plus
/// uptime (measured from first telemetry wake-up) and the compile-time
/// build identity.
pub fn server_info(dim: u32, n_train: u64) -> ServerInfo {
    let build = hkrr_telemetry::build_info!();
    ServerInfo {
        dim,
        n_train,
        uptime_micros: (hkrr_telemetry::uptime_seconds() * 1e6) as u64,
        version: build.version.to_string(),
        build_stamp: build.stamp.to_string(),
    }
}

/// The factor-storage precision this process would train with: the
/// `HKRR_FACTOR_PRECISION` override if set (an unparseable value labels as
/// `invalid` rather than panicking a scrape), `f64` otherwise.
fn factor_precision_label() -> &'static str {
    match std::env::var("HKRR_FACTOR_PRECISION") {
        Ok(raw) => hkrr_core::FactorPrecision::parse(&raw)
            .map(|p| p.as_str())
            .unwrap_or("invalid"),
        Err(_) => hkrr_core::FactorPrecision::F64.as_str(),
    }
}

/// Renders the process-global metrics registry as Prometheus text
/// exposition, refreshing the `hkrr_uptime_seconds` / `hkrr_build_info`
/// identity series first so every scrape carries a current uptime. The
/// build-info gauge is labeled with the crate version, build stamp, active
/// dense backend, and factor precision, so a scrape identifies exactly
/// what is running; `hkrr_log_dropped_events` exposes the event-log ring's
/// overflow count.
pub fn metrics_exposition() -> String {
    let registry = hkrr_telemetry::global();
    hkrr_telemetry::record_process_identity_with(
        registry,
        hkrr_telemetry::build_info!(),
        &[
            (
                "dense_backend",
                hkrr_linalg::backend::active_kind().as_str(),
            ),
            ("factor_precision", factor_precision_label()),
        ],
    );
    registry
        .gauge(
            "hkrr_log_dropped_events",
            "Event-log lines discarded by the bounded ring instead of blocking",
            &[],
        )
        .set(hkrr_telemetry::log::dropped_events() as f64);
    registry.render_prometheus()
}

/// Engine stats as the JSON object the `stats` command returns. When the
/// hosted model is a multi-shard ensemble, `model_requests` carries the
/// cumulative per-shard routed-query counts, so the per-shard serving load
/// is readable from a live server (binary `stats` opcode or the line-mode
/// `stats` command) without restarting it.
pub fn stats_json(stats: &StatsSnapshot) -> String {
    let build = hkrr_telemetry::build_info!();
    let mut w = JsonWriter::new();
    w.begin_object();
    w.field_f64("uptime_seconds", hkrr_telemetry::uptime_seconds());
    w.field_str("version", build.version);
    w.field_str("build_stamp", build.stamp);
    w.field_str("engine", &format!("e{}", stats.engine_id));
    w.field_u64("requests", stats.requests);
    w.field_u64("batches", stats.batches);
    w.field_f64("mean_batch_size", stats.mean_batch_size);
    w.field_u64("max_batch_observed", stats.max_batch_observed);
    w.field_f64("mean_latency_ms", stats.mean_latency_ms);
    w.field_f64("max_latency_ms", stats.max_latency_ms);
    w.field_u64("queue_rejections", stats.queue_rejections);
    w.field_usize("num_models", stats.num_models);
    w.key("model_requests");
    w.begin_array();
    for &count in &stats.model_requests {
        w.value_u64(count);
    }
    w.end_array();
    write_slowlog(&mut w, &stats.slowlog);
    w.end_object();
    w.finish()
}

/// Appends the `"slowlog"` array (slowest first) to an open JSON object —
/// shared by the engine-backed stats and the router stats, so `doctor`
/// parses one shape everywhere.
pub(crate) fn write_slowlog(w: &mut JsonWriter, entries: &[crate::slowlog::SlowEntry]) {
    w.key("slowlog");
    w.begin_array();
    for e in entries {
        w.begin_object();
        w.field_u64("latency_us", e.latency_micros);
        w.field_str("trace_id", &e.trace_hex());
        w.field_str("detail", &e.detail);
        w.end_object();
    }
    w.end_array();
}

/// Renders a [`Reply`] as the binary-protocol OK body.
fn binary_body(reply: &Reply) -> Vec<u8> {
    match reply {
        Reply::Prediction(p) => protocol::encode_prediction(p),
        Reply::Json(s) => s.clone().into_bytes(),
        Reply::Pong => Vec::new(),
        Reply::Info(info) => protocol::encode_info(info),
        Reply::Metrics(s) => s.clone().into_bytes(),
        Reply::Health { role, requests } => protocol::encode_health(*role, *requests),
        Reply::Refreshed {
            num_models,
            n_train,
        } => protocol::encode_refreshed(*num_models, *n_train),
    }
}

fn role_name(role: u8) -> &'static str {
    match role {
        ROLE_ROUTER => "router",
        _ => "model",
    }
}

/// Renders a handler outcome as one line-mode reply (newline included).
fn line_reply(result: Result<Reply, ServeError>) -> String {
    match result {
        Ok(Reply::Prediction(p)) => format!(
            "ok {} {:.17e} batch={} latency_us={}\n",
            p.label as i64, p.score, p.batch_size, p.latency_micros
        ),
        Ok(Reply::Json(s)) => format!("ok {s}\n"),
        Ok(Reply::Pong) => "ok pong\n".to_string(),
        Ok(Reply::Info(info)) => format!(
            "ok dim={} n_train={} uptime_seconds={:.3} version={}+{}\n",
            info.dim,
            info.n_train,
            info.uptime_seconds(),
            info.version,
            info.build_stamp
        ),
        // Multi-line payload: the exposition text follows the ok line and
        // a `# EOF` marker tells line-mode clients where the scrape ends.
        Ok(Reply::Metrics(s)) => format!("ok metrics\n{s}# EOF\n"),
        Ok(Reply::Health { role, requests }) => {
            format!("ok role={} requests={requests}\n", role_name(role))
        }
        Ok(Reply::Refreshed {
            num_models,
            n_train,
        }) => {
            format!("ok refreshed num_models={num_models} n_train={n_train}\n")
        }
        Err(e) => format!("err {e}\n"),
    }
}

/// Reads the 4-byte hello with the connection's read timeout in force and
/// dispatches to the binary or line-mode loop.
fn handle_connection(
    stream: TcpStream,
    handler: &dyn RequestHandler,
    running: &AtomicBool,
) -> Result<(), ServeError> {
    stream.set_read_timeout(Some(Duration::from_millis(250)))?;
    stream.set_nodelay(true).ok();

    // First bytes decide the mode. Reading them honors the running flag so
    // an idle pre-hello connection cannot hold up shutdown forever, and a
    // newline before the 4th byte dispatches straight to line mode so a
    // short typed command (e.g. "ls\n") gets its error reply instead of
    // stalling until a 4-byte hello completes.
    let mut first = [0u8; 4];
    let mut got = 0usize;
    let mut peek_stream = &stream;
    while got < first.len() {
        if !running.load(Ordering::Acquire) {
            return Ok(());
        }
        match peek_stream.read(&mut first[got..]) {
            Ok(0) => return Ok(()), // peer closed before the hello
            Ok(n) => {
                got += n;
                if first[..got].contains(&b'\n') {
                    return line_loop(stream, handler, running, &first[..got]);
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue
            }
            Err(e) => return Err(e.into()),
        }
    }

    if first == protocol::BINARY_HELLO {
        binary_loop(stream, handler, running)
    } else {
        line_loop(stream, handler, running, &first)
    }
}

/// Fills `buf[*filled..]`, resuming across read timeouts so a frame whose
/// bytes straddle a timeout is never abandoned half-read (which would
/// desync the stream). Returns `false` on shutdown or peer close — but
/// only between frames (`may_stop`); mid-frame the read is completed so
/// the in-flight request still gets its answer.
fn fill_resumable(
    stream: &mut TcpStream,
    buf: &mut [u8],
    filled: &mut usize,
    running: &AtomicBool,
    may_stop: bool,
) -> Result<bool, ServeError> {
    // After shutdown, a mid-frame read gets a bounded number of timeout
    // grace periods (~2 s at the 250 ms read timeout) before the
    // connection is abandoned, so a stalled peer cannot block exit.
    let mut shutdown_grace = 8u32;
    while *filled < buf.len() {
        if may_stop && *filled == 0 && !running.load(Ordering::Acquire) {
            return Ok(false);
        }
        match stream.read(&mut buf[*filled..]) {
            Ok(0) => {
                if *filled == 0 && may_stop {
                    return Ok(false); // peer closed between frames
                }
                return Err(ServeError::Io(std::io::ErrorKind::UnexpectedEof.into()));
            }
            Ok(n) => *filled += n,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if !running.load(Ordering::Acquire) {
                    if *filled == 0 && may_stop {
                        return Ok(false);
                    }
                    shutdown_grace -= 1;
                    if shutdown_grace == 0 {
                        return Err(ServeError::Io(std::io::ErrorKind::TimedOut.into()));
                    }
                }
                continue;
            }
            Err(e) => return Err(e.into()),
        }
    }
    Ok(true)
}

/// Reads one frame, retrying across timeouts without ever restarting a
/// partially-consumed frame. `Ok(None)` means "stop serving this
/// connection" (shutdown or peer closed between frames).
fn read_frame_with_timeout(
    stream: &mut TcpStream,
    running: &AtomicBool,
) -> Result<Option<Vec<u8>>, ServeError> {
    let mut len_bytes = [0u8; 4];
    let mut filled = 0usize;
    if !fill_resumable(stream, &mut len_bytes, &mut filled, running, true)? {
        return Ok(None);
    }
    let len = u32::from_le_bytes(len_bytes);
    if len > protocol::MAX_FRAME_LEN {
        return Err(ServeError::Protocol(format!(
            "frame of {len} bytes exceeds the {}-byte cap",
            protocol::MAX_FRAME_LEN
        )));
    }
    let mut payload = vec![0u8; len as usize];
    let mut filled = 0usize;
    // The length prefix arrived, so the frame is in flight: finish it even
    // if shutdown starts meanwhile (may_stop only applies between frames).
    fill_resumable(stream, &mut payload, &mut filled, running, false)?;
    Ok(Some(payload))
}

fn binary_loop(
    mut stream: TcpStream,
    handler: &dyn RequestHandler,
    running: &AtomicBool,
) -> Result<(), ServeError> {
    while let Some(frame) = read_frame_with_timeout(&mut stream, running)? {
        let reply = match protocol::decode_request(&frame).and_then(|req| handler.handle(req)) {
            Ok(reply) => protocol::encode_ok(&binary_body(&reply)),
            Err(e) => protocol::encode_err(&e.to_string()),
        };
        protocol::write_frame(&mut stream, &reply)?;
    }
    Ok(())
}

fn line_loop(
    stream: TcpStream,
    handler: &dyn RequestHandler,
    running: &AtomicBool,
    prefix: &[u8],
) -> Result<(), ServeError> {
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    let mut pending: Vec<u8> = prefix.to_vec();
    loop {
        // Pull bytes until a full line is buffered, checking the running
        // flag on every timeout.
        let newline = loop {
            if let Some(pos) = pending.iter().position(|&b| b == b'\n') {
                break pos;
            }
            if !running.load(Ordering::Acquire) {
                return Ok(());
            }
            match reader.fill_buf() {
                Ok([]) => return Ok(()), // peer closed
                Ok(chunk) => {
                    let n = chunk.len();
                    pending.extend_from_slice(chunk);
                    reader.consume(n);
                }
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    continue
                }
                Err(e) => return Err(e.into()),
            }
        };
        let line_bytes: Vec<u8> = pending.drain(..=newline).collect();
        let line = String::from_utf8_lossy(&line_bytes);
        let reply = match protocol::parse_line(line.trim()) {
            Ok(None) => {
                writer.write_all(b"bye\n")?;
                return Ok(());
            }
            Ok(Some(req)) => line_reply(handler.handle(req)),
            Err(e) => format!("err {e}\n"),
        };
        writer.write_all(reply.as_bytes())?;
        writer.flush()?;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hkrr_core::{KrrConfig, KrrModel, SolverKind};
    use hkrr_datasets::registry::LETTER;

    fn served() -> (Server, Arc<KrrModel>, hkrr_datasets::Dataset) {
        let ds = hkrr_datasets::generate(&LETTER, 180, 24, 5);
        let cfg = KrrConfig {
            h: LETTER.default_h,
            lambda: LETTER.default_lambda,
            solver: SolverKind::Hss,
            ..KrrConfig::default()
        };
        let model = Arc::new(KrrModel::fit(&ds.train, &ds.train_labels, &cfg).unwrap());
        let server = Server::start(
            Arc::clone(&model) as Arc<dyn DecisionModel>,
            ServerConfig {
                addr: "127.0.0.1:0".to_string(),
                engine: EngineConfig {
                    workers: 1,
                    ..EngineConfig::default()
                },
            },
        )
        .unwrap();
        (server, model, ds)
    }

    #[test]
    fn binary_client_roundtrips_predictions_bitwise() {
        let (server, model, ds) = served();
        let addr = server.local_addr().to_string();
        let mut client = Client::connect(&addr).unwrap();
        client.ping().unwrap();
        let info = client.info().unwrap();
        assert_eq!((info.dim, info.n_train), (16, 180));
        assert_eq!(info.version, env!("CARGO_PKG_VERSION"));
        assert!(!info.build_stamp.is_empty());
        let direct = model.decision_values(&ds.test);
        for i in 0..8 {
            let p = client.predict(ds.test.row(i).to_vec()).unwrap();
            assert_eq!(p.score, direct[i], "query {i} must be bitwise identical");
        }
        let stats = client.stats().unwrap();
        hkrr_bench::json::validate(&stats).unwrap();
        assert!(stats.contains("\"requests\":8"));
        assert!(stats.contains("\"uptime_seconds\":"));
        assert!(stats.contains("\"version\":"));
        // The metrics scrape is valid exposition carrying this engine's
        // request counter under its unique engine label.
        let scrape = client.metrics().unwrap();
        let engine_label = format!("engine=\"e{}\"", server.stats().engine_id);
        assert!(
            scrape.contains(&format!("hkrr_engine_requests_total{{{engine_label}}} 8")),
            "scrape missing this engine's counter:\n{scrape}"
        );
        assert!(scrape.contains("hkrr_uptime_seconds"));
        assert!(scrape.contains("hkrr_build_info{"));
        // Health reports the model role, the predict count, and the 0x08
        // capability.
        let health = client.health().unwrap();
        assert_eq!((health.role, health.requests), (ROLE_MODEL, 8));
        assert!(health.supports_traced_predict());
        // Refresh without a model source is a typed rejection, not a hang.
        assert!(matches!(client.refresh(), Err(ServeError::Rejected(_))));
        // Protocol-level rejection: wrong dimension.
        assert!(matches!(
            client.predict(vec![1.0; 3]),
            Err(ServeError::Rejected(_))
        ));
        server.shutdown();
    }

    #[test]
    fn line_mode_fallback_works_over_the_same_port() {
        let (server, model, ds) = served();
        let addr = server.local_addr();
        let stream = TcpStream::connect(addr).unwrap();
        let mut writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);

        let mut cmd = String::from("predict");
        for v in ds.test.row(0) {
            cmd.push_str(&format!(" {v:.17e}"));
        }
        cmd.push('\n');
        writer.write_all(cmd.as_bytes()).unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        let direct = model.decision_values(&ds.test)[0];
        let expected_label = if direct >= 0.0 { 1 } else { -1 };
        assert!(
            line.starts_with(&format!("ok {expected_label} ")),
            "unexpected reply {line:?}"
        );
        assert!(line.contains("batch="));

        writer.write_all(b"ping\n").unwrap();
        line.clear();
        reader.read_line(&mut line).unwrap();
        assert_eq!(line, "ok pong\n");

        writer.write_all(b"health\n").unwrap();
        line.clear();
        reader.read_line(&mut line).unwrap();
        assert_eq!(line, "ok role=model requests=1\n");

        writer.write_all(b"bogus\n").unwrap();
        line.clear();
        reader.read_line(&mut line).unwrap();
        assert!(line.starts_with("err "));

        writer.write_all(b"quit\n").unwrap();
        line.clear();
        reader.read_line(&mut line).unwrap();
        assert_eq!(line, "bye\n");
        server.shutdown();
    }

    #[test]
    fn shutdown_is_graceful_and_idempotent() {
        let (server, _, ds) = served();
        let addr = server.local_addr().to_string();
        let mut client = Client::connect(&addr).unwrap();
        let before = server.stats().requests;
        client.predict(ds.test.row(0).to_vec()).unwrap();
        assert_eq!(server.stats().requests, before + 1);
        server.shutdown();
        server.shutdown(); // idempotent — and neither call may hang
    }
}
