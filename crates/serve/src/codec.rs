//! The `hkrr-model/1` binary model format.
//!
//! A hand-rolled, versioned codec (the build container has no registry
//! access, hence no serde) that round-trips a trained
//! [`hkrr_core::KrrModel`] — or a whole sharded
//! [`hkrr_ensemble::EnsembleKrr`] — **including** every
//! compressed HSS form and ULV factorization, so a reloaded model answers
//! queries immediately — no re-clustering, re-compression or
//! re-factorization — and produces **bitwise-identical** predictions
//! (every `f64` travels as its exact bit pattern).
//!
//! ## Layout
//!
//! ```text
//! header        magic "HKRRMDL1" (8) | version u32 | section_count u32
//! section table section_count × { tag [u8;4] | offset u64 | len u64 | crc32 u32 }
//! payload       the sections' bytes, back to back
//! ```
//!
//! All integers and floats are little-endian. Each section's CRC32 (IEEE)
//! is verified before decoding, so a flipped byte anywhere in the payload
//! is caught as [`CodecError::ChecksumMismatch`] rather than producing a
//! silently-wrong model.
//!
//! | tag    | contents                                            | required      |
//! |--------|-----------------------------------------------------|---------------|
//! | `CONF` | `KrrConfig` + kernel function                       | single models |
//! | `NORM` | fitted normalization statistics                     | single models |
//! | `TRPT` | normalized, reordered training points               | single models |
//! | `WGHT` | weight vector                                       | single models |
//! | `PERM` | clustering permutation                              | single models |
//! | `REPT` | training report                                     | single models |
//! | `TREE` | cluster tree                                        | HSS only      |
//! | `HSSM` | compressed HSS matrix (per-node payloads)           | HSS only      |
//! | `ULVF` | ULV factorization (per-node factors + root LU); v4  | HSS only      |
//! |        | prefixes a precision tag and can carry f32 factors  |               |
//! | `ENSH` | ensemble header (strategy, routing, centroids)      | ensembles (v3) |
//! | `SH00`…| one complete nested model file per shard            | ensembles (v3) |
//!
//! An **ensemble file** (format version 3) carries an `ENSH` header section
//! plus one `SHnn` section per shard, each holding a complete nested
//! `hkrr-model/1` single-model encoding — so every shard gets the full
//! magic/version/CRC treatment, and corruption *inside any shard section*
//! (truncation, bit flip, wrong nested version) surfaces as the same typed
//! [`CodecError`]s a standalone file would produce.
//!
//! ## Versions
//!
//! This build writes version 4 and reads 1–4:
//! * **v1** — the original single-model layout.
//! * **v2** — added the `hss-pcg` solver tag, the PCG split in `REPT`, and
//!   the PCG parameters in `CONF`.
//! * **v3** — added ensemble files (`ENSH` + `SHnn`); single-model layout
//!   unchanged from v2.
//! * **v4** — mixed-precision factor store: `CONF` gains the
//!   `factor_precision` knob, `REPT` gains `factor_bytes`, and `ULVF`
//!   starts with a precision tag (`0` = f64, `1` = f32) so a demoted
//!   factorization persists as f32 sections (only the small root LU stays
//!   f64, mirroring the in-memory store) — a model trained with f32
//!   factors round-trips at less than half the `ULVF` size. Pre-v4 files
//!   decode as f64 with the defaults their era implied; a model holding
//!   f32 factors is refused at versions below 4.
//!
//! Versions above 4 are refused with a typed
//! [`CodecError::UnsupportedVersion`].

use hkrr_clustering::{ClusterNode, ClusterTree};
use hkrr_core::{KrrConfig, KrrModel, ModelParts, SolverKind, TrainedFactors, TrainingReport};
use hkrr_ensemble::{EnsembleKrr, EnsembleParts, ShardStrategy, MAX_SHARDS};
use hkrr_hss::construct::ConstructionStats;
use hkrr_hss::UlvNodeFactorF32;
use hkrr_hss::{FactorPrecision, HssMatrix, HssNodeData, UlvFactorization, UlvNodeFactor};
use hkrr_kernel::{KernelFunction, NormalizationStats, Normalizer};
use hkrr_linalg::lu::Lu;
use hkrr_linalg::{LuF32, Matrix, MatrixF32};
use std::path::Path;

/// File magic: "HKRR model, format generation 1".
pub const MAGIC: [u8; 8] = *b"HKRRMDL1";
/// Current format version inside generation 1 (see the module docs for
/// the version history).
pub const VERSION: u32 = 4;
/// Oldest format version this build still reads.
pub const MIN_VERSION: u32 = 1;
/// Human-readable schema name (mirrors the JSON snapshots' convention).
pub const SCHEMA: &str = "hkrr-model/1";

const HEADER_LEN: usize = 16;
const TABLE_ENTRY_LEN: usize = 24;
/// Upper bound on the section count: catches garbage headers before any
/// large allocation is attempted.
const MAX_SECTIONS: u32 = 64;

/// Typed decoding/encoding failures. Corrupted input always surfaces as one
/// of these — never a panic.
#[derive(Debug)]
pub enum CodecError {
    /// Reading or writing the file failed.
    Io(std::io::Error),
    /// The file does not start with the `hkrr-model` magic.
    BadMagic,
    /// The file's format version is not supported by this build.
    UnsupportedVersion(u32),
    /// The input ended early (or a section points outside the file).
    Truncated,
    /// A section's payload does not match its recorded checksum.
    ChecksumMismatch {
        /// Tag of the corrupted section.
        section: String,
    },
    /// A required section is absent.
    MissingSection(&'static str),
    /// Structurally invalid content (bad enum tag, inconsistent sizes, …).
    Malformed(String),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Io(e) => write!(f, "i/o: {e}"),
            CodecError::BadMagic => write!(f, "not an hkrr-model file (bad magic)"),
            CodecError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported format version {v} (this build reads {MIN_VERSION}..={VERSION})"
                )
            }
            CodecError::Truncated => write!(f, "unexpected end of input"),
            CodecError::ChecksumMismatch { section } => {
                write!(f, "checksum mismatch in section {section}")
            }
            CodecError::MissingSection(tag) => write!(f, "missing required section {tag}"),
            CodecError::Malformed(s) => write!(f, "malformed model data: {s}"),
        }
    }
}

impl std::error::Error for CodecError {}

impl From<std::io::Error> for CodecError {
    fn from(e: std::io::Error) -> Self {
        CodecError::Io(e)
    }
}

type Result<T> = std::result::Result<T, CodecError>;

// ---------------------------------------------------------------------------
// CRC32 (IEEE 802.3, the zlib polynomial), table-driven.

const CRC_TABLE: [u32; 256] = crc_table();

const fn crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xedb8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

/// CRC32 (IEEE) of a byte slice.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xffff_ffffu32;
    for &b in data {
        c = CRC_TABLE[((c ^ b as u32) & 0xff) as usize] ^ (c >> 8);
    }
    c ^ 0xffff_ffff
}

// ---------------------------------------------------------------------------
// Primitive little-endian writers / readers.

#[derive(Default)]
struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }
    fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn f32(&mut self, v: f32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn f64_slice(&mut self, v: &[f64]) {
        self.usize(v.len());
        for &x in v {
            self.f64(x);
        }
    }
    fn usize_slice(&mut self, v: &[usize]) {
        self.usize(v.len());
        for &x in v {
            self.usize(x);
        }
    }
    /// `usize::MAX`-free encoding of `Option<usize>` tree links.
    fn opt_usize(&mut self, v: Option<usize>) {
        match v {
            Some(x) => {
                self.u8(1);
                self.usize(x);
            }
            None => self.u8(0),
        }
    }
    fn matrix(&mut self, m: &Matrix) {
        self.usize(m.nrows());
        self.usize(m.ncols());
        for &x in m.data() {
            self.f64(x);
        }
    }
    /// Single-precision matrix: every f32 travels as its exact 4-byte bit
    /// pattern, so f32 factor stores round-trip bitwise too.
    fn matrix_f32(&mut self, m: &MatrixF32) {
        self.usize(m.nrows());
        self.usize(m.ncols());
        for &x in m.data() {
            self.f32(x);
        }
    }
    fn opt_matrix(&mut self, m: Option<&Matrix>) {
        match m {
            Some(m) => {
                self.u8(1);
                self.matrix(m);
            }
            None => self.u8(0),
        }
    }
}

struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Dec { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        let end = self.pos.checked_add(n).ok_or(CodecError::Truncated)?;
        if end > self.buf.len() {
            return Err(CodecError::Truncated);
        }
        let out = &self.buf[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    fn finish(&self) -> Result<()> {
        if self.pos != self.buf.len() {
            return Err(CodecError::Malformed(format!(
                "{} trailing bytes in section",
                self.buf.len() - self.pos
            )));
        }
        Ok(())
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }
    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn usize(&mut self) -> Result<usize> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| CodecError::Malformed(format!("size {v} overflows usize")))
    }
    /// A length that still has to be backed by at least `elem_len` bytes per
    /// element in this section — rejects absurd lengths before allocating.
    fn len(&mut self, elem_len: usize) -> Result<usize> {
        let n = self.usize()?;
        if n.saturating_mul(elem_len) > self.buf.len() - self.pos {
            return Err(CodecError::Truncated);
        }
        Ok(n)
    }
    fn f64(&mut self) -> Result<f64> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn f32(&mut self) -> Result<f32> {
        Ok(f32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn f64_vec(&mut self) -> Result<Vec<f64>> {
        let n = self.len(8)?;
        (0..n).map(|_| self.f64()).collect()
    }
    fn usize_vec(&mut self) -> Result<Vec<usize>> {
        let n = self.len(8)?;
        (0..n).map(|_| self.usize()).collect()
    }
    fn opt_usize(&mut self) -> Result<Option<usize>> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.usize()?)),
            t => Err(CodecError::Malformed(format!("bad option tag {t}"))),
        }
    }
    fn matrix(&mut self) -> Result<Matrix> {
        let rows = self.usize()?;
        let cols = self.usize()?;
        let total = rows
            .checked_mul(cols)
            .ok_or_else(|| CodecError::Malformed("matrix size overflow".to_string()))?;
        if total.saturating_mul(8) > self.buf.len() - self.pos {
            return Err(CodecError::Truncated);
        }
        let mut data = Vec::with_capacity(total);
        for _ in 0..total {
            data.push(self.f64()?);
        }
        Ok(Matrix::from_vec(rows, cols, data))
    }
    fn opt_matrix(&mut self) -> Result<Option<Matrix>> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.matrix()?)),
            t => Err(CodecError::Malformed(format!("bad option tag {t}"))),
        }
    }
    fn matrix_f32(&mut self) -> Result<MatrixF32> {
        let rows = self.usize()?;
        let cols = self.usize()?;
        let total = rows
            .checked_mul(cols)
            .ok_or_else(|| CodecError::Malformed("matrix size overflow".to_string()))?;
        if total.saturating_mul(4) > self.buf.len() - self.pos {
            return Err(CodecError::Truncated);
        }
        let mut data = Vec::with_capacity(total);
        for _ in 0..total {
            data.push(self.f32()?);
        }
        Ok(MatrixF32::from_vec(rows, cols, data))
    }
}

// ---------------------------------------------------------------------------
// Enum tags.

fn enc_solver(e: &mut Enc, s: SolverKind) {
    e.u8(match s {
        SolverKind::DenseCholesky => 0,
        SolverKind::Hss => 1,
        SolverKind::HssWithHSampling => 2,
        SolverKind::HssPcg => 3,
    });
}

fn dec_solver(d: &mut Dec) -> Result<SolverKind> {
    match d.u8()? {
        0 => Ok(SolverKind::DenseCholesky),
        1 => Ok(SolverKind::Hss),
        2 => Ok(SolverKind::HssWithHSampling),
        3 => Ok(SolverKind::HssPcg),
        t => Err(CodecError::Malformed(format!("bad solver tag {t}"))),
    }
}

fn enc_clustering(e: &mut Enc, c: hkrr_clustering::ClusteringMethod) {
    use hkrr_clustering::ClusteringMethod as C;
    match c {
        C::Natural => e.u8(0),
        C::KdTree => e.u8(1),
        C::PcaTree => e.u8(2),
        C::TwoMeans { seed } => {
            e.u8(3);
            e.u64(seed);
        }
        C::Agglomerative => e.u8(4),
    }
}

fn dec_clustering(d: &mut Dec) -> Result<hkrr_clustering::ClusteringMethod> {
    use hkrr_clustering::ClusteringMethod as C;
    match d.u8()? {
        0 => Ok(C::Natural),
        1 => Ok(C::KdTree),
        2 => Ok(C::PcaTree),
        3 => Ok(C::TwoMeans { seed: d.u64()? }),
        4 => Ok(C::Agglomerative),
        t => Err(CodecError::Malformed(format!("bad clustering tag {t}"))),
    }
}

fn enc_precision(e: &mut Enc, p: FactorPrecision) {
    e.u8(match p {
        FactorPrecision::F64 => 0,
        FactorPrecision::F32 => 1,
    });
}

fn dec_precision(d: &mut Dec) -> Result<FactorPrecision> {
    match d.u8()? {
        0 => Ok(FactorPrecision::F64),
        1 => Ok(FactorPrecision::F32),
        t => Err(CodecError::Malformed(format!("bad precision tag {t}"))),
    }
}

fn enc_normalizer(e: &mut Enc, n: Normalizer) {
    e.u8(match n {
        Normalizer::ZScore => 0,
        Normalizer::MaxAbs => 1,
        Normalizer::None => 2,
    });
}

fn dec_normalizer(d: &mut Dec) -> Result<Normalizer> {
    match d.u8()? {
        0 => Ok(Normalizer::ZScore),
        1 => Ok(Normalizer::MaxAbs),
        2 => Ok(Normalizer::None),
        t => Err(CodecError::Malformed(format!("bad normalizer tag {t}"))),
    }
}

fn enc_kernel(e: &mut Enc, k: KernelFunction) {
    match k {
        KernelFunction::Gaussian { h } => {
            e.u8(0);
            e.f64(h);
        }
        KernelFunction::Laplacian { h } => {
            e.u8(1);
            e.f64(h);
        }
        KernelFunction::Polynomial { degree, c } => {
            e.u8(2);
            e.u32(degree);
            e.f64(c);
        }
        KernelFunction::Linear => e.u8(3),
    }
}

fn dec_kernel(d: &mut Dec) -> Result<KernelFunction> {
    match d.u8()? {
        0 => Ok(KernelFunction::Gaussian { h: d.f64()? }),
        1 => Ok(KernelFunction::Laplacian { h: d.f64()? }),
        2 => Ok(KernelFunction::Polynomial {
            degree: d.u32()?,
            c: d.f64()?,
        }),
        3 => Ok(KernelFunction::Linear),
        t => Err(CodecError::Malformed(format!("bad kernel tag {t}"))),
    }
}

// ---------------------------------------------------------------------------
// Section encoders.

fn enc_conf(config: &KrrConfig, kernel: KernelFunction, version: u32) -> Vec<u8> {
    let mut e = Enc::default();
    e.f64(config.h);
    e.f64(config.lambda);
    enc_clustering(&mut e, config.clustering);
    e.usize(config.leaf_size);
    enc_normalizer(&mut e, config.normalization);
    enc_solver(&mut e, config.solver);
    e.f64(config.tolerance);
    e.f64(config.eta);
    e.u64(config.seed);
    if version >= 2 {
        e.f64(config.pcg_tolerance);
        e.usize(config.pcg_max_iterations);
        e.f64(config.pcg_loosening);
    }
    if version >= 4 {
        enc_precision(&mut e, config.factor_precision);
    }
    enc_kernel(&mut e, kernel);
    e.buf
}

fn dec_conf(bytes: &[u8], version: u32) -> Result<(KrrConfig, KernelFunction)> {
    let mut d = Dec::new(bytes);
    let defaults = KrrConfig::default();
    let h = d.f64()?;
    let lambda = d.f64()?;
    let clustering = dec_clustering(&mut d)?;
    let leaf_size = d.usize()?;
    let normalization = dec_normalizer(&mut d)?;
    let solver = dec_solver(&mut d)?;
    let tolerance = d.f64()?;
    let eta = d.f64()?;
    let seed = d.u64()?;
    // v1 predates the PCG knobs; old files take the current defaults.
    let (pcg_tolerance, pcg_max_iterations, pcg_loosening) = if version >= 2 {
        (d.f64()?, d.usize()?, d.f64()?)
    } else {
        (
            defaults.pcg_tolerance,
            defaults.pcg_max_iterations,
            defaults.pcg_loosening,
        )
    };
    // Pre-v4 files predate the mixed-precision store: always f64.
    let factor_precision = if version >= 4 {
        dec_precision(&mut d)?
    } else {
        FactorPrecision::F64
    };
    let config = KrrConfig {
        h,
        lambda,
        clustering,
        leaf_size,
        normalization,
        solver,
        tolerance,
        eta,
        seed,
        pcg_tolerance,
        pcg_max_iterations,
        pcg_loosening,
        factor_precision,
    };
    let kernel = dec_kernel(&mut d)?;
    d.finish()?;
    // The same invariants `fit` enforces: a hand-crafted file with, say, a
    // zero PCG iteration budget or a NaN tolerance must fail here as
    // Malformed, not much later as a confusing solver error.
    config.validate().map_err(CodecError::Malformed)?;
    Ok((config, kernel))
}

fn enc_norm(stats: &NormalizationStats) -> Vec<u8> {
    let mut e = Enc::default();
    enc_normalizer(&mut e, stats.scheme());
    e.f64_slice(stats.offset());
    e.f64_slice(stats.scale());
    e.buf
}

fn dec_norm(bytes: &[u8]) -> Result<NormalizationStats> {
    let mut d = Dec::new(bytes);
    let scheme = dec_normalizer(&mut d)?;
    let offset = d.f64_vec()?;
    let scale = d.f64_vec()?;
    d.finish()?;
    NormalizationStats::from_parts(scheme, offset, scale).map_err(CodecError::Malformed)
}

fn enc_report(r: &TrainingReport, version: u32) -> Vec<u8> {
    let mut e = Enc::default();
    enc_solver(&mut e, r.solver);
    e.usize(r.num_train);
    e.usize(r.dim);
    e.f64(r.clustering_seconds);
    if version >= 2 {
        e.f64(r.assembly_seconds);
    }
    e.f64(r.h_construction_seconds);
    e.f64(r.hss_sampling_seconds);
    e.f64(r.hss_other_seconds);
    e.f64(r.factorization_seconds);
    e.f64(r.solve_seconds);
    if version >= 2 {
        e.f64(r.pcg_seconds);
        e.usize(r.pcg_iterations);
        e.f64_slice(&r.pcg_residual_history);
    }
    e.usize(r.matrix_memory_bytes);
    e.usize(r.sampler_memory_bytes);
    if version >= 4 {
        e.usize(r.factor_bytes);
    }
    e.usize(r.max_rank);
    e.buf
}

fn dec_report(bytes: &[u8], version: u32) -> Result<TrainingReport> {
    let mut d = Dec::new(bytes);
    let solver = dec_solver(&mut d)?;
    let num_train = d.usize()?;
    let dim = d.usize()?;
    let mut r = TrainingReport::new(solver, num_train, dim);
    r.clustering_seconds = d.f64()?;
    if version >= 2 {
        r.assembly_seconds = d.f64()?;
    }
    r.h_construction_seconds = d.f64()?;
    r.hss_sampling_seconds = d.f64()?;
    r.hss_other_seconds = d.f64()?;
    r.factorization_seconds = d.f64()?;
    r.solve_seconds = d.f64()?;
    if version >= 2 {
        r.pcg_seconds = d.f64()?;
        r.pcg_iterations = d.usize()?;
        r.pcg_residual_history = d.f64_vec()?;
    }
    r.matrix_memory_bytes = d.usize()?;
    r.sampler_memory_bytes = d.usize()?;
    if version >= 4 {
        r.factor_bytes = d.usize()?;
    }
    r.max_rank = d.usize()?;
    d.finish()?;
    Ok(r)
}

fn enc_tree(tree: &ClusterTree) -> Vec<u8> {
    let mut e = Enc::default();
    e.usize(tree.root());
    e.usize(tree.num_nodes());
    for node in tree.nodes() {
        e.usize(node.start);
        e.usize(node.size);
        e.opt_usize(node.left);
        e.opt_usize(node.right);
        e.opt_usize(node.parent);
    }
    e.buf
}

fn dec_tree(bytes: &[u8]) -> Result<ClusterTree> {
    let mut d = Dec::new(bytes);
    let root = d.usize()?;
    let num_nodes = d.len(16)?;
    let mut nodes = Vec::with_capacity(num_nodes);
    for _ in 0..num_nodes {
        nodes.push(ClusterNode {
            start: d.usize()?,
            size: d.usize()?,
            left: d.opt_usize()?,
            right: d.opt_usize()?,
            parent: d.opt_usize()?,
        });
    }
    d.finish()?;
    ClusterTree::from_nodes(nodes, root).map_err(CodecError::Malformed)
}

fn enc_hss(hss: &HssMatrix) -> Vec<u8> {
    let mut e = Enc::default();
    e.f64(hss.diagonal_shift());
    let st = hss.construction_stats();
    e.f64(st.sampling_seconds);
    e.f64(st.other_seconds);
    e.usize(st.samples_used);
    e.usize(st.restarts);
    e.usize(hss.nodes().len());
    for nd in hss.nodes() {
        e.opt_matrix(nd.d.as_ref());
        e.opt_matrix(nd.u.as_ref());
        e.opt_matrix(nd.b12.as_ref());
        e.opt_matrix(nd.b21.as_ref());
        e.usize_slice(&nd.skeleton);
        e.usize(nd.rank);
    }
    e.buf
}

fn dec_hss(bytes: &[u8], tree: &ClusterTree) -> Result<HssMatrix> {
    let mut d = Dec::new(bytes);
    let diagonal_shift = d.f64()?;
    let construction = ConstructionStats {
        sampling_seconds: d.f64()?,
        other_seconds: d.f64()?,
        samples_used: d.usize()?,
        restarts: d.usize()?,
    };
    let num_nodes = d.len(1)?;
    let mut nodes = Vec::with_capacity(num_nodes);
    for _ in 0..num_nodes {
        let dmat = d.opt_matrix()?;
        let u = d.opt_matrix()?;
        let b12 = d.opt_matrix()?;
        let b21 = d.opt_matrix()?;
        let skeleton = d.usize_vec()?;
        let rank = d.usize()?;
        nodes.push(HssNodeData {
            d: dmat,
            u,
            b12,
            b21,
            skeleton,
            rank,
        });
    }
    d.finish()?;
    HssMatrix::from_parts(tree.clone(), nodes, diagonal_shift, construction)
        .map_err(|e| CodecError::Malformed(e.to_string()))
}

fn enc_lu(e: &mut Enc, lu: &Lu) {
    e.matrix(lu.packed());
    e.usize_slice(lu.pivots());
    e.f64(lu.sign());
}

fn dec_lu(d: &mut Dec) -> Result<Lu> {
    let packed = d.matrix()?;
    let pivots = d.usize_vec()?;
    let sign = d.f64()?;
    Lu::from_parts(packed, pivots, sign).map_err(|e| CodecError::Malformed(e.to_string()))
}

fn enc_lu_f32(e: &mut Enc, lu: &LuF32) {
    e.matrix_f32(lu.packed());
    e.usize_slice(lu.pivots());
    e.f64(lu.sign());
}

fn dec_lu_f32(d: &mut Dec) -> Result<LuF32> {
    let packed = d.matrix_f32()?;
    let pivots = d.usize_vec()?;
    let sign = d.f64()?;
    LuF32::from_parts(packed, pivots, sign).map_err(|e| CodecError::Malformed(e.to_string()))
}

/// Encodes the `ULVF` section. At version ≥ 4 the payload starts with a
/// precision tag and may carry an f32 factor store; older versions write
/// the bare f64 layout (and [`encode_model_as_version`] refuses f32-factor
/// models before this function can see them).
fn enc_ulv(ulv: &UlvFactorization, version: u32) -> Vec<u8> {
    let mut e = Enc::default();
    if version >= 4 {
        enc_precision(&mut e, ulv.precision());
    } else {
        debug_assert_eq!(
            ulv.precision(),
            FactorPrecision::F64,
            "f32 stores are refused for pre-v4 encodings"
        );
    }
    match ulv.precision() {
        FactorPrecision::F64 => {
            e.usize(ulv.node_factors().len());
            for f in ulv.node_factors() {
                match f {
                    None => e.u8(0),
                    Some(f) => {
                        e.u8(1);
                        e.matrix(&f.w);
                        e.usize(f.elim);
                        e.usize(f.rank);
                        match &f.d11_lu {
                            None => e.u8(0),
                            Some(lu) => {
                                e.u8(1);
                                enc_lu(&mut e, lu);
                            }
                        }
                        e.matrix(&f.d12);
                        e.matrix(&f.d21);
                        e.matrix(&f.dtilde);
                        e.matrix(&f.uhat);
                    }
                }
            }
            enc_lu(&mut e, ulv.root_lu());
        }
        FactorPrecision::F32 => {
            // The demoted store has no dtilde/uhat (factorization-only
            // blocks), so the f32 layout is both narrower and shorter.
            e.usize(ulv.node_factors_f32().len());
            for f in ulv.node_factors_f32() {
                match f {
                    None => e.u8(0),
                    Some(f) => {
                        e.u8(1);
                        e.matrix_f32(&f.w);
                        e.usize(f.elim);
                        e.usize(f.rank);
                        match &f.d11_lu {
                            None => e.u8(0),
                            Some(lu) => {
                                e.u8(1);
                                enc_lu_f32(&mut e, lu);
                            }
                        }
                        e.matrix_f32(&f.d12);
                        e.matrix_f32(&f.d21);
                    }
                }
            }
            // The root LU stays f64 even in the demoted store: it carries
            // the globally coupled (worst-conditioned) block and is only
            // rank(c1)+rank(c2) square, so the bytes are negligible.
            enc_lu(&mut e, ulv.root_lu());
        }
    }
    e.buf
}

fn dec_ulv_f64_body(d: &mut Dec, tree: &ClusterTree) -> Result<UlvFactorization> {
    let num_nodes = d.len(1)?;
    let mut factors = Vec::with_capacity(num_nodes);
    for _ in 0..num_nodes {
        match d.u8()? {
            0 => factors.push(None),
            1 => {
                let w = d.matrix()?;
                let elim = d.usize()?;
                let rank = d.usize()?;
                let d11_lu = match d.u8()? {
                    0 => None,
                    1 => Some(dec_lu(d)?),
                    t => return Err(CodecError::Malformed(format!("bad option tag {t}"))),
                };
                let d12 = d.matrix()?;
                let d21 = d.matrix()?;
                let dtilde = d.matrix()?;
                let uhat = d.matrix()?;
                factors.push(Some(UlvNodeFactor {
                    w,
                    elim,
                    rank,
                    d11_lu,
                    d12,
                    d21,
                    dtilde,
                    uhat,
                }));
            }
            t => return Err(CodecError::Malformed(format!("bad factor tag {t}"))),
        }
    }
    let root_lu = dec_lu(d)?;
    d.finish()?;
    UlvFactorization::from_parts(tree.clone(), factors, root_lu)
        .map_err(|e| CodecError::Malformed(e.to_string()))
}

fn dec_ulv_f32_body(d: &mut Dec, tree: &ClusterTree) -> Result<UlvFactorization> {
    let num_nodes = d.len(1)?;
    let mut factors = Vec::with_capacity(num_nodes);
    for _ in 0..num_nodes {
        match d.u8()? {
            0 => factors.push(None),
            1 => {
                let w = d.matrix_f32()?;
                let elim = d.usize()?;
                let rank = d.usize()?;
                let d11_lu = match d.u8()? {
                    0 => None,
                    1 => Some(dec_lu_f32(d)?),
                    t => return Err(CodecError::Malformed(format!("bad option tag {t}"))),
                };
                let d12 = d.matrix_f32()?;
                let d21 = d.matrix_f32()?;
                factors.push(Some(UlvNodeFactorF32 {
                    w,
                    elim,
                    rank,
                    d11_lu,
                    d12,
                    d21,
                }));
            }
            t => return Err(CodecError::Malformed(format!("bad factor tag {t}"))),
        }
    }
    let root_lu = dec_lu(d)?;
    d.finish()?;
    UlvFactorization::from_parts_f32(tree.clone(), factors, root_lu)
        .map_err(|e| CodecError::Malformed(e.to_string()))
}

fn dec_ulv(bytes: &[u8], tree: &ClusterTree, version: u32) -> Result<UlvFactorization> {
    let mut d = Dec::new(bytes);
    // Pre-v4 payloads have no precision tag: the body is the f64 layout.
    let precision = if version >= 4 {
        dec_precision(&mut d)?
    } else {
        FactorPrecision::F64
    };
    match precision {
        FactorPrecision::F64 => dec_ulv_f64_body(&mut d, tree),
        FactorPrecision::F32 => dec_ulv_f32_body(&mut d, tree),
    }
}

// ---------------------------------------------------------------------------
// Ensemble sections.

fn enc_strategy(e: &mut Enc, s: ShardStrategy) {
    match s {
        ShardStrategy::Cluster => e.u8(0),
        ShardStrategy::Random { seed } => {
            e.u8(1);
            e.u64(seed);
        }
    }
}

fn dec_strategy(d: &mut Dec) -> Result<ShardStrategy> {
    match d.u8()? {
        0 => Ok(ShardStrategy::Cluster),
        1 => Ok(ShardStrategy::Random { seed: d.u64()? }),
        t => Err(CodecError::Malformed(format!("bad strategy tag {t}"))),
    }
}

/// Tag of shard `i`'s section: `SH00`, `SH01`, …
fn shard_tag(i: usize) -> [u8; 4] {
    debug_assert!(i < 100);
    [b'S', b'H', b'0' + (i / 10) as u8, b'0' + (i % 10) as u8]
}

/// The `ENSH` section: everything ensemble-level except the shard models
/// themselves.
struct EnsembleHeader {
    strategy: ShardStrategy,
    route_nearest: usize,
    shards: usize,
    centroids: Matrix,
    fit_wall_seconds: f64,
    shard_wall_seconds: Vec<f64>,
}

fn enc_ensh(h: &EnsembleHeader) -> Vec<u8> {
    let mut e = Enc::default();
    enc_strategy(&mut e, h.strategy);
    e.usize(h.shards);
    e.usize(h.route_nearest);
    e.matrix(&h.centroids);
    e.f64(h.fit_wall_seconds);
    e.f64_slice(&h.shard_wall_seconds);
    e.buf
}

fn dec_ensh(bytes: &[u8]) -> Result<EnsembleHeader> {
    let mut d = Dec::new(bytes);
    let strategy = dec_strategy(&mut d)?;
    let shards = d.usize()?;
    if shards == 0 || shards > MAX_SHARDS {
        return Err(CodecError::Malformed(format!("{shards} shards")));
    }
    let route_nearest = d.usize()?;
    let centroids = d.matrix()?;
    let fit_wall_seconds = d.f64()?;
    let shard_wall_seconds = d.f64_vec()?;
    d.finish()?;
    Ok(EnsembleHeader {
        strategy,
        route_nearest,
        shards,
        centroids,
        fit_wall_seconds,
        shard_wall_seconds,
    })
}

// ---------------------------------------------------------------------------
// Whole-file encode / decode.

/// Assembles a complete file (header, section table, payloads) for the
/// given format version.
fn write_file(version: u32, sections: &[([u8; 4], Vec<u8>)]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&version.to_le_bytes());
    out.extend_from_slice(&(sections.len() as u32).to_le_bytes());
    let mut offset = HEADER_LEN + TABLE_ENTRY_LEN * sections.len();
    for (tag, body) in sections {
        out.extend_from_slice(&tag[..]);
        out.extend_from_slice(&(offset as u64).to_le_bytes());
        out.extend_from_slice(&(body.len() as u64).to_le_bytes());
        out.extend_from_slice(&crc32(body).to_le_bytes());
        offset += body.len();
    }
    for (_, body) in sections {
        out.extend_from_slice(body);
    }
    out
}

/// Serializes a single model to its current-version byte representation.
pub fn encode_model(model: &KrrModel) -> Vec<u8> {
    encode_model_as_version(model, VERSION).expect("current-version encoding cannot fail")
}

/// Serializes a single model in an *older* (or the current) format version
/// — the fixture writer behind the backward-compatibility tests, so
/// "v1/v2 files still load" is pinned against real old-layout bytes
/// rather than hand-patched ones. Version 1 predates the `hss-pcg`
/// solver, so encoding such a model at version 1 is refused.
pub fn encode_model_as_version(model: &KrrModel, version: u32) -> Result<Vec<u8>> {
    if !(MIN_VERSION..=VERSION).contains(&version) {
        return Err(CodecError::UnsupportedVersion(version));
    }
    if version < 2 && model.config().solver == SolverKind::HssPcg {
        return Err(CodecError::Malformed(
            "format version 1 cannot represent the hss-pcg solver".to_string(),
        ));
    }
    if version < 4 {
        let holds_f32 = model
            .factors()
            .is_some_and(|f| f.ulv.precision() == FactorPrecision::F32)
            || model.config().factor_precision == FactorPrecision::F32;
        if holds_f32 {
            return Err(CodecError::Malformed(format!(
                "format version {version} cannot represent f32 ULV factors (needs version 4)"
            )));
        }
    }
    let mut e = Enc::default();
    e.matrix(model.train_points());
    let trpt = std::mem::take(&mut e.buf);
    e.f64_slice(model.weights());
    let wght = std::mem::take(&mut e.buf);
    e.usize_slice(model.permutation());
    let perm = std::mem::take(&mut e.buf);

    let mut sections: Vec<([u8; 4], Vec<u8>)> = vec![
        (*b"CONF", enc_conf(model.config(), model.kernel(), version)),
        (*b"NORM", enc_norm(model.norm_stats())),
        (*b"TRPT", trpt),
        (*b"WGHT", wght),
        (*b"PERM", perm),
        (*b"REPT", enc_report(model.report(), version)),
    ];
    if let Some(f) = model.factors() {
        sections.push((*b"TREE", enc_tree(f.hss.tree())));
        sections.push((*b"HSSM", enc_hss(&f.hss)));
        sections.push((*b"ULVF", enc_ulv(&f.ulv, version)));
    }
    Ok(write_file(version, &sections))
}

/// Serializes a sharded ensemble: an `ENSH` header section plus one
/// complete nested single-model encoding per shard.
pub fn encode_ensemble(ensemble: &EnsembleKrr) -> Vec<u8> {
    let header = EnsembleHeader {
        strategy: ensemble.strategy(),
        route_nearest: ensemble.router().route_nearest(),
        shards: ensemble.num_shards(),
        centroids: ensemble.router().centroids().clone(),
        fit_wall_seconds: ensemble.report().fit_wall_seconds,
        shard_wall_seconds: ensemble.report().shard_wall_seconds.clone(),
    };
    let mut sections: Vec<([u8; 4], Vec<u8>)> = Vec::new();
    sections.push((*b"ENSH", enc_ensh(&header)));
    for (i, model) in ensemble.models().iter().enumerate() {
        sections.push((shard_tag(i), encode_model(model)));
    }
    write_file(VERSION, &sections)
}

/// A parsed section table: `(tag, payload)` pairs.
type SectionList<'a> = Vec<([u8; 4], &'a [u8])>;

/// Parses the header + section table and returns the file's version plus
/// `(tag, payload)` pairs, with every payload's checksum verified.
fn sections(bytes: &[u8]) -> Result<(u32, SectionList<'_>)> {
    if bytes.len() < HEADER_LEN {
        // Too short even for the magic/header: distinguish "not our file"
        // from "our file, cut off".
        if bytes.len() < MAGIC.len() || bytes[..MAGIC.len()] != MAGIC {
            return Err(CodecError::BadMagic);
        }
        return Err(CodecError::Truncated);
    }
    if bytes[..8] != MAGIC {
        return Err(CodecError::BadMagic);
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
    if !(MIN_VERSION..=VERSION).contains(&version) {
        return Err(CodecError::UnsupportedVersion(version));
    }
    let count = u32::from_le_bytes(bytes[12..16].try_into().unwrap());
    if count > MAX_SECTIONS {
        return Err(CodecError::Malformed(format!("{count} sections")));
    }
    let table_end = HEADER_LEN + TABLE_ENTRY_LEN * count as usize;
    if bytes.len() < table_end {
        return Err(CodecError::Truncated);
    }
    let mut out = Vec::with_capacity(count as usize);
    for i in 0..count as usize {
        let entry = &bytes[HEADER_LEN + TABLE_ENTRY_LEN * i..];
        let tag: [u8; 4] = entry[..4].try_into().unwrap();
        let offset = u64::from_le_bytes(entry[4..12].try_into().unwrap());
        let len = u64::from_le_bytes(entry[12..20].try_into().unwrap());
        let crc = u32::from_le_bytes(entry[20..24].try_into().unwrap());
        let start = usize::try_from(offset).map_err(|_| CodecError::Truncated)?;
        let len = usize::try_from(len).map_err(|_| CodecError::Truncated)?;
        let end = start.checked_add(len).ok_or(CodecError::Truncated)?;
        if start < table_end || end > bytes.len() {
            return Err(CodecError::Truncated);
        }
        let payload = &bytes[start..end];
        if crc32(payload) != crc {
            return Err(CodecError::ChecksumMismatch {
                section: String::from_utf8_lossy(&tag).into_owned(),
            });
        }
        out.push((tag, payload));
    }
    Ok((version, out))
}

fn find<'a>(sections: &[([u8; 4], &'a [u8])], tag: &[u8; 4]) -> Option<&'a [u8]> {
    sections
        .iter()
        .find(|(t, _)| t == tag)
        .map(|(_, payload)| *payload)
}

fn require<'a>(
    sections: &[([u8; 4], &'a [u8])],
    tag: &'static [u8; 4],
    name: &'static str,
) -> Result<&'a [u8]> {
    find(sections, tag).ok_or(CodecError::MissingSection(name))
}

/// Decodes a single model from an already-parsed section list.
fn decode_single(version: u32, sections: &[([u8; 4], &[u8])]) -> Result<KrrModel> {
    let (config, kernel) = dec_conf(require(sections, b"CONF", "CONF")?, version)?;
    let norm_stats = dec_norm(require(sections, b"NORM", "NORM")?)?;

    let mut d = Dec::new(require(sections, b"TRPT", "TRPT")?);
    let train_points = d.matrix()?;
    d.finish()?;
    let mut d = Dec::new(require(sections, b"WGHT", "WGHT")?);
    let weights = d.f64_vec()?;
    d.finish()?;
    let mut d = Dec::new(require(sections, b"PERM", "PERM")?);
    let permutation = d.usize_vec()?;
    d.finish()?;
    let report = dec_report(require(sections, b"REPT", "REPT")?, version)?;

    let factors = match (
        find(sections, b"TREE"),
        find(sections, b"HSSM"),
        find(sections, b"ULVF"),
    ) {
        (None, None, None) => None,
        (Some(tree_bytes), Some(hss_bytes), Some(ulv_bytes)) => {
            let tree = dec_tree(tree_bytes)?;
            let hss = dec_hss(hss_bytes, &tree)?;
            let ulv = dec_ulv(ulv_bytes, &tree, version)?;
            Some(TrainedFactors { hss, ulv })
        }
        _ => {
            return Err(CodecError::Malformed(
                "TREE/HSSM/ULVF sections must be present together".to_string(),
            ))
        }
    };

    KrrModel::from_parts(ModelParts {
        train_points,
        weights,
        kernel,
        norm_stats,
        report,
        config,
        permutation,
        factors,
    })
    .map_err(|e| CodecError::Malformed(e.to_string()))
}

/// What came out of a model file: a single model or a sharded ensemble.
/// [`LoadedModel::into_handle`] erases the distinction for the serving
/// layers, which only need a [`hkrr_core::DecisionModel`].
// Both variants are whole trained models (hundreds of bytes of inline
// headers over heap-backed matrices); the value is created once per load
// and immediately converted to a handle, so the size spread is harmless.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub enum LoadedModel {
    /// A plain single-solve model.
    Single(KrrModel),
    /// A cluster-sharded ensemble.
    Ensemble(EnsembleKrr),
}

impl LoadedModel {
    /// Raw input feature dimension.
    pub fn dim(&self) -> usize {
        match self {
            LoadedModel::Single(m) => m.dim(),
            LoadedModel::Ensemble(e) => e.dim(),
        }
    }

    /// Total number of training points.
    pub fn num_train(&self) -> usize {
        match self {
            LoadedModel::Single(m) => m.num_train(),
            LoadedModel::Ensemble(e) => e.num_train(),
        }
    }

    /// Number of constituent models (1, or the shard count).
    pub fn num_models(&self) -> usize {
        match self {
            LoadedModel::Single(_) => 1,
            LoadedModel::Ensemble(e) => e.num_shards(),
        }
    }

    /// Whether the file held an ensemble.
    pub fn is_ensemble(&self) -> bool {
        matches!(self, LoadedModel::Ensemble(_))
    }

    /// Raw decision values (dispatching to whichever model was loaded).
    pub fn decision_values(&self, test: &Matrix) -> Vec<f64> {
        match self {
            LoadedModel::Single(m) => m.decision_values(test),
            LoadedModel::Ensemble(e) => e.decision_values(test),
        }
    }

    /// Predicted ±1 labels (dispatching to whichever model was loaded).
    pub fn predict(&self, test: &Matrix) -> Vec<f64> {
        match self {
            LoadedModel::Single(m) => m.predict(test),
            LoadedModel::Ensemble(e) => e.predict(test),
        }
    }

    /// Erases the single/ensemble distinction into the trait-object handle
    /// the serving engine hosts.
    pub fn into_handle(self) -> hkrr_core::ModelHandle {
        match self {
            LoadedModel::Single(m) => std::sync::Arc::new(m),
            LoadedModel::Ensemble(e) => std::sync::Arc::new(e),
        }
    }
}

/// The format version of an encoded file (header peek; the payload is not
/// validated beyond the magic). A file that carries the magic but ends
/// before the version word is [`CodecError::Truncated`], not `BadMagic` —
/// the same distinction the full decoder draws.
pub fn encoded_version(bytes: &[u8]) -> Result<u32> {
    if bytes.len() < MAGIC.len() || bytes[..MAGIC.len()] != MAGIC {
        return Err(CodecError::BadMagic);
    }
    if bytes.len() < 12 {
        return Err(CodecError::Truncated);
    }
    Ok(u32::from_le_bytes(bytes[8..12].try_into().unwrap()))
}

/// Deserializes a file that may hold a single model or an ensemble.
pub fn decode_any(bytes: &[u8]) -> Result<LoadedModel> {
    let (version, sections) = sections(bytes)?;
    let Some(ensh) = find(&sections, b"ENSH") else {
        return decode_single(version, &sections).map(LoadedModel::Single);
    };
    let header = dec_ensh(ensh)?;
    if header.centroids.nrows() != header.shards {
        return Err(CodecError::Malformed(format!(
            "{} centroids for {} shards",
            header.centroids.nrows(),
            header.shards
        )));
    }
    let mut models = Vec::with_capacity(header.shards);
    for i in 0..header.shards {
        let blob = find(&sections, &shard_tag(i))
            .ok_or(CodecError::Malformed(format!("missing shard section {i}")))?;
        // Each shard is a complete nested model file: the full
        // magic/version/CRC/semantic pipeline re-runs per shard, so any
        // corruption inside a shard surfaces as the usual typed errors.
        // `decode_model` refuses nested ensembles outright, which bounds
        // the decode depth at 2 — a crafted ensemble-of-ensembles file is
        // a typed `Malformed`, not unbounded recursion.
        models.push(decode_model(blob)?);
    }
    EnsembleKrr::from_parts(EnsembleParts {
        models,
        centroids: header.centroids,
        strategy: header.strategy,
        route_nearest: header.route_nearest,
        fit_wall_seconds: header.fit_wall_seconds,
        shard_wall_seconds: header.shard_wall_seconds,
    })
    .map(LoadedModel::Ensemble)
    .map_err(|e| CodecError::Malformed(e.to_string()))
}

/// The ensemble-level layout of a v3 ensemble file — everything a
/// distributed router needs (centroids, shard count, routing width)
/// *without* decoding a single shard model. This is what lets the router
/// tier hold "only centroids + client connections": it reads a few
/// kilobytes of header from a file whose shard sections may be hundreds of
/// megabytes.
#[derive(Debug, Clone)]
pub struct EnsembleLayout {
    /// Number of shards (`SHnn` sections) in the file.
    pub shards: usize,
    /// How many nearest shards answer each query, as the ensemble was
    /// trained.
    pub route_nearest: usize,
    /// Sharding strategy the ensemble was trained with.
    pub strategy: ShardStrategy,
    /// Shard centroids (`k × d`, raw feature space).
    pub centroids: Matrix,
}

/// Extracts the ensemble layout from encoded bytes. Returns a `Malformed`
/// error when the file holds a single model (no `ENSH` section).
pub fn decode_layout(bytes: &[u8]) -> Result<EnsembleLayout> {
    let (_, sections) = sections(bytes)?;
    let ensh = find(&sections, b"ENSH").ok_or(CodecError::Malformed(
        "file holds a single model, not an ensemble (no ENSH section)".to_string(),
    ))?;
    let header = dec_ensh(ensh)?;
    if header.centroids.nrows() != header.shards {
        return Err(CodecError::Malformed(format!(
            "{} centroids for {} shards",
            header.centroids.nrows(),
            header.shards
        )));
    }
    Ok(EnsembleLayout {
        shards: header.shards,
        route_nearest: header.route_nearest,
        strategy: header.strategy,
        centroids: header.centroids,
    })
}

/// Loads the ensemble layout (centroids + routing) from an ensemble file.
pub fn load_layout(path: impl AsRef<Path>) -> Result<EnsembleLayout> {
    decode_layout(&std::fs::read(path)?)
}

/// Extracts shard `index`'s complete model from encoded ensemble bytes
/// without decoding any other shard — each `SHnn` section is a full nested
/// single-model file, so a shard server pays only for its own shard's
/// checksums and matrices.
pub fn decode_shard(bytes: &[u8], index: usize) -> Result<KrrModel> {
    let (_, sections) = sections(bytes)?;
    let ensh = find(&sections, b"ENSH").ok_or(CodecError::Malformed(
        "file holds a single model, not an ensemble (no ENSH section)".to_string(),
    ))?;
    let header = dec_ensh(ensh)?;
    if index >= header.shards {
        return Err(CodecError::Malformed(format!(
            "shard index {index} out of range (file has {} shards)",
            header.shards
        )));
    }
    let blob = find(&sections, &shard_tag(index)).ok_or(CodecError::Malformed(format!(
        "missing shard section {index}"
    )))?;
    decode_model(blob)
}

/// Loads shard `index`'s model from an ensemble file (see
/// [`decode_shard`]).
pub fn load_shard(path: impl AsRef<Path>, index: usize) -> Result<KrrModel> {
    decode_shard(&std::fs::read(path)?, index)
}

/// Deserializes a *single* model. Ensemble files are refused with a
/// `Malformed` error pointing at [`decode_any`] / [`load_any`]. This is
/// deliberately non-recursive (it never descends into shard sections), so
/// the shard decodes inside [`decode_any`] cannot nest further.
pub fn decode_model(bytes: &[u8]) -> Result<KrrModel> {
    let (version, sections) = sections(bytes)?;
    if find(&sections, b"ENSH").is_some() {
        return Err(CodecError::Malformed(
            "file holds a sharded ensemble; load it with decode_any/load_any".to_string(),
        ));
    }
    decode_single(version, &sections)
}

/// Saves a trained model to `path` in the `hkrr-model/1` format.
pub fn save_model(model: &KrrModel, path: impl AsRef<Path>) -> Result<()> {
    std::fs::write(path, encode_model(model))?;
    Ok(())
}

/// Saves a sharded ensemble to `path` (format version 3).
pub fn save_ensemble(ensemble: &EnsembleKrr, path: impl AsRef<Path>) -> Result<()> {
    std::fs::write(path, encode_ensemble(ensemble))?;
    Ok(())
}

/// Loads a single model previously written by [`save_model`]. The restored
/// model needs no re-training of any kind: the HSS form and ULV factors
/// come back exactly as saved, and predictions are bitwise identical.
pub fn load_model(path: impl AsRef<Path>) -> Result<KrrModel> {
    decode_model(&std::fs::read(path)?)
}

/// Loads whatever a file holds — a single model or an ensemble — together
/// with the file's format version.
pub fn load_any(path: impl AsRef<Path>) -> Result<(u32, LoadedModel)> {
    let bytes = std::fs::read(path)?;
    let version = encoded_version(&bytes)?;
    Ok((version, decode_any(&bytes)?))
}

// ---------------------------------------------------------------------------
// Model metadata as stable text.

/// The stable, line-oriented `hkrr-serve info` output: one `key: value`
/// pair per line (shard lines use the key `shard <i>`), covering the
/// format/version, the solver kind, the PCG configuration, and — for
/// ensembles — the shard layout. Every codec version produces the same
/// keys (older files surface the defaults their era implied), so scripts
/// can parse the output without sniffing versions.
pub fn info_lines(version: u32, model: &LoadedModel) -> Vec<String> {
    let mut lines = vec![
        format!("schema: {SCHEMA}"),
        format!("version: {version}"),
        format!(
            "kind: {}",
            if model.is_ensemble() {
                "ensemble"
            } else {
                "single"
            }
        ),
        format!("dim: {}", model.dim()),
        format!("n_train: {}", model.num_train()),
    ];
    let config_lines = |config: &KrrConfig, lines: &mut Vec<String>| {
        lines.push(format!("solver: {}", config.solver.label()));
        lines.push(format!("clustering: {}", config.clustering.label()));
        lines.push(format!("h: {:e}", config.h));
        lines.push(format!("lambda: {:e}", config.lambda));
        lines.push(format!("tolerance: {:e}", config.tolerance));
        lines.push(format!("pcg_tolerance: {:e}", config.pcg_tolerance));
        lines.push(format!("pcg_max_iterations: {}", config.pcg_max_iterations));
        lines.push(format!("pcg_loosening: {:e}", config.pcg_loosening));
        // Pre-v4 files surface the f64 their era implied (dec_conf fills
        // the default), so the key is stable across versions.
        lines.push(format!("factor_precision: {}", config.factor_precision));
    };
    match model {
        LoadedModel::Single(m) => {
            config_lines(m.config(), &mut lines);
            lines.push(format!(
                "factors: {}",
                if m.factors().is_some() { "yes" } else { "no" }
            ));
            lines.push("shards: 1".to_string());
        }
        LoadedModel::Ensemble(e) => {
            config_lines(e.models()[0].config(), &mut lines);
            lines.push(format!(
                "factors: {}",
                if e.models().iter().all(|m| m.factors().is_some()) {
                    "yes"
                } else {
                    "no"
                }
            ));
            lines.push(format!("shards: {}", e.num_shards()));
            lines.push(format!("route_nearest: {}", e.router().route_nearest()));
            lines.push(format!("strategy: {}", e.strategy().label()));
            for (i, (model, report)) in e
                .models()
                .iter()
                .zip(e.report().shard_reports.iter())
                .enumerate()
            {
                lines.push(format!(
                    "shard {i}: n={} solver={} factorization_s={:.6} max_rank={}",
                    model.num_train(),
                    model.config().solver.label(),
                    report.factorization_seconds,
                    report.max_rank
                ));
            }
        }
    }
    lines
}

#[cfg(test)]
mod tests {
    use super::*;
    use hkrr_core::KrrConfig;
    use hkrr_datasets::registry::LETTER;

    fn trained(solver: SolverKind, n: usize) -> (KrrModel, hkrr_datasets::Dataset) {
        let ds = hkrr_datasets::generate(&LETTER, n, 32, 7);
        let cfg = KrrConfig {
            h: LETTER.default_h,
            lambda: LETTER.default_lambda,
            solver,
            ..KrrConfig::default()
        };
        let model = KrrModel::fit(&ds.train, &ds.train_labels, &cfg).unwrap();
        (model, ds)
    }

    #[test]
    fn crc32_known_vectors() {
        // The classic IEEE test vector.
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn hss_model_roundtrips_bitwise_with_factors() {
        let (model, ds) = trained(SolverKind::Hss, 220);
        let bytes = encode_model(&model);
        let loaded = decode_model(&bytes).unwrap();
        assert_eq!(loaded.weights(), model.weights());
        assert_eq!(loaded.permutation(), model.permutation());
        assert_eq!(
            loaded.decision_values(&ds.test),
            model.decision_values(&ds.test),
            "reloaded predictions must be bitwise identical"
        );
        // The factorization came back: new-label solves work without any
        // re-factorization and match the original weights bitwise.
        assert!(loaded.factors().is_some());
        assert_eq!(
            loaded.solve_new_labels(&ds.train_labels).unwrap(),
            model.weights()
        );
    }

    #[test]
    fn hss_pcg_model_roundtrips_with_pcg_metrics() {
        let (model, ds) = trained(SolverKind::HssPcg, 180);
        let loaded = decode_model(&encode_model(&model)).unwrap();
        assert_eq!(
            loaded.decision_values(&ds.test),
            model.decision_values(&ds.test)
        );
        assert_eq!(loaded.report().solver, SolverKind::HssPcg);
        assert!(loaded.report().pcg_iterations > 0);
        assert_eq!(
            loaded.report().pcg_iterations,
            model.report().pcg_iterations
        );
        assert_eq!(
            loaded.report().pcg_residual_history,
            model.report().pcg_residual_history
        );
        // A new-label solve re-runs PCG against the retained loose ULV
        // preconditioner: same arithmetic, bitwise-identical weights.
        assert!(loaded.factors().is_some());
        assert_eq!(
            loaded.solve_new_labels(&ds.train_labels).unwrap(),
            model.weights()
        );
    }

    #[test]
    fn dense_model_roundtrips_without_factors() {
        let (model, ds) = trained(SolverKind::DenseCholesky, 150);
        let loaded = decode_model(&encode_model(&model)).unwrap();
        assert!(loaded.factors().is_none());
        assert_eq!(
            loaded.decision_values(&ds.test),
            model.decision_values(&ds.test)
        );
        assert_eq!(loaded.report().solver, SolverKind::DenseCholesky);
    }

    #[test]
    fn save_load_through_a_file() {
        let (model, ds) = trained(SolverKind::Hss, 180);
        let path = std::env::temp_dir().join("hkrr_codec_test_model.hkrr");
        save_model(&model, &path).unwrap();
        let loaded = load_model(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(loaded.predict(&ds.test), model.predict(&ds.test));
    }

    #[test]
    fn bad_magic_is_rejected() {
        let (model, _) = trained(SolverKind::Hss, 96);
        let mut bytes = encode_model(&model);
        bytes[0] = b'X';
        assert!(matches!(decode_model(&bytes), Err(CodecError::BadMagic)));
        // An unrelated file is also BadMagic, even when tiny.
        assert!(matches!(
            decode_model(b"PK\x03\x04"),
            Err(CodecError::BadMagic)
        ));
        assert!(matches!(decode_model(b""), Err(CodecError::BadMagic)));
    }

    #[test]
    fn wrong_version_is_rejected() {
        let (model, _) = trained(SolverKind::Hss, 96);
        let mut bytes = encode_model(&model);
        bytes[8..12].copy_from_slice(&99u32.to_le_bytes());
        assert!(matches!(
            decode_model(&bytes),
            Err(CodecError::UnsupportedVersion(99))
        ));
    }

    #[test]
    fn truncation_is_detected_at_every_length() {
        let (model, _) = trained(SolverKind::Hss, 96);
        let bytes = encode_model(&model);
        // A sweep of truncation points: header, table, payload. Every one
        // must produce a typed error, never a panic or a silent success.
        for cut in [9, 15, 40, bytes.len() / 2, bytes.len() - 1] {
            let err = decode_model(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(err, CodecError::Truncated | CodecError::BadMagic),
                "cut at {cut}: unexpected {err:?}"
            );
        }
    }

    #[test]
    fn flipped_payload_byte_is_a_checksum_mismatch() {
        let (model, _) = trained(SolverKind::Hss, 96);
        let mut bytes = encode_model(&model);
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
        assert!(matches!(
            decode_model(&bytes),
            Err(CodecError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn invalid_config_with_valid_crc_is_rejected_as_malformed() {
        let (model, _) = trained(SolverKind::HssPcg, 96);
        let mut bytes = encode_model(&model);
        // Locate CONF in the section table.
        let mut pos = HEADER_LEN;
        while &bytes[pos..pos + 4] != b"CONF" {
            pos += TABLE_ENTRY_LEN;
        }
        let start = u64::from_le_bytes(bytes[pos + 4..pos + 12].try_into().unwrap()) as usize;
        let len = u64::from_le_bytes(bytes[pos + 12..pos + 20].try_into().unwrap()) as usize;
        // CONF ends with the kernel (Gaussian: 1-byte tag + f64 = 9 bytes)
        // preceded by the v4 factor-precision byte; pcg_loosening is the
        // f64 right before those. 0.5 < 1 is a value
        // `KrrConfig::validate` forbids and `fit` can never have written.
        let loosening = start + len - 9 - 1 - 8;
        bytes[loosening..loosening + 8].copy_from_slice(&0.5f64.to_le_bytes());
        // Recompute the CRC so only the semantic validation can catch it.
        let crc = crc32(&bytes[start..start + len]);
        bytes[pos + 20..pos + 24].copy_from_slice(&crc.to_le_bytes());
        match decode_model(&bytes) {
            Err(CodecError::Malformed(m)) => assert!(m.contains("pcg_loosening"), "{m}"),
            other => panic!("invalid config must be Malformed, got {other:?}"),
        }
    }

    fn trained_f32(n: usize) -> (KrrModel, hkrr_datasets::Dataset) {
        let ds = hkrr_datasets::generate(&LETTER, n, 32, 7);
        let cfg = KrrConfig {
            h: LETTER.default_h,
            lambda: LETTER.default_lambda,
            solver: SolverKind::HssPcg,
            factor_precision: hkrr_core::FactorPrecision::F32,
            ..KrrConfig::default()
        };
        let model = KrrModel::fit(&ds.train, &ds.train_labels, &cfg).unwrap();
        (model, ds)
    }

    /// Locates a section's `(payload_start, payload_len, crc_field_pos)`.
    fn span(bytes: &[u8], tag: &[u8; 4]) -> (usize, usize, usize) {
        let mut pos = HEADER_LEN;
        while &bytes[pos..pos + 4] != tag {
            pos += TABLE_ENTRY_LEN;
        }
        let start = u64::from_le_bytes(bytes[pos + 4..pos + 12].try_into().unwrap()) as usize;
        let len = u64::from_le_bytes(bytes[pos + 12..pos + 20].try_into().unwrap()) as usize;
        (start, len, pos + 20)
    }

    #[test]
    fn f32_factor_model_roundtrips_bitwise() {
        use hkrr_core::FactorPrecision;
        let (model, ds) = trained_f32(180);
        assert_eq!(
            model.factors().unwrap().ulv.precision(),
            FactorPrecision::F32
        );
        let bytes = encode_model(&model);
        let loaded = decode_model(&bytes).unwrap();
        // The f32 store comes back exactly: same precision, same bytes,
        // bitwise-identical predictions and re-solves.
        let ulv = &loaded.factors().unwrap().ulv;
        assert_eq!(ulv.precision(), FactorPrecision::F32);
        assert_eq!(
            ulv.memory_bytes(),
            model.factors().unwrap().ulv.memory_bytes()
        );
        assert_eq!(loaded.config().factor_precision, FactorPrecision::F32);
        assert_eq!(loaded.report().factor_bytes, model.report().factor_bytes);
        assert!(loaded.report().factor_bytes > 0);
        assert_eq!(
            loaded.decision_values(&ds.test),
            model.decision_values(&ds.test)
        );
        assert_eq!(
            loaded.solve_new_labels(&ds.train_labels).unwrap(),
            model.weights()
        );
    }

    #[test]
    fn f32_ulv_section_is_less_than_half_the_f64_one() {
        let (f32_model, _) = trained_f32(180);
        let (f64_model, _) = trained(SolverKind::HssPcg, 180);
        let f32_bytes = encode_model(&f32_model);
        let f64_bytes = encode_model(&f64_model);
        let (_, f32_len, _) = span(&f32_bytes, b"ULVF");
        let (_, f64_len, _) = span(&f64_bytes, b"ULVF");
        assert!(
            f32_len * 2 < f64_len,
            "f32 ULVF {f32_len}B vs f64 ULVF {f64_len}B"
        );
    }

    #[test]
    fn f32_factors_are_refused_below_version_4() {
        let (model, _) = trained_f32(120);
        for version in [2u32, 3] {
            match encode_model_as_version(&model, version) {
                Err(CodecError::Malformed(m)) => assert!(m.contains("f32"), "{m}"),
                other => panic!("v{version} must refuse f32 factors, got {other:?}"),
            }
        }
        // The current version carries them fine.
        assert!(encode_model_as_version(&model, VERSION).is_ok());
    }

    #[test]
    fn flipped_byte_in_f32_ulv_section_is_a_checksum_mismatch() {
        let (model, _) = trained_f32(120);
        let mut bytes = encode_model(&model);
        let (start, len, _) = span(&bytes, b"ULVF");
        bytes[start + len / 2] ^= 0x10;
        match decode_model(&bytes) {
            Err(CodecError::ChecksumMismatch { section }) => assert_eq!(section, "ULVF"),
            other => panic!("expected ChecksumMismatch, got {other:?}"),
        }
    }

    #[test]
    fn bad_precision_tag_with_valid_crc_is_malformed() {
        let (model, _) = trained_f32(120);
        let mut bytes = encode_model(&model);
        let (start, len, crc_pos) = span(&bytes, b"ULVF");
        // The precision tag is the first payload byte; 7 is not a valid
        // precision. Recompute the CRC so only the typed tag check fires.
        bytes[start] = 7;
        let crc = crc32(&bytes[start..start + len]);
        bytes[crc_pos..crc_pos + 4].copy_from_slice(&crc.to_le_bytes());
        match decode_model(&bytes) {
            Err(CodecError::Malformed(m)) => assert!(m.contains("precision"), "{m}"),
            other => panic!("expected Malformed, got {other:?}"),
        }
    }

    #[test]
    fn missing_required_section_is_typed() {
        let (model, _) = trained(SolverKind::DenseCholesky, 80);
        let mut bytes = encode_model(&model);
        // Overwrite the WGHT tag in the table; the checksummed payload is
        // untouched, so decoding proceeds to the missing-section check.
        let mut pos = HEADER_LEN;
        while &bytes[pos..pos + 4] != b"WGHT" {
            pos += TABLE_ENTRY_LEN;
        }
        bytes[pos..pos + 4].copy_from_slice(b"XXXX");
        assert!(matches!(
            decode_model(&bytes),
            Err(CodecError::MissingSection("WGHT"))
        ));
    }
}
