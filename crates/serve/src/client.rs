//! The reusable client half of the `HKRB` protocol.
//!
//! One [`Client`] wraps one blocking TCP connection in binary (framed)
//! mode. It is used by three layers that would otherwise re-implement the
//! framing:
//!
//! * the load generator ([`crate::loadgen`]) hammering a server,
//! * the fan-out router ([`crate::router`]), which is a protocol *client*
//!   of N shard servers while remaining a protocol *server* to the
//!   outside,
//! * programmatic callers embedding a prediction client.
//!
//! Connections opened with [`Client::connect_with`] carry connect and I/O
//! deadlines, so a router fanning out to a shard that just went dark gets
//! a typed [`ServeError::Io`] after the timeout instead of hanging a
//! production query forever.

use crate::protocol::{self, HealthReport, Request, ServerInfo, WirePrediction};
use crate::ServeError;
use std::io::Write;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// A thin blocking client for the binary protocol.
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connects without deadlines and sends the binary hello. Reads block
    /// until the server answers — fine for trusted local use (tests,
    /// loadgen against a healthy server); the router tier uses
    /// [`Client::connect_with`] instead.
    pub fn connect(addr: &str) -> Result<Client, ServeError> {
        let stream = TcpStream::connect(addr)?;
        Client::hello(stream)
    }

    /// Connects with a connect deadline and a per-read/write I/O deadline,
    /// then sends the binary hello. `io_timeout` bounds every subsequent
    /// call on this client: a peer that accepted the connection and then
    /// stopped answering surfaces as a timeout [`ServeError::Io`], never a
    /// hang.
    pub fn connect_with(
        addr: &str,
        connect_timeout: Duration,
        io_timeout: Duration,
    ) -> Result<Client, ServeError> {
        // `connect_timeout` needs a resolved SocketAddr.
        let sock_addr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| ServeError::Protocol(format!("cannot resolve address {addr:?}")))?;
        let stream = TcpStream::connect_timeout(&sock_addr, connect_timeout)?;
        stream.set_read_timeout(Some(io_timeout))?;
        stream.set_write_timeout(Some(io_timeout))?;
        Client::hello(stream)
    }

    fn hello(mut stream: TcpStream) -> Result<Client, ServeError> {
        stream.set_nodelay(true).ok();
        stream.write_all(&protocol::BINARY_HELLO)?;
        stream.flush()?;
        Ok(Client { stream })
    }

    /// One request/response round trip; returns the OK body or the typed
    /// error the server sent.
    fn call(&mut self, req: &Request) -> Result<Vec<u8>, ServeError> {
        protocol::write_frame(&mut self.stream, &protocol::encode_request(req))?;
        let frame = protocol::read_frame(&mut self.stream)?;
        protocol::decode_response(&frame).map(<[u8]>::to_vec)
    }

    /// Predicts one point.
    pub fn predict(&mut self, point: Vec<f64>) -> Result<WirePrediction, ServeError> {
        let body = self.call(&Request::Predict(point))?;
        protocol::decode_prediction(&body)
    }

    /// Predicts one point under a cross-process trace context
    /// ([`protocol::OP_PREDICT_TRACED`]): the server's engine spans adopt
    /// `trace_id` and record `parent_span` as their causal parent. Only
    /// send this to peers whose [`Client::health`] reports
    /// [`HealthReport::supports_traced_predict`]; a pre-0x08 server
    /// answers with an unknown-opcode rejection.
    pub fn predict_traced(
        &mut self,
        point: Vec<f64>,
        trace_id: u128,
        parent_span: u64,
    ) -> Result<WirePrediction, ServeError> {
        let body = self.call(&Request::PredictTraced {
            point,
            trace_id,
            parent_span,
        })?;
        protocol::decode_prediction(&body)
    }

    /// Fetches the server's stats JSON.
    pub fn stats(&mut self) -> Result<String, ServeError> {
        let body = self.call(&Request::Stats)?;
        Ok(String::from_utf8_lossy(&body).into_owned())
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), ServeError> {
        self.call(&Request::Ping).map(|_| ())
    }

    /// Model metadata plus server identity: dimension, training points,
    /// uptime, and the build version/stamp (see [`ServerInfo`]).
    pub fn info(&mut self) -> Result<ServerInfo, ServeError> {
        let body = self.call(&Request::Info)?;
        protocol::decode_info(&body)
    }

    /// Scrapes the server's metrics registry as Prometheus text
    /// exposition (`# HELP`/`# TYPE` plus one sample per line).
    pub fn metrics(&mut self) -> Result<String, ServeError> {
        let body = self.call(&Request::Metrics)?;
        Ok(String::from_utf8_lossy(&body).into_owned())
    }

    /// Health probe: role, predict-request count, and the peer's protocol
    /// capability (see [`HealthReport`]). Unlike [`Client::ping`], this
    /// proves the peer speaks the binary protocol and says whether it is
    /// a model server or a router — and whether it accepts 0x08 traced
    /// predicts.
    pub fn health(&mut self) -> Result<HealthReport, ServeError> {
        let body = self.call(&Request::Health)?;
        protocol::decode_health(&body)
    }

    /// Asks the server to re-load its model from its source and hot-swap
    /// it; returns the refreshed `(num_models, n_train)`.
    pub fn refresh(&mut self) -> Result<(u32, u64), ServeError> {
        let body = self.call(&Request::Refresh)?;
        protocol::decode_refreshed(&body)
    }
}
