//! # hkrr-linalg
//!
//! Dense linear-algebra substrate for the `hkrr` workspace.
//!
//! The paper's reference implementation (STRUMPACK) sits on top of
//! LAPACK/ScaLAPACK.  This crate re-implements the pieces the hierarchical
//! formats and the kernel-ridge-regression pipeline actually need, from
//! scratch and with shared-memory parallelism via rayon:
//!
//! * a row-major dense [`Matrix`] type with the usual constructors and views,
//! * parallel BLAS-like kernels ([`blas`]): GEMM, GEMV, SYRK, dot/axpy/nrm2,
//! * Householder and column-pivoted QR ([`qr`]),
//! * one-sided Jacobi SVD ([`svd`]),
//! * a symmetric Jacobi eigensolver ([`eig`]) used by the PCA clustering,
//! * LU with partial pivoting ([`lu`]), Cholesky ([`cholesky`]) and
//!   triangular solves ([`triangular`]),
//! * low-rank factors and truncation helpers ([`low_rank`]),
//! * matrix-free preconditioned conjugate gradients with a
//!   [`Preconditioner`] trait ([`iterative`]) — the Krylov side of the
//!   HSS-preconditioned solver path,
//! * a deterministic PCG64 random generator ([`random`]) so every experiment
//!   in the workspace is reproducible without an external RNG crate,
//! * the [`LinearOperator`] trait that provides the *partially matrix-free*
//!   interface (element access + matvec) the randomized HSS construction
//!   requires.
//!
//! All routines are written for the matrix sizes that occur inside
//! hierarchical formats (leaf blocks and skinny sampling matrices, typically
//! well under a few thousand rows), favouring robustness and clarity over
//! squeezing the last flop out of the machine.
//!
//! ## Dense backends
//!
//! Every level-3 product (GEMM/SYRK/TRSM) and bulk distance kernel routes
//! through a single dispatch seam, the [`DenseBackend`] trait ([`backend`]):
//! a `scalar` reference, a cache-`blocked` substrate, and an `avx2`
//! SIMD substrate selected at startup by runtime feature detection (or
//! pinned via the `HKRR_DENSE_BACKEND` environment variable).  Results are
//! bitwise deterministic within a backend at any thread count and
//! accuracy-bounded across backends.
//!
//! ## Mixed precision
//!
//! The mixed-precision factor store lives behind a sibling seam:
//! [`MatrixF32`] holds demoted factor panels, [`LuF32`] the demoted root
//! factorization, and [`DenseBackendF32`] ([`backend::fp32`]) the f32
//! kernels that apply them — including the `f32 → f64` accumulating GEMV
//! used where single-precision factors meet double-precision iteration
//! vectors.  The same `HKRR_DENSE_BACKEND` choice governs both seams.

#![warn(missing_docs)]

pub mod backend;
pub mod blas;
pub mod cholesky;
pub mod eig;
pub mod iterative;
pub mod low_rank;
pub mod lu;
pub mod matrix;
pub mod matrix_f32;
pub mod operator;
pub mod qr;
pub mod random;
pub mod svd;
pub mod triangular;

pub use backend::{active_f32, dense_backend, BackendKind, DenseBackend, DenseBackendF32};
pub use iterative::{pcg, JacobiPreconditioner, PcgOptions, PcgResult, Preconditioner};
pub use low_rank::LowRank;
pub use lu::{is_permutation, LuF32};
pub use matrix::Matrix;
pub use matrix_f32::MatrixF32;
pub use operator::LinearOperator;
pub use random::Pcg64;

/// Convenience result alias used across the workspace for fallible
/// factorizations.
pub type LinalgResult<T> = Result<T, LinalgError>;

/// Errors produced by the factorization routines in this crate.
#[derive(Debug, Clone, PartialEq)]
pub enum LinalgError {
    /// The operation requires matching dimensions and they do not match.
    DimensionMismatch {
        /// Human-readable description of the offending operation.
        context: String,
    },
    /// The matrix is singular (or numerically singular) where a
    /// non-singular matrix is required.
    Singular {
        /// Index of the pivot (row/column) at which singularity was detected.
        pivot: usize,
    },
    /// Cholesky factorization was attempted on a matrix that is not
    /// (numerically) positive definite.
    NotPositiveDefinite {
        /// Index of the diagonal entry that failed.
        pivot: usize,
    },
    /// An iterative routine failed to converge within its iteration budget.
    NoConvergence {
        /// Number of iterations performed before giving up.
        iterations: usize,
    },
}

impl std::fmt::Display for LinalgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinalgError::DimensionMismatch { context } => {
                write!(f, "dimension mismatch: {context}")
            }
            LinalgError::Singular { pivot } => {
                write!(f, "matrix is singular at pivot {pivot}")
            }
            LinalgError::NotPositiveDefinite { pivot } => {
                write!(f, "matrix is not positive definite at pivot {pivot}")
            }
            LinalgError::NoConvergence { iterations } => {
                write!(f, "no convergence after {iterations} iterations")
            }
        }
    }
}

impl std::error::Error for LinalgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_is_informative() {
        let e = LinalgError::DimensionMismatch {
            context: "gemm A(2x3) * B(4x5)".to_string(),
        };
        assert!(e.to_string().contains("gemm"));
        let e = LinalgError::Singular { pivot: 3 };
        assert!(e.to_string().contains('3'));
        let e = LinalgError::NotPositiveDefinite { pivot: 1 };
        assert!(e.to_string().contains("positive definite"));
        let e = LinalgError::NoConvergence { iterations: 100 };
        assert!(e.to_string().contains("100"));
    }
}
