//! Dense row-major matrix type used throughout the workspace.

use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense, row-major, `f64` matrix.
///
/// The storage layout is row-major because the dominant access pattern in
/// the hierarchical-matrix code is extracting row blocks (index sets of a
/// cluster) and multiplying skinny sampling matrices, both of which stream
/// rows.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows x cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a `rows x cols` matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix from a generator function `f(i, j)`.
    pub fn from_fn<F: FnMut(usize, usize) -> f64>(rows: usize, cols: usize, mut f: F) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Creates a matrix from a row-major data vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "Matrix::from_vec: data length {} does not match {}x{}",
            data.len(),
            rows,
            cols
        );
        Matrix { rows, cols, data }
    }

    /// Creates a matrix from a slice of rows.
    ///
    /// # Panics
    /// Panics if the rows do not all have the same length.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        if rows.is_empty() {
            return Matrix::zeros(0, 0);
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "Matrix::from_rows: ragged rows");
            data.extend_from_slice(r);
        }
        Matrix {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Creates a diagonal matrix from the given diagonal entries.
    pub fn from_diag(diag: &[f64]) -> Self {
        let n = diag.len();
        let mut m = Matrix::zeros(n, n);
        for (i, &d) in diag.iter().enumerate() {
            m[(i, i)] = d;
        }
        m
    }

    /// Creates a column vector (`n x 1`) from a slice.
    pub fn column_vector(v: &[f64]) -> Self {
        Matrix {
            rows: v.len(),
            cols: 1,
            data: v.to_vec(),
        }
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Returns `true` when the matrix has zero rows or zero columns.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.rows == 0 || self.cols == 0
    }

    /// Returns `true` when the matrix is square.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Immutable access to the underlying row-major data.
    #[inline]
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable access to the underlying row-major data.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the matrix and returns the underlying row-major data.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Immutable view of row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        debug_assert!(i < self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable view of row `i` as a slice.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        debug_assert!(i < self.rows);
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copies column `j` into a new vector.
    pub fn col(&self, j: usize) -> Vec<f64> {
        debug_assert!(j < self.cols);
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// Overwrites column `j` with the values in `v`.
    pub fn set_col(&mut self, j: usize, v: &[f64]) {
        assert_eq!(v.len(), self.rows, "set_col: length mismatch");
        for i in 0..self.rows {
            self[(i, j)] = v[i];
        }
    }

    /// Overwrites row `i` with the values in `v`.
    pub fn set_row(&mut self, i: usize, v: &[f64]) {
        assert_eq!(v.len(), self.cols, "set_row: length mismatch");
        self.row_mut(i).copy_from_slice(v);
    }

    /// Returns the transposed matrix.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Extracts the contiguous submatrix with rows `r0..r1` and columns
    /// `c0..c1` (half-open ranges).
    pub fn submatrix(&self, r0: usize, r1: usize, c0: usize, c1: usize) -> Matrix {
        assert!(r0 <= r1 && r1 <= self.rows, "submatrix: bad row range");
        assert!(c0 <= c1 && c1 <= self.cols, "submatrix: bad col range");
        let mut out = Matrix::zeros(r1 - r0, c1 - c0);
        for i in r0..r1 {
            out.row_mut(i - r0).copy_from_slice(&self.row(i)[c0..c1]);
        }
        out
    }

    /// Extracts the (possibly non-contiguous) submatrix `A(rows, cols)`.
    pub fn select(&self, row_idx: &[usize], col_idx: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(row_idx.len(), col_idx.len());
        for (oi, &i) in row_idx.iter().enumerate() {
            for (oj, &j) in col_idx.iter().enumerate() {
                out[(oi, oj)] = self[(i, j)];
            }
        }
        out
    }

    /// Extracts the rows of `A` listed in `row_idx` (all columns).
    pub fn select_rows(&self, row_idx: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(row_idx.len(), self.cols);
        for (oi, &i) in row_idx.iter().enumerate() {
            out.row_mut(oi).copy_from_slice(self.row(i));
        }
        out
    }

    /// Extracts the columns of `A` listed in `col_idx` (all rows).
    pub fn select_cols(&self, col_idx: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(self.rows, col_idx.len());
        for i in 0..self.rows {
            for (oj, &j) in col_idx.iter().enumerate() {
                out[(i, oj)] = self[(i, j)];
            }
        }
        out
    }

    /// Writes `block` into this matrix with its upper-left corner at
    /// `(r0, c0)`.
    pub fn set_block(&mut self, r0: usize, c0: usize, block: &Matrix) {
        assert!(
            r0 + block.rows <= self.rows && c0 + block.cols <= self.cols,
            "set_block: block does not fit"
        );
        for i in 0..block.rows {
            self.row_mut(r0 + i)[c0..c0 + block.cols].copy_from_slice(block.row(i));
        }
    }

    /// Horizontally concatenates `self` and `other` (same number of rows).
    pub fn hstack(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "hstack: row mismatch");
        let mut out = Matrix::zeros(self.rows, self.cols + other.cols);
        out.set_block(0, 0, self);
        out.set_block(0, self.cols, other);
        out
    }

    /// Vertically concatenates `self` and `other` (same number of columns).
    pub fn vstack(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "vstack: col mismatch");
        let mut out = Matrix::zeros(self.rows + other.rows, self.cols);
        out.set_block(0, 0, self);
        out.set_block(self.rows, 0, other);
        out
    }

    /// Builds a block-diagonal matrix `diag(self, other)`.
    pub fn block_diag(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.rows + other.rows, self.cols + other.cols);
        out.set_block(0, 0, self);
        out.set_block(self.rows, self.cols, other);
        out
    }

    /// Adds `value` to each diagonal entry in place (the `K + λI` shift of
    /// Algorithm 1).
    pub fn shift_diagonal(&mut self, value: f64) {
        let n = self.rows.min(self.cols);
        for i in 0..n {
            self[(i, i)] += value;
        }
    }

    /// Returns the main diagonal as a vector.
    pub fn diagonal(&self) -> Vec<f64> {
        let n = self.rows.min(self.cols);
        (0..n).map(|i| self[(i, i)]).collect()
    }

    /// Frobenius norm.
    pub fn norm_fro(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Maximum absolute entry (the max norm).
    pub fn norm_max(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |acc, x| acc.max(x.abs()))
    }

    /// One norm (maximum absolute column sum).
    pub fn norm_one(&self) -> f64 {
        let mut best = 0.0_f64;
        for j in 0..self.cols {
            let s: f64 = (0..self.rows).map(|i| self[(i, j)].abs()).sum();
            best = best.max(s);
        }
        best
    }

    /// Infinity norm (maximum absolute row sum).
    pub fn norm_inf(&self) -> f64 {
        let mut best = 0.0_f64;
        for i in 0..self.rows {
            let s: f64 = self.row(i).iter().map(|x| x.abs()).sum();
            best = best.max(s);
        }
        best
    }

    /// In-place scaling by a scalar.
    pub fn scale(&mut self, alpha: f64) {
        for x in &mut self.data {
            *x *= alpha;
        }
    }

    /// Returns `self * alpha` as a new matrix.
    pub fn scaled(&self, alpha: f64) -> Matrix {
        let mut out = self.clone();
        out.scale(alpha);
        out
    }

    /// Element-wise sum `self + other`.
    pub fn add(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.shape(), other.shape(), "add: shape mismatch");
        let data = self
            .data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| a + b)
            .collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Element-wise difference `self - other`.
    pub fn sub(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.shape(), other.shape(), "sub: shape mismatch");
        let data = self
            .data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| a - b)
            .collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// In-place `self += alpha * other`.
    pub fn axpy(&mut self, alpha: f64, other: &Matrix) {
        assert_eq!(self.shape(), other.shape(), "axpy: shape mismatch");
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += alpha * b;
        }
    }

    /// Applies a symmetric permutation: returns `A(perm, perm)`.
    pub fn permute_symmetric(&self, perm: &[usize]) -> Matrix {
        assert!(self.is_square(), "permute_symmetric: matrix must be square");
        assert_eq!(perm.len(), self.rows, "permute_symmetric: perm length");
        Matrix::from_fn(self.rows, self.cols, |i, j| self[(perm[i], perm[j])])
    }

    /// Applies a row permutation: returns `A(perm, :)`.
    pub fn permute_rows(&self, perm: &[usize]) -> Matrix {
        assert_eq!(perm.len(), self.rows, "permute_rows: perm length");
        self.select_rows(perm)
    }

    /// Checks symmetry up to an absolute tolerance.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if !self.is_square() {
            return false;
        }
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                if (self[(i, j)] - self[(j, i)]).abs() > tol {
                    return false;
                }
            }
        }
        true
    }

    /// Approximate equality check with absolute tolerance `tol`.
    pub fn approx_eq(&self, other: &Matrix, tol: f64) -> bool {
        self.shape() == other.shape()
            && self
                .data
                .iter()
                .zip(other.data.iter())
                .all(|(a, b)| (a - b).abs() <= tol)
    }

    /// Memory footprint of the matrix payload in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<f64>()
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols, "index out of bounds");
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols, "index out of bounds");
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let max_show = 8;
        for i in 0..self.rows.min(max_show) {
            write!(f, "  ")?;
            for j in 0..self.cols.min(max_show) {
                write!(f, "{:10.4} ", self[(i, j)])?;
            }
            if self.cols > max_show {
                write!(f, "...")?;
            }
            writeln!(f)?;
        }
        if self.rows > max_show {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_identity() {
        let z = Matrix::zeros(3, 4);
        assert_eq!(z.shape(), (3, 4));
        assert!(z.data().iter().all(|&x| x == 0.0));
        let i = Matrix::identity(3);
        assert_eq!(i[(0, 0)], 1.0);
        assert_eq!(i[(1, 0)], 0.0);
        assert_eq!(i.diagonal(), vec![1.0, 1.0, 1.0]);
    }

    #[test]
    fn from_fn_and_indexing() {
        let m = Matrix::from_fn(2, 3, |i, j| (i * 10 + j) as f64);
        assert_eq!(m[(0, 0)], 0.0);
        assert_eq!(m[(1, 2)], 12.0);
        assert_eq!(m.row(1), &[10.0, 11.0, 12.0]);
        assert_eq!(m.col(2), vec![2.0, 12.0]);
    }

    #[test]
    fn transpose_roundtrip() {
        let m = Matrix::from_fn(3, 5, |i, j| (i + 2 * j) as f64);
        let t = m.transpose();
        assert_eq!(t.shape(), (5, 3));
        assert_eq!(t[(4, 2)], m[(2, 4)]);
        assert!(m.approx_eq(&t.transpose(), 0.0));
    }

    #[test]
    fn submatrix_and_select() {
        let m = Matrix::from_fn(4, 4, |i, j| (i * 4 + j) as f64);
        let s = m.submatrix(1, 3, 2, 4);
        assert_eq!(s.shape(), (2, 2));
        assert_eq!(s[(0, 0)], m[(1, 2)]);
        let sel = m.select(&[0, 3], &[1, 2]);
        assert_eq!(sel[(1, 0)], m[(3, 1)]);
        let rows = m.select_rows(&[2, 0]);
        assert_eq!(rows.row(0), m.row(2));
        let cols = m.select_cols(&[3]);
        assert_eq!(cols.col(0), m.col(3));
    }

    #[test]
    fn stacking_and_block_diag() {
        let a = Matrix::filled(2, 2, 1.0);
        let b = Matrix::filled(2, 2, 2.0);
        let h = a.hstack(&b);
        assert_eq!(h.shape(), (2, 4));
        assert_eq!(h[(0, 3)], 2.0);
        let v = a.vstack(&b);
        assert_eq!(v.shape(), (4, 2));
        assert_eq!(v[(3, 0)], 2.0);
        let d = a.block_diag(&b);
        assert_eq!(d.shape(), (4, 4));
        assert_eq!(d[(0, 3)], 0.0);
        assert_eq!(d[(3, 3)], 2.0);
    }

    #[test]
    fn set_block_roundtrip() {
        let mut m = Matrix::zeros(5, 5);
        let b = Matrix::filled(2, 3, 7.0);
        m.set_block(1, 2, &b);
        assert_eq!(m[(1, 2)], 7.0);
        assert_eq!(m[(2, 4)], 7.0);
        assert_eq!(m[(0, 0)], 0.0);
        assert!(m.submatrix(1, 3, 2, 5).approx_eq(&b, 0.0));
    }

    #[test]
    fn norms() {
        let m = Matrix::from_vec(2, 2, vec![3.0, 0.0, -4.0, 0.0]);
        assert!((m.norm_fro() - 5.0).abs() < 1e-12);
        assert_eq!(m.norm_max(), 4.0);
        assert_eq!(m.norm_one(), 7.0);
        assert_eq!(m.norm_inf(), 4.0);
    }

    #[test]
    fn shift_diagonal_adds_lambda() {
        let mut m = Matrix::identity(3);
        m.shift_diagonal(2.5);
        assert_eq!(m[(0, 0)], 3.5);
        assert_eq!(m[(1, 0)], 0.0);
    }

    #[test]
    fn arithmetic() {
        let a = Matrix::from_fn(2, 2, |i, j| (i + j) as f64);
        let b = Matrix::identity(2);
        let s = a.add(&b);
        assert_eq!(s[(0, 0)], 1.0);
        let d = s.sub(&b);
        assert!(d.approx_eq(&a, 0.0));
        let mut c = a.clone();
        c.axpy(2.0, &b);
        assert_eq!(c[(1, 1)], a[(1, 1)] + 2.0);
        assert_eq!(a.scaled(3.0)[(1, 1)], 6.0);
    }

    #[test]
    fn symmetric_permutation() {
        let m = Matrix::from_fn(3, 3, |i, j| (i * 3 + j) as f64);
        let p = vec![2, 0, 1];
        let pm = m.permute_symmetric(&p);
        assert_eq!(pm[(0, 0)], m[(2, 2)]);
        assert_eq!(pm[(0, 1)], m[(2, 0)]);
        assert_eq!(pm[(2, 1)], m[(1, 0)]);
    }

    #[test]
    fn symmetry_check() {
        let s = Matrix::from_fn(3, 3, |i, j| (i + j) as f64);
        assert!(s.is_symmetric(0.0));
        let ns = Matrix::from_fn(3, 3, |i, j| (i * 3 + j) as f64);
        assert!(!ns.is_symmetric(1e-12));
        assert!(!Matrix::zeros(2, 3).is_symmetric(1.0));
    }

    #[test]
    fn memory_accounting() {
        let m = Matrix::zeros(10, 20);
        assert_eq!(m.memory_bytes(), 10 * 20 * 8);
    }

    #[test]
    #[should_panic]
    fn from_vec_wrong_length_panics() {
        let _ = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn row_col_setters() {
        let mut m = Matrix::zeros(2, 3);
        m.set_row(1, &[1.0, 2.0, 3.0]);
        m.set_col(0, &[9.0, 8.0]);
        assert_eq!(m[(1, 0)], 8.0);
        assert_eq!(m[(1, 2)], 3.0);
        assert_eq!(m[(0, 0)], 9.0);
    }

    #[test]
    fn column_vector_and_diag() {
        let v = Matrix::column_vector(&[1.0, 2.0, 3.0]);
        assert_eq!(v.shape(), (3, 1));
        let d = Matrix::from_diag(&[1.0, 2.0]);
        assert_eq!(d[(1, 1)], 2.0);
        assert_eq!(d[(0, 1)], 0.0);
    }
}
