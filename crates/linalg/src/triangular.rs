//! Triangular solves (single and multiple right-hand sides).

use crate::matrix::Matrix;
use crate::{LinalgError, LinalgResult};

/// Solves `L x = b` with `L` lower triangular.
///
/// # Errors
/// Returns [`LinalgError::Singular`] when a diagonal entry is zero.
pub fn solve_lower(l: &Matrix, b: &[f64]) -> LinalgResult<Vec<f64>> {
    let n = l.nrows();
    assert!(l.is_square(), "solve_lower: L must be square");
    assert_eq!(b.len(), n, "solve_lower: rhs length mismatch");
    let mut x = vec![0.0; n];
    for i in 0..n {
        let mut s = b[i];
        let row = l.row(i);
        for j in 0..i {
            s -= row[j] * x[j];
        }
        let d = row[i];
        if d == 0.0 {
            return Err(LinalgError::Singular { pivot: i });
        }
        x[i] = s / d;
    }
    Ok(x)
}

/// Solves `U x = b` with `U` upper triangular.
pub fn solve_upper(u: &Matrix, b: &[f64]) -> LinalgResult<Vec<f64>> {
    let n = u.nrows();
    assert!(u.is_square(), "solve_upper: U must be square");
    assert_eq!(b.len(), n, "solve_upper: rhs length mismatch");
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let mut s = b[i];
        let row = u.row(i);
        for j in (i + 1)..n {
            s -= row[j] * x[j];
        }
        let d = row[i];
        if d == 0.0 {
            return Err(LinalgError::Singular { pivot: i });
        }
        x[i] = s / d;
    }
    Ok(x)
}

/// Solves `L^T x = b` with `L` lower triangular (i.e. an upper-triangular
/// solve using the transpose of `L` without forming it).
pub fn solve_lower_transpose(l: &Matrix, b: &[f64]) -> LinalgResult<Vec<f64>> {
    let n = l.nrows();
    assert!(l.is_square(), "solve_lower_transpose: L must be square");
    assert_eq!(b.len(), n, "solve_lower_transpose: rhs length mismatch");
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let mut s = b[i];
        for j in (i + 1)..n {
            s -= l[(j, i)] * x[j];
        }
        let d = l[(i, i)];
        if d == 0.0 {
            return Err(LinalgError::Singular { pivot: i });
        }
        x[i] = s / d;
    }
    Ok(x)
}

/// Solves `L X = B` with `B` a matrix of right-hand sides, through the
/// active backend's in-place TRSM.
///
/// The row-sweep TRSM performs, per output element, the identical scalar
/// operation sequence as solving column by column, so results are bitwise
/// the same as the historical per-column implementation.
pub fn solve_lower_multi(l: &Matrix, b: &Matrix) -> LinalgResult<Matrix> {
    assert_eq!(l.nrows(), b.nrows(), "solve_lower_multi: dim mismatch");
    let mut x = b.clone();
    crate::backend::active().trsm_lower_into(l, &mut x)?;
    Ok(x)
}

/// Solves `U X = B` with `B` a matrix of right-hand sides, through the
/// active backend's in-place TRSM (see [`solve_lower_multi`] on bitwise
/// equivalence with the per-column solve).
pub fn solve_upper_multi(u: &Matrix, b: &Matrix) -> LinalgResult<Matrix> {
    assert_eq!(u.nrows(), b.nrows(), "solve_upper_multi: dim mismatch");
    let mut x = b.clone();
    crate::backend::active().trsm_upper_into(u, &mut x)?;
    Ok(x)
}

/// Solves `x^T U = b^T`, i.e. `U^T x = b`, with `U` upper triangular.
pub fn solve_upper_transpose(u: &Matrix, b: &[f64]) -> LinalgResult<Vec<f64>> {
    let n = u.nrows();
    assert!(u.is_square(), "solve_upper_transpose: U must be square");
    assert_eq!(b.len(), n, "solve_upper_transpose: rhs length mismatch");
    let mut x = vec![0.0; n];
    for i in 0..n {
        let mut s = b[i];
        for j in 0..i {
            s -= u[(j, i)] * x[j];
        }
        let d = u[(i, i)];
        if d == 0.0 {
            return Err(LinalgError::Singular { pivot: i });
        }
        x[i] = s / d;
    }
    Ok(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blas::{gemv, gemv_t, nrm2};
    use crate::random::{gaussian_matrix, Pcg64};

    fn random_lower(seed: u64, n: usize) -> Matrix {
        let mut rng = Pcg64::seed_from_u64(seed);
        let mut l = gaussian_matrix(&mut rng, n, n);
        for i in 0..n {
            for j in (i + 1)..n {
                l[(i, j)] = 0.0;
            }
            // Keep the diagonal well away from zero.
            l[(i, i)] = 2.0 + l[(i, i)].abs();
        }
        l
    }

    #[test]
    fn lower_solve_residual_is_small() {
        let l = random_lower(1, 20);
        let mut rng = Pcg64::seed_from_u64(2);
        let b: Vec<f64> = (0..20).map(|_| rng.next_gaussian()).collect();
        let x = solve_lower(&l, &b).unwrap();
        let mut r = vec![0.0; 20];
        gemv(&l, &x, &mut r);
        let err: f64 = r.iter().zip(b.iter()).map(|(a, b)| (a - b).abs()).sum();
        assert!(err < 1e-10);
    }

    #[test]
    fn upper_solve_residual_is_small() {
        let u = random_lower(3, 15).transpose();
        let mut rng = Pcg64::seed_from_u64(4);
        let b: Vec<f64> = (0..15).map(|_| rng.next_gaussian()).collect();
        let x = solve_upper(&u, &b).unwrap();
        let mut r = vec![0.0; 15];
        gemv(&u, &x, &mut r);
        let err = nrm2(
            &r.iter()
                .zip(b.iter())
                .map(|(a, b)| a - b)
                .collect::<Vec<_>>(),
        );
        assert!(err < 1e-10);
    }

    #[test]
    fn lower_transpose_solve_matches_explicit_transpose() {
        let l = random_lower(5, 12);
        let mut rng = Pcg64::seed_from_u64(6);
        let b: Vec<f64> = (0..12).map(|_| rng.next_gaussian()).collect();
        let x1 = solve_lower_transpose(&l, &b).unwrap();
        let x2 = solve_upper(&l.transpose(), &b).unwrap();
        for (a, b) in x1.iter().zip(x2.iter()) {
            assert!((a - b).abs() < 1e-11);
        }
        // Verify L^T x = b directly.
        let mut r = vec![0.0; 12];
        gemv_t(&l, &x1, &mut r);
        for (ri, bi) in r.iter().zip(b.iter()) {
            assert!((ri - bi).abs() < 1e-10);
        }
    }

    #[test]
    fn upper_transpose_solve() {
        let u = random_lower(11, 10).transpose();
        let mut rng = Pcg64::seed_from_u64(12);
        let b: Vec<f64> = (0..10).map(|_| rng.next_gaussian()).collect();
        let x = solve_upper_transpose(&u, &b).unwrap();
        let mut r = vec![0.0; 10];
        gemv_t(&u, &x, &mut r);
        for (ri, bi) in r.iter().zip(b.iter()) {
            assert!((ri - bi).abs() < 1e-10);
        }
    }

    #[test]
    fn multi_rhs_solves() {
        let l = random_lower(7, 10);
        let mut rng = Pcg64::seed_from_u64(8);
        let b = gaussian_matrix(&mut rng, 10, 4);
        let x = solve_lower_multi(&l, &b).unwrap();
        let rec = crate::blas::matmul(&l, &x);
        assert!(crate::blas::relative_error(&b, &rec) < 1e-11);

        let u = l.transpose();
        let xu = solve_upper_multi(&u, &b).unwrap();
        let rec = crate::blas::matmul(&u, &xu);
        assert!(crate::blas::relative_error(&b, &rec) < 1e-11);
    }

    #[test]
    fn singular_diagonal_is_reported() {
        let mut l = Matrix::identity(3);
        l[(1, 1)] = 0.0;
        assert!(matches!(
            solve_lower(&l, &[1.0, 1.0, 1.0]),
            Err(LinalgError::Singular { pivot: 1 })
        ));
        assert!(matches!(
            solve_upper(&l, &[1.0, 1.0, 1.0]),
            Err(LinalgError::Singular { pivot: 1 })
        ));
    }
}
