//! The *partially matrix-free* operator interface.
//!
//! STRUMPACK's randomized HSS construction only needs two things from the
//! input matrix: (1) products with blocks of random vectors, and (2) access
//! to selected entries.  The [`LinearOperator`] trait captures exactly that
//! contract, so the HSS and H-matrix code never has to materialize a full
//! kernel matrix.

use crate::blas;
use crate::matrix::Matrix;
use rayon::prelude::*;

/// A linear operator exposing entry access and matrix-vector products.
///
/// Implementors must be `Sync` so that sampling products can be evaluated
/// in parallel over columns of the random block.
pub trait LinearOperator: Sync {
    /// Number of rows of the operator.
    fn nrows(&self) -> usize;

    /// Number of columns of the operator.
    fn ncols(&self) -> usize;

    /// Entry `(i, j)` of the operator.
    fn entry(&self, i: usize, j: usize) -> f64;

    /// `y = A x`.
    ///
    /// The default implementation assembles each row on the fly from
    /// [`entry`](LinearOperator::entry); implementors with structure (dense
    /// storage, H-matrix, kernel closed form) should override it.
    fn matvec(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.ncols(), "matvec: x length mismatch");
        assert_eq!(y.len(), self.nrows(), "matvec: y length mismatch");
        y.par_iter_mut().enumerate().for_each(|(i, yi)| {
            let mut s = 0.0;
            for (j, &xj) in x.iter().enumerate() {
                s += self.entry(i, j) * xj;
            }
            *yi = s;
        });
    }

    /// `y = A^T x`.
    fn rmatvec(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.nrows(), "rmatvec: x length mismatch");
        assert_eq!(y.len(), self.ncols(), "rmatvec: y length mismatch");
        y.par_iter_mut().enumerate().for_each(|(j, yj)| {
            let mut s = 0.0;
            for (i, &xi) in x.iter().enumerate() {
                s += self.entry(i, j) * xi;
            }
            *yj = s;
        });
    }

    /// Multi-vector product `Y = A X`, parallel over the columns of `X`.
    fn matmat(&self, x: &Matrix) -> Matrix {
        assert_eq!(x.nrows(), self.ncols(), "matmat: dimension mismatch");
        let cols: Vec<Vec<f64>> = (0..x.ncols())
            .into_par_iter()
            .map(|j| {
                let xj = x.col(j);
                let mut yj = vec![0.0; self.nrows()];
                self.matvec(&xj, &mut yj);
                yj
            })
            .collect();
        let mut y = Matrix::zeros(self.nrows(), x.ncols());
        for (j, col) in cols.iter().enumerate() {
            y.set_col(j, col);
        }
        y
    }

    /// Multi-vector transposed product `Y = A^T X`.
    fn rmatmat(&self, x: &Matrix) -> Matrix {
        assert_eq!(x.nrows(), self.nrows(), "rmatmat: dimension mismatch");
        let cols: Vec<Vec<f64>> = (0..x.ncols())
            .into_par_iter()
            .map(|j| {
                let xj = x.col(j);
                let mut yj = vec![0.0; self.ncols()];
                self.rmatvec(&xj, &mut yj);
                yj
            })
            .collect();
        let mut y = Matrix::zeros(self.ncols(), x.ncols());
        for (j, col) in cols.iter().enumerate() {
            y.set_col(j, col);
        }
        y
    }

    /// Extracts the dense sub-block `A(rows, cols)`.
    ///
    /// The default implementation evaluates one output row per task in
    /// parallel — entry evaluation can be expensive (a closed-form kernel
    /// costs `O(d)` per entry), and the HSS construction extracts leaf and
    /// skeleton blocks on its hot path.
    fn sub_block(&self, rows: &[usize], cols: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(rows.len(), cols.len());
        if rows.is_empty() || cols.is_empty() {
            return out;
        }
        out.data_mut()
            .par_chunks_mut(cols.len())
            .enumerate()
            .for_each(|(oi, row)| {
                let i = rows[oi];
                for (oj, &j) in cols.iter().enumerate() {
                    row[oj] = self.entry(i, j);
                }
            });
        out
    }

    /// Assembles the full dense matrix (tests and tiny problems only).
    fn to_dense(&self) -> Matrix {
        let rows: Vec<usize> = (0..self.nrows()).collect();
        let cols: Vec<usize> = (0..self.ncols()).collect();
        self.sub_block(&rows, &cols)
    }
}

impl LinearOperator for Matrix {
    fn nrows(&self) -> usize {
        Matrix::nrows(self)
    }

    fn ncols(&self) -> usize {
        Matrix::ncols(self)
    }

    fn entry(&self, i: usize, j: usize) -> f64 {
        self[(i, j)]
    }

    fn matvec(&self, x: &[f64], y: &mut [f64]) {
        blas::gemv(self, x, y);
    }

    fn rmatvec(&self, x: &[f64], y: &mut [f64]) {
        blas::gemv_t(self, x, y);
    }

    fn matmat(&self, x: &Matrix) -> Matrix {
        blas::matmul(self, x)
    }

    fn rmatmat(&self, x: &Matrix) -> Matrix {
        blas::matmul_tn(self, x)
    }

    fn sub_block(&self, rows: &[usize], cols: &[usize]) -> Matrix {
        self.select(rows, cols)
    }

    fn to_dense(&self) -> Matrix {
        self.clone()
    }
}

/// A symmetric permutation of an underlying operator: entry `(i, j)` of the
/// view is entry `(perm[i], perm[j])` of the inner operator.
///
/// This is how the clustering reordering (Step 0 of Algorithm 1) is applied
/// without copying or re-assembling the kernel matrix.
pub struct PermutedOperator<'a, T: LinearOperator> {
    inner: &'a T,
    perm: Vec<usize>,
}

impl<'a, T: LinearOperator> PermutedOperator<'a, T> {
    /// Creates the permuted view.
    ///
    /// # Panics
    /// Panics if the operator is not square or `perm` is not a permutation
    /// of `0..n`.
    pub fn new(inner: &'a T, perm: Vec<usize>) -> Self {
        assert_eq!(
            inner.nrows(),
            inner.ncols(),
            "PermutedOperator: must be square"
        );
        assert_eq!(perm.len(), inner.nrows(), "PermutedOperator: perm length");
        let mut check = perm.clone();
        check.sort_unstable();
        assert!(
            check.iter().enumerate().all(|(i, &p)| i == p),
            "PermutedOperator: perm is not a permutation"
        );
        PermutedOperator { inner, perm }
    }

    /// The permutation applied by this view.
    pub fn permutation(&self) -> &[usize] {
        &self.perm
    }
}

impl<'a, T: LinearOperator> LinearOperator for PermutedOperator<'a, T> {
    fn nrows(&self) -> usize {
        self.inner.nrows()
    }

    fn ncols(&self) -> usize {
        self.inner.ncols()
    }

    fn entry(&self, i: usize, j: usize) -> f64 {
        self.inner.entry(self.perm[i], self.perm[j])
    }

    fn matvec(&self, x: &[f64], y: &mut [f64]) {
        // (P A P^T) x = P (A (P^T x)).
        let n = self.nrows();
        let mut xp = vec![0.0; n];
        for (i, &p) in self.perm.iter().enumerate() {
            xp[p] = x[i];
        }
        let mut yp = vec![0.0; n];
        self.inner.matvec(&xp, &mut yp);
        for (i, &p) in self.perm.iter().enumerate() {
            y[i] = yp[p];
        }
    }

    fn rmatvec(&self, x: &[f64], y: &mut [f64]) {
        let n = self.nrows();
        let mut xp = vec![0.0; n];
        for (i, &p) in self.perm.iter().enumerate() {
            xp[p] = x[i];
        }
        let mut yp = vec![0.0; n];
        self.inner.rmatvec(&xp, &mut yp);
        for (i, &p) in self.perm.iter().enumerate() {
            y[i] = yp[p];
        }
    }
}

/// An operator shifted on the diagonal: `A + λ I`.
///
/// Used for the `K + λ I` system of kernel ridge regression without
/// touching the underlying kernel operator.
pub struct ShiftedOperator<'a, T: LinearOperator> {
    inner: &'a T,
    shift: f64,
}

impl<'a, T: LinearOperator> ShiftedOperator<'a, T> {
    /// Wraps `inner` as `inner + shift * I`.
    pub fn new(inner: &'a T, shift: f64) -> Self {
        assert_eq!(
            inner.nrows(),
            inner.ncols(),
            "ShiftedOperator: must be square"
        );
        ShiftedOperator { inner, shift }
    }

    /// The diagonal shift λ.
    pub fn shift(&self) -> f64 {
        self.shift
    }
}

impl<'a, T: LinearOperator> LinearOperator for ShiftedOperator<'a, T> {
    fn nrows(&self) -> usize {
        self.inner.nrows()
    }

    fn ncols(&self) -> usize {
        self.inner.ncols()
    }

    fn entry(&self, i: usize, j: usize) -> f64 {
        let base = self.inner.entry(i, j);
        if i == j {
            base + self.shift
        } else {
            base
        }
    }

    fn matvec(&self, x: &[f64], y: &mut [f64]) {
        self.inner.matvec(x, y);
        for (yi, xi) in y.iter_mut().zip(x.iter()) {
            *yi += self.shift * xi;
        }
    }

    fn rmatvec(&self, x: &[f64], y: &mut [f64]) {
        self.inner.rmatvec(x, y);
        for (yi, xi) in y.iter_mut().zip(x.iter()) {
            *yi += self.shift * xi;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random::{gaussian_matrix, Pcg64};

    /// Minimal operator implemented only through `entry`, to exercise the
    /// trait's default methods.
    struct EntryOnly {
        m: Matrix,
    }

    impl LinearOperator for EntryOnly {
        fn nrows(&self) -> usize {
            self.m.nrows()
        }
        fn ncols(&self) -> usize {
            self.m.ncols()
        }
        fn entry(&self, i: usize, j: usize) -> f64 {
            self.m[(i, j)]
        }
    }

    #[test]
    fn default_matvec_matches_dense() {
        let mut rng = Pcg64::seed_from_u64(1);
        let m = gaussian_matrix(&mut rng, 20, 15);
        let op = EntryOnly { m: m.clone() };
        let x: Vec<f64> = (0..15).map(|_| rng.next_gaussian()).collect();
        let mut y1 = vec![0.0; 20];
        let mut y2 = vec![0.0; 20];
        op.matvec(&x, &mut y1);
        blas::gemv(&m, &x, &mut y2);
        for (a, b) in y1.iter().zip(y2.iter()) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn default_rmatvec_and_matmat() {
        let mut rng = Pcg64::seed_from_u64(2);
        let m = gaussian_matrix(&mut rng, 12, 9);
        let op = EntryOnly { m: m.clone() };
        let x: Vec<f64> = (0..12).map(|_| rng.next_gaussian()).collect();
        let mut y1 = vec![0.0; 9];
        let mut y2 = vec![0.0; 9];
        op.rmatvec(&x, &mut y1);
        blas::gemv_t(&m, &x, &mut y2);
        for (a, b) in y1.iter().zip(y2.iter()) {
            assert!((a - b).abs() < 1e-12);
        }

        let xs = gaussian_matrix(&mut rng, 9, 4);
        let y = op.matmat(&xs);
        let y_ref = blas::matmul(&m, &xs);
        assert!(blas::relative_error(&y_ref, &y) < 1e-12);

        let xs2 = gaussian_matrix(&mut rng, 12, 3);
        let yt = op.rmatmat(&xs2);
        let yt_ref = blas::matmul_tn(&m, &xs2);
        assert!(blas::relative_error(&yt_ref, &yt) < 1e-12);
    }

    #[test]
    fn sub_block_and_to_dense() {
        let m = Matrix::from_fn(5, 5, |i, j| (i * 5 + j) as f64);
        let op = EntryOnly { m: m.clone() };
        let b = op.sub_block(&[1, 3], &[0, 4]);
        assert_eq!(b[(0, 0)], m[(1, 0)]);
        assert_eq!(b[(1, 1)], m[(3, 4)]);
        assert!(op.to_dense().approx_eq(&m, 0.0));
    }

    #[test]
    fn matrix_implements_operator() {
        let mut rng = Pcg64::seed_from_u64(3);
        let m = gaussian_matrix(&mut rng, 10, 10);
        let x: Vec<f64> = (0..10).map(|_| rng.next_gaussian()).collect();
        let mut y = vec![0.0; 10];
        LinearOperator::matvec(&m, &x, &mut y);
        let mut y_ref = vec![0.0; 10];
        blas::gemv(&m, &x, &mut y_ref);
        assert_eq!(y, y_ref);
        assert_eq!(LinearOperator::entry(&m, 3, 4), m[(3, 4)]);
    }

    #[test]
    fn permuted_operator_matches_dense_permutation() {
        let mut rng = Pcg64::seed_from_u64(4);
        let base = gaussian_matrix(&mut rng, 8, 8);
        let m = base.add(&base.transpose()); // symmetric
        let perm = vec![3, 1, 4, 0, 7, 6, 2, 5];
        let view = PermutedOperator::new(&m, perm.clone());
        let dense_perm = m.permute_symmetric(&perm);
        assert!(view.to_dense().approx_eq(&dense_perm, 1e-14));

        let x: Vec<f64> = (0..8).map(|_| rng.next_gaussian()).collect();
        let mut y1 = vec![0.0; 8];
        let mut y2 = vec![0.0; 8];
        view.matvec(&x, &mut y1);
        blas::gemv(&dense_perm, &x, &mut y2);
        for (a, b) in y1.iter().zip(y2.iter()) {
            assert!((a - b).abs() < 1e-12);
        }
        let mut z1 = vec![0.0; 8];
        let mut z2 = vec![0.0; 8];
        view.rmatvec(&x, &mut z1);
        blas::gemv_t(&dense_perm, &x, &mut z2);
        for (a, b) in z1.iter().zip(z2.iter()) {
            assert!((a - b).abs() < 1e-12);
        }
        assert_eq!(view.permutation(), &perm[..]);
    }

    #[test]
    #[should_panic]
    fn permuted_operator_rejects_bad_permutation() {
        let m = Matrix::identity(4);
        let _ = PermutedOperator::new(&m, vec![0, 1, 1, 3]);
    }

    #[test]
    fn shifted_operator_adds_lambda() {
        let mut rng = Pcg64::seed_from_u64(5);
        let m = gaussian_matrix(&mut rng, 6, 6);
        let op = ShiftedOperator::new(&m, 2.5);
        assert_eq!(op.shift(), 2.5);
        assert!((op.entry(2, 2) - (m[(2, 2)] + 2.5)).abs() < 1e-15);
        assert_eq!(op.entry(1, 2), m[(1, 2)]);

        let x: Vec<f64> = (0..6).map(|_| rng.next_gaussian()).collect();
        let mut y = vec![0.0; 6];
        op.matvec(&x, &mut y);
        let mut y_ref = vec![0.0; 6];
        blas::gemv(&m, &x, &mut y_ref);
        for i in 0..6 {
            assert!((y[i] - (y_ref[i] + 2.5 * x[i])).abs() < 1e-12);
        }
        let mut shifted = m.clone();
        shifted.shift_diagonal(2.5);
        assert!(op.to_dense().approx_eq(&shifted, 1e-14));
    }
}
