//! Symmetric eigensolvers.
//!
//! The PCA-tree clustering needs the leading principal direction of a data
//! block; the classical Jacobi eigensolver is provided for full spectra
//! (small covariance matrices, `d x d`), and a power iteration for the
//! leading eigenvector when only the first principal component is needed.

use crate::blas;
use crate::matrix::Matrix;
use crate::{LinalgError, LinalgResult};

/// Eigendecomposition `A = V diag(λ) V^T` of a symmetric matrix.
#[derive(Debug, Clone)]
pub struct SymmetricEig {
    /// Eigenvalues in non-increasing order.
    pub values: Vec<f64>,
    /// Orthonormal eigenvectors stored as columns, in the same order.
    pub vectors: Matrix,
}

const MAX_JACOBI_SWEEPS: usize = 64;

/// Cyclic Jacobi eigensolver for symmetric matrices.
///
/// # Errors
/// Returns [`LinalgError::DimensionMismatch`] for non-square input and
/// [`LinalgError::NoConvergence`] if the sweep budget is exhausted.
pub fn symmetric_eig(a: &Matrix) -> LinalgResult<SymmetricEig> {
    if !a.is_square() {
        return Err(LinalgError::DimensionMismatch {
            context: format!("symmetric_eig on {}x{} matrix", a.nrows(), a.ncols()),
        });
    }
    let n = a.nrows();
    if n == 0 {
        return Ok(SymmetricEig {
            values: vec![],
            vectors: Matrix::zeros(0, 0),
        });
    }
    let mut w = a.clone();
    let mut v = Matrix::identity(n);
    let eps = 1e-14 * a.norm_fro().max(f64::MIN_POSITIVE);

    let mut converged = false;
    for _ in 0..MAX_JACOBI_SWEEPS {
        // Off-diagonal Frobenius norm decides convergence.
        let mut off = 0.0;
        for i in 0..n {
            for j in (i + 1)..n {
                off += w[(i, j)] * w[(i, j)];
            }
        }
        if off.sqrt() <= eps {
            converged = true;
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = w[(p, q)];
                if apq.abs() <= eps / (n as f64) {
                    continue;
                }
                let app = w[(p, p)];
                let aqq = w[(q, q)];
                let theta = (aqq - app) / (2.0 * apq);
                let t = theta.signum() / (theta.abs() + (1.0 + theta * theta).sqrt());
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = t * c;
                // Apply the rotation on both sides: W <- J^T W J.
                for k in 0..n {
                    let wkp = w[(k, p)];
                    let wkq = w[(k, q)];
                    w[(k, p)] = c * wkp - s * wkq;
                    w[(k, q)] = s * wkp + c * wkq;
                }
                for k in 0..n {
                    let wpk = w[(p, k)];
                    let wqk = w[(q, k)];
                    w[(p, k)] = c * wpk - s * wqk;
                    w[(q, k)] = s * wpk + c * wqk;
                }
                for k in 0..n {
                    let vkp = v[(k, p)];
                    let vkq = v[(k, q)];
                    v[(k, p)] = c * vkp - s * vkq;
                    v[(k, q)] = s * vkp + c * vkq;
                }
            }
        }
    }
    if !converged {
        return Err(LinalgError::NoConvergence {
            iterations: MAX_JACOBI_SWEEPS,
        });
    }

    let mut order: Vec<usize> = (0..n).collect();
    let diag: Vec<f64> = (0..n).map(|i| w[(i, i)]).collect();
    order.sort_by(|&i, &j| diag[j].partial_cmp(&diag[i]).unwrap());
    let values: Vec<f64> = order.iter().map(|&i| diag[i]).collect();
    let mut vectors = Matrix::zeros(n, n);
    for (out_j, &j) in order.iter().enumerate() {
        vectors.set_col(out_j, &v.col(j));
    }
    Ok(SymmetricEig { values, vectors })
}

/// Leading eigenvector of a symmetric positive semi-definite matrix via
/// power iteration.
///
/// Returns `(eigenvalue, eigenvector)`.  Used by PCA-tree clustering where
/// the covariance matrix is `d x d` and only the dominant direction is
/// needed.
pub fn power_iteration(a: &Matrix, max_iter: usize, tol: f64, seed: u64) -> (f64, Vec<f64>) {
    assert!(a.is_square(), "power_iteration: matrix must be square");
    let n = a.nrows();
    if n == 0 {
        return (0.0, vec![]);
    }
    let mut rng = crate::random::Pcg64::seed_from_u64(seed);
    let mut v = vec![0.0; n];
    rng.fill_gaussian(&mut v);
    let norm = blas::nrm2(&v);
    blas::scal(1.0 / norm, &mut v);

    let mut lambda = 0.0;
    let mut next = vec![0.0; n];
    for _ in 0..max_iter {
        blas::gemv(a, &v, &mut next);
        let new_lambda = blas::dot(&v, &next);
        let norm = blas::nrm2(&next);
        if norm == 0.0 {
            return (0.0, v);
        }
        for (vi, ni) in v.iter_mut().zip(next.iter()) {
            *vi = ni / norm;
        }
        if (new_lambda - lambda).abs() <= tol * new_lambda.abs().max(1.0) {
            return (new_lambda, v);
        }
        lambda = new_lambda;
    }
    (lambda, v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blas::{matmul, matmul_tn, relative_error};
    use crate::random::{gaussian_matrix, Pcg64};

    fn random_symmetric(seed: u64, n: usize) -> Matrix {
        let mut rng = Pcg64::seed_from_u64(seed);
        let a = gaussian_matrix(&mut rng, n, n);
        a.add(&a.transpose()).scaled(0.5)
    }

    #[test]
    fn eig_reconstructs_symmetric_matrix() {
        let a = random_symmetric(1, 10);
        let e = symmetric_eig(&a).unwrap();
        let lam = Matrix::from_diag(&e.values);
        let rec = matmul(&matmul(&e.vectors, &lam), &e.vectors.transpose());
        assert!(relative_error(&a, &rec) < 1e-10);
    }

    #[test]
    fn eigenvectors_are_orthonormal() {
        let a = random_symmetric(2, 12);
        let e = symmetric_eig(&a).unwrap();
        let vtv = matmul_tn(&e.vectors, &e.vectors);
        assert!(relative_error(&Matrix::identity(12), &vtv) < 1e-10);
    }

    #[test]
    fn eigenvalues_sorted_descending() {
        let a = random_symmetric(3, 9);
        let e = symmetric_eig(&a).unwrap();
        for w in e.values.windows(2) {
            assert!(w[0] >= w[1] - 1e-12);
        }
    }

    #[test]
    fn eig_of_diagonal_matrix() {
        let d = Matrix::from_diag(&[1.0, 4.0, 2.0]);
        let e = symmetric_eig(&d).unwrap();
        assert!((e.values[0] - 4.0).abs() < 1e-12);
        assert!((e.values[2] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn eig_rejects_rectangular() {
        let a = Matrix::zeros(3, 4);
        assert!(matches!(
            symmetric_eig(&a),
            Err(LinalgError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn eig_empty_matrix() {
        let e = symmetric_eig(&Matrix::zeros(0, 0)).unwrap();
        assert!(e.values.is_empty());
    }

    #[test]
    fn power_iteration_finds_dominant_direction() {
        // Covariance-like matrix with a clearly dominant direction.
        let a = Matrix::from_diag(&[10.0, 1.0, 0.5, 0.1]);
        let (lambda, v) = power_iteration(&a, 500, 1e-12, 7);
        assert!((lambda - 10.0).abs() < 1e-6);
        assert!(v[0].abs() > 0.999);
    }

    #[test]
    fn power_iteration_matches_jacobi_on_random_spd() {
        let mut rng = Pcg64::seed_from_u64(5);
        let b = gaussian_matrix(&mut rng, 8, 8);
        let a = matmul(&b, &b.transpose()); // SPD
        let e = symmetric_eig(&a).unwrap();
        let (lambda, _) = power_iteration(&a, 2000, 1e-13, 11);
        assert!((lambda - e.values[0]).abs() / e.values[0] < 1e-6);
    }

    #[test]
    fn power_iteration_on_zero_matrix() {
        let a = Matrix::zeros(5, 5);
        let (lambda, v) = power_iteration(&a, 10, 1e-10, 3);
        assert_eq!(lambda, 0.0);
        assert_eq!(v.len(), 5);
    }
}
